// Micro-benchmarks (google-benchmark) of the library's hot paths: impurity
// evaluation, numeric split search, AVC construction, corner lower bounds,
// table scan throughput, and data generation.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_common.h"
#include "boat/bounds.h"
#include "boat/builder.h"
#include "boat/discretization.h"
#include "common/timer.h"
#include "tree/columnar_builder.h"
#include "tree/compiled_tree.h"
#include "tree/inmem_builder.h"
#include "tree/serialize.h"
#include "datagen/agrawal.h"
#include "split/numeric_search.h"
#include "split/selector.h"
#include "storage/table_file.h"
#include "storage/temp_file.h"

namespace boat {
namespace {

void BM_GiniEval(benchmark::State& state) {
  GiniImpurity gini;
  const int64_t left[2] = {123, 456};
  const int64_t right[2] = {789, 12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gini.Eval(left, right, 2, 1380));
  }
}
BENCHMARK(BM_GiniEval);

void BM_EntropyEval(benchmark::State& state) {
  EntropyImpurity entropy;
  const int64_t left[2] = {123, 456};
  const int64_t right[2] = {789, 12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropy.Eval(left, right, 2, 1380));
  }
}
BENCHMARK(BM_EntropyEval);

NumericAvc MakeAvc(int64_t values) {
  Rng rng(1);
  NumericAvc avc(2);
  for (int64_t i = 0; i < values * 4; ++i) {
    const double v = static_cast<double>(rng.UniformInt(0, values - 1));
    avc.Add(v, rng.Bernoulli(v / static_cast<double>(values)) ? 1 : 0);
  }
  avc.Finalize();
  return avc;
}

void BM_NumericSplitSearch(benchmark::State& state) {
  const NumericAvc avc = MakeAvc(state.range(0));
  GiniImpurity gini;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BestNumericSplit(avc, 0, gini));
  }
  state.SetItemsProcessed(state.iterations() * avc.num_values());
}
BENCHMARK(BM_NumericSplitSearch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AvcGroupBuild(benchmark::State& state) {
  AgrawalConfig config;
  config.function = 6;
  const std::vector<Tuple> tuples =
      GenerateAgrawal(config, static_cast<uint64_t>(state.range(0)));
  const Schema schema = MakeAgrawalSchema();
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildAvcGroup(schema, tuples));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AvcGroupBuild)->Arg(1000)->Arg(10000);

void BM_CornerLowerBound(benchmark::State& state) {
  GiniImpurity gini;
  const int k = static_cast<int>(state.range(0));
  std::vector<int64_t> lo(k), hi(k), totals(k);
  int64_t total = 0;
  for (int c = 0; c < k; ++c) {
    lo[c] = 10 * c;
    hi[c] = 10 * c + 50;
    totals[c] = 200;
    total += totals[c];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CornerLowerBound(gini, lo, hi, totals, total));
  }
}
BENCHMARK(BM_CornerLowerBound)->Arg(2)->Arg(4)->Arg(8);

void BM_TableScan(benchmark::State& state) {
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());
  const std::string path = temp->NewPath("scan");
  AgrawalConfig config;
  config.function = 1;
  CheckOk(GenerateAgrawalTable(config, static_cast<uint64_t>(state.range(0)),
                               path));
  const Schema schema = MakeAgrawalSchema();
  auto reader = TableReader::Open(path, schema);
  CheckOk(reader.status());
  for (auto _ : state) {
    CheckOk((*reader)->Reset());
    Tuple t;
    int64_t n = 0;
    while ((*reader)->Next(&t)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() * state.range(0) *
                          static_cast<int64_t>(schema.RecordWidth()));
}
BENCHMARK(BM_TableScan)->Arg(10000)->Arg(100000);

void BM_AgrawalGenerate(benchmark::State& state) {
  AgrawalConfig config;
  config.function = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GenerateAgrawal(config, static_cast<uint64_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AgrawalGenerate)->Arg(10000);

void BM_BucketCountsAdd(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> boundaries;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    boundaries.push_back(static_cast<double>(i * 100));
  }
  BucketCounts bc(Discretization(std::move(boundaries)), 2);
  std::vector<std::pair<double, int32_t>> values;
  for (int i = 0; i < 4096; ++i) {
    values.push_back({rng.UniformDouble(0, state.range(0) * 100.0),
                      static_cast<int32_t>(rng.UniformInt(0, 1))});
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [v, label] = values[i++ & 4095];
    bc.Add(v, label);
  }
}
BENCHMARK(BM_BucketCountsAdd)->Arg(16)->Arg(128)->Arg(512);

void BM_BoatSamplingPhase(benchmark::State& state) {
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  AgrawalGenerator gen(config, static_cast<uint64_t>(state.range(0)));
  auto selector = MakeGiniSelector();
  SamplingPhaseOptions opts;
  opts.sample_size = static_cast<size_t>(state.range(0) / 10);
  opts.bootstrap_count = 20;
  opts.bootstrap_subsample = opts.sample_size / 4;
  opts.frontier_threshold = state.range(0) / 10;
  for (auto _ : state) {
    Rng rng(7);
    auto phase = RunSamplingPhase(&gen, *selector, opts, &rng);
    CheckOk(phase.status());
    benchmark::DoNotOptimize(phase->coarse_root);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BoatSamplingPhase)->Arg(20000)->Arg(100000);

void BM_BoatFullBuild(benchmark::State& state) {
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  AgrawalGenerator gen(config, n);
  auto selector = MakeGiniSelector();
  BoatOptions options;
  options.sample_size = n / 10;
  options.bootstrap_count = 20;
  options.bootstrap_subsample = n / 40;
  options.inmem_threshold = static_cast<int64_t>(n / 10);
  options.limits.stop_family_size = static_cast<int64_t>(n / 10);
  for (auto _ : state) {
    auto tree = BuildTreeBoat(&gen, *selector, options);
    CheckOk(tree.status());
    benchmark::DoNotOptimize(tree->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BoatFullBuild)->Arg(20000)->Arg(100000);

void BM_BoatGrowthThreads(benchmark::State& state) {
  // The multi-threaded growth phase on a 500k-tuple database; Arg = worker
  // threads. Every thread count produces the byte-identical tree (enforced
  // by parallel_equivalence_test), so this measures pure speedup. On a
  // single-core host the thread counts tie (modulo pipeline overhead).
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  const uint64_t n = 500000;
  AgrawalGenerator gen(config, n);
  auto selector = MakeGiniSelector();
  BoatOptions options;
  options.sample_size = 20000;
  options.bootstrap_count = 20;
  options.bootstrap_subsample = 5000;
  options.inmem_threshold = static_cast<int64_t>(n / 10);
  options.limits.stop_family_size = static_cast<int64_t>(n / 10);
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto tree = BuildTreeBoat(&gen, *selector, options);
    CheckOk(tree.status());
    benchmark::DoNotOptimize(tree->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BoatGrowthThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------- columnar growth
//
// Shared fixture: a sample-sized Agrawal family (what the bootstrap phase
// and frontier resolution grow trees over). The first growth benchmark also
// (a) byte-compares the columnar engine's tree against the legacy row
// builder's — aborting the process on divergence, which the CI bench-smoke
// job keys off — and (b) records a BENCH_growth.json trajectory comparing
// the two engines (path overridable via BOAT_BENCH_GROWTH_JSON).

struct GrowthFixture {
  Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> train;
  std::unique_ptr<SplitSelector> selector = MakeGiniSelector();
  GrowthLimits limits;

  GrowthFixture() {
    AgrawalConfig config;
    config.function = 6;
    config.noise = 0.05;  // noise => deep tree, many node families
    config.seed = 81;
    train = GenerateAgrawal(config, 20000);
    limits.max_depth = 24;
    limits.stop_family_size = 50;
  }
};

GrowthFixture& Growth() {
  static GrowthFixture* fixture = new GrowthFixture();
  return *fixture;
}

// Verifies engine equivalence and writes the trajectory file exactly once
// per process run, regardless of which growth benchmarks the filter selects.
void VerifyAndRecordGrowth() {
  static const bool done = [] {
    GrowthFixture& fx = Growth();
    const DecisionTree rows =
        BuildTreeInMemoryRows(fx.schema, fx.train, *fx.selector, fx.limits);
    {
      const ColumnDataset data(fx.schema, fx.train);
      const DecisionTree columnar =
          BuildTreeColumnar(data, *fx.selector, fx.limits);
      if (SerializeTree(columnar) != SerializeTree(rows)) {
        FatalError("columnar growth engine diverges from the row builder");
      }
    }

    const char* env = std::getenv("BOAT_BENCH_GROWTH_JSON");
    bench::BenchJsonWriter writer(
        env != nullptr && env[0] != '\0' ? env : "BENCH_growth.json");
    const double n = static_cast<double>(fx.train.size());
    const auto time_passes = [&](auto&& fn) {
      constexpr int kPasses = 3;
      Stopwatch watch;
      for (int p = 0; p < kPasses; ++p) fn();
      return n * kPasses / watch.ElapsedSeconds();  // tuples per second
    };

    // Host record first: the CI growth-scaling assertion keys off
    // hardware_threads so it can skip (rather than fail) on boxes that
    // cannot exhibit intra-tree scaling.
    writer.Add("host",
               {{"hardware_threads",
                 static_cast<double>(std::thread::hardware_concurrency())}});

    const double row_rate = time_passes([&] {
      benchmark::DoNotOptimize(
          BuildTreeInMemoryRows(fx.schema, fx.train, *fx.selector, fx.limits)
              .num_nodes());
    });
    writer.Add("row_builder",
               {{"tuples_per_sec", row_rate},
                {"tree_nodes", static_cast<double>(rows.num_nodes())}});
    // The columnar pass includes materialization and the root sort — the
    // same end-to-end work BuildTreeInMemory does on the default engine.
    const double columnar_rate = time_passes([&] {
      const ColumnDataset data(fx.schema, fx.train);
      benchmark::DoNotOptimize(
          BuildTreeColumnar(data, *fx.selector, fx.limits).num_nodes());
    });
    writer.Add("columnar",
               {{"tuples_per_sec", columnar_rate},
                {"speedup_vs_rows", columnar_rate / row_rate}});
    // Intra-tree thread sweep: the same single-tree build at 1/2/4 worker
    // threads (parallel root sorts, frontier fan-out, blocked partitions).
    // Every thread count grows the byte-identical tree — enforced by
    // growth_parallel_equivalence_test — so speedup_vs_t1 is pure
    // scheduling gain; the CI bench-smoke job asserts columnar_t4 scales
    // when the host has the cores for it.
    double t1_rate = 0.0;
    for (const int threads : {1, 2, 4}) {
      GrowthLimits limits = fx.limits;
      limits.num_threads = threads;
      const double rate = time_passes([&] {
        const ColumnDataset data(fx.schema, fx.train, threads);
        benchmark::DoNotOptimize(
            BuildTreeColumnar(data, *fx.selector, limits).num_nodes());
      });
      if (threads == 1) t1_rate = rate;
      writer.Add("columnar_t" + std::to_string(threads),
                 {{"tuples_per_sec", rate},
                  {"threads", static_cast<double>(threads)},
                  {"speedup_vs_t1", rate / t1_rate}});
    }
    writer.Flush();
    return true;
  }();
  (void)done;
}

void BM_InMemBuild(benchmark::State& state) {
  VerifyAndRecordGrowth();
  GrowthFixture& fx = Growth();
  for (auto _ : state) {
    const ColumnDataset data(fx.schema, fx.train);
    benchmark::DoNotOptimize(
        BuildTreeColumnar(data, *fx.selector, fx.limits).num_nodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.train.size()));
}
BENCHMARK(BM_InMemBuild)->Unit(benchmark::kMillisecond);

void BM_InMemBuildRows(benchmark::State& state) {
  VerifyAndRecordGrowth();
  GrowthFixture& fx = Growth();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildTreeInMemoryRows(fx.schema, fx.train, *fx.selector, fx.limits)
            .num_nodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.train.size()));
}
BENCHMARK(BM_InMemBuildRows)->Unit(benchmark::kMillisecond);

void BM_TreeClassify(benchmark::State& state) {
  AgrawalConfig config;
  config.function = 7;
  config.noise = 0.05;
  auto data = GenerateAgrawal(config, 20000);
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), data, *selector);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Classify(data[i++ % data.size()]));
  }
}
BENCHMARK(BM_TreeClassify);

// ------------------------------------------------------ compiled inference
//
// Shared fixture: a deep, noisy-overfit tree (the worst case for pointer
// chasing) plus a fresh scoring batch. The first benchmark touching the
// fixture also (a) verifies that CompiledTree and the pointer walk agree on
// every tuple — aborting the process on divergence, which is what the CI
// bench-smoke job keys off — and (b) records a BENCH_inference.json
// trajectory comparing the two layouts (path overridable via
// BOAT_BENCH_JSON).

struct InferenceFixture {
  Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> train;
  std::vector<Tuple> batch;  // fresh records to score
  std::unique_ptr<SplitSelector> selector = MakeGiniSelector();
  std::unique_ptr<DecisionTree> tree;
  std::unique_ptr<CompiledTree> compiled;

  InferenceFixture() {
    AgrawalConfig config;
    config.function = 7;
    config.noise = 0.05;  // noise => deep overfit tree
    config.seed = 71;
    train = GenerateAgrawal(config, 20000);
    config.seed = 72;
    batch = GenerateAgrawal(config, 20000);
    tree = std::make_unique<DecisionTree>(
        BuildTreeInMemory(schema, train, *selector));
    compiled = std::make_unique<CompiledTree>(*tree);
  }
};

InferenceFixture& Inference() {
  static InferenceFixture* fixture = new InferenceFixture();
  return *fixture;
}

// Verifies equivalence and writes the trajectory file exactly once per
// process run, regardless of which inference benchmarks the filter selects.
void VerifyAndRecordInference() {
  static const bool done = [] {
    InferenceFixture& fx = Inference();
    for (const auto* data : {&fx.train, &fx.batch}) {
      const std::vector<int32_t> compiled = fx.compiled->Predict(*data, 1);
      for (size_t i = 0; i < data->size(); ++i) {
        if (compiled[i] != fx.tree->Classify((*data)[i])) {
          FatalError("CompiledTree diverges from DecisionTree::Classify");
        }
      }
    }

    const char* env = std::getenv("BOAT_BENCH_JSON");
    bench::BenchJsonWriter writer(
        env != nullptr && env[0] != '\0' ? env : "BENCH_inference.json");
    const double n = static_cast<double>(fx.batch.size());
    const auto time_passes = [&](auto&& fn) {
      constexpr int kPasses = 5;
      fn();  // untimed warmup: fault in pages, warm caches, spin up pools
      Stopwatch watch;
      for (int p = 0; p < kPasses; ++p) fn();
      return n * kPasses / watch.ElapsedSeconds();  // tuples per second
    };

    // Host record: the CI scaling assertion keys off hardware_threads so it
    // can skip (rather than fail) on boxes that cannot exhibit scaling.
    writer.Add("host",
               {{"hardware_threads",
                 static_cast<double>(std::thread::hardware_concurrency())},
                {"simd_available",
                 CompiledTree::SimdAvailable() ? 1.0 : 0.0}});

    std::vector<int32_t> out(fx.batch.size());
    const double pointer_walk = time_passes([&] {
      for (size_t i = 0; i < fx.batch.size(); ++i) {
        out[i] = fx.tree->Classify(fx.batch[i]);
      }
      benchmark::DoNotOptimize(out.data());
    });
    writer.Add("pointer_walk",
               {{"tuples_per_sec", pointer_walk},
                {"tree_nodes", static_cast<double>(fx.tree->num_nodes())},
                {"tree_depth", static_cast<double>(fx.tree->depth())}});
    for (const int threads : {1, 2, 4}) {
      const double rate = time_passes([&] {
        fx.compiled->Predict(fx.batch, out, threads);
        benchmark::DoNotOptimize(out.data());
      });
      writer.Add("compiled_batch_t" + std::to_string(threads),
                 {{"tuples_per_sec", rate},
                  {"threads", static_cast<double>(threads)},
                  {"speedup_vs_pointer_walk", rate / pointer_walk}});
    }
    // Per-kernel single-thread rates isolate the layout win (blocked
    // level-synchronous sweep) from the vector win (SIMD predicates).
    const auto kernel_rate = [&](PredictKernel kernel) {
      return time_passes([&] {
        fx.compiled->PredictWithKernel(fx.batch, out, 1, kernel);
        benchmark::DoNotOptimize(out.data());
      });
    };
    const double tuple_rate =
        kernel_rate(PredictKernel::kScalarTuple);
    writer.Add("kernel_scalar_tuple_t1", {{"tuples_per_sec", tuple_rate}});
    const double block_rate =
        kernel_rate(PredictKernel::kScalarBlock);
    writer.Add("kernel_scalar_block_t1",
               {{"tuples_per_sec", block_rate},
                {"speedup_vs_scalar_tuple", block_rate / tuple_rate}});
    if (CompiledTree::SimdAvailable()) {
      const double simd_rate = kernel_rate(PredictKernel::kSimd);
      writer.Add("kernel_simd_t1",
                 {{"tuples_per_sec", simd_rate},
                  {"speedup_vs_scalar_tuple", simd_rate / tuple_rate}});
    }
    writer.Flush();
    return true;
  }();
  (void)done;
}

void BM_ClassifyCompiled(benchmark::State& state) {
  VerifyAndRecordInference();
  InferenceFixture& fx = Inference();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.compiled->Classify(fx.batch[i++ % fx.batch.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyCompiled);

void BM_ClassifyBatchThreads(benchmark::State& state) {
  VerifyAndRecordInference();
  InferenceFixture& fx = Inference();
  const int threads = static_cast<int>(state.range(0));
  std::vector<int32_t> out(fx.batch.size());
  fx.compiled->Predict(fx.batch, out, threads);  // warmup: steady state only
  for (auto _ : state) {
    fx.compiled->Predict(fx.batch, out, threads);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.batch.size()));
}
BENCHMARK(BM_ClassifyBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace boat

BENCHMARK_MAIN();
