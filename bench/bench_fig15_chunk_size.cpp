// Figure 15: incremental update cost as a function of the arrival chunk
// size. The same total volume of new data (8 units of F1) is incorporated
// either in chunks of 1 unit or in chunks of 2 units; the paper reports the
// two cumulative-cost curves to be nearly identical (the update cost is
// linear in the volume of arriving data, not in the number of batches).

#include "bench_common.h"

namespace {

using namespace boat;
using namespace boat::bench;

// Returns cumulative seconds after each `report_every` tuples inserted.
std::vector<double> RunWithChunkSize(const PaperSetup& setup,
                                     int64_t chunk_tuples,
                                     int64_t total_tuples,
                                     int64_t report_every) {
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  AgrawalConfig config;
  config.function = 1;
  config.seed = 61;  // base data noiseless; arriving chunks carry 10% noise

  BoatOptions options = setup.Boat();
  options.enable_updates = true;
  std::vector<Tuple> base =
      GenerateAgrawal(config, static_cast<uint64_t>(2 * setup.scale));
  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  CheckOk(classifier.status());

  std::vector<double> cumulative;
  double elapsed = 0;
  int64_t inserted = 0;
  uint64_t seed = 6100;
  Stopwatch watch;
  while (inserted < total_tuples) {
    AgrawalConfig chunk_config = config;
    chunk_config.noise = 0.1;
    chunk_config.seed = seed++;
    std::vector<Tuple> chunk =
        GenerateAgrawal(chunk_config, static_cast<uint64_t>(chunk_tuples));
    watch.Restart();
    CheckOk((*classifier)->InsertChunk(chunk));
    elapsed += watch.ElapsedSeconds();
    inserted += chunk_tuples;
    if (inserted % report_every == 0) cumulative.push_back(elapsed);
  }
  return cumulative;
}

}  // namespace

int main() {
  const PaperSetup setup{ScaleFromEnv()};
  const int64_t unit = setup.scale;
  const int64_t total = 8 * unit;

  std::printf("Figure 15: cumulative update cost, 1-unit vs 2-unit chunks "
              "(unit = %lld tuples)\n\n", static_cast<long long>(unit));

  const std::vector<double> small =
      RunWithChunkSize(setup, unit, total, 2 * unit);
  const std::vector<double> large =
      RunWithChunkSize(setup, 2 * unit, total, 2 * unit);

  std::printf("%-18s | %18s | %18s\n", "inserted (units)", "chunks of 1 (s)",
              "chunks of 2 (s)");
  std::printf("-------------------+--------------------+------------------\n");
  for (size_t i = 0; i < small.size() && i < large.size(); ++i) {
    std::printf("%-18zu | %18.2f | %18.2f\n", (i + 1) * 2, small[i], large[i]);
  }
  return 0;
}
