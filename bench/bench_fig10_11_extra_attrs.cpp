// Figures 10-11: overall construction time when extra attributes with random
// values are appended to the records (0..6 extras) at a fixed database size
// of 5 paper-millions, for F1 and F6. The paper's finding: the extra
// attributes never become splitting attributes, and construction time grows
// roughly linearly with the number of attributes to process.

#include "bench_common.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  auto selector = MakeGiniSelector();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());
  const int64_t n = 5 * setup.scale;

  std::printf(
      "Figures 10-11: time vs extra random attributes at n = %lld tuples\n\n",
      static_cast<long long>(n));

  for (const int function : {1, 6}) {
    std::printf("=== Function %d (Figure %d) ===\n", function,
                function == 1 ? 10 : 11);
    PrintSeriesHeader("extra attrs");
    for (const int extras : {0, 2, 4, 6}) {
      const Schema schema = MakeAgrawalSchema(extras);
      const std::string table = temp->NewPath("fig1011");
      AgrawalConfig config;
      config.function = function;
      config.extra_numeric_attrs = extras;
      config.seed = 3000 + static_cast<uint64_t>(function * 10 + extras);
      CheckOk(GenerateAgrawalTable(config, static_cast<uint64_t>(n), table));

      const RunResult boat = RunBoat(table, schema, *selector, setup.Boat());
      const RunResult hybrid =
          RunRFHybrid(table, schema, *selector, setup.RFHybrid(n, extras));
      const RunResult vertical =
          RunRFVertical(table, schema, *selector, setup.RFVertical(n, extras));
      PrintSeriesRow(std::to_string(extras), boat, hybrid, vertical);
      std::remove(table.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
