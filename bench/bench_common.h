// Shared plumbing for the figure-reproduction benchmarks.
//
// The paper's experiments ran on a 200 MHz Pentium Pro with 2M-10M-tuple
// databases; we reproduce the *shape* of every figure at laptop scale. All
// benchmarks are parameterized by one scale unit, settable via the
// BOAT_BENCH_SCALE environment variable (default 40000 tuples): a paper "x
// million tuples" maps to x * SCALE tuples, and every other knob (sample
// size, bootstrap subsample, AVC buffer, in-memory threshold, stop
// threshold) is scaled by the same ratio as the paper's setup:
//
//   paper                       here
//   ---------------------------------------------------------
//   database 2M .. 10M          2*SCALE .. 10*SCALE
//   stop at family 1.5M         1.5*SCALE
//   BOAT sample 200k            0.2*SCALE
//   20 bootstraps of 50k        20 bootstraps of 0.05*SCALE
//   RF-Hybrid AVC buffer 3M     ~80% of the root AVC-group
//   RF-Vertical AVC buffer 1.8M ~48% of the root AVC-group
//
// The AVC buffers are scaled as fractions of the root AVC-group (computed
// from the Agrawal attribute domains) rather than of the tuple count: the
// paper's fixed 3M/1.8M-entry buffers correspond to roughly 75-90% / 45-55%
// of the root AVC-group across its 2M-10M range, and it is that fraction —
// not the absolute number — that determines deferral and attribute-group
// behaviour.
//
// Each benchmark prints the figure's series as an aligned table: the x axis,
// then per algorithm the wall-clock seconds and tuples scanned (a
// hardware-independent witness of the scan counts that drive the paper's
// results).

#ifndef BOAT_BENCH_BENCH_COMMON_H_
#define BOAT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "boat/builder.h"
#include "common/io_stats.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "rainforest/rainforest.h"

namespace boat::bench {

/// \brief Minimal writer for benchmark "trajectory" files: a JSON array of
/// {"name": ..., metric: value, ...} records that CI and plotting scripts
/// can scrape across commits without parsing human-formatted tables. Records
/// accumulate via Add() and are (re)written on every Flush() and at
/// destruction.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string path) : path_(std::move(path)) {}
  ~BenchJsonWriter() { Flush(); }

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  void Add(const std::string& name,
           const std::vector<std::pair<std::string, double>>& metrics) {
    std::string rec = "  {\"name\": \"" + name + "\"";
    for (const auto& [key, value] : metrics) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      rec += ", \"" + key + "\": " + buf;
    }
    rec += "}";
    records_.push_back(std::move(rec));
    dirty_ = true;
  }

  void Flush() {
    if (!dirty_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJsonWriter: cannot open %s\n", path_.c_str());
      return;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fputs(records_[i].c_str(), f);
      std::fputs(i + 1 < records_.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    std::fclose(f);
    dirty_ = false;
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<std::string> records_;
  bool dirty_ = false;
};

inline int64_t ScaleFromEnv() {
  const char* env = std::getenv("BOAT_BENCH_SCALE");
  if (env != nullptr && env[0] != '\0') {
    const int64_t v = std::strtoll(env, nullptr, 10);
    if (v > 0) return v;
  }
  return 40'000;
}

/// Measured outcome of one algorithm run.
struct RunResult {
  double seconds = 0;
  uint64_t tuples_read = 0;
  uint64_t bytes_read = 0;
  uint64_t scans = 0;
  size_t tree_nodes = 0;

  /// Modeled wall-clock on the paper's hardware era: measured CPU time plus
  /// the scan volume at a period disk bandwidth (our disks page-cache the
  /// tables, so measured time alone understates the scan costs that drive
  /// the paper's comparisons). Bandwidth configurable via
  /// BOAT_MODEL_DISK_MBPS (default 10 MB/s, a late-90s sequential disk).
  double ModeledSeconds() const {
    static const double mbps = [] {
      const char* env = std::getenv("BOAT_MODEL_DISK_MBPS");
      if (env != nullptr && env[0] != '\0') {
        const double v = std::strtod(env, nullptr);
        if (v > 0) return v;
      }
      return 10.0;
    }();
    return seconds + static_cast<double>(bytes_read) / (mbps * 1e6);
  }
};

/// Root AVC-group entry count for an Agrawal database of n tuples: per
/// numerical attribute min(n, domain size) x classes, plus the categorical
/// contingency tables.
inline int64_t AgrawalRootEntries(int64_t n, int extra_attrs = 0) {
  const int64_t domains[] = {130001, 65002, 61, 1350001, 30, 500001};
  int64_t entries = 0;
  for (const int64_t d : domains) entries += std::min(n, d) * 2;
  for (int i = 0; i < extra_attrs; ++i) entries += std::min<int64_t>(n, 10000) * 2;
  entries += (5 + 20 + 9) * 2;
  return entries;
}

/// The paper's parameterization, scaled.
struct PaperSetup {
  int64_t scale;  // tuples per paper-"million"

  GrowthLimits Limits() const {
    GrowthLimits limits;
    limits.stop_family_size = scale * 3 / 2;  // paper: stop at 1.5M tuples
    return limits;
  }
  BoatOptions Boat(uint64_t seed = 42) const {
    BoatOptions options;
    options.sample_size = static_cast<size_t>(scale / 5);  // paper: 200k
    options.bootstrap_count = 20;
    options.bootstrap_subsample = static_cast<size_t>(scale / 20);  // 50k
    options.inmem_threshold = scale * 3 / 2;
    options.limits = Limits();
    options.seed = seed;
    return options;
  }
  /// \param n database size; \param extra_attrs extra random attributes.
  RainForestOptions RFHybrid(int64_t n, int extra_attrs = 0) const {
    RainForestOptions options;
    // Paper: 3M entries ~ 80% of the root AVC-group.
    options.avc_buffer_entries =
        AgrawalRootEntries(n, extra_attrs) * 8 / 10;
    options.inmem_threshold = scale * 3 / 2;
    options.limits = Limits();
    return options;
  }
  RainForestOptions RFVertical(int64_t n, int extra_attrs = 0) const {
    RainForestOptions options;
    // Paper: 1.8M entries ~ 48% of the root AVC-group.
    options.avc_buffer_entries =
        AgrawalRootEntries(n, extra_attrs) * 48 / 100;
    options.inmem_threshold = scale * 3 / 2;
    options.limits = Limits();
    return options;
  }
};

template <typename Fn>
RunResult Measure(Fn&& build) {
  ResetIoStats();
  Stopwatch watch;
  DecisionTree tree = build();
  RunResult r;
  r.seconds = watch.ElapsedSeconds();
  const IoStats io = GetIoStats();
  r.tuples_read = io.tuples_read;
  r.bytes_read = io.bytes_read;
  r.scans = io.scans_started;
  r.tree_nodes = tree.num_nodes();
  return r;
}

inline RunResult RunBoat(const std::string& table, const Schema& schema,
                         const SplitSelector& selector,
                         const BoatOptions& options) {
  return Measure([&]() {
    auto source = TableScanSource::Open(table, schema);
    CheckOk(source.status());
    auto tree = BuildTreeBoat(source->get(), selector, options);
    CheckOk(tree.status());
    return std::move(tree).ValueOrDie();
  });
}

inline RunResult RunRFHybrid(const std::string& table, const Schema& schema,
                             const SplitSelector& selector,
                             const RainForestOptions& options) {
  return Measure([&]() {
    auto source = TableScanSource::Open(table, schema);
    CheckOk(source.status());
    auto tree = BuildTreeRFHybrid(source->get(), selector, options);
    CheckOk(tree.status());
    return std::move(tree).ValueOrDie();
  });
}

inline RunResult RunRFVertical(const std::string& table, const Schema& schema,
                               const SplitSelector& selector,
                               const RainForestOptions& options) {
  return Measure([&]() {
    auto source = TableScanSource::Open(table, schema);
    CheckOk(source.status());
    auto tree = BuildTreeRFVertical(source->get(), selector, options);
    CheckOk(tree.status());
    return std::move(tree).ValueOrDie();
  });
}

inline void PrintSeriesHeader(const char* x_label) {
  std::printf("%-12s | %8s %11s %9s | %8s %11s %9s | %8s %11s %9s\n", x_label,
              "BOAT(s)", "tuples", "model(s)", "RF-H(s)", "tuples", "model(s)",
              "RF-V(s)", "tuples", "model(s)");
  std::printf(
      "-------------+--------------------------------+----------------------"
      "----------+--------------------------------\n");
}

inline void PrintSeriesRow(const std::string& x, const RunResult& boat,
                           const RunResult& hybrid, const RunResult& vertical) {
  std::printf(
      "%-12s | %8.2f %11llu %9.2f | %8.2f %11llu %9.2f | %8.2f %11llu "
      "%9.2f\n",
      x.c_str(), boat.seconds,
      static_cast<unsigned long long>(boat.tuples_read), boat.ModeledSeconds(),
      hybrid.seconds, static_cast<unsigned long long>(hybrid.tuples_read),
      hybrid.ModeledSeconds(), vertical.seconds,
      static_cast<unsigned long long>(vertical.tuples_read),
      vertical.ModeledSeconds());
}

}  // namespace boat::bench

#endif  // BOAT_BENCH_BENCH_COMMON_H_
