// Serving throughput/latency benchmark (not a paper figure — this measures
// the src/serve/ subsystem added for production-style deployment).
//
// Grid: {1, 4} scoring threads x {1, 2048} max micro-batch, each driven by
// the in-process load generator over the same corpus with every reply
// label-checked. The batch=1 column is the no-batching baseline: one
// CompiledTree::Predict call and one worker wakeup per record. Micro-batching
// amortizes queue synchronization and reply flushes over hundreds of
// records, so the batch=2048 rows must show strictly higher throughput —
// that comparison is this benchmark's acceptance criterion, asserted by the
// serving-smoke CI job off BENCH_serving.json (path overridable via
// BOAT_BENCH_SERVING_JSON).
//
// Latency columns are client-observed (send to reply) under full pipelining,
// so they measure throughput-saturated queueing latency, not idle one-shot
// round trips.
//
// A second sweep serves a four-model fleet (three single trees plus one
// 5-member bagged bootstrap ensemble) from one server with wire v3 routed
// mixed traffic, every reply checked against its own model's offline labels.
// It writes BENCH_serving_fleet.json (BOAT_BENCH_SERVING_FLEET_JSON); the CI
// serving-smoke job asserts fleet throughput at 1 thread stays within 15% of
// the single-model serve_t1_b2048 row, i.e. fleet routing is near-free.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/fleet.h"
#include "serve/loadgen.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "tree/inmem_builder.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const int64_t scale = ScaleFromEnv();
  const int64_t corpus_size = std::max<int64_t>(scale / 8, 1000);

  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 7001;
  const Schema schema = MakeAgrawalSchema();
  const auto train = GenerateAgrawal(config, 4000);
  config.seed = 7002;
  const auto corpus =
      GenerateAgrawal(config, static_cast<uint64_t>(corpus_size));

  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, train, *selector);
  auto model = std::make_shared<const serve::ServableModel>(tree, "");

  const auto lines = serve::FormatRecordLines(schema, corpus);
  std::vector<int32_t> expected;
  expected.reserve(corpus.size());
  for (const Tuple& t : corpus) expected.push_back(model->compiled.Classify(t));

  const char* env = std::getenv("BOAT_BENCH_SERVING_JSON");
  BenchJsonWriter writer(env != nullptr && env[0] != '\0'
                             ? env
                             : "BENCH_serving.json");

  std::printf("Serving throughput (tree: %zu nodes, corpus %lld records, "
              "4 connections x 2 passes, all labels checked)\n\n",
              tree.num_nodes(), static_cast<long long>(corpus_size));
  std::printf("%8s %10s | %12s %10s %10s\n", "threads", "max_batch",
              "throughput", "p50(us)", "p99(us)");
  std::printf("--------------------+-----------------------------------\n");

  for (const int threads : {1, 4}) {
    for (const int max_batch : {1, 2048}) {
      serve::ModelRegistry registry;
      registry.Install(model);
      serve::ServerOptions options;
      options.scoring_threads = threads;
      options.max_batch = max_batch;
      // Large queue: this benchmark measures throughput, not admission
      // control, so BUSY replies would only pollute the label check.
      options.queue_capacity = 1 << 16;
      serve::BoatServer server(&registry, options);
      CheckOk(server.Start());

      serve::LoadGenOptions load;
      load.port = server.port();
      load.connections = 4;
      load.repeat = 2;
      auto report = serve::RunLoadGen(load, lines, &expected);
      CheckOk(report.status());
      if (std::getenv("BOAT_BENCH_SERVING_DEBUG") != nullptr) {
        std::fprintf(stderr, "t%d b%d stats: %s\n", threads, max_batch,
                     server.StatsJson().c_str());
      }
      server.Shutdown();
      if (report->ok != report->sent || report->mismatches != 0 ||
          report->errors != 0 || report->busy != 0) {
        std::fprintf(stderr,
                     "label check failed: sent %llu ok %llu mismatch %llu "
                     "busy %llu err %llu\n",
                     static_cast<unsigned long long>(report->sent),
                     static_cast<unsigned long long>(report->ok),
                     static_cast<unsigned long long>(report->mismatches),
                     static_cast<unsigned long long>(report->busy),
                     static_cast<unsigned long long>(report->errors));
        return 1;
      }

      std::printf("%8d %10d | %10.0f/s %10llu %10llu\n", threads, max_batch,
                  report->throughput_rps,
                  static_cast<unsigned long long>(report->latency_p50_us),
                  static_cast<unsigned long long>(report->latency_p99_us));
      char name[64];
      std::snprintf(name, sizeof(name), "serve_t%d_b%d", threads, max_batch);
      writer.Add(name, {
                           {"threads", static_cast<double>(threads)},
                           {"max_batch", static_cast<double>(max_batch)},
                           {"requests", static_cast<double>(report->sent)},
                           {"throughput_rps", report->throughput_rps},
                           {"p50_us",
                            static_cast<double>(report->latency_p50_us)},
                           {"p99_us",
                            static_cast<double>(report->latency_p99_us)},
                       });
    }
  }
  writer.Flush();

  // ------------------------------------------------------- fleet sweep
  // Three single-tree models plus one bagged ensemble behind one server,
  // driven with routed mixed traffic (round-robin across the four ids).
  auto selector2 = MakeGiniSelector();
  std::vector<std::shared_ptr<const serve::ServableModel>> fleet_models;
  for (const uint64_t seed : {7101, 7102, 7103}) {
    config.seed = seed;
    DecisionTree member =
        BuildTreeInMemory(schema, GenerateAgrawal(config, 4000), *selector2);
    fleet_models.push_back(
        std::make_shared<const serve::ServableModel>(member, ""));
  }
  std::vector<DecisionTree> bag;
  for (const uint64_t seed : {7201, 7202, 7203, 7204, 7205}) {
    config.seed = seed;
    bag.push_back(
        BuildTreeInMemory(schema, GenerateAgrawal(config, 1500), *selector2));
  }
  fleet_models.push_back(
      std::make_shared<const serve::ServableModel>(bag, ""));

  const std::vector<std::string> fleet_ids = {"m0", "m1", "m2", "bag"};
  std::vector<std::vector<int32_t>> fleet_expected(fleet_models.size());
  for (size_t m = 0; m < fleet_models.size(); ++m) {
    fleet_expected[m].reserve(corpus.size());
    for (const Tuple& t : corpus) {
      fleet_expected[m].push_back(fleet_models[m]->compiled.Classify(t));
    }
  }

  const char* fleet_env = std::getenv("BOAT_BENCH_SERVING_FLEET_JSON");
  BenchJsonWriter fleet_writer(fleet_env != nullptr && fleet_env[0] != '\0'
                                   ? fleet_env
                                   : "BENCH_serving_fleet.json");

  std::printf("\nFleet serving throughput (3 trees + 1 ensemble of %zu "
              "members, routed mixed traffic)\n\n",
              bag.size());
  std::printf("%8s %10s | %12s %10s %10s\n", "threads", "max_batch",
              "throughput", "p50(us)", "p99(us)");
  std::printf("--------------------+-----------------------------------\n");

  for (const int threads : {1, 4}) {
    const int max_batch = 2048;
    std::vector<serve::ModelRegistry> registries(fleet_models.size());
    serve::FleetRegistry fleet;
    for (size_t m = 0; m < fleet_models.size(); ++m) {
      registries[m].Install(fleet_models[m]);
      CheckOk(fleet.AddExternal(fleet_ids[m], &registries[m]));
    }
    serve::ServerOptions options;
    options.scoring_threads = threads;
    options.max_batch = max_batch;
    options.queue_capacity = 1 << 16;
    serve::BoatServer server(&fleet, options);
    CheckOk(server.Start());

    std::vector<serve::RoutedModelCorpus> routed(fleet_models.size());
    for (size_t m = 0; m < fleet_models.size(); ++m) {
      routed[m].model_id = fleet_ids[m];
      routed[m].record_lines = lines;
      routed[m].expected_labels = &fleet_expected[m];
    }
    serve::LoadGenOptions load;
    load.port = server.port();
    load.connections = 4;
    load.repeat = 2;
    auto report = serve::RunRoutedLoadGen(load, routed);
    CheckOk(report.status());
    server.Shutdown();
    if (report->ok != report->sent || report->mismatches != 0 ||
        report->errors != 0 || report->busy != 0) {
      std::fprintf(stderr,
                   "fleet label check failed: sent %llu ok %llu mismatch "
                   "%llu busy %llu err %llu\n",
                   static_cast<unsigned long long>(report->sent),
                   static_cast<unsigned long long>(report->ok),
                   static_cast<unsigned long long>(report->mismatches),
                   static_cast<unsigned long long>(report->busy),
                   static_cast<unsigned long long>(report->errors));
      return 1;
    }

    std::printf("%8d %10d | %10.0f/s %10llu %10llu\n", threads, max_batch,
                report->throughput_rps,
                static_cast<unsigned long long>(report->latency_p50_us),
                static_cast<unsigned long long>(report->latency_p99_us));
    char name[64];
    std::snprintf(name, sizeof(name), "serve_fleet_t%d_b%d", threads,
                  max_batch);
    fleet_writer.Add(name,
                     {
                         {"threads", static_cast<double>(threads)},
                         {"max_batch", static_cast<double>(max_batch)},
                         {"models", static_cast<double>(fleet_models.size())},
                         {"requests", static_cast<double>(report->sent)},
                         {"throughput_rps", report->throughput_rps},
                         {"p50_us",
                          static_cast<double>(report->latency_p50_us)},
                         {"p99_us",
                          static_cast<double>(report->latency_p99_us)},
                     });
  }
  fleet_writer.Flush();
  return 0;
}
