// Figure 12: instability of impurity-based split selection.
//
// The paper's scenario: a numerical attribute with values 0..80 where the
// impurity function has two near-equal minima, at values 20 and 60. Tiny
// perturbations of the training data (exactly what bootstrap resampling
// introduces) flip the global minimum between the two, so roughly half of
// the bootstrap trees split near 20 and half near 60, the confidence
// interval degenerates to (almost) the whole domain, and the subtrees below
// are incomparable — tree growth stops at the node (a bootstrap kill).
//
// This benchmark constructs exactly that distribution, reports the observed
// bootstrap split-point histogram, the resulting confidence-interval width,
// the kill rate, and the effect on BOAT's cleanup (tuples retained in the
// interval), contrasted with a well-separated control dataset.

#include <map>

#include "bench_common.h"
#include "boat/bootstrap_phase.h"
#include "storage/sampling.h"
#include "tree/inmem_builder.h"

namespace {

using namespace boat;

// Two-minima data: [0,20] mostly class A, (20,60] exactly balanced, (60,80]
// mostly class B. Splits at 20 and 60 give equal impurity by symmetry.
std::vector<Tuple> TwoMinimaData(int64_t n, Rng* rng) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(rng->UniformInt(0, 80));
    int32_t label;
    if (v <= 20) {
      label = rng->Bernoulli(0.9) ? 0 : 1;
    } else if (v <= 60) {
      label = static_cast<int32_t>(i % 2);  // exactly balanced
    } else {
      label = rng->Bernoulli(0.9) ? 1 : 0;
    }
    out.push_back(Tuple({v}, label));
  }
  return out;
}

// Control: a single sharp minimum at value 40.
std::vector<Tuple> OneMinimumData(int64_t n, Rng* rng) {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(rng->UniformInt(0, 80));
    const int32_t label = (v <= 40) == rng->Bernoulli(0.95) ? 0 : 1;
    out.push_back(Tuple({v}, label));
  }
  return out;
}

void Analyze(const char* name, const std::vector<Tuple>& data,
             const Schema& schema) {
  auto selector = MakeGiniSelector();
  Rng rng(99);

  // Bootstrap split-point histogram at the root.
  std::map<int, int> histogram;  // bucketed by 10
  const int kReps = 200;
  std::vector<DecisionTree> trees;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<Tuple> resample = SampleWithReplacement(data, 2000, &rng);
    GrowthLimits limits;
    limits.max_depth = 3;
    DecisionTree tree =
        BuildTreeInMemory(schema, std::move(resample), *selector, limits);
    if (!tree.root().is_leaf()) {
      ++histogram[static_cast<int>(tree.root().split->value) / 10 * 10];
    }
  }
  std::printf("%s\n  bootstrap root split points (200 resamples of 2000):\n",
              name);
  for (const auto& [bucket, count] : histogram) {
    std::printf("    [%2d,%2d): %4d  %s\n", bucket, bucket + 10, count,
                std::string(static_cast<size_t>(count) / 4, '#').c_str());
  }

  // What the sampling phase makes of it.
  VectorSource source(schema, data);
  SamplingPhaseOptions opts;
  opts.sample_size = 4000;
  opts.bootstrap_count = 20;
  opts.bootstrap_subsample = 2000;
  opts.frontier_threshold = static_cast<int64_t>(data.size()) / 20;
  Rng phase_rng(7);
  auto phase = RunSamplingPhase(&source, *selector, opts, &phase_rng);
  CheckOk(phase.status());
  if (phase->coarse_root->is_frontier()) {
    std::printf("  sampling phase: root KILLED by bootstrap disagreement "
                "(kills=%llu) — BOAT falls back to recursive processing\n\n",
                (unsigned long long)phase->bootstrap_kills);
  } else {
    const CoarseCriterion& crit = *phase->coarse_root->criterion;
    std::printf("  sampling phase: root interval [%.0f, %.0f] (width %.0f of "
                "domain 80), kills below root=%llu\n",
                crit.interval_lo, crit.interval_hi,
                crit.interval_hi - crit.interval_lo,
                (unsigned long long)phase->bootstrap_kills);
    // Fraction of the data that the cleanup scan would have to retain.
    int64_t retained = 0;
    for (const Tuple& t : data) {
      if (crit.InInterval(t.value(0))) ++retained;
    }
    std::printf("  cleanup would retain %.1f%% of all tuples inside the "
                "interval\n\n",
                100.0 * static_cast<double>(retained) /
                    static_cast<double>(data.size()));
  }
}

}  // namespace

int main() {
  using namespace boat::bench;
  const PaperSetup setup{ScaleFromEnv()};
  const int64_t n = 2 * setup.scale;
  Schema schema({Attribute::Numerical("x")}, 2);

  std::printf("Figure 12: instability of impurity-based split selection "
              "(n = %lld)\n\n", static_cast<long long>(n));
  Rng rng(1);
  Analyze("two near-equal impurity minima (paper's Figure 12 scenario):",
          TwoMinimaData(n, &rng), schema);
  Analyze("control: one sharp minimum:", OneMinimumData(n, &rng), schema);
  return 0;
}
