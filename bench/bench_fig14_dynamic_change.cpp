// Figure 14: maintenance cost when the underlying distribution CHANGES.
// Arriving chunks are drawn from a drifted version of F1 (the class label is
// inverted in the age >= 60 subspace), so the coarse criteria in the
// affected part of the tree fail verification and exactly those subtrees
// are rebuilt. The paper reports the incremental algorithm still
// outperforming repeated rebuilds by about 2x.

#include "bench_common.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());

  AgrawalConfig base_config;
  base_config.function = 1;
  base_config.noise = 0.1;
  base_config.seed = 51;
  const int64_t chunk_tuples = 2 * setup.scale;

  BoatOptions options = setup.Boat();
  options.enable_updates = true;
  std::vector<Tuple> first = GenerateAgrawal(base_config, chunk_tuples);
  VectorSource source(schema, first);
  ResetIoStats();
  Stopwatch watch;
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  CheckOk(classifier.status());
  double incremental_cumulative = watch.ElapsedSeconds();
  uint64_t incremental_bytes = GetIoStats().bytes_read;
  auto modeled = [](double seconds, uint64_t bytes) {
    RunResult r;
    r.seconds = seconds;
    r.bytes_read = bytes;
    return r.ModeledSeconds();
  };

  std::printf("Figure 14: dynamic maintenance under distribution change "
              "(drifted chunks of %lld tuples)\n\n",
              static_cast<long long>(chunk_tuples));
  std::printf("%-10s | %9s %9s | %9s %9s | %16s\n", "total", "incr(s)",
              "model", "rebuild", "model", "subtrees rebuilt");
  std::printf("-----------+---------------------+---------------------+------"
              "------------\n");

  double rebuild_cumulative = 0;
  uint64_t rebuild_bytes = 0;
  // From chunk 2 on, the arriving data is drifted: the mix of old and new
  // data shifts the distribution more with every chunk.
  for (int chunk = 2; chunk <= 5; ++chunk) {
    AgrawalConfig chunk_config = base_config;
    chunk_config.seed = 51 + static_cast<uint64_t>(chunk);
    chunk_config.drift = Drift::kRelabelOldAge;
    std::vector<Tuple> arriving = GenerateAgrawal(chunk_config, chunk_tuples);

    BoatStats stats;
    ResetIoStats();
    watch.Restart();
    CheckOk((*classifier)->InsertChunk(arriving, &stats));
    incremental_cumulative += watch.ElapsedSeconds();
    incremental_bytes += GetIoStats().bytes_read;

    // Rebuild comparison on the same accumulated mixture: 1 clean chunk +
    // (chunk-1) drifted chunks.
    const std::string table = temp->NewPath("fig14");
    {
      auto writer = TableWriter::Create(table, schema);
      CheckOk(writer.status());
      AgrawalConfig mix = base_config;
      mix.seed = 910;
      for (const Tuple& t :
           GenerateAgrawal(mix, static_cast<uint64_t>(chunk_tuples))) {
        CheckOk((*writer)->Append(t));
      }
      for (int i = 2; i <= chunk; ++i) {
        AgrawalConfig drifted = base_config;
        drifted.seed = 910 + static_cast<uint64_t>(i);
        drifted.drift = Drift::kRelabelOldAge;
        for (const Tuple& t :
             GenerateAgrawal(drifted, static_cast<uint64_t>(chunk_tuples))) {
          CheckOk((*writer)->Append(t));
        }
      }
      CheckOk((*writer)->Finish());
    }
    const RunResult rb = RunBoat(table, schema, *selector, setup.Boat());
    rebuild_cumulative += rb.seconds;
    rebuild_bytes += rb.bytes_read;
    std::remove(table.c_str());

    std::printf("%-10d | %9.2f %9.2f | %9.2f %9.2f | %16llu\n", 2 * chunk,
                incremental_cumulative,
                modeled(incremental_cumulative, incremental_bytes),
                rebuild_cumulative,
                modeled(rebuild_cumulative, rebuild_bytes),
                (unsigned long long)stats.subtree_rebuilds);
  }
  return 0;
}
