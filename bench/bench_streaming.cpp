// Streaming ingestion benchmark (not a paper figure — this measures the
// INGEST→incremental-retrain→hot-swap pipeline added for production-style
// deployment).
//
// Scenario: a daemon-shaped stack (ModelRegistry + Trainer + BoatServer on
// a loopback socket) serves a fixed probe corpus while a second client
// streams concept-drifting chunks (F1-labeled records into an F6-trained
// base) through the wire protocol, with a RETRAIN barrier per chunk. The
// table reports, per chunk size: chunk apply+swap latency through the full
// TCP round trip, and the scoring throughput sustained *while* retraining
// ran. Every scoring reply must be a label (no ERR/BUSY/drop) — the
// zero-dropped-requests guarantee, asserted here and by the streaming-smoke
// CI job off BENCH_streaming.json (path overridable via
// BOAT_BENCH_STREAMING_JSON).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "boat/session.h"
#include "serve/loadgen.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/trainer.h"
#include "serve/wire.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const int64_t scale = ScaleFromEnv();
  const int64_t base_size = std::max<int64_t>(scale / 4, 4000);

  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 8001;
  const Schema schema = MakeAgrawalSchema();
  auto base = GenerateAgrawal(config, static_cast<uint64_t>(base_size));
  config.seed = 8002;
  const auto probe = GenerateAgrawal(config, 2000);
  const auto probe_lines = serve::FormatRecordLines(schema, probe);

  auto temp = TempFileManager::Create();
  if (!temp.ok()) {
    std::fprintf(stderr, "temp dir: %s\n", temp.status().ToString().c_str());
    return 1;
  }
  const std::string dir = temp->NewPath("model");
  {
    SessionOptions options;
    options.boat.sample_size =
        static_cast<size_t>(std::max<int64_t>(base_size / 10, 1));
    options.boat.bootstrap_count = 20;
    options.boat.bootstrap_subsample =
        std::max<size_t>(options.boat.sample_size / 4, 1);
    options.boat.inmem_threshold = base_size / 20 + 1;
    options.boat.seed = 1234;
    VectorSource source(schema, base);
    auto session = Session::Train(&source, dir, options);
    if (!session.ok()) {
      std::fprintf(stderr, "train: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
  }

  const char* env = std::getenv("BOAT_BENCH_STREAMING_JSON");
  BenchJsonWriter writer(env != nullptr && env[0] != '\0'
                             ? env
                             : "BENCH_streaming.json");

  // Retrain thread-delta: the same ingest→apply→swap path on pristine
  // copies of the base model, once with a single growth thread and once
  // with every hardware core (TrainerOptions::num_threads = 0, what boatd
  // defaults --train-threads to). The resulting models are byte-identical
  // (growth_parallel_equivalence_test); the record isolates how much of a
  // RETRAIN's latency the intra-tree parallel growth path recovers. On a
  // single-core host the two legs tie and speedup_vs_t1 ~ 1.
  {
    namespace fs = std::filesystem;
    config.function = 1;
    config.seed = 8800;
    const auto chunk = GenerateAgrawal(config, 8000);
    double t1_seconds = 0.0;
    for (const int threads : {1, 0}) {
      const std::string copy =
          temp->NewPath(threads == 1 ? "retrain-t1" : "retrain-tN");
      std::error_code ec;
      fs::copy(dir, copy, fs::copy_options::recursive, ec);
      if (ec) {
        std::fprintf(stderr, "model copy failed: %s\n",
                     ec.message().c_str());
        return 1;
      }
      serve::ModelRegistry registry;
      serve::TrainerOptions trainer_options;
      trainer_options.model_dir = copy;
      trainer_options.num_threads = threads;
      serve::Trainer trainer(&registry, trainer_options);
      if (!trainer.Start().ok()) {
        std::fprintf(stderr, "retrain-delta trainer start failed\n");
        return 1;
      }
      Stopwatch watch;
      if (!trainer.TrySubmit(ChunkOp::kInsert, chunk).has_value() ||
          !trainer.Flush().ok()) {
        std::fprintf(stderr, "retrain-delta apply failed\n");
        return 1;
      }
      const double seconds = watch.ElapsedSeconds();
      trainer.Shutdown();
      if (threads == 1) {
        t1_seconds = seconds;
        writer.Add("streaming/retrain_t1",
                   {{"ingest_swap_seconds", seconds}});
      } else {
        writer.Add("streaming/retrain_all_cores",
                   {{"ingest_swap_seconds", seconds},
                    {"threads",
                     static_cast<double>(
                         std::thread::hardware_concurrency())},
                    {"speedup_vs_t1", t1_seconds / seconds}});
      }
    }
  }

  std::printf("Streaming ingestion under load (base %lld records, probe "
              "%zu records x 4 connections, all replies checked)\n\n",
              static_cast<long long>(base_size), probe.size());
  std::printf("%12s | %14s %14s %12s\n", "chunk_size", "ingest+swap(s)",
              "serve(req/s)", "dropped");
  std::printf("-------------+------------------------------------------\n");

  bool ok = true;
  for (const int64_t chunk_size : {500, 2000, 8000}) {
    serve::ModelRegistry registry;
    serve::TrainerOptions trainer_options;
    trainer_options.model_dir = dir;
    serve::Trainer trainer(&registry, trainer_options);
    if (!trainer.Start().ok()) {
      std::fprintf(stderr, "trainer start failed\n");
      return 1;
    }
    serve::ServerOptions server_options;
    server_options.queue_capacity = 1 << 16;
    server_options.max_chunk_records = 1 << 20;
    serve::BoatServer server(&registry, server_options, &trainer);
    if (!server.Start().ok()) {
      std::fprintf(stderr, "server start failed\n");
      return 1;
    }

    config.function = 1;  // concept drift
    config.seed = 9000 + static_cast<uint64_t>(chunk_size);
    const auto chunk =
        GenerateAgrawal(config, static_cast<uint64_t>(chunk_size));
    const auto chunk_lines = serve::FormatLabeledRecordLines(schema, chunk);

    serve::LoadGenOptions load;
    load.port = server.port();
    load.connections = 4;
    load.repeat = 4;
    load.window = 128;
    Result<serve::LoadGenReport> report =
        Status::Internal("loadgen never ran");
    std::thread scorer(
        [&] { report = RunLoadGen(load, probe_lines, nullptr); });

    Stopwatch watch;
    auto replies = serve::SendChunk(server.port(), ChunkOp::kInsert,
                                    chunk_lines, /*retrain=*/true);
    const double ingest_seconds = watch.ElapsedSeconds();
    scorer.join();
    server.Shutdown();
    trainer.Shutdown();

    if (!replies.ok() || !report.ok()) {
      std::fprintf(stderr, "chunk %lld failed: %s / %s\n",
                   static_cast<long long>(chunk_size),
                   replies.status().ToString().c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    const uint64_t dropped =
        report->sent - report->ok;  // ERR + BUSY + mismatches
    for (const serve::Reply& reply : *replies) {
      if (reply.kind != serve::Reply::Kind::kOk) ok = false;
    }
    if (dropped != 0) ok = false;

    std::printf("%12lld | %14.3f %14.0f %12llu\n",
                static_cast<long long>(chunk_size), ingest_seconds,
                report->throughput_rps,
                static_cast<unsigned long long>(dropped));
    writer.Add("streaming/chunk_" + std::to_string(chunk_size),
               {{"ingest_seconds", ingest_seconds},
                {"serve_rps", report->throughput_rps},
                {"sent", static_cast<double>(report->sent)},
                {"dropped", static_cast<double>(dropped)}});
  }

  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: a chunk was rejected or a request was dropped\n");
    return 1;
  }
  return 0;
}
