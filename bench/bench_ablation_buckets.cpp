// Ablation: the discretization budget (buckets per numerical attribute per
// node). Too few buckets make the Lemma 3.1 lower bounds crude, triggering
// spurious coarse-criterion failures and costly rebuild scans — exactly the
// trade-off Section 3.4 discusses. Too many buckets only cost memory.

#include "bench_common.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());

  const int64_t n = 5 * setup.scale;
  const std::string table = temp->NewPath("ablation-k");
  AgrawalConfig config;
  // F2 splits on salary inside age strata: the salary landscape at those
  // nodes is where bound tightness matters.
  config.function = 2;
  config.noise = 0.02;
  config.seed = 5002;
  CheckOk(GenerateAgrawalTable(config, static_cast<uint64_t>(n), table));

  const int kSeeds = 3;
  std::printf("Ablation: discretization bucket budget (F2, n = %lld, "
              "averages over %d seeds)\n\n",
              static_cast<long long>(n), kSeeds);
  std::printf("%12s | %7s %9s %13s | %8s\n", "max buckets", "failed",
              "rebuilds", "extra scans", "time(s)");
  std::printf("-------------+---------------------------------+---------\n");

  for (const int buckets : {4, 8, 16, 32, 64, 128, 256}) {
    double failed = 0, rebuilds = 0, scans = 0, seconds = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      BoatOptions options = setup.Boat(2000 + static_cast<uint64_t>(seed));
      options.max_buckets_per_attr = buckets;
      auto source = TableScanSource::Open(table, schema);
      CheckOk(source.status());
      BoatStats stats;
      Stopwatch watch;
      auto tree = BuildTreeBoat(source->get(), *selector, options, &stats);
      CheckOk(tree.status());
      seconds += watch.ElapsedSeconds();
      failed += static_cast<double>(stats.failed_checks);
      rebuilds += static_cast<double>(stats.subtree_rebuilds);
      scans += static_cast<double>(stats.rebuild_scans);
    }
    std::printf("%12d | %7.1f %9.1f %13.1f | %8.2f\n", buckets,
                failed / kSeeds, rebuilds / kSeeds, scans / kSeeds,
                seconds / kSeeds);
  }
  std::remove(table.c_str());
  return 0;
}
