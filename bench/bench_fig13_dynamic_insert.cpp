// Figure 13: maintenance cost in a dynamic environment whose underlying
// distribution does NOT change. The base tree is built on Function 1 data;
// chunks of 2 units from the same distribution — but with the noise level
// set to 10%, as in the paper — arrive and BOAT incorporates each chunk
// incrementally. The comparison lines rebuild the tree from scratch on the
// accumulated data with BOAT, RF-Hybrid and RF-Vertical (the paper's very
// conservative comparison, which even assumed the original dataset had size
// zero).
//
// Expected shape: the incremental line grows with a small slope (cost per
// chunk bounded by the chunk and the affected stores, not by the
// accumulated database); the rebuild lines grow quadratically in the number
// of chunks. Modeled columns charge scan volume at a period disk bandwidth
// (see bench_common.h).

#include "bench_common.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());

  AgrawalConfig base_config;
  base_config.function = 1;
  base_config.seed = 41;
  const int64_t chunk_tuples = 2 * setup.scale;

  // Incremental: train on the first (noiseless) chunk, then insert noisy
  // chunks.
  BoatOptions options = setup.Boat();
  options.enable_updates = true;
  std::vector<Tuple> first = GenerateAgrawal(base_config, chunk_tuples);
  VectorSource source(schema, first);
  ResetIoStats();
  Stopwatch watch;
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  CheckOk(classifier.status());
  double incr_seconds = watch.ElapsedSeconds();
  uint64_t incr_bytes = GetIoStats().bytes_read;

  auto modeled = [](double seconds, uint64_t bytes) {
    RunResult r;
    r.seconds = seconds;
    r.bytes_read = bytes;
    return r.ModeledSeconds();
  };

  std::printf("Figure 13: dynamic maintenance, unchanged distribution "
              "(chunks of %lld tuples, 10%% noise)\n\n",
              static_cast<long long>(chunk_tuples));
  std::printf("%-9s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "total",
              "incr(s)", "model", "BOAT-rb", "model", "RF-H-rb", "model",
              "RF-V-rb", "model");
  std::printf("----------+---------------------+---------------------+------"
              "---------------+---------------------\n");

  struct Cumulative {
    double seconds = 0;
    uint64_t bytes = 0;
  };
  Cumulative rb_boat, rb_hybrid, rb_vertical;
  for (int chunk = 2; chunk <= 5; ++chunk) {
    AgrawalConfig chunk_config = base_config;
    chunk_config.noise = 0.1;
    chunk_config.seed = 41 + static_cast<uint64_t>(chunk);
    std::vector<Tuple> arriving = GenerateAgrawal(chunk_config, chunk_tuples);

    ResetIoStats();
    watch.Restart();
    CheckOk((*classifier)->InsertChunk(arriving));
    incr_seconds += watch.ElapsedSeconds();
    incr_bytes += GetIoStats().bytes_read;

    // Rebuild comparison: construct from scratch on the accumulated size
    // (1 clean chunk + (chunk-1) noisy ones).
    const std::string table = temp->NewPath("fig13");
    {
      auto writer = TableWriter::Create(table, schema);
      CheckOk(writer.status());
      AgrawalConfig mix = base_config;
      mix.seed = 900;
      for (const Tuple& t :
           GenerateAgrawal(mix, static_cast<uint64_t>(chunk_tuples))) {
        CheckOk((*writer)->Append(t));
      }
      for (int i = 2; i <= chunk; ++i) {
        AgrawalConfig noisy = base_config;
        noisy.noise = 0.1;
        noisy.seed = 900 + static_cast<uint64_t>(i);
        for (const Tuple& t :
             GenerateAgrawal(noisy, static_cast<uint64_t>(chunk_tuples))) {
          CheckOk((*writer)->Append(t));
        }
      }
      CheckOk((*writer)->Finish());
    }
    const int64_t total = chunk * chunk_tuples;
    RunResult r = RunBoat(table, schema, *selector, setup.Boat());
    rb_boat.seconds += r.seconds;
    rb_boat.bytes += r.bytes_read;
    r = RunRFHybrid(table, schema, *selector, setup.RFHybrid(total));
    rb_hybrid.seconds += r.seconds;
    rb_hybrid.bytes += r.bytes_read;
    r = RunRFVertical(table, schema, *selector, setup.RFVertical(total));
    rb_vertical.seconds += r.seconds;
    rb_vertical.bytes += r.bytes_read;
    std::remove(table.c_str());

    std::printf(
        "%-9d | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f\n",
        2 * chunk, incr_seconds, modeled(incr_seconds, incr_bytes),
        rb_boat.seconds, modeled(rb_boat.seconds, rb_boat.bytes),
        rb_hybrid.seconds, modeled(rb_hybrid.seconds, rb_hybrid.bytes),
        rb_vertical.seconds, modeled(rb_vertical.seconds, rb_vertical.bytes));
  }
  return 0;
}
