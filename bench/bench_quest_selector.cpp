// Section 5 (text): BOAT instantiated with a non-impurity-based split
// selection method. We use the QUEST-style selector (unbiased attribute
// selection by statistical tests); BOAT verifies the coarse criteria against
// exactly-streamed moments instead of Lemma 3.1 bounds. The benchmark
// reports construction time against RF-Hybrid/RF-Vertical under the same
// selector and verifies the identical-tree guarantee.

#include "bench_common.h"
#include "split/quest.h"
#include "tree/inmem_builder.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  const Schema schema = MakeAgrawalSchema();
  QuestSelector selector;
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());

  std::printf("Non-impurity split selection (QUEST-style), time vs database "
              "size\n\n");
  PrintSeriesHeader("n (millions)");
  bool all_identical = true;
  for (const int millions : {2, 4, 6, 8, 10}) {
    const int64_t n = millions * setup.scale;
    const std::string table = temp->NewPath("quest");
    AgrawalConfig config;
    config.function = 6;
    config.noise = 0.05;
    config.seed = 4000 + static_cast<uint64_t>(millions);
    CheckOk(GenerateAgrawalTable(config, static_cast<uint64_t>(n), table));

    const RunResult boat = RunBoat(table, schema, selector, setup.Boat());
    const RunResult hybrid =
        RunRFHybrid(table, schema, selector, setup.RFHybrid(n));
    const RunResult vertical =
        RunRFVertical(table, schema, selector, setup.RFVertical(n));
    PrintSeriesRow(std::to_string(millions), boat, hybrid, vertical);

    // Spot-check the guarantee on the smallest size.
    if (millions == 2) {
      auto data = ReadTable(table, schema);
      CheckOk(data.status());
      DecisionTree reference = BuildTreeInMemory(schema, std::move(*data),
                                                 selector, setup.Limits());
      auto source = TableScanSource::Open(table, schema);
      CheckOk(source.status());
      auto boat_tree = BuildTreeBoat(source->get(), selector, setup.Boat());
      CheckOk(boat_tree.status());
      all_identical = boat_tree->StructurallyEqual(reference);
    }
    std::remove(table.c_str());
  }
  std::printf("\nidentical-tree check vs in-memory reference: %s\n",
              all_identical ? "PASS" : "FAIL");
  return 0;
}
