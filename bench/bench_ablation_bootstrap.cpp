// Ablation: how the bootstrap parameters (number of repetitions b, subsample
// size) shape BOAT's behaviour. More repetitions mean stricter agreement
// (each extra tree is another chance to disagree => more kills) but wider,
// safer confidence intervals from the surviving nodes; larger subsamples
// stabilize each tree. Averaged over several seeds; reported per
// configuration: coarse-tree size, sampling-phase kills, verification
// failures, in-interval retention, and total construction time.

#include "bench_common.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());

  const int64_t n = 5 * setup.scale;
  const std::string table = temp->NewPath("ablation-b");
  AgrawalConfig config;
  config.function = 7;  // smooth linear concept: agreement is attainable
  config.noise = 0.05;
  config.seed = 5001;
  CheckOk(GenerateAgrawalTable(config, static_cast<uint64_t>(n), table));

  const int kSeeds = 3;
  std::printf("Ablation: bootstrap parameters (F7, 5%% noise, n = %lld, "
              "averages over %d seeds)\n\n",
              static_cast<long long>(n), kSeeds);
  std::printf("%4s %10s | %8s %7s %7s %10s | %8s\n", "b", "subsample",
              "coarse", "kills", "failed", "retained", "time(s)");
  std::printf("----------------+---------------------------------------+"
              "---------\n");

  for (const int b : {5, 10, 20, 40}) {
    for (const int64_t subsample :
         {setup.scale / 40, setup.scale / 20, setup.scale / 10}) {
      double coarse = 0, kills = 0, failed = 0, retained = 0, seconds = 0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        BoatOptions options = setup.Boat(1000 + static_cast<uint64_t>(seed));
        options.bootstrap_count = b;
        options.bootstrap_subsample = static_cast<size_t>(subsample);

        auto source = TableScanSource::Open(table, schema);
        CheckOk(source.status());
        BoatStats stats;
        Stopwatch watch;
        auto tree = BuildTreeBoat(source->get(), *selector, options, &stats);
        CheckOk(tree.status());
        seconds += watch.ElapsedSeconds();
        coarse += static_cast<double>(stats.coarse_nodes);
        kills += static_cast<double>(stats.bootstrap_kills);
        failed += static_cast<double>(stats.failed_checks);
        retained += static_cast<double>(stats.retained_tuples);
      }
      std::printf("%4d %10lld | %8.1f %7.1f %7.1f %10.0f | %8.2f\n", b,
                  static_cast<long long>(subsample), coarse / kSeeds,
                  kills / kSeeds, failed / kSeeds, retained / kSeeds,
                  seconds / kSeeds);
    }
  }
  std::remove(table.c_str());
  return 0;
}
