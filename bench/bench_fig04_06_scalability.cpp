// Figures 4-6: overall construction time versus training-database size for
// classification functions F1, F6 and F7, comparing BOAT against RF-Hybrid
// and RF-Vertical with the paper's parameterization (scaled; see
// bench_common.h). The paper reports BOAT ~3x faster than the RainForest
// algorithms on F1/F6 and ~2x on F7, with the gap growing in database size.

#include "bench_common.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());

  std::printf("Figures 4-6: overall time vs database size "
              "(scale unit = %lld tuples per paper-million)\n\n",
              static_cast<long long>(setup.scale));

  for (const int function : {1, 6, 7}) {
    std::printf("=== Function %d (Figure %d) ===\n", function,
                function == 1 ? 4 : (function == 6 ? 5 : 6));
    PrintSeriesHeader("n (millions)");
    for (const int millions : {2, 4, 6, 8, 10}) {
      const int64_t n = millions * setup.scale;
      const std::string table = temp->NewPath("fig456");
      AgrawalConfig config;
      config.function = function;
      config.seed = 1000 + static_cast<uint64_t>(function * 10 + millions);
      CheckOk(GenerateAgrawalTable(config, static_cast<uint64_t>(n), table));

      const RunResult boat =
          RunBoat(table, schema, *selector, setup.Boat());
      const RunResult hybrid =
          RunRFHybrid(table, schema, *selector, setup.RFHybrid(n));
      const RunResult vertical =
          RunRFVertical(table, schema, *selector, setup.RFVertical(n));
      PrintSeriesRow(std::to_string(millions), boat, hybrid, vertical);
      std::remove(table.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
