// Cross-validation speedup (Section 2.1: "our techniques can be used to
// speed up cross-validation for large training datasets as well").
//
// Compares k-fold cross-validation done three ways:
//   * BOAT shared-scan CV  — 3 physical scans total (this library's
//     BoatCrossValidate);
//   * k independent BOAT builds  — 2k build scans + k evaluation scans;
//   * k independent RF-Hybrid builds — k * levels scans + k evaluations.
// All three produce identical fold trees (same split selection pipeline).

#include "bench_common.h"
#include "boat/crossval.h"
#include "tree/evaluation.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());

  const int64_t n = 5 * setup.scale;
  const std::string table = temp->NewPath("cv");
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 6001;
  CheckOk(GenerateAgrawalTable(config, static_cast<uint64_t>(n), table));

  std::printf("Cross-validation speedup (F6, n = %lld)\n\n",
              static_cast<long long>(n));
  std::printf("%6s | %9s %11s %9s | %9s %11s %9s | %9s %11s %9s\n", "folds",
              "CV(s)", "tuples", "model(s)", "kxBOAT(s)", "tuples",
              "model(s)", "kxRF-H(s)", "tuples", "model(s)");
  std::printf("-------+---------------------------------+------------------"
              "---------------+---------------------------------\n");

  for (const int folds : {3, 5, 10}) {
    // Shared-scan CV.
    RunResult shared;
    {
      auto source = TableScanSource::Open(table, schema);
      CheckOk(source.status());
      ResetIoStats();
      Stopwatch watch;
      auto cv = BoatCrossValidate(source->get(), folds, *selector,
                                  setup.Boat());
      CheckOk(cv.status());
      shared.seconds = watch.ElapsedSeconds();
      const IoStats io = GetIoStats();
      shared.tuples_read = io.tuples_read;
      shared.bytes_read = io.bytes_read;
    }

    // k independent builds + evaluations, BOAT and RF-Hybrid.
    auto independent = [&](auto&& build_one) {
      RunResult r;
      ResetIoStats();
      Stopwatch watch;
      const uint64_t fold_seed = setup.Boat().seed * 1000003 + 17;
      for (int f = 0; f < folds; ++f) {
        auto source = TableScanSource::Open(table, schema);
        CheckOk(source.status());
        FilterSource complement(
            std::move(source).ValueOrDie(), [&, f](const Tuple& t) {
              return CrossValidationFold(t, folds, fold_seed) != f;
            });
        DecisionTree tree = build_one(&complement);
        // Evaluation scan over the held-out fold.
        auto eval_source = TableScanSource::Open(table, schema);
        CheckOk(eval_source.status());
        Tuple t;
        int64_t dummy = 0;
        while ((*eval_source)->Next(&t)) {
          if (CrossValidationFold(t, folds, fold_seed) == f) {
            dummy += tree.Classify(t);
          }
        }
        if (dummy == -1) std::printf("impossible\n");
      }
      r.seconds = watch.ElapsedSeconds();
      const IoStats io = GetIoStats();
      r.tuples_read = io.tuples_read;
      r.bytes_read = io.bytes_read;
      return r;
    };

    const RunResult independent_boat = independent([&](TupleSource* src) {
      auto tree = BuildTreeBoat(src, *selector, setup.Boat());
      CheckOk(tree.status());
      return std::move(tree).ValueOrDie();
    });
    const RunResult independent_rf = independent([&](TupleSource* src) {
      auto tree = BuildTreeRFHybrid(src, *selector, setup.RFHybrid(n));
      CheckOk(tree.status());
      return std::move(tree).ValueOrDie();
    });

    std::printf(
        "%6d | %9.2f %11llu %9.2f | %9.2f %11llu %9.2f | %9.2f %11llu "
        "%9.2f\n",
        folds, shared.seconds,
        static_cast<unsigned long long>(shared.tuples_read),
        shared.ModeledSeconds(), independent_boat.seconds,
        static_cast<unsigned long long>(independent_boat.tuples_read),
        independent_boat.ModeledSeconds(), independent_rf.seconds,
        static_cast<unsigned long long>(independent_rf.tuples_read),
        independent_rf.ModeledSeconds());
  }
  return 0;
}
