// Figures 7-9: overall construction time versus the level of label noise
// (2%..10%) at a fixed database size of 5 paper-millions, for F1, F6 and F7.
// The paper's finding: BOAT's running time does not depend on the noise
// level (noise mainly affects the lower tree levels, which are below the
// stop threshold).

#include "bench_common.h"

int main() {
  using namespace boat;
  using namespace boat::bench;

  const PaperSetup setup{ScaleFromEnv()};
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());
  const int64_t n = 5 * setup.scale;

  std::printf("Figures 7-9: time vs noise at n = 5 units (%lld tuples)\n\n",
              static_cast<long long>(n));

  for (const int function : {1, 6, 7}) {
    std::printf("=== Function %d (Figure %d) ===\n", function,
                function == 1 ? 7 : (function == 6 ? 8 : 9));
    PrintSeriesHeader("noise (%)");
    for (const int noise_pct : {2, 4, 6, 8, 10}) {
      const std::string table = temp->NewPath("fig789");
      AgrawalConfig config;
      config.function = function;
      config.noise = noise_pct / 100.0;
      config.seed = 2000 + static_cast<uint64_t>(function * 10 + noise_pct);
      CheckOk(GenerateAgrawalTable(config, static_cast<uint64_t>(n), table));

      const RunResult boat = RunBoat(table, schema, *selector, setup.Boat());
      const RunResult hybrid =
          RunRFHybrid(table, schema, *selector, setup.RFHybrid(n));
      const RunResult vertical =
          RunRFVertical(table, schema, *selector, setup.RFVertical(n));
      PrintSeriesRow(std::to_string(noise_pct), boat, hybrid, vertical);
      std::remove(table.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
