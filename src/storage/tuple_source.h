// TupleSource: a restartable stream of tuples.
//
// BOAT never requires the training database to be materialized — it only
// needs (a) sequential scans and (b) random samples. TupleSource is the
// abstraction both come through: a source can be a disk table, an in-memory
// vector, a synthetic generator, or a filtered view over another source
// (simulating a training database defined by a warehouse query).

#ifndef BOAT_STORAGE_TUPLE_SOURCE_H_
#define BOAT_STORAGE_TUPLE_SOURCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table_file.h"
#include "storage/tuple.h"

namespace boat {

/// \brief Restartable forward stream of tuples sharing one schema.
class TupleSource {
 public:
  virtual ~TupleSource() = default;

  /// \brief Produces the next tuple; returns false at end of stream.
  /// [[nodiscard]]: ignoring the return reads an unspecified tuple at EOF.
  [[nodiscard]] virtual bool Next(Tuple* tuple) = 0;

  /// \brief Restarts the stream from the beginning (a fresh scan).
  virtual Status Reset() = 0;

  /// \brief The schema all produced tuples conform to.
  virtual const Schema& schema() const = 0;
};

/// \brief Source over an in-memory vector of tuples (copies are cheap views
/// through a shared_ptr so samples can share storage).
class VectorSource : public TupleSource {
 public:
  VectorSource(Schema schema, std::vector<Tuple> tuples);

  [[nodiscard]] bool Next(Tuple* tuple) override;
  Status Reset() override;
  const Schema& schema() const override { return schema_; }

 private:
  Schema schema_;
  std::shared_ptr<const std::vector<Tuple>> tuples_;
  size_t cursor_ = 0;
};

/// \brief Source scanning a table file on disk. Each Reset() is a new scan.
class TableScanSource : public TupleSource {
 public:
  /// \brief Opens the table at `path`; validates against `schema`.
  static Result<std::unique_ptr<TableScanSource>> Open(const std::string& path,
                                                       const Schema& schema);

  [[nodiscard]] bool Next(Tuple* tuple) override;
  Status Reset() override;
  const Schema& schema() const override { return reader_->schema(); }

  uint64_t num_rows() const { return reader_->num_rows(); }

 private:
  explicit TableScanSource(std::unique_ptr<TableReader> reader)
      : reader_(std::move(reader)) {}

  std::unique_ptr<TableReader> reader_;
};

/// \brief Filtered view over another source; keeps tuples satisfying `pred`.
/// Simulates a training database defined by a (star-join) selection query
/// that is never materialized.
class FilterSource : public TupleSource {
 public:
  FilterSource(std::unique_ptr<TupleSource> input,
               std::function<bool(const Tuple&)> pred)
      : input_(std::move(input)), pred_(std::move(pred)) {}

  [[nodiscard]] bool Next(Tuple* tuple) override;
  Status Reset() override { return input_->Reset(); }
  const Schema& schema() const override { return input_->schema(); }

 private:
  std::unique_ptr<TupleSource> input_;
  std::function<bool(const Tuple&)> pred_;
};

/// \brief Concatenation of several sources with identical schemas; used to
/// view "base data + arrived chunks" as one logical training database.
class ChainSource : public TupleSource {
 public:
  explicit ChainSource(std::vector<std::unique_ptr<TupleSource>> inputs);

  [[nodiscard]] bool Next(Tuple* tuple) override;
  Status Reset() override;
  const Schema& schema() const override { return inputs_.front()->schema(); }

 private:
  std::vector<std::unique_ptr<TupleSource>> inputs_;
  size_t current_ = 0;
};

/// \brief Drains a source into a vector (resets it first).
Result<std::vector<Tuple>> Materialize(TupleSource* source);

}  // namespace boat

#endif  // BOAT_STORAGE_TUPLE_SOURCE_H_
