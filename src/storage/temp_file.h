// Temporary-file management for spill files (the S_n files of the paper).

#ifndef BOAT_STORAGE_TEMP_FILE_H_
#define BOAT_STORAGE_TEMP_FILE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace boat {

/// \brief Hands out unique file paths under a scratch directory and removes
/// the directory tree on destruction.
class TempFileManager {
 public:
  /// \brief Creates a fresh scratch directory under `base_dir` (defaults to
  /// the BOAT_TMPDIR environment variable, then /tmp).
  static Result<TempFileManager> Create(const std::string& base_dir = "");

  TempFileManager(TempFileManager&& other) noexcept;
  TempFileManager& operator=(TempFileManager&& other) noexcept;
  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;
  ~TempFileManager();

  /// \brief Returns a unique path (the file itself is not created).
  std::string NewPath(const std::string& hint);

  const std::string& dir() const { return dir_; }

 private:
  explicit TempFileManager(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;  // empty after move-from
  uint64_t counter_ = 0;
};

}  // namespace boat

#endif  // BOAT_STORAGE_TEMP_FILE_H_
