#include "storage/schema.h"

#include <unordered_set>

#include "common/str_util.h"

namespace boat {

Schema::Schema(std::vector<Attribute> attributes, int num_classes)
    : attributes_(std::move(attributes)), num_classes_(num_classes) {}

int Schema::FindAttribute(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return -1;
}

size_t Schema::RecordWidth() const {
  size_t width = 4;  // class label
  for (const Attribute& a : attributes_) {
    width += (a.type == AttributeType::kNumerical) ? 8 : 4;
  }
  return width;
}

uint64_t Schema::Fingerprint() const {
  // FNV-1a over the structural description.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(num_classes_));
  for (const Attribute& a : attributes_) {
    for (char c : a.name) mix(static_cast<uint8_t>(c));
    mix(static_cast<uint64_t>(a.type));
    mix(static_cast<uint64_t>(a.cardinality));
  }
  return h;
}

Status Schema::Validate() const {
  if (num_classes_ < 2) {
    return Status::InvalidArgument("schema needs at least 2 classes");
  }
  if (attributes_.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  std::unordered_set<std::string> names;
  for (const Attribute& a : attributes_) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!names.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
    if (a.type == AttributeType::kCategorical && a.cardinality < 2) {
      return Status::InvalidArgument(StrPrintf(
          "categorical attribute %s needs cardinality >= 2", a.name.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace boat
