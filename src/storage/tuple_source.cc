#include "storage/tuple_source.h"

namespace boat {

// --------------------------------------------------------------- VectorSource

VectorSource::VectorSource(Schema schema, std::vector<Tuple> tuples)
    : schema_(std::move(schema)),
      tuples_(std::make_shared<const std::vector<Tuple>>(std::move(tuples))) {}

bool VectorSource::Next(Tuple* tuple) {
  if (cursor_ >= tuples_->size()) return false;
  *tuple = (*tuples_)[cursor_++];
  return true;
}

Status VectorSource::Reset() {
  cursor_ = 0;
  return Status::OK();
}

// ------------------------------------------------------------ TableScanSource

Result<std::unique_ptr<TableScanSource>> TableScanSource::Open(
    const std::string& path, const Schema& schema) {
  BOAT_ASSIGN_OR_RETURN(auto reader, TableReader::Open(path, schema));
  return std::unique_ptr<TableScanSource>(
      new TableScanSource(std::move(reader)));
}

bool TableScanSource::Next(Tuple* tuple) {
  if (reader_->Next(tuple)) return true;
  // Next() cannot report an error; accepting a truncated table as a short
  // scan would train on partial data, so fail loudly instead.
  CheckOk(reader_->status());
  return false;
}

Status TableScanSource::Reset() { return reader_->Reset(); }

// --------------------------------------------------------------- FilterSource

bool FilterSource::Next(Tuple* tuple) {
  while (input_->Next(tuple)) {
    if (pred_(*tuple)) return true;
  }
  return false;
}

// ---------------------------------------------------------------- ChainSource

ChainSource::ChainSource(std::vector<std::unique_ptr<TupleSource>> inputs)
    : inputs_(std::move(inputs)) {
  if (inputs_.empty()) FatalError("ChainSource needs at least one input");
}

bool ChainSource::Next(Tuple* tuple) {
  while (current_ < inputs_.size()) {
    if (inputs_[current_]->Next(tuple)) return true;
    ++current_;
  }
  return false;
}

Status ChainSource::Reset() {
  for (auto& input : inputs_) {
    BOAT_RETURN_NOT_OK(input->Reset());
  }
  current_ = 0;
  return Status::OK();
}

// ---------------------------------------------------------------- Materialize

Result<std::vector<Tuple>> Materialize(TupleSource* source) {
  BOAT_RETURN_NOT_OK(source->Reset());
  std::vector<Tuple> out;
  Tuple t;
  while (source->Next(&t)) out.push_back(t);
  return out;
}

}  // namespace boat
