#include "storage/tuple_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

namespace boat {

std::string TupleKeyBytes(const Tuple& tuple) {
  std::string key;
  key.resize(tuple.values().size() * sizeof(double) + sizeof(int32_t));
  char* p = key.data();
  for (const double v : tuple.values()) {
    std::memcpy(p, &v, sizeof(double));
    p += sizeof(double);
  }
  const int32_t label = tuple.label();
  std::memcpy(p, &label, sizeof(int32_t));
  return key;
}

SpillableTupleStore::SpillableTupleStore(Schema schema, TempFileManager* temp,
                                         std::string hint,
                                         size_t max_in_memory)
    : schema_(std::move(schema)),
      temp_(temp),
      hint_(std::move(hint)),
      max_in_memory_(std::max<size_t>(max_in_memory, 1)) {}

Status SpillableTupleStore::Append(const Tuple& tuple) {
  ++live_[TupleKeyBytes(tuple)];
  mem_.push_back(tuple);
  ++size_;
  if (mem_.size() > max_in_memory_) {
    BOAT_RETURN_NOT_OK(Flush());
  }
  return Status::OK();
}

Status SpillableTupleStore::AppendBatch(const std::vector<const Tuple*>& tuples) {
  for (const Tuple* t : tuples) {
    BOAT_RETURN_NOT_OK(Append(*t));
  }
  return Status::OK();
}

Status SpillableTupleStore::Flush() {
  if (mem_.empty()) return Status::OK();
  const std::string path = temp_->NewPath(hint_);
  BOAT_ASSIGN_OR_RETURN(auto writer, TableWriter::Create(path, schema_));
  for (const Tuple& t : mem_) {
    BOAT_RETURN_NOT_OK(writer->Append(t));
  }
  BOAT_RETURN_NOT_OK(writer->Finish());
  segments_.push_back(path);
  mem_.clear();
  return Status::OK();
}

Status SpillableTupleStore::RemoveOne(const Tuple& tuple) {
  std::string key = TupleKeyBytes(tuple);
  auto it = live_.find(key);
  if (it == live_.end()) {
    return Status::NotFound("tuple not present in store");
  }
  if (--it->second == 0) live_.erase(it);
  ++dead_[std::move(key)];
  ++dead_total_;
  --size_;
  if (dead_total_ > max_in_memory_ && dead_total_ > size_ / 2) {
    BOAT_RETURN_NOT_OK(Compact());
  }
  return Status::OK();
}

Status SpillableTupleStore::ForEach(
    const std::function<void(const Tuple&)>& fn) const {
  // Tombstones each cancel one equal tuple.
  std::unordered_map<std::string, int64_t> pending = dead_;
  auto cancels = [&pending](const Tuple& t) {
    auto it = pending.find(TupleKeyBytes(t));
    if (it == pending.end()) return false;
    if (--it->second == 0) pending.erase(it);
    return true;
  };
  for (const std::string& seg : segments_) {
    BOAT_ASSIGN_OR_RETURN(auto reader, TableReader::Open(seg, schema_));
    Tuple t;
    while (reader->Next(&t)) {
      if (!pending.empty() && cancels(t)) continue;
      fn(t);
    }
    BOAT_RETURN_NOT_OK(reader->status());
  }
  for (const Tuple& t : mem_) {
    if (!pending.empty() && cancels(t)) continue;
    fn(t);
  }
  return Status::OK();
}

Result<std::vector<Tuple>> SpillableTupleStore::ToVector() const {
  std::vector<Tuple> out;
  out.reserve(size_);
  BOAT_RETURN_NOT_OK(ForEach([&out](const Tuple& t) { out.push_back(t); }));
  return out;
}

Status SpillableTupleStore::Clear() {
  mem_.clear();
  live_.clear();
  dead_.clear();
  dead_total_ = 0;
  size_ = 0;
  for (const std::string& seg : segments_) {
    std::error_code ec;
    std::filesystem::remove(seg, ec);  // best effort
  }
  segments_.clear();
  return Status::OK();
}

namespace {

// Streams a store's segments and memory tail, cancelling tombstones.
class StoreScanSource : public TupleSource {
 public:
  StoreScanSource(const Schema& schema,
                  const std::vector<std::string>* segments,
                  const std::vector<Tuple>* mem,
                  const std::unordered_map<std::string, int64_t>* dead)
      : schema_(schema), segments_(segments), mem_(mem), dead_(dead) {
    CheckOk(Reset());
  }

  [[nodiscard]] bool Next(Tuple* tuple) override {
    while (true) {
      if (reader_ != nullptr) {
        if (reader_->Next(tuple)) {
          if (!pending_.empty() && Cancels(*tuple)) continue;
          return true;
        }
        // Next() cannot report an error; a truncated segment accepted as a
        // short scan would silently drop tuples, so fail loudly instead.
        CheckOk(reader_->status());
        reader_.reset();
        ++segment_;
        if (!OpenCurrentSegment()) return false;
        continue;
      }
      while (mem_cursor_ < mem_->size()) {
        *tuple = (*mem_)[mem_cursor_++];
        if (!pending_.empty() && Cancels(*tuple)) continue;
        return true;
      }
      return false;
    }
  }

  Status Reset() override {
    pending_ = *dead_;
    segment_ = 0;
    mem_cursor_ = 0;
    reader_.reset();
    if (!OpenCurrentSegment()) {
      return Status::Internal("cannot open store segment");
    }
    return Status::OK();
  }

  const Schema& schema() const override { return schema_; }

 private:
  bool Cancels(const Tuple& t) {
    auto it = pending_.find(TupleKeyBytes(t));
    if (it == pending_.end()) return false;
    if (--it->second == 0) pending_.erase(it);
    return true;
  }

  // Positions the reader at segment_ (or leaves it null when segments are
  // exhausted); returns false only on open error.
  bool OpenCurrentSegment() {
    if (segment_ >= segments_->size()) return true;  // memory tail next
    auto reader = TableReader::Open((*segments_)[segment_], schema_);
    if (!reader.ok()) return false;
    reader_ = std::move(reader).ValueOrDie();
    return true;
  }

  Schema schema_;
  const std::vector<std::string>* segments_;
  const std::vector<Tuple>* mem_;
  const std::unordered_map<std::string, int64_t>* dead_;
  std::unordered_map<std::string, int64_t> pending_;
  size_t segment_ = 0;
  size_t mem_cursor_ = 0;
  std::unique_ptr<TableReader> reader_;
};

}  // namespace

std::unique_ptr<TupleSource> SpillableTupleStore::MakeSource() const {
  return std::make_unique<StoreScanSource>(schema_, &segments_, &mem_,
                                           &dead_);
}

Status SpillableTupleStore::Compact() {
  BOAT_ASSIGN_OR_RETURN(auto all, ToVector());
  for (const std::string& seg : segments_) {
    std::error_code ec;
    std::filesystem::remove(seg, ec);
  }
  segments_.clear();
  dead_.clear();
  dead_total_ = 0;
  mem_ = std::move(all);
  // live_ is already correct (it tracks live tuples only).
  if (mem_.size() > max_in_memory_) {
    BOAT_RETURN_NOT_OK(Flush());
  }
  return Status::OK();
}

}  // namespace boat
