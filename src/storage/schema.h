// Dataset schema: typed predictor attributes plus a class label.

#ifndef BOAT_STORAGE_SCHEMA_H_
#define BOAT_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace boat {

/// \brief Type of a predictor attribute.
enum class AttributeType : uint8_t {
  kNumerical,   ///< Totally ordered domain; splits are of the form X <= x.
  kCategorical  ///< Unordered finite domain {0..cardinality-1}; splits X in Y.
};

/// \brief One predictor attribute of the training database.
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kNumerical;
  /// Domain size for categorical attributes (values are 0..cardinality-1);
  /// ignored for numerical attributes.
  int32_t cardinality = 0;

  static Attribute Numerical(std::string attr_name) {
    return Attribute{std::move(attr_name), AttributeType::kNumerical, 0};
  }
  static Attribute Categorical(std::string attr_name, int32_t card) {
    return Attribute{std::move(attr_name), AttributeType::kCategorical, card};
  }

  bool operator==(const Attribute& other) const = default;
};

/// \brief Schema of a training database: predictor attributes X_1..X_m and
/// the number of class labels k (labels are 0..k-1).
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Attribute> attributes, int num_classes);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  int num_classes() const { return num_classes_; }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  bool IsNumerical(int i) const {
    return attributes_[i].type == AttributeType::kNumerical;
  }
  bool IsCategorical(int i) const {
    return attributes_[i].type == AttributeType::kCategorical;
  }

  /// \brief Index of the attribute with the given name, or -1.
  [[nodiscard]] int FindAttribute(const std::string& name) const;

  /// \brief On-disk record width in bytes (8 per numerical value, 4 per
  /// categorical value, 4 for the class label).
  [[nodiscard]] size_t RecordWidth() const;

  /// \brief Stable 64-bit fingerprint of the schema, stored in table file
  /// headers to detect schema mismatches when reopening files.
  [[nodiscard]] uint64_t Fingerprint() const;

  /// \brief Validates attribute definitions (unique names, positive
  /// categorical cardinalities, at least two classes).
  Status Validate() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<Attribute> attributes_;
  int num_classes_ = 0;
};

}  // namespace boat

#endif  // BOAT_STORAGE_SCHEMA_H_
