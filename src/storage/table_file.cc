#include "storage/table_file.h"

#include <algorithm>
#include <cstring>

#include "common/io_stats.h"
#include "common/str_util.h"

namespace boat {

namespace {

constexpr uint64_t kMagic = 0x424f415454424c31ULL;  // "BOATTBL1"
constexpr size_t kHeaderSize = 24;
constexpr size_t kIoBufferSize = 1 << 16;

void EncodeU64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
uint64_t DecodeU64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

// Encodes one tuple into buf (which must have RecordWidth() capacity).
void EncodeRecord(const Schema& schema, const Tuple& t, char* buf) {
  char* p = buf;
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (schema.IsNumerical(i)) {
      const double v = t.value(i);
      std::memcpy(p, &v, 8);
      p += 8;
    } else {
      const int32_t v = t.category(i);
      std::memcpy(p, &v, 4);
      p += 4;
    }
  }
  const int32_t label = t.label();
  std::memcpy(p, &label, 4);
}

void DecodeRecord(const Schema& schema, const char* buf, Tuple* t) {
  std::vector<double> values(schema.num_attributes());
  const char* p = buf;
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (schema.IsNumerical(i)) {
      double v;
      std::memcpy(&v, p, 8);
      values[i] = v;
      p += 8;
    } else {
      int32_t v;
      std::memcpy(&v, p, 4);
      values[i] = static_cast<double>(v);
      p += 4;
    }
  }
  int32_t label;
  std::memcpy(&label, p, 4);
  *t = Tuple(std::move(values), label);
}

}  // namespace

// ---------------------------------------------------------------- TableWriter

TableWriter::TableWriter(std::FILE* file, Schema schema)
    : file_(file), schema_(std::move(schema)) {
  encode_buf_.resize(schema_.RecordWidth());
  std::setvbuf(file_, nullptr, _IOFBF, kIoBufferSize);
}

Result<std::unique_ptr<TableWriter>> TableWriter::Create(
    const std::string& path, const Schema& schema) {
  BOAT_RETURN_NOT_OK(schema.Validate());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create table file: " + path);
  }
  char header[kHeaderSize];
  EncodeU64(header, kMagic);
  EncodeU64(header + 8, schema.Fingerprint());
  EncodeU64(header + 16, 0);  // record count, patched by Finish()
  if (std::fwrite(header, 1, kHeaderSize, f) != kHeaderSize) {
    std::fclose(f);
    return Status::IOError("cannot write table header: " + path);
  }
  return std::unique_ptr<TableWriter>(new TableWriter(f, schema));
}

TableWriter::~TableWriter() {
  if (!finished_) CheckOk(Finish());
}

Status TableWriter::Append(const Tuple& tuple) {
  if (finished_) return Status::Internal("Append after Finish");
  if (tuple.num_values() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        StrPrintf("tuple arity %d does not match schema arity %d",
                  tuple.num_values(), schema_.num_attributes()));
  }
  EncodeRecord(schema_, tuple, encode_buf_.data());
  if (std::fwrite(encode_buf_.data(), 1, encode_buf_.size(), file_) !=
      encode_buf_.size()) {
    return Status::IOError("short write to table file");
  }
  ++rows_;
  io_internal::RecordWrite(1, encode_buf_.size());
  return Status::OK();
}

Status TableWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  char count[8];
  EncodeU64(count, rows_);
  if (std::fseek(file_, 16, SEEK_SET) != 0 ||
      std::fwrite(count, 1, 8, file_) != 8 || std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IOError("cannot finalize table file");
  }
  file_ = nullptr;
  return Status::OK();
}

// ---------------------------------------------------------------- TableReader

TableReader::TableReader(std::FILE* file, Schema schema, uint64_t num_rows)
    : file_(file), schema_(std::move(schema)), num_rows_(num_rows) {
  const size_t width = schema_.RecordWidth();
  const size_t records_per_block = std::max<size_t>(1, kIoBufferSize / width);
  block_.resize(records_per_block * width);
  // The block buffer replaces stdio's: unbuffered mode avoids copying every
  // byte twice.
  std::setvbuf(file_, nullptr, _IONBF, 0);
  io_internal::RecordScanStart();
}

Result<std::unique_ptr<TableReader>> TableReader::Open(const std::string& path,
                                                       const Schema& schema) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open table file: " + path);
  }
  char header[kHeaderSize];
  if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize) {
    std::fclose(f);
    return Status::Corruption("truncated table header: " + path);
  }
  if (DecodeU64(header) != kMagic) {
    std::fclose(f);
    return Status::Corruption("bad table magic: " + path);
  }
  if (DecodeU64(header + 8) != schema.Fingerprint()) {
    std::fclose(f);
    return Status::InvalidArgument("schema mismatch for table: " + path);
  }
  const uint64_t rows = DecodeU64(header + 16);
  return std::unique_ptr<TableReader>(new TableReader(f, schema, rows));
}

TableReader::~TableReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool TableReader::FillBlock() {
  const size_t width = schema_.RecordWidth();
  const uint64_t remaining = num_rows_ - cursor_;
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(remaining, block_.size() / width));
  if (want == 0) return false;
  if (std::fread(block_.data(), 1, want * width, file_) != want * width) {
    // The header's record count promised more data than the file holds —
    // corruption in the file, not a bug here, so it must be recoverable:
    // model files and spilled stores are reloaded from disk across process
    // lifetimes. The scan ends early and the error is parked in status().
    status_ = Status::Corruption("table file truncated mid-record");
    return false;
  }
  block_pos_ = 0;
  block_len_ = want * width;
  return true;
}

bool TableReader::Next(Tuple* tuple) {
  if (!status_.ok()) return false;
  if (cursor_ >= num_rows_) return false;
  if (block_pos_ >= block_len_ && !FillBlock()) return false;
  const size_t width = schema_.RecordWidth();
  DecodeRecord(schema_, block_.data() + block_pos_, tuple);
  block_pos_ += width;
  ++cursor_;
  io_internal::RecordRead(1, width);
  return true;
}

Status TableReader::Reset() {
  if (std::fseek(file_, kHeaderSize, SEEK_SET) != 0) {
    return Status::IOError("cannot seek table file");
  }
  cursor_ = 0;
  block_pos_ = 0;
  block_len_ = 0;
  status_ = Status::OK();
  io_internal::RecordScanStart();
  return Status::OK();
}

// ---------------------------------------------------------------- convenience

Status WriteTable(const std::string& path, const Schema& schema,
                  const std::vector<Tuple>& tuples) {
  BOAT_ASSIGN_OR_RETURN(auto writer, TableWriter::Create(path, schema));
  for (const Tuple& t : tuples) {
    BOAT_RETURN_NOT_OK(writer->Append(t));
  }
  return writer->Finish();
}

Result<std::vector<Tuple>> ReadTable(const std::string& path,
                                     const Schema& schema) {
  BOAT_ASSIGN_OR_RETURN(auto reader, TableReader::Open(path, schema));
  std::vector<Tuple> tuples;
  tuples.reserve(reader->num_rows());
  Tuple t;
  while (reader->Next(&t)) tuples.push_back(t);
  BOAT_RETURN_NOT_OK(reader->status());
  return tuples;
}

}  // namespace boat
