// SpillableTupleStore: an append-mostly tuple container that lives in memory
// while small and transparently spills to temp table files when it grows
// past a threshold. Implements the paper's per-node S_n files ("the
// implementation ... writes temporary files to disk to be truly scalable")
// and the frontier-node family stores.

#ifndef BOAT_STORAGE_TUPLE_STORE_H_
#define BOAT_STORAGE_TUPLE_STORE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table_file.h"
#include "storage/temp_file.h"
#include "storage/tuple.h"
#include "storage/tuple_source.h"

namespace boat {

/// \brief Serialized byte key of a tuple, used for exact multiset lookups.
std::string TupleKeyBytes(const Tuple& tuple);

/// \brief Tuple container with bounded in-memory footprint for the tuples
/// themselves: overflow is flushed to spill segment files; reads stream
/// through the segments sequentially.
///
/// Removal (needed by incremental deletion) is O(1): a hash multiset tracks
/// the multiplicity of every live tuple, removals record lazy tombstones
/// that reads cancel and compaction applies. The index costs one hash entry
/// per distinct stored tuple.
class SpillableTupleStore {
 public:
  /// \param schema        schema of the stored tuples
  /// \param temp          manager providing spill paths (must outlive this)
  /// \param hint          name fragment for spill files
  /// \param max_in_memory in-memory tuple budget before spilling
  SpillableTupleStore(Schema schema, TempFileManager* temp, std::string hint,
                      size_t max_in_memory);

  SpillableTupleStore(SpillableTupleStore&&) = default;
  SpillableTupleStore& operator=(SpillableTupleStore&&) = default;

  /// \brief Appends one tuple.
  Status Append(const Tuple& tuple);

  /// \brief Appends `tuples` in order. Equivalent to calling Append on each
  /// element, including the spill points, so a store filled by batches holds
  /// byte-identical segment files to one filled tuple by tuple — the
  /// parallel cleanup scan relies on this when concatenating per-chunk
  /// staging buffers into a node's S_n store.
  Status AppendBatch(const std::vector<const Tuple*>& tuples);

  /// \brief Removes one tuple equal to `tuple`. Returns NotFound if absent.
  Status RemoveOne(const Tuple& tuple);

  /// \brief Invokes `fn` on every live tuple (order unspecified).
  Status ForEach(const std::function<void(const Tuple&)>& fn) const;

  /// \brief Copies all live tuples into a vector.
  Result<std::vector<Tuple>> ToVector() const;

  /// \brief Number of live tuples.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// \brief Whether the store currently has disk segments.
  bool spilled() const { return !segments_.empty(); }

  /// \brief Discards all contents (segment files are deleted).
  Status Clear();

  /// \brief Creates a restartable TupleSource over the store's live tuples.
  /// The store must outlive the source and must not be mutated while the
  /// source is in use. Each Reset() streams the disk segments again.
  std::unique_ptr<TupleSource> MakeSource() const;

 private:
  Status Flush();    // moves mem_ into a new segment
  Status Compact();  // rewrites everything, applying tombstones

  Schema schema_;
  TempFileManager* temp_;
  std::string hint_;
  size_t max_in_memory_;
  size_t size_ = 0;
  size_t dead_total_ = 0;

  std::vector<Tuple> mem_;             // in-memory tail (may hold dead rows)
  std::vector<std::string> segments_;  // spill segment files
  /// Multiplicity of every live tuple (key = TupleKeyBytes).
  std::unordered_map<std::string, int64_t> live_;
  /// Pending cancellations against mem_/segments_ rows.
  std::unordered_map<std::string, int64_t> dead_;
};

}  // namespace boat

#endif  // BOAT_STORAGE_TUPLE_STORE_H_
