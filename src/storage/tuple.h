// Tuple: one training record (predictor values + class label).

#ifndef BOAT_STORAGE_TUPLE_H_
#define BOAT_STORAGE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"

namespace boat {

/// \brief One training record. Values are stored uniformly as doubles;
/// categorical values are small non-negative integers (exact in a double).
///
/// Tuples are schema-relative: value(i) is the value of attribute i of the
/// schema the tuple was created against. Equality is exact (bitwise on the
/// doubles), which is sound because all data flows from deterministic
/// generators or files, never from lossy re-computation.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::vector<double> values, int32_t label)
      : values_(std::move(values)), label_(label) {}

  int num_values() const { return static_cast<int>(values_.size()); }
  double value(int i) const { return values_[i]; }
  void set_value(int i, double v) { values_[i] = v; }

  /// \brief Categorical accessor: the value as a category index.
  int32_t category(int i) const { return static_cast<int32_t>(values_[i]); }

  int32_t label() const { return label_; }
  void set_label(int32_t label) { label_ = label; }

  const std::vector<double>& values() const { return values_; }

  bool operator==(const Tuple& other) const = default;

  /// \brief Debug rendering, e.g. "(23.5, 1, 70000) -> 0".
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<double> values_;
  int32_t label_ = 0;
};

}  // namespace boat

#endif  // BOAT_STORAGE_TUPLE_H_
