#include "storage/temp_file.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <utility>

#include "common/str_util.h"

namespace boat {

namespace fs = std::filesystem;

Result<TempFileManager> TempFileManager::Create(const std::string& base_dir) {
  std::string base = base_dir;
  if (base.empty()) {
    const char* env = std::getenv("BOAT_TMPDIR");
    base = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  }
  std::error_code ec;
  fs::create_directories(base, ec);
  if (ec) return Status::IOError("cannot create base dir: " + base);
  // Find an unused subdirectory name.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const std::string candidate =
        base + StrPrintf("/boat-scratch-%d-%d", static_cast<int>(::getpid()),
                         attempt);
    if (fs::create_directory(candidate, ec) && !ec) {
      return TempFileManager(candidate);
    }
  }
  return Status::IOError("cannot create scratch directory under " + base);
}

TempFileManager::TempFileManager(TempFileManager&& other) noexcept
    : dir_(std::move(other.dir_)), counter_(other.counter_) {
  other.dir_.clear();
}

TempFileManager& TempFileManager::operator=(TempFileManager&& other) noexcept {
  // Swap idiom: `other` walks away owning our old scratch dir and reclaims
  // it when it is destroyed. No member of a destroyed object is ever
  // touched (the previous explicit-destructor version assigned into *this
  // after ~TempFileManager(), which is undefined behavior).
  if (this != &other) {
    std::swap(dir_, other.dir_);
    std::swap(counter_, other.counter_);
  }
  return *this;
}

TempFileManager::~TempFileManager() {
  if (!dir_.empty()) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort
  }
}

std::string TempFileManager::NewPath(const std::string& hint) {
  return dir_ + StrPrintf("/%s-%llu.tbl", hint.c_str(),
                          static_cast<unsigned long long>(counter_++));
}

}  // namespace boat
