// Random sampling over tuple streams.
//
// The sampling phase of BOAT needs (a) a fixed-size uniform random sample of
// the training database obtained in one scan (reservoir sampling, Vitter's
// Algorithm R) and (b) bootstrap resamples drawn with replacement from an
// in-memory sample.

#ifndef BOAT_STORAGE_SAMPLING_H_
#define BOAT_STORAGE_SAMPLING_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "storage/tuple_source.h"

namespace boat {

/// \brief Draws a uniform random sample of (up to) `sample_size` tuples from
/// `source` in a single sequential scan (reservoir sampling). If the stream
/// has fewer tuples than `sample_size`, the whole stream is returned.
/// If `stream_size` is non-null, it receives the number of tuples scanned.
Result<std::vector<Tuple>> ReservoirSample(TupleSource* source,
                                           size_t sample_size, Rng* rng,
                                           uint64_t* stream_size = nullptr);

/// \brief Draws `n` tuples uniformly with replacement from `population`
/// (bootstrap resampling).
std::vector<Tuple> SampleWithReplacement(const std::vector<Tuple>& population,
                                         size_t n, Rng* rng);

/// \brief Index form of SampleWithReplacement: draws `n` row indices
/// uniformly with replacement from [0, population_size). Consumes the
/// identical rng stream as SampleWithReplacement over a population of the
/// same size, so the two describe the same resample — the columnar bootstrap
/// phase uses the indices as per-row weights over a shared master dataset
/// instead of copying tuples.
std::vector<uint32_t> SampleIndicesWithReplacement(size_t population_size,
                                                   size_t n, Rng* rng);

/// \brief Draws `n` distinct indices' tuples uniformly without replacement
/// from `population` (partial Fisher-Yates). Requires n <= population size.
std::vector<Tuple> SampleWithoutReplacement(
    const std::vector<Tuple>& population, size_t n, Rng* rng);

}  // namespace boat

#endif  // BOAT_STORAGE_SAMPLING_H_
