// Disk-resident training tables: fixed-width binary record files.
//
// Layout:
//   header  : magic (8B) | schema fingerprint (8B) | record count (8B)
//   records : per attribute, 8B little-endian double (numerical) or
//             4B int32 (categorical); then 4B int32 class label.
//
// The reader performs buffered sequential scans and feeds the global I/O
// statistics counters, so benchmark harnesses can report scan volume.

#ifndef BOAT_STORAGE_TABLE_FILE_H_
#define BOAT_STORAGE_TABLE_FILE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace boat {

/// \brief Appends tuples to a binary table file. Call Finish() (or let the
/// destructor do it) to finalize the header record count.
class TableWriter {
 public:
  /// \brief Creates (truncates) `path` and writes a header for `schema`.
  static Result<std::unique_ptr<TableWriter>> Create(const std::string& path,
                                                     const Schema& schema);
  ~TableWriter();

  TableWriter(const TableWriter&) = delete;
  TableWriter& operator=(const TableWriter&) = delete;

  /// \brief Appends one tuple; the tuple must match the writer's schema.
  Status Append(const Tuple& tuple);

  /// \brief Flushes buffered records and patches the record count into the
  /// header. The writer is unusable afterwards.
  Status Finish();

  uint64_t rows_written() const { return rows_; }

 private:
  TableWriter(std::FILE* file, Schema schema);

  std::FILE* file_;
  Schema schema_;
  uint64_t rows_ = 0;
  bool finished_ = false;
  std::vector<char> encode_buf_;
};

/// \brief Buffered sequential reader over a table file.
class TableReader {
 public:
  /// \brief Opens `path` and validates header magic and schema fingerprint.
  static Result<std::unique_ptr<TableReader>> Open(const std::string& path,
                                                   const Schema& schema);
  ~TableReader();

  TableReader(const TableReader&) = delete;
  TableReader& operator=(const TableReader&) = delete;

  /// \brief Reads the next tuple into *tuple. Returns false at end of table
  /// — or on a read error, which callers distinguish via status().
  [[nodiscard]] bool Next(Tuple* tuple);

  /// \brief Rewinds to the first record (a new scan; bumps the scan counter).
  Status Reset();

  /// \brief OK unless the scan hit a read error (e.g. the file is shorter
  /// than its header's record count claims). Check after Next() returns
  /// false wherever a silently short scan would be accepted as a full one.
  const Status& status() const { return status_; }

  uint64_t num_rows() const { return num_rows_; }
  const Schema& schema() const { return schema_; }

 private:
  TableReader(std::FILE* file, Schema schema, uint64_t num_rows);

  /// Refills the record block from the file; returns false at end of table.
  bool FillBlock();

  std::FILE* file_;
  Schema schema_;
  uint64_t num_rows_;
  uint64_t cursor_ = 0;
  // Records are decoded out of a block buffer holding a whole-record
  // multiple of bytes, refilled by one fread per block instead of one per
  // record. IoStats still count one logical record read per Next().
  std::vector<char> block_;
  size_t block_pos_ = 0;
  size_t block_len_ = 0;
  Status status_ = Status::OK();
};

/// \brief Convenience: writes `tuples` to `path` as a table file.
Status WriteTable(const std::string& path, const Schema& schema,
                  const std::vector<Tuple>& tuples);

/// \brief Convenience: reads the entire table at `path` into memory.
Result<std::vector<Tuple>> ReadTable(const std::string& path,
                                     const Schema& schema);

}  // namespace boat

#endif  // BOAT_STORAGE_TABLE_FILE_H_
