#include "storage/tuple.h"

#include "common/str_util.h"

namespace boat {

std::string Tuple::ToString(const Schema& schema) const {
  std::string out = "(";
  for (int i = 0; i < num_values(); ++i) {
    if (i > 0) out += ", ";
    if (i < schema.num_attributes() && schema.IsCategorical(i)) {
      out += StrPrintf("%d", category(i));
    } else {
      out += StrPrintf("%g", value(i));
    }
  }
  out += StrPrintf(") -> %d", label_);
  return out;
}

}  // namespace boat
