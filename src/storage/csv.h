// CSV import/export: the adoption path for real datasets.
//
// LoadCsv reads a delimited text file, infers a schema (columns whose values
// all parse as numbers become numerical attributes; everything else becomes
// a categorical attribute with an automatically built category dictionary),
// maps the label column (by default the last) to class ids, and returns the
// tuples ready for any builder in the library.

#ifndef BOAT_STORAGE_CSV_H_
#define BOAT_STORAGE_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace boat {

/// \brief CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names.
  bool has_header = true;
  /// Index of the class-label column; -1 = last column.
  int label_column = -1;
};

/// \brief A dataset loaded from CSV: schema, tuples, and the string
/// dictionaries that map categorical ids and class ids back to their
/// original values.
struct CsvDataset {
  Schema schema;
  std::vector<Tuple> tuples;
  /// Per attribute: category id -> original string (empty for numericals).
  std::vector<std::vector<std::string>> categories;
  /// Class id -> original label string.
  std::vector<std::string> class_names;

  /// \brief Original string of attribute `attr`'s category `id`.
  const std::string& CategoryName(int attr, int32_t id) const {
    return categories[attr][id];
  }
};

/// \brief Parses one CSV line into fields (supports double-quoted fields
/// with embedded delimiters and doubled quotes).
[[nodiscard]] std::vector<std::string> SplitCsvLine(const std::string& line,
                                                    char delimiter);

/// \brief Quotes/escapes one field so that SplitCsvLine parses it back
/// verbatim (inverse of SplitCsvLine for a single field). Exposed for tests
/// and the CSV fuzz harness.
[[nodiscard]] std::string EscapeCsv(const std::string& field, char delimiter);

/// \brief Loads a CSV file, inferring the schema.
Result<CsvDataset> LoadCsv(const std::string& path,
                           const CsvOptions& options = CsvOptions());

/// \brief Loads CSV from an already-open stream (e.g. stdin for
/// `boatc classify --data -`), inferring the schema.
Result<CsvDataset> LoadCsv(std::istream& in,
                           const CsvOptions& options = CsvOptions());

/// \brief Writes tuples as CSV (header from the schema; categorical values
/// and labels rendered through the provided dictionaries when non-empty).
Status WriteCsv(const std::string& path, const Schema& schema,
                const std::vector<Tuple>& tuples,
                const std::vector<std::vector<std::string>>& categories = {},
                const std::vector<std::string>& class_names = {},
                const CsvOptions& options = CsvOptions());

}  // namespace boat

#endif  // BOAT_STORAGE_CSV_H_
