#include "storage/sampling.h"

namespace boat {

Result<std::vector<Tuple>> ReservoirSample(TupleSource* source,
                                           size_t sample_size, Rng* rng,
                                           uint64_t* stream_size) {
  if (sample_size == 0) {
    return Status::InvalidArgument("sample_size must be positive");
  }
  BOAT_RETURN_NOT_OK(source->Reset());
  std::vector<Tuple> reservoir;
  reservoir.reserve(sample_size);
  Tuple t;
  uint64_t seen = 0;
  while (source->Next(&t)) {
    ++seen;
    if (reservoir.size() < sample_size) {
      reservoir.push_back(t);
    } else {
      const uint64_t j = static_cast<uint64_t>(
          rng->UniformInt(0, static_cast<int64_t>(seen) - 1));
      if (j < sample_size) reservoir[j] = t;
    }
  }
  if (stream_size != nullptr) *stream_size = seen;
  return reservoir;
}

std::vector<Tuple> SampleWithReplacement(const std::vector<Tuple>& population,
                                         size_t n, Rng* rng) {
  std::vector<Tuple> out;
  out.reserve(n);
  if (population.empty()) return out;
  const int64_t hi = static_cast<int64_t>(population.size()) - 1;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(population[rng->UniformInt(0, hi)]);
  }
  return out;
}

std::vector<uint32_t> SampleIndicesWithReplacement(size_t population_size,
                                                   size_t n, Rng* rng) {
  std::vector<uint32_t> out;
  out.reserve(n);
  if (population_size == 0) return out;
  const int64_t hi = static_cast<int64_t>(population_size) - 1;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<uint32_t>(rng->UniformInt(0, hi)));
  }
  return out;
}

std::vector<Tuple> SampleWithoutReplacement(
    const std::vector<Tuple>& population, size_t n, Rng* rng) {
  if (n > population.size()) {
    FatalError("SampleWithoutReplacement: n exceeds population size");
  }
  // Partial Fisher-Yates over an index permutation.
  std::vector<size_t> idx(population.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::vector<Tuple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t j = static_cast<size_t>(
        rng->UniformInt(static_cast<int64_t>(i),
                        static_cast<int64_t>(idx.size()) - 1));
    std::swap(idx[i], idx[j]);
    out.push_back(population[idx[i]]);
  }
  return out;
}

}  // namespace boat
