#include "storage/csv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "common/str_util.h"

namespace boat {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t' ||
                         s[begin] == '\r')) {
    ++begin;
  }
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool ParseNumber(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool IsCsvSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

}  // namespace

std::string EscapeCsv(const std::string& field, char delimiter) {
  // Fields with leading/trailing whitespace are quoted too: SplitCsvLine
  // trims unquoted fields, so quoting is what makes the whitespace survive a
  // write/read round trip.
  const bool outer_space =
      !field.empty() && (IsCsvSpace(field.front()) || IsCsvSpace(field.back()));
  if (!outer_space && field.find(delimiter) == std::string::npos &&
      field.find('"') == std::string::npos &&
      field.find('\n') == std::string::npos &&
      field.find('\r') == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  // RFC-4180-style with two lenient extensions: whitespace around a quoted
  // field is ignored (` "a,b" ` parses as `a,b`), and unquoted fields are
  // trimmed. Quoting is tracked per field, so a quote after leading
  // whitespace still opens quoted mode, and quoted content — including
  // intentional leading/trailing whitespace — is preserved verbatim.
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;       // inside an open quoted section
  bool was_quoted = false;      // current field had a quoted section
  size_t quoted_end = 0;        // current.size() when the quotes closed
  auto push_field = [&]() {
    if (was_quoted) {
      // Content after the closing quote (RFC-invalid but tolerated) keeps
      // its text; only the surrounding whitespace is dropped.
      fields.push_back(current.substr(0, quoted_end) +
                       Trim(current.substr(quoted_end)));
    } else {
      fields.push_back(Trim(current));
    }
    current.clear();
    was_quoted = false;
    quoted_end = 0;
  };
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';  // doubled quote = literal quote
          ++i;
        } else {
          in_quotes = false;
          quoted_end = current.size();
        }
      } else {
        current += c;
      }
    } else if (c == delimiter) {
      push_field();
    } else if (c == '"' && !was_quoted && Trim(current).empty()) {
      current.clear();  // drop unquoted leading whitespace
      in_quotes = true;
      was_quoted = true;
    } else {
      current += c;
    }
  }
  push_field();
  return fields;
}

Result<CsvDataset> LoadCsv(const std::string& path,
                           const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  return LoadCsv(in, options);
}

Result<CsvDataset> LoadCsv(std::istream& in, const CsvOptions& options) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.delimiter);
    if (first && options.has_header) {
      header = std::move(fields);
      first = false;
      continue;
    }
    first = false;
    rows.push_back(std::move(fields));
  }
  if (rows.empty()) return Status::InvalidArgument("CSV has no data rows");

  const int num_columns = static_cast<int>(rows.front().size());
  if (num_columns < 2) {
    return Status::InvalidArgument(
        "CSV needs at least one attribute column plus the label");
  }
  for (const auto& row : rows) {
    if (static_cast<int>(row.size()) != num_columns) {
      return Status::InvalidArgument(StrPrintf(
          "ragged CSV: expected %d fields, found %zu", num_columns,
          row.size()));
    }
  }
  int label_column = options.label_column;
  if (label_column < 0) label_column = num_columns - 1;
  if (label_column >= num_columns) {
    return Status::InvalidArgument("label column out of range");
  }

  // Column type inference: numerical iff every value parses as a number.
  std::vector<bool> numeric(static_cast<size_t>(num_columns), true);
  for (const auto& row : rows) {
    for (int c = 0; c < num_columns; ++c) {
      double unused;
      if (numeric[c] && !ParseNumber(row[c], &unused)) numeric[c] = false;
    }
  }

  CsvDataset dataset;
  std::vector<Attribute> attrs;
  std::vector<int> column_of_attr;
  std::vector<std::unordered_map<std::string, int32_t>> dicts;
  for (int c = 0; c < num_columns; ++c) {
    if (c == label_column) continue;
    std::string name = (options.has_header && c < static_cast<int>(header.size()))
                           ? header[c]
                           : StrPrintf("col%d", c);
    column_of_attr.push_back(c);
    if (numeric[c]) {
      attrs.push_back(Attribute::Numerical(std::move(name)));
      dicts.emplace_back();
      dataset.categories.emplace_back();
    } else {
      // Build the category dictionary in order of first appearance.
      std::unordered_map<std::string, int32_t> dict;
      std::vector<std::string> names;
      for (const auto& row : rows) {
        if (dict.emplace(row[c], static_cast<int32_t>(names.size())).second) {
          names.push_back(row[c]);
        }
      }
      attrs.push_back(
          Attribute::Categorical(std::move(name),
                                 static_cast<int32_t>(names.size())));
      dicts.push_back(std::move(dict));
      dataset.categories.push_back(std::move(names));
    }
  }

  // Label dictionary (strings or numbers alike become class ids).
  std::unordered_map<std::string, int32_t> label_dict;
  for (const auto& row : rows) {
    if (label_dict
            .emplace(row[label_column],
                     static_cast<int32_t>(dataset.class_names.size()))
            .second) {
      dataset.class_names.push_back(row[label_column]);
    }
  }
  if (dataset.class_names.size() < 2) {
    return Status::InvalidArgument("CSV label column has fewer than 2 classes");
  }

  dataset.schema = Schema(std::move(attrs),
                          static_cast<int>(dataset.class_names.size()));
  BOAT_RETURN_NOT_OK(dataset.schema.Validate());

  dataset.tuples.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<double> values;
    values.reserve(column_of_attr.size());
    for (size_t a = 0; a < column_of_attr.size(); ++a) {
      const int c = column_of_attr[a];
      if (dataset.schema.IsNumerical(static_cast<int>(a))) {
        double v = 0;
        ParseNumber(row[c], &v);
        values.push_back(v);
      } else {
        values.push_back(static_cast<double>(dicts[a].at(row[c])));
      }
    }
    dataset.tuples.emplace_back(std::move(values),
                                label_dict.at(row[label_column]));
  }
  return dataset;
}

Status WriteCsv(const std::string& path, const Schema& schema,
                const std::vector<Tuple>& tuples,
                const std::vector<std::vector<std::string>>& categories,
                const std::vector<std::string>& class_names,
                const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot create CSV file: " + path);
  const char d = options.delimiter;
  if (options.has_header) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      out << EscapeCsv(schema.attribute(a).name, d) << d;
    }
    out << "label\n";
  }
  for (const Tuple& t : tuples) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (schema.IsNumerical(a)) {
        out << StrPrintf("%.17g", t.value(a));
      } else if (static_cast<size_t>(a) < categories.size() &&
                 !categories[a].empty()) {
        out << EscapeCsv(categories[a][t.category(a)], d);
      } else {
        out << t.category(a);
      }
      out << d;
    }
    if (!class_names.empty()) {
      out << EscapeCsv(class_names[t.label()], d);
    } else {
      out << t.label();
    }
    out << "\n";
  }
  // Flush before checking: a full-disk failure may otherwise still be
  // sitting in the stream buffer, pass the check, and be swallowed by the
  // destructor — reporting OK for a truncated file.
  out.flush();
  if (!out) return Status::IOError("short write to CSV file: " + path);
  return Status::OK();
}

}  // namespace boat
