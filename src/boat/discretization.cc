#include "boat/discretization.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "boat/bounds.h"
#include "common/status.h"

namespace boat {

// -------------------------------------------------------------- Discretization

Discretization::Discretization(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  if (!std::is_sorted(boundaries_.begin(), boundaries_.end())) {
    FatalError("Discretization boundaries must be ascending");
  }
  boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                    boundaries_.end());
}

int Discretization::BucketOf(double v) const {
  // Bucket b holds values in (boundary[b-1], boundary[b]]; the first bucket
  // is (-inf, boundary[0]] and the last (boundary[m-1], +inf).
  return static_cast<int>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), v) -
      boundaries_.begin());
}

int Discretization::BoundaryIndex(double v) const {
  auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), v);
  if (it == boundaries_.end() || *it != v) return -1;
  return static_cast<int>(it - boundaries_.begin());
}

void Discretization::AddBoundary(double v) {
  auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), v);
  if (it != boundaries_.end() && *it == v) return;
  boundaries_.insert(it, v);
}

// ---------------------------------------------------------------- BucketCounts

BucketCounts::BucketCounts(Discretization disc, int num_classes)
    : disc_(std::move(disc)),
      k_(num_classes),
      counts_(static_cast<size_t>(disc_.num_buckets()) * num_classes, 0),
      mins_(static_cast<size_t>(disc_.num_buckets())),
      maxes_(static_cast<size_t>(disc_.num_buckets())) {}

int64_t BucketCounts::BucketTotal(int b) const {
  const int64_t* row = bucket_counts(b);
  int64_t total = 0;
  for (int c = 0; c < k_; ++c) total += row[c];
  return total;
}

namespace {

// Updates one extreme tracker (is_min selects direction) for a weighted add.
// `bucket_now_empty` re-arms a lost tracker once nothing is left to track.
void UpdateExtreme(BucketCounts::ExtremeTrack* t, bool is_min, double value,
                   int32_t label, int64_t weight, int k,
                   bool bucket_now_empty) {
  if (weight > 0) {
    if (t->lost) return;
    const bool improves =
        t->counts.empty() || (is_min ? value < t->value : value > t->value);
    if (improves) {
      t->value = value;
      t->counts.assign(static_cast<size_t>(k), 0);
      t->counts[label] = weight;
    } else if (value == t->value) {
      t->counts[label] += weight;
    }
    return;
  }
  if (bucket_now_empty) {
    t->lost = false;
    t->counts.clear();
    return;
  }
  if (!t->lost && !t->counts.empty() && value == t->value) {
    t->counts[label] += weight;
    int64_t remaining = 0;
    for (const int64_t c : t->counts) remaining += c;
    if (remaining == 0) {
      // The tracked extreme vanished; its successor is unknown.
      t->lost = true;
      t->counts.clear();
    }
  }
}

}  // namespace

void BucketCounts::Add(double value, int32_t label, int64_t weight) {
  const int b = disc_.BucketOf(value);
  counts_[static_cast<size_t>(b) * k_ + label] += weight;
  const bool bucket_now_empty = weight < 0 && BucketTotal(b) == 0;
  UpdateExtreme(&mins_[b], /*is_min=*/true, value, label, weight, k_,
                bucket_now_empty);
  UpdateExtreme(&maxes_[b], /*is_min=*/false, value, label, weight, k_,
                bucket_now_empty);
}

namespace {

// Combines two insert-only extreme tracks of the same bucket (is_min selects
// the direction). Equivalent to having inserted both tracks' observations
// into one counter, in any order.
void MergeExtreme(BucketCounts::ExtremeTrack* t,
                  const BucketCounts::ExtremeTrack& other, bool is_min) {
  if (t->lost || other.lost) {  // cannot happen insert-only; stay safe
    t->lost = true;
    t->counts.clear();
    return;
  }
  if (other.counts.empty()) return;
  if (t->counts.empty()) {
    *t = other;
    return;
  }
  if (other.value == t->value) {
    for (size_t c = 0; c < t->counts.size(); ++c) {
      t->counts[c] += other.counts[c];
    }
  } else if (is_min ? other.value < t->value : other.value > t->value) {
    *t = other;
  }
}

}  // namespace

void BucketCounts::MergeFrom(const BucketCounts& other) {
  if (other.k_ != k_ || other.disc_.boundaries() != disc_.boundaries()) {
    FatalError("BucketCounts::MergeFrom: incompatible shapes");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  for (size_t b = 0; b < mins_.size(); ++b) {
    MergeExtreme(&mins_[b], other.mins_[b], /*is_min=*/true);
    MergeExtreme(&maxes_[b], other.maxes_[b], /*is_min=*/false);
  }
}

std::optional<std::vector<int64_t>> BucketCounts::MinValueCounts(int b) const {
  const ExtremeTrack& mt = mins_[b];
  if (mt.lost || mt.counts.empty()) return std::nullopt;
  return mt.counts;
}

std::optional<std::pair<double, std::vector<int64_t>>>
BucketCounts::MaxValueInfo(int b) const {
  const ExtremeTrack& mt = maxes_[b];
  if (mt.lost || mt.counts.empty()) return std::nullopt;
  return std::make_pair(mt.value, mt.counts);
}

std::vector<int64_t> BucketCounts::StampAtUpperBoundary(int b) const {
  std::vector<int64_t> stamp(k_, 0);
  for (int i = 0; i <= b; ++i) {
    const int64_t* row = bucket_counts(i);
    for (int c = 0; c < k_; ++c) stamp[c] += row[c];
  }
  return stamp;
}

std::vector<int64_t> BucketCounts::Totals() const {
  return StampAtUpperBoundary(disc_.num_buckets() - 1);
}

// -------------------------------------------------- BuildAdaptiveDiscretization

Discretization BuildAdaptiveDiscretization(const NumericAvc& sample_avc,
                                           const ImpurityFunction& imp,
                                           int max_buckets) {
  const int k = sample_avc.num_classes();
  const int64_t n_values = sample_avc.num_values();
  if (n_values == 0) return Discretization(std::vector<double>{});
  const std::vector<int64_t> totals = sample_avc.Totals();
  int64_t total = 0;
  for (const int64_t c : totals) total += c;

  // Pass 1: exact impurity at every candidate split (prefix stamp) to find
  // the estimated global minimum and the node impurity.
  std::vector<int64_t> stamp(k, 0);
  std::vector<int64_t> right(k, 0);
  double min_impurity = std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < n_values; ++i) {
    const int64_t* row = sample_avc.counts(i);
    for (int c = 0; c < k; ++c) {
      stamp[c] += row[c];
      right[c] = totals[c] - stamp[c];
    }
    if (i + 1 == n_values) break;  // degenerate full split
    const double v = imp.Eval(stamp.data(), right.data(), k, total);
    if (v < min_impurity) min_impurity = v;
  }
  std::vector<int64_t> zeros(k, 0);
  const double node_impurity = imp.EvalNode(totals.data(), k, total);
  // A bucket whose corner bound falls below this is in "dangerous" territory:
  // close it immediately so the cleanup-phase bound stays tight there.
  const double tight_threshold =
      min_impurity + 0.05 * std::max(node_impurity - min_impurity, 1e-12);

  const int64_t quota =
      std::max<int64_t>(1, (total + max_buckets - 1) / max_buckets);
  const int hard_cap = 4 * max_buckets;

  std::vector<double> boundaries;
  std::vector<int64_t> bucket_lo(k, 0);  // stamp at current bucket's lower edge
  std::fill(stamp.begin(), stamp.end(), 0);
  int64_t in_bucket = 0;
  for (int64_t i = 0; i < n_values; ++i) {
    const int64_t* row = sample_avc.counts(i);
    for (int c = 0; c < k; ++c) stamp[c] += row[c];
    for (int c = 0; c < k; ++c) in_bucket += row[c];
    if (i + 1 == n_values) break;  // last value needs no upper boundary

    bool close = in_bucket >= quota;
    // The corner-bound early close costs 2^k per candidate; past the corner
    // bound's class cap it returns -infinity (which would close a bucket at
    // every value), so high-class-count attributes fall back to plain
    // equi-depth buckets.
    if (!close && k <= kMaxCornerBoundClasses &&
        static_cast<int>(boundaries.size()) < hard_cap) {
      const double lb = CornerLowerBound(imp, bucket_lo, stamp, totals, total);
      close = lb <= tight_threshold;
    }
    if (close && static_cast<int>(boundaries.size()) < hard_cap) {
      boundaries.push_back(sample_avc.value(i));
      bucket_lo = stamp;
      in_bucket = 0;
    }
  }
  return Discretization(std::move(boundaries));
}

}  // namespace boat
