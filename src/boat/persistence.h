// Model persistence: save a trained (and update-capable) BOAT classifier to
// a directory and load it back in a later process.
//
// A saved model directory contains a line-based text manifest plus one table
// file per tuple store (the S_n files, frontier families, archive segments).
// Loading reconstructs the full engine state — per-node statistics,
// trackers, stores, archive — so incremental InsertChunk/DeleteChunk keep
// working across process restarts with the identical-tree guarantee intact.
//
// The split selection method itself is not serialized (it is code); the
// caller passes the selector again at load time and the manifest verifies it
// is the same method by name.

#ifndef BOAT_BOAT_PERSISTENCE_H_
#define BOAT_BOAT_PERSISTENCE_H_

#include <memory>
#include <string>

#include "boat/builder.h"

namespace boat {

/// \brief Saves a trained engine into `dir` (created if absent; existing
/// manifest is overwritten).
Status SaveModel(const BoatEngine& engine, const std::string& dir);

/// \brief Loads an engine saved by SaveModel. `selector` must be the same
/// split selection method (verified by name) and must outlive the engine.
Result<std::unique_ptr<BoatEngine>> LoadModel(const std::string& dir,
                                              const SplitSelector* selector);

/// \brief Convenience wrappers at the classifier level.
///
/// \deprecated Prefer Session::Open / Session::Persist (boat/session.h):
/// the Session facade resolves the selector by name, validates chunks, and
/// keeps the directory transactionally in sync with the in-memory engine.
/// Kept for source compatibility; doc-level only so -Werror builds stay
/// clean.
Status SaveClassifier(const BoatClassifier& classifier,
                      const std::string& dir);
Result<std::unique_ptr<BoatClassifier>> LoadClassifier(
    const std::string& dir, const SplitSelector* selector);

// --- bagged bootstrap ensembles ---------------------------------------------
//
// A trained classifier's b bootstrap trees (BoatOptions::keep_bootstrap_trees)
// can be persisted beside the main model as a bagged majority-vote ensemble:
// `dir` holds a `manifest.boatensemble` (schema + member count) plus one
// `member-<i>.boattree` per tree. Conventionally `dir` is
// `<model_dir>/ensemble` — Session::Persist emits it there automatically when
// the session's classifier kept its bootstrap trees.

/// \brief Saves `members` (non-empty, all over `schema`) into `dir`.
Status SaveEnsemble(const Schema& schema,
                    const std::vector<DecisionTree>& members,
                    const std::string& dir);

/// \brief A loaded ensemble: the shared schema plus the member trees, ready
/// to compile into a CompiledEnsemble.
struct LoadedEnsemble {
  Schema schema;
  std::vector<DecisionTree> members;
};

/// \brief Loads an ensemble saved by SaveEnsemble.
Result<LoadedEnsemble> LoadEnsemble(const std::string& dir);

}  // namespace boat

#endif  // BOAT_BOAT_PERSISTENCE_H_
