#include "boat/options.h"

#include "common/str_util.h"

namespace boat {

Status BoatOptions::Validate() const {
  if (sample_size == 0) {
    return Status::InvalidArgument("BoatOptions: sample_size must be > 0");
  }
  if (bootstrap_count < 1) {
    return Status::InvalidArgument(
        StrPrintf("BoatOptions: bootstrap_count must be >= 1 (got %d)",
                  bootstrap_count));
  }
  if (bootstrap_subsample == 0) {
    return Status::InvalidArgument(
        "BoatOptions: bootstrap_subsample must be > 0");
  }
  if (bootstrap_subsample > sample_size) {
    return Status::InvalidArgument(StrPrintf(
        "BoatOptions: bootstrap_subsample (%zu) exceeds sample_size (%zu)",
        bootstrap_subsample, sample_size));
  }
  if (inmem_threshold < 0) {
    return Status::InvalidArgument(
        StrPrintf("BoatOptions: inmem_threshold must be >= 0 (got %lld)",
                  static_cast<long long>(inmem_threshold)));
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        StrPrintf("BoatOptions: num_threads must be >= 0 (got %d); use 0 "
                  "for all hardware cores",
                  num_threads));
  }
  if (store_memory_budget == 0) {
    return Status::InvalidArgument(
        "BoatOptions: store_memory_budget must be > 0");
  }
  if (max_buckets_per_attr < 2) {
    return Status::InvalidArgument(
        StrPrintf("BoatOptions: max_buckets_per_attr must be >= 2 (got %d)",
                  max_buckets_per_attr));
  }
  if (!(bound_epsilon >= 0)) {  // rejects negatives and NaN
    return Status::InvalidArgument(
        "BoatOptions: bound_epsilon must be >= 0");
  }
  if (max_recursion_depth < 0) {
    return Status::InvalidArgument(
        StrPrintf("BoatOptions: max_recursion_depth must be >= 0 (got %d)",
                  max_recursion_depth));
  }
  if (exact_rebuild_cap < 0) {
    return Status::InvalidArgument(
        StrPrintf("BoatOptions: exact_rebuild_cap must be >= 0 (got %lld)",
                  static_cast<long long>(exact_rebuild_cap)));
  }
  if (limits.max_depth < 0) {
    return Status::InvalidArgument(
        StrPrintf("BoatOptions: limits.max_depth must be >= 0 (got %d)",
                  limits.max_depth));
  }
  if (limits.min_tuples_to_split < 2) {
    return Status::InvalidArgument(StrPrintf(
        "BoatOptions: limits.min_tuples_to_split must be >= 2 (got %lld)",
        static_cast<long long>(limits.min_tuples_to_split)));
  }
  if (limits.stop_family_size < 0) {
    return Status::InvalidArgument(StrPrintf(
        "BoatOptions: limits.stop_family_size must be >= 0 (got %lld)",
        static_cast<long long>(limits.stop_family_size)));
  }
  if (limits.num_threads < 0) {
    return Status::InvalidArgument(
        StrPrintf("BoatOptions: limits.num_threads must be >= 0 (got %d); "
                  "use 0 for all hardware cores",
                  limits.num_threads));
  }
  return Status::OK();
}

}  // namespace boat
