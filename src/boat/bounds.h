// Lemma 3.1: concavity-based lower bound on the impurity of any split whose
// stamp point lies in the hyper-rectangle spanned by two stamp points.

#ifndef BOAT_BOAT_BOUNDS_H_
#define BOAT_BOAT_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "split/impurity.h"

namespace boat {

/// Largest class count for which the 2^k corner enumeration is evaluated.
/// The bound costs Theta(2^k * k) per call and is invoked per candidate
/// boundary inside BuildAdaptiveDiscretization and per bucket inside every
/// verification check, so the cap keeps a single call under ~4k corner
/// evaluations. Beyond it CornerLowerBound returns -infinity — a valid
/// (maximally conservative) lower bound that makes verification fail and
/// fall back to a rebuild instead of silently burning 2^k work per call.
inline constexpr int kMaxCornerBoundClasses = 12;

/// \brief Lower bound on imp_S over the box [lo, hi] (componentwise), where
/// a stamp point s induces the partition (s | node_totals - s).
///
/// Because the impurity is concave in the stamp point, its minimum over the
/// box is attained at one of the 2^k corners (Mangasarian / Lemma 3.1);
/// this evaluates all corners and returns the smallest value. Complexity is
/// Theta(2^k * k) in the number of classes k; for
/// k > kMaxCornerBoundClasses the enumeration is skipped and -infinity is
/// returned (conservative: callers treat it as "bound not tight enough" and
/// rebuild from data, which is always correct).
///
/// \param lo, hi       stamp points (k entries each), lo <= hi componentwise
/// \param node_totals  per-class totals N^i of the node family
/// \param total        total family size |F_n|
double CornerLowerBound(const ImpurityFunction& imp,
                        const std::vector<int64_t>& lo,
                        const std::vector<int64_t>& hi,
                        const std::vector<int64_t>& node_totals,
                        int64_t total);

}  // namespace boat

#endif  // BOAT_BOAT_BOUNDS_H_
