// Lemma 3.1: concavity-based lower bound on the impurity of any split whose
// stamp point lies in the hyper-rectangle spanned by two stamp points.

#ifndef BOAT_BOAT_BOUNDS_H_
#define BOAT_BOAT_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "split/impurity.h"

namespace boat {

/// \brief Lower bound on imp_S over the box [lo, hi] (componentwise), where
/// a stamp point s induces the partition (s | node_totals - s).
///
/// Because the impurity is concave in the stamp point, its minimum over the
/// box is attained at one of the 2^k corners (Mangasarian / Lemma 3.1);
/// this evaluates all corners and returns the smallest value.
///
/// \param lo, hi       stamp points (k entries each), lo <= hi componentwise
/// \param node_totals  per-class totals N^i of the node family
/// \param total        total family size |F_n|
double CornerLowerBound(const ImpurityFunction& imp,
                        const std::vector<int64_t>& lo,
                        const std::vector<int64_t>& hi,
                        const std::vector<int64_t>& node_totals,
                        int64_t total);

}  // namespace boat

#endif  // BOAT_BOAT_BOUNDS_H_
