#include "boat/cleanup.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <unordered_set>

#include "boat/bounds.h"
#include "common/parallel.h"
#include "common/str_util.h"
#include "storage/sampling.h"
#include "storage/table_file.h"
#include "tree/columnar_builder.h"
#include "tree/inmem_builder.h"

namespace boat {

namespace {

// Shifts all depths in a grafted sub-model by `delta`.
void OffsetDepths(ModelNode* node, int delta) {
  node->depth += delta;
  if (node->left != nullptr) OffsetDepths(node->left.get(), delta);
  if (node->right != nullptr) OffsetDepths(node->right.get(), delta);
}

// Marks a whole grafted sub-model with the rebuild count of the position it
// replaces: if the region's statistics are unstable, every node in it is
// suspect, and repeated failures anywhere inside demote the region to plain
// in-memory maintenance.
void SetRebuildCount(ModelNode* node, int count) {
  node->rebuild_count = count;
  if (node->left != nullptr) SetRebuildCount(node->left.get(), count);
  if (node->right != nullptr) SetRebuildCount(node->right.get(), count);
}

bool IsPure(const std::vector<int64_t>& counts) {
  int populated = 0;
  for (const int64_t c : counts) {
    if (c > 0) ++populated;
  }
  return populated <= 1;
}

}  // namespace

// ------------------------------------------------------------- ctor / helpers

BoatEngine::BoatEngine(Schema schema, const SplitSelector* selector,
                       BoatOptions options, TempFileManager* temp,
                       int recursion_depth)
    : schema_(std::move(schema)),
      selector_(selector),
      options_(std::move(options)),
      temp_(temp),
      recursion_depth_(recursion_depth),
      rng_(options_.seed) {
  // The engine-level thread budget is the single source of truth; mirror it
  // into the growth limits so every tree build this engine triggers —
  // bootstrap trees, frontier subtrees, repairs, recursive child engines —
  // scales without each call site re-plumbing a thread count.
  options_.limits.num_threads = options_.num_threads;
  if (selector_->kind() == SelectorKind::kImpurity) {
    impurity_ =
        &static_cast<const ImpuritySplitSelector*>(selector_)->impurity();
  }
  if (temp_ == nullptr) {
    auto created = TempFileManager::Create(options_.temp_dir);
    CheckOk(created.status());
    owned_temp_ =
        std::make_unique<TempFileManager>(std::move(created).ValueOrDie());
    temp_ = owned_temp_.get();
  }
}

BoatEngine::~BoatEngine() = default;

std::unique_ptr<SpillableTupleStore> BoatEngine::NewStore(const char* hint) {
  return std::make_unique<SpillableTupleStore>(schema_, temp_, hint,
                                               options_.store_memory_budget);
}

// ----------------------------------------------------------------- skeleton

std::unique_ptr<ModelNode> BoatEngine::MakeSkeleton(const CoarseNode& coarse,
                                                    int depth) {
  auto node = std::make_unique<ModelNode>();
  node->depth = depth;
  if (coarse.is_frontier()) {
    node->kind = ModelNode::Kind::kFrontier;
    node->family = NewStore("family");
    node->class_totals.assign(schema_.num_classes(), 0);
    // Skip storing the family when this frontier is expected to become a
    // plain stop-rule leaf (small enough, beyond the depth limit, or pure)
    // and nothing downstream will need the tuples.
    if (!options_.enable_updates) {
      const int64_t stop = options_.limits.stop_family_size;
      const double estimated_family =
          static_cast<double>(coarse.sample_family) * sample_scale_;
      const bool expect_small =
          stop > 0 && estimated_family <= 0.8 * static_cast<double>(stop);
      const bool expect_pure =
          coarse.sample_pure && coarse.sample_family >= 30;
      if (expect_small || expect_pure ||
          depth >= options_.limits.max_depth) {
        node->collect_family = false;
      }
      // determinism-lint: allow(debug-only stderr logging; no tree decision depends on it)
      if (std::getenv("BOAT_DEBUG_CHECKS") != nullptr) {
        std::fprintf(stderr,
                     "[skeleton] frontier depth=%d sample_family=%lld "
                     "pure=%d est=%.0f collect=%d\n",
                     depth, (long long)coarse.sample_family,
                     (int)coarse.sample_pure, estimated_family,
                     (int)node->collect_family);
      }
    }
    return node;
  }
  node->kind = ModelNode::Kind::kInternal;
  node->coarse = *coarse.criterion;
  node->class_totals.assign(schema_.num_classes(), 0);

  const int k = schema_.num_classes();
  if (impurity_ != nullptr) {
    node->buckets.resize(schema_.num_attributes());
    for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
      if (schema_.IsNumerical(attr)) {
        node->buckets[attr] = BucketCounts(coarse.discretizations[attr], k);
      }
    }
  } else {
    node->moments.emplace(schema_);
  }
  node->cat_avcs.reserve(schema_.num_attributes());
  for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
    const int card =
        schema_.IsCategorical(attr) ? schema_.attribute(attr).cardinality : 1;
    node->cat_avcs.emplace_back(card, k);
  }
  if (node->coarse.is_numerical) {
    node->boundary = ExtremeTracker(node->coarse.interval_lo);
    if (impurity_ == nullptr) {
      node->family_max.emplace(std::numeric_limits<double>::infinity());
    }
    node->pending = NewStore("pending");
    node->retained = NewStore("retained");
  }
  node->left = MakeSkeleton(*coarse.left, depth + 1);
  node->right = MakeSkeleton(*coarse.right, depth + 1);
  return node;
}

// ---------------------------------------------------------------- streaming

void BoatEngine::UpdateNodeStats(ModelNode* node, const Tuple& t,
                                 int64_t weight) {
  node->class_totals[t.label()] += weight;
  if (impurity_ != nullptr) {
    for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
      if (schema_.IsNumerical(attr)) {
        node->buckets[attr].Add(t.value(attr), t.label(), weight);
      } else {
        node->cat_avcs[attr].Add(t.category(attr), t.label(), weight);
      }
    }
  } else {
    node->moments->Add(t, weight);
    for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
      if (schema_.IsCategorical(attr)) {
        node->cat_avcs[attr].Add(t.category(attr), t.label(), weight);
      }
    }
  }
  if (node->coarse.is_numerical) {
    const double v = t.value(node->coarse.attribute);
    if (weight > 0) {
      node->boundary.Insert(v);
      if (node->family_max.has_value()) node->family_max->Insert(v);
    } else {
      node->boundary.Remove(v);
      if (node->family_max.has_value()) node->family_max->Remove(v);
    }
  }
}

Status BoatEngine::Inject(ModelNode* node, const Tuple& t, int64_t weight) {
  while (true) {
    node->dirty = true;
    if (node->kind == ModelNode::Kind::kFrontier) {
      node->class_totals[t.label()] += weight;
      if (!node->collect_family) return Status::OK();
      if (weight > 0) return node->family->Append(t);
      return node->family->RemoveOne(t);
    }

    UpdateNodeStats(node, t, weight);

    const CoarseCriterion& crit = node->coarse;
    const bool in_interval =
        crit.is_numerical && crit.InInterval(t.value(crit.attribute));
    if (in_interval) {
      // Maintain the exact per-value interval AVC.
      const double v = t.value(crit.attribute);
      auto [it, inserted] = node->interval_avc.try_emplace(
          v, std::vector<int64_t>(schema_.num_classes(), 0));
      it->second[t.label()] += weight;
      if (weight < 0) {
        bool all_zero = true;
        for (const int64_t c : it->second) {
          if (c != 0) all_zero = false;
        }
        if (all_zero) node->interval_avc.erase(it);
      }

      if (weight > 0) {
        // Hold the tuple here until the final split point is known.
        return node->pending->Append(t);
      }
      // Deletion: if the tuple was not yet distributed it sits in `pending`;
      // otherwise it was routed by the current final split and its traces
      // must be removed from that side.
      if (node->pending->RemoveOne(t).ok()) return Status::OK();
      BOAT_RETURN_NOT_OK(node->retained->RemoveOne(t));
      if (!node->final_split.has_value()) {
        return Status::OK();  // no children to clean up
      }
      node = node->final_split->SendLeft(t) ? node->left.get()
                                            : node->right.get();
      continue;
    }

    // Out-of-interval tuples route identically under every split the coarse
    // criterion admits, so the coarse criterion decides the branch.
    bool go_left;
    if (crit.is_numerical) {
      go_left = t.value(crit.attribute) <= crit.interval_lo;
    } else {
      go_left = std::binary_search(crit.subset.begin(), crit.subset.end(),
                                   t.category(crit.attribute));
    }
    node = go_left ? node->left.get() : node->right.get();
  }
}

// ------------------------------------------------------------- verification

bool BoatEngine::StopRuleSaysLeaf(const ModelNode& node) const {
  const GrowthLimits& limits = options_.limits;
  const int64_t total = node.total_tuples();
  if (node.depth >= limits.max_depth) return true;
  if (total < limits.min_tuples_to_split) return true;
  if (limits.stop_family_size > 0 && total <= limits.stop_family_size) {
    return true;
  }
  return IsPure(node.class_totals);
}

Result<BoatEngine::CheckResult> BoatEngine::CheckNode(const ModelNode& node) {
  if (StopRuleSaysLeaf(node)) {
    return CheckResult{Outcome::kLeafize, std::nullopt};
  }
  return impurity_ != nullptr ? CheckNodeImpurity(node)
                              : CheckNodeQuest(node);
}

Result<BoatEngine::CheckResult> BoatEngine::CheckNodeImpurity(
    const ModelNode& node) {
  const int k = schema_.num_classes();
  const int64_t total = node.total_tuples();
  const CoarseCriterion& crit = node.coarse;
  const CheckResult fail{Outcome::kFail, std::nullopt};
  // determinism-lint: allow(debug-only stderr logging; no tree decision depends on it)
  const bool debug = std::getenv("BOAT_DEBUG_CHECKS") != nullptr;

  // --- Step 1: the exact best split admitted by the coarse criterion -------
  std::optional<Split> best;
  if (crit.is_numerical) {
    if (!node.boundary.known()) return fail;  // vL lost to deletions
    // Candidates inside the interval, from the incrementally maintained
    // exact per-value counts.
    NumericAvc avc_in(k);
    for (const auto& [value, counts] : node.interval_avc) {
      for (int c = 0; c < k; ++c) {
        if (counts[c] != 0) avc_in.Add(value, c, counts[c]);
      }
    }
    avc_in.Finalize();
    const BucketCounts& bc = node.buckets[crit.attribute];
    const int lo_idx = bc.disc().BoundaryIndex(crit.interval_lo);
    if (lo_idx < 0) return Status::Internal("interval_lo is not a boundary");
    const std::vector<int64_t> left_base = bc.StampAtUpperBoundary(lo_idx);
    std::optional<double> boundary_value;
    if (!node.boundary.empty()) boundary_value = node.boundary.value();
    best = BestNumericSplitRange(avc_in, crit.attribute, *impurity_, left_base,
                                 node.class_totals, boundary_value);
    if (!best.has_value()) {
      if (debug) {
        std::fprintf(stderr,
                     "[check] depth=%d attr=%d no in-interval candidate "
                     "(interval [%g,%g], %zu values, boundary=%d)\n",
                     node.depth, crit.attribute, crit.interval_lo,
                     crit.interval_hi, node.interval_avc.size(),
                     boundary_value.has_value());
      }
      return fail;  // no admissible candidate
    }
  } else {
    std::optional<Split> exact = BestCategoricalSplit(
        node.cat_avcs[crit.attribute], crit.attribute, *impurity_);
    if (!exact.has_value()) return fail;
    if (exact->subset != crit.subset) return fail;  // subset changed
    best = std::move(exact);
  }

  // --- Step 2: no other attribute may admit a better (or tying) split ------
  for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
    if (schema_.IsCategorical(attr)) {
      if (!crit.is_numerical && attr == crit.attribute) continue;
      std::optional<Split> cand =
          BestCategoricalSplit(node.cat_avcs[attr], attr, *impurity_);
      if (cand.has_value() && BetterSplit(*cand, *best)) {
        if (debug) {
          std::fprintf(stderr,
                       "[check] depth=%d cat attr=%d beats coarse (%.17g vs "
                       "%.17g)\n",
                       node.depth, attr, cand->impurity, best->impurity);
        }
        return fail;
      }
      continue;
    }
    // Numerical attribute: Lemma 3.1 corner bounds per bucket; for the
    // coarse splitting attribute only buckets outside the interval count
    // (inside is covered exactly by Step 1).
    const BucketCounts& bc = node.buckets[attr];
    const bool is_coarse_attr = crit.is_numerical && attr == crit.attribute;
    int inside_lo = -1;
    int inside_hi = -2;
    // The bucket containing the boundary candidate vL: vL's own candidate is
    // evaluated exactly in Step 1, so it must be excluded from the bound box
    // (it frequently IS the best split, and a box containing it would tie
    // the exact minimum and force a spurious rebuild every time).
    int vl_bucket = -1;
    if (is_coarse_attr) {
      inside_lo = bc.disc().BoundaryIndex(crit.interval_lo) + 1;
      inside_hi = bc.disc().BoundaryIndex(crit.interval_hi);
      if (!node.boundary.empty()) {
        vl_bucket = bc.disc().BucketOf(node.boundary.value());
      }
    }
    std::vector<int64_t> stamp_lo(k, 0);
    std::vector<int64_t> stamp_hi(k, 0);
    for (int b = 0; b < bc.disc().num_buckets(); ++b) {
      const int64_t* row = bc.bucket_counts(b);
      for (int c = 0; c < k; ++c) stamp_hi[c] += row[c];
      const int64_t bucket_total = bc.BucketTotal(b);
      bool skip_bucket =
          (is_coarse_attr && b >= inside_lo && b <= inside_hi) ||
          bucket_total == 0;  // no family value => no candidate inside
      std::vector<int64_t> hi = stamp_hi;
      if (!skip_bucket && b == vl_bucket) {
        // Exclude vL: subtract its tuples from the box's upper corner.
        // vL is necessarily this bucket's largest value.
        auto max_info = bc.MaxValueInfo(b);
        if (!max_info.has_value() ||
            max_info->first != node.boundary.value()) {
          return fail;  // tracker lost to deletions: cannot exclude exactly
        }
        int64_t max_total = 0;
        for (int c = 0; c < k; ++c) {
          hi[c] -= max_info->second[c];
          max_total += max_info->second[c];
        }
        // If vL was the bucket's only value there is nothing left to check.
        if (bucket_total == max_total) skip_bucket = true;
      }
      if (!skip_bucket) {
        // Tighten the box: every candidate in the bucket dominates the
        // bucket's smallest value's stamp point.
        std::vector<int64_t> lo = stamp_lo;
        if (auto min_counts = bc.MinValueCounts(b); min_counts.has_value()) {
          for (int c = 0; c < k; ++c) lo[c] += (*min_counts)[c];
        }
        const double lb =
            CornerLowerBound(*impurity_, lo, hi, node.class_totals, total);
        if (lb <= best->impurity + options_.bound_epsilon) {
          if (debug) {
            std::fprintf(
                stderr,
                "[check] depth=%d attr=%d bucket=%d/%d (coarse attr=%d "
                "interval [%g,%g]) lb=%.17g best=%.17g total_in_bucket=%lld\n",
                node.depth, attr, b, bc.disc().num_buckets(), crit.attribute,
                crit.interval_lo, crit.interval_hi, lb, best->impurity,
                static_cast<long long>(bc.BucketTotal(b)));
            std::fprintf(stderr, "        totals=[%lld %lld] lo=[%lld %lld] "
                         "hi=[%lld %lld] best_value=%g bucket_hi_boundary=%g\n",
                         (long long)node.class_totals[0],
                         (long long)node.class_totals[1], (long long)lo[0],
                         (long long)lo[1], (long long)stamp_hi[0],
                         (long long)stamp_hi[1], best->value,
                         b < (int)bc.disc().boundaries().size()
                             ? bc.disc().boundaries()[b]
                             : -1.0);
          }
          return fail;
        }
      }
      stamp_lo = stamp_hi;
    }
  }

  // --- Step 3: growth-rule acceptance ---------------------------------------
  if (!selector_->Accept(*best, node.class_totals, total)) {
    return CheckResult{Outcome::kLeafize, std::nullopt};
  }
  return CheckResult{Outcome::kPass, std::move(best)};
}

Result<BoatEngine::CheckResult> BoatEngine::CheckNodeQuest(
    const ModelNode& node) {
  const int k = schema_.num_classes();
  const CoarseCriterion& crit = node.coarse;
  const CheckResult fail{Outcome::kFail, std::nullopt};

  // Exact association score of every attribute from the streamed statistics.
  int best_attr = -1;
  double best_score = 0.0;
  for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
    double score;
    if (schema_.IsNumerical(attr)) {
      std::vector<int64_t> count(k), sum(k);
      std::vector<__int128> sum_sq(k);
      for (int c = 0; c < k; ++c) {
        count[c] = node.moments->count(attr, c);
        sum[c] = node.moments->sum(attr, c);
        sum_sq[c] = node.moments->sum_sq(attr, c);
      }
      score = QuestSelector::NumericScore(count.data(), sum.data(),
                                          sum_sq.data(), k);
    } else {
      score = QuestSelector::CategoricalScore(node.cat_avcs[attr]);
    }
    if (score > best_score) {  // ties keep the smaller attribute index
      best_score = score;
      best_attr = attr;
    }
  }
  if (best_attr < 0) return CheckResult{Outcome::kLeafize, std::nullopt};
  if (best_attr != crit.attribute) return fail;

  std::optional<Split> split;
  if (crit.is_numerical) {
    std::vector<int64_t> count(k), sum(k);
    for (int c = 0; c < k; ++c) {
      count[c] = node.moments->count(crit.attribute, c);
      sum[c] = node.moments->sum(crit.attribute, c);
    }
    const std::optional<double> theta =
        QuestSelector::Threshold(count.data(), sum.data(), k);
    if (!theta.has_value()) return fail;
    if (*theta > crit.interval_hi) return fail;
    if (!node.boundary.known()) return fail;
    double snapped = -std::numeric_limits<double>::infinity();
    if (!node.boundary.empty() && node.boundary.value() <= *theta) {
      snapped = node.boundary.value();
    }
    for (const auto& [value, counts] : node.interval_avc) {
      if (value > *theta) break;
      snapped = value;  // map iterates ascending
    }
    if (!std::isfinite(snapped)) return fail;  // theta below known values
    if (!node.family_max.has_value() || !node.family_max->known()) {
      return fail;
    }
    if (node.family_max->empty() || snapped >= node.family_max->value()) {
      return fail;  // reference would clamp to the second-largest value
    }
    split = Split::Numerical(crit.attribute, snapped, -best_score);
  } else {
    std::optional<Split> cand = selector_->EvaluateCategoricalAttr(
        node.cat_avcs[crit.attribute], crit.attribute);
    if (!cand.has_value()) return fail;
    if (cand->subset != crit.subset) return fail;
    split = std::move(cand);
  }
  return CheckResult{Outcome::kPass, std::move(split)};
}

// ------------------------------------------------------- finalize machinery

Result<bool> BoatEngine::CollectSubtreeFamily(const ModelNode& node,
                                              SpillableTupleStore* out) {
  // Every family tuple lives in exactly one of: the pending store of the
  // first ancestor that held it undistributed, or a frontier family store.
  // (Retained stores are excluded: their tuples were already pushed down.)
  Status append = Status::OK();
  auto sink = [&](const Tuple& t) {
    if (append.ok()) append = out->Append(t);
  };
  if (node.kind == ModelNode::Kind::kFrontier) {
    if (!node.collect_family) return false;
    BOAT_RETURN_NOT_OK(node.family->ForEach(sink));
    BOAT_RETURN_NOT_OK(append);
    return true;
  }
  if (node.pending != nullptr) {
    BOAT_RETURN_NOT_OK(node.pending->ForEach(sink));
    BOAT_RETURN_NOT_OK(append);
  }
  if (node.left == nullptr || node.right == nullptr) {
    return false;  // children discarded earlier; tuples unrecoverable
  }
  BOAT_ASSIGN_OR_RETURN(bool left_ok, CollectSubtreeFamily(*node.left, out));
  BOAT_ASSIGN_OR_RETURN(bool right_ok, CollectSubtreeFamily(*node.right, out));
  return left_ok && right_ok;
}

Status BoatEngine::Leafize(ModelNode* node, BoatStats* stats) {
  if (stats != nullptr) ++stats->leafized_nodes;
  // Convert to a frontier node over the node's own family, so that no tuple
  // is lost: if the family later grows past the stop rules again, it can be
  // re-expanded without touching the rest of the database.
  auto family = NewStore("leafized");
  bool complete = true;
  if (node->pending != nullptr) {
    Status append = Status::OK();
    BOAT_RETURN_NOT_OK(node->pending->ForEach([&](const Tuple& t) {
      if (append.ok()) append = family->Append(t);
    }));
    BOAT_RETURN_NOT_OK(append);
  }
  if (node->left != nullptr && node->right != nullptr) {
    BOAT_ASSIGN_OR_RETURN(bool left_ok,
                          CollectSubtreeFamily(*node->left, family.get()));
    BOAT_ASSIGN_OR_RETURN(bool right_ok,
                          CollectSubtreeFamily(*node->right, family.get()));
    complete = left_ok && right_ok;
  } else {
    complete = false;
  }
  if (!complete) {
    // Tuples unrecoverable (descendants did not collect). Keep the class
    // totals; a later re-expansion goes through the repair scan.
    BOAT_RETURN_NOT_OK(family->Clear());
  }

  std::vector<int64_t> totals = node->class_totals;
  const int depth = node->depth;
  const int rebuilds = node->rebuild_count;
  *node = ModelNode();
  node->kind = ModelNode::Kind::kFrontier;
  node->depth = depth;
  node->class_totals = std::move(totals);
  node->family = std::move(family);
  node->collect_family = complete;
  node->dirty = true;
  node->rebuild_count = rebuilds;
  return Status::OK();
}

Status BoatEngine::SideSwitch(ModelNode* node, const Split& old_split,
                              const Split& new_split, BoatStats* stats) {
  if (old_split.SameCriterion(new_split)) return Status::OK();
  // Only numerical split points can move without failing verification, and
  // every tuple whose side changes lies inside the confidence interval,
  // hence in the retained store.
  BOAT_ASSIGN_OR_RETURN(auto retained, node->retained->ToVector());
  Status status = Status::OK();
  for (const Tuple& t : retained) {
    const bool was_left = old_split.SendLeft(t);
    const bool now_left = new_split.SendLeft(t);
    if (was_left == now_left) continue;
    BOAT_RETURN_NOT_OK(
        Inject(was_left ? node->left.get() : node->right.get(), t, -1));
    BOAT_RETURN_NOT_OK(
        Inject(now_left ? node->left.get() : node->right.get(), t, +1));
    if (stats != nullptr) ++stats->side_switch_tuples;
  }
  return status;
}

Status BoatEngine::DistributePending(ModelNode* node, BoatStats* stats) {
  if (node->pending == nullptr || node->pending->empty()) return Status::OK();
  if (stats != nullptr) stats->retained_tuples += node->pending->size();
  BOAT_ASSIGN_OR_RETURN(auto pending, node->pending->ToVector());
  BOAT_RETURN_NOT_OK(node->pending->Clear());
  for (const Tuple& t : pending) {
    const bool left = node->final_split->SendLeft(t);
    BOAT_RETURN_NOT_OK(
        Inject(left ? node->left.get() : node->right.get(), t, +1));
    BOAT_RETURN_NOT_OK(node->retained->Append(t));
  }
  return Status::OK();
}

Status BoatEngine::FinalizeSubtree(ModelNode* node,
                                   std::vector<ModelNode*>* failed,
                                   BoatStats* stats) {
  // Skip subtrees no injection touched since the last finalize — but only
  // once they have been finalized at least once.
  const bool established = node->kind == ModelNode::Kind::kFrontier
                               ? node->subtree != nullptr
                               : node->final_split.has_value();
  if (!node->dirty && established) return Status::OK();
  node->dirty = false;

  if (node->kind == ModelNode::Kind::kFrontier) {
    if (!node->collect_family) {
      // Verify the no-collection bet: the family must actually be a
      // stop-rule leaf; otherwise the tuples are needed after all and an
      // extra collecting scan repairs the node.
      const GrowthLimits& limits = options_.limits;
      const int64_t total = node->total_tuples();
      const bool is_stop_leaf =
          node->depth >= limits.max_depth ||
          total < limits.min_tuples_to_split ||
          (limits.stop_family_size > 0 &&
           total <= limits.stop_family_size) ||
          IsPure(node->class_totals);
      if (!is_stop_leaf) {
        if (stats != nullptr) ++stats->failed_checks;
        failed->push_back(node);
        return Status::OK();
      }
    }
    return ResolveFrontier(node, stats);
  }

  BOAT_ASSIGN_OR_RETURN(CheckResult check, CheckNode(*node));
  switch (check.outcome) {
    case Outcome::kFail:
      if (stats != nullptr) ++stats->failed_checks;
      failed->push_back(node);
      return Status::OK();  // subtree will be rebuilt from the data
    case Outcome::kLeafize:
      BOAT_RETURN_NOT_OK(Leafize(node, stats));
      return ResolveFrontier(node, stats);
    case Outcome::kPass:
      break;
  }

  if (node->final_split.has_value() &&
      !node->final_split->SameCriterion(*check.split)) {
    BOAT_RETURN_NOT_OK(SideSwitch(node, *node->final_split, *check.split,
                                  stats));
  }
  node->final_split = std::move(check.split);
  BOAT_RETURN_NOT_OK(DistributePending(node, stats));
  BOAT_RETURN_NOT_OK(FinalizeSubtree(node->left.get(), failed, stats));
  BOAT_RETURN_NOT_OK(FinalizeSubtree(node->right.get(), failed, stats));
  return Status::OK();
}

// ----------------------------------------------------- frontier / rebuilds

Status BoatEngine::ResolveFrontier(ModelNode* node, BoatStats* stats) {
  return BuildFromFamily(node, stats);
}

Status BoatEngine::BuildFromFamily(ModelNode* node, BoatStats* stats) {
  const int64_t size = node->total_tuples();

  // Fast path: when the growth limits already say "leaf" the subtree is a
  // single leaf with the family's class distribution — no need to read the
  // family store at all. This is what keeps incremental update cost
  // independent of the accumulated data size under the paper's
  // stop-at-threshold methodology.
  {
    const GrowthLimits& limits = options_.limits;
    const bool leaf =
        node->depth >= limits.max_depth || size < limits.min_tuples_to_split ||
        (limits.stop_family_size > 0 && size <= limits.stop_family_size) ||
        IsPure(node->class_totals);
    if (leaf) {
      node->subtree = TreeNode::Leaf(node->class_totals);
      if (stats != nullptr) ++stats->frontier_inmem;
      node->dirty = false;
      return Status::OK();
    }
  }

  const int64_t inmem_capacity = std::max<int64_t>(
      options_.inmem_threshold, static_cast<int64_t>(options_.sample_size));
  // Under maintenance, an in-memory subtree would be re-derived from its
  // family store on every future update that touches it; a recursive
  // exact-coarse build instead grafts durable model statistics, so updates
  // stream through cheaply. That pays off only where the statistics are
  // stable: a region that has already failed verification once (flat
  // impurity landscape — the optimum jitters with every chunk) is demoted to
  // plain in-memory maintenance, whose per-update cost is one pass over the
  // region. Without updates, in-memory is strictly cheaper anyway.
  const bool exact_recursion = options_.enable_updates &&
                               size <= options_.exact_rebuild_cap &&
                               recursion_depth_ < options_.max_recursion_depth &&
                               node->rebuild_count == 0;
  const bool demoted = options_.enable_updates && node->rebuild_count >= 1 &&
                       size <= options_.exact_rebuild_cap;
  // A bootstrap kill at the very root leaves the whole (sub-)database in one
  // frontier family; recursing would re-sample the same data and most likely
  // hit the same instability. When the family fits in actual memory, one
  // in-memory pass is strictly cheaper than the retry.
  const bool no_progress = size >= static_cast<int64_t>(db_size_) &&
                           size <= options_.exact_rebuild_cap;
  if (demoted ||
      (!exact_recursion && (no_progress || size <= inmem_capacity ||
                            recursion_depth_ >= options_.max_recursion_depth))) {
    if (GrowthEngineIsColumnar()) {
      // Stream the (possibly spilled) family store straight into columns —
      // no intermediate std::vector<Tuple> materialization.
      ColumnDataset data(schema_);
      data.Reserve(size);
      BOAT_RETURN_NOT_OK(node->family->ForEach(
          [&](const Tuple& t) { data.Append(t); }));
      data.Seal(options_.limits.num_threads);
      node->subtree = BuildSubtreeColumnar(data, *selector_, options_.limits,
                                           node->depth);
    } else {
      BOAT_ASSIGN_OR_RETURN(auto tuples, node->family->ToVector());
      node->subtree = BuildSubtreeInMemory(schema_, std::move(tuples),
                                           *selector_, options_.limits,
                                           node->depth);
    }
    if (stats != nullptr) ++stats->frontier_inmem;
    node->dirty = false;
    return Status::OK();
  }

  // Recursive BOAT invocation directly over the stored family; the
  // resulting sub-model is grafted in place of this node so the subtree
  // stays incrementally maintainable.
  // determinism-lint: allow(debug-only stderr logging; no tree decision depends on it)
  if (std::getenv("BOAT_DEBUG_CHECKS") != nullptr) {
    std::fprintf(stderr,
                 "[recurse] depth=%d size=%lld rebuilds=%d exact=%d rdepth=%d\n",
                 node->depth, (long long)size, node->rebuild_count,
                 (int)exact_recursion, recursion_depth_);
  }
  std::unique_ptr<TupleSource> source = node->family->MakeSource();

  BoatOptions child_options = options_;
  child_options.seed = rng_.Next();
  child_options.exact_coarse = exact_recursion;
  child_options.limits.max_depth = options_.limits.max_depth - node->depth;
  BoatEngine child(schema_, selector_, child_options, temp_,
                   recursion_depth_ + 1);
  BoatStats child_stats;
  BOAT_RETURN_NOT_OK(child.Build(source.get(), &child_stats));
  if (stats != nullptr) {
    stats->MergeFrom(child_stats);
    ++stats->frontier_recursive;
  }
  source.reset();
  BOAT_RETURN_NOT_OK(node->family->Clear());
  const int rebuild_count = node->rebuild_count;
  std::unique_ptr<ModelNode> sub = child.ReleaseRoot();
  OffsetDepths(sub.get(), node->depth);
  SetRebuildCount(sub.get(), rebuild_count);
  *node = std::move(*sub);
  node->dirty = false;
  return Status::OK();
}

Status BoatEngine::RepairFailures(std::vector<ModelNode*> failed,
                                  TupleSource* build_source,
                                  BoatStats* stats) {
  if (failed.empty()) return Status::OK();

  // First try to reconstruct each failed family locally from the model's own
  // stores — repair cost proportional to the affected subtree, not to the
  // database ("the cost paid is proportional to the seriousness of the
  // change").
  {
    std::vector<ModelNode*> still_failed;
    for (ModelNode* node : failed) {
      auto family = NewStore("repair-local");
      bool complete = false;
      if (node->kind != ModelNode::Kind::kFrontier) {
        Status append = Status::OK();
        if (node->pending != nullptr) {
          BOAT_RETURN_NOT_OK(node->pending->ForEach([&](const Tuple& t) {
            if (append.ok()) append = family->Append(t);
          }));
          BOAT_RETURN_NOT_OK(append);
        }
        if (node->left != nullptr && node->right != nullptr) {
          BOAT_ASSIGN_OR_RETURN(
              bool left_ok, CollectSubtreeFamily(*node->left, family.get()));
          BOAT_ASSIGN_OR_RETURN(
              bool right_ok, CollectSubtreeFamily(*node->right, family.get()));
          complete = left_ok && right_ok;
        }
      }
      if (!complete) {
        still_failed.push_back(node);
        continue;
      }
      std::vector<int64_t> totals = node->class_totals;
      const int depth = node->depth;
      const int rebuilds = node->rebuild_count;
      *node = ModelNode();
      node->kind = ModelNode::Kind::kFrontier;
      node->depth = depth;
      node->class_totals = std::move(totals);
      node->family = std::move(family);
      node->collect_family = true;
      node->dirty = true;
      node->rebuild_count = rebuilds + 1;
      if (stats != nullptr) ++stats->subtree_rebuilds;
      BOAT_RETURN_NOT_OK(BuildFromFamily(node, stats));
    }
    failed = std::move(still_failed);
  }
  if (failed.empty()) return Status::OK();
  std::unordered_set<ModelNode*> failed_set(failed.begin(), failed.end());

  // Fresh family stores (and class counts) for the failed nodes.
  struct Collected {
    SpillableTupleStore* store;
    std::vector<int64_t> counts;
  };
  std::vector<std::unique_ptr<SpillableTupleStore>> stores;
  stores.reserve(failed.size());
  std::unordered_map<ModelNode*, Collected> store_of;
  for (ModelNode* node : failed) {
    stores.push_back(NewStore("repair"));
    store_of.emplace(
        node, Collected{stores.back().get(),
                        std::vector<int64_t>(schema_.num_classes(), 0)});
  }

  // One batched scan over the training database routes every tuple through
  // the *final* splits fixed so far; tuples reaching a failed node are
  // collected into its store.
  Status route_status = Status::OK();
  auto route = [&](const Tuple& t) {
    if (!route_status.ok()) return;
    ModelNode* n = root_.get();
    while (true) {
      if (failed_set.count(n) > 0) {
        Collected& c = store_of.at(n);
        ++c.counts[t.label()];
        route_status = c.store->Append(t);
        return;
      }
      if (n->kind == ModelNode::Kind::kFrontier ||
          !n->final_split.has_value()) {
        return;  // already handled elsewhere in the tree
      }
      n = n->final_split->SendLeft(t) ? n->left.get() : n->right.get();
    }
  };
  if (build_source != nullptr) {
    BOAT_RETURN_NOT_OK(build_source->Reset());
    Tuple t;
    while (build_source->Next(&t)) route(t);
  } else {
    if (archive_ == nullptr) {
      return Status::Internal("repair requested without a data source");
    }
    BOAT_RETURN_NOT_OK(archive_->Scan(route));
  }
  BOAT_RETURN_NOT_OK(route_status);
  if (stats != nullptr) ++stats->rebuild_scans;

  // Convert each failed node into a frontier node over its collected family
  // and finish it.
  for (size_t i = 0; i < failed.size(); ++i) {
    ModelNode* node = failed[i];
    node->kind = ModelNode::Kind::kFrontier;
    node->buckets.clear();
    node->cat_avcs.clear();
    node->moments.reset();
    node->class_totals = store_of.at(node).counts;
    node->interval_avc.clear();
    node->boundary = ExtremeTracker();
    node->family_max.reset();
    if (node->pending != nullptr) CheckOk(node->pending->Clear());
    if (node->retained != nullptr) CheckOk(node->retained->Clear());
    node->pending.reset();
    node->retained.reset();
    node->final_split.reset();
    node->left.reset();
    node->right.reset();
    node->subtree.reset();
    node->family = std::move(stores[i]);
    node->collect_family = true;
    node->dirty = true;
    ++node->rebuild_count;
    if (stats != nullptr) ++stats->subtree_rebuilds;
    BOAT_RETURN_NOT_OK(BuildFromFamily(node, stats));
  }
  return Status::OK();
}

// -------------------------------------------------------------------- build

Status BoatEngine::PreparePhase(std::vector<Tuple> sample, uint64_t db_size,
                                BoatStats* stats) {
  SamplingPhaseOptions sampling;
  sampling.sample_size = options_.sample_size;
  sampling.bootstrap_count = options_.bootstrap_count;
  sampling.bootstrap_subsample = options_.bootstrap_subsample;
  sampling.frontier_threshold = std::max<int64_t>(
      options_.inmem_threshold, options_.limits.stop_family_size);
  sampling.limits = options_.limits;
  sampling.max_buckets_per_attr = options_.max_buckets_per_attr;
  sampling.num_threads = options_.num_threads;
  sampling.exact_coarse = options_.exact_coarse;
  // Only the top-level phase's trees form the ensemble; recursive frontier
  // builds would contribute trees over sub-families of a different scale.
  sampling.keep_bootstrap_trees =
      options_.keep_bootstrap_trees && recursion_depth_ == 0;
  sampling.schema = &schema_;

  Rng sampling_rng = rng_.Split(1);
  BOAT_ASSIGN_OR_RETURN(
      SamplingPhaseResult phase,
      BuildCoarseFromSample(std::move(sample), db_size, *selector_, sampling,
                            &sampling_rng));
  db_size_ = phase.db_size;
  bootstrap_trees_ = std::move(phase.bootstrap_trees);
  if (stats != nullptr) {
    stats->db_size += phase.db_size;
    stats->bootstrap_kills += phase.bootstrap_kills;
    stats->coarse_nodes +=
        static_cast<uint64_t>(CountCoarseNodes(*phase.coarse_root));
  }

  sample_scale_ = phase.sample.empty()
                      ? 1.0
                      : static_cast<double>(phase.db_size) /
                            static_cast<double>(phase.sample.size());
  root_ = MakeSkeleton(*phase.coarse_root, /*depth=*/0);

  // The archive lives at the top level only; recursive engines inherit
  // enable_updates (so their frontier nodes collect families for the
  // grafted model) but all update-time repairs scan the top-level archive.
  if (options_.enable_updates && recursion_depth_ == 0) {
    archive_ = std::make_unique<DatasetArchive>(schema_, temp_);
  }
  return Status::OK();
}

Status BoatEngine::InjectExternal(const Tuple& tuple) {
  BOAT_RETURN_NOT_OK(Inject(root_.get(), tuple, +1));
  return ArchiveTuple(tuple);
}

Status BoatEngine::ArchiveTuple(const Tuple& tuple) {
  if (archive_ == nullptr) return Status::OK();
  archive_buffer_.push_back(tuple);
  if (archive_buffer_.size() >= 65536) {
    BOAT_RETURN_NOT_OK(archive_->AddChunk(archive_buffer_));
    archive_buffer_.clear();
  }
  return Status::OK();
}

Status BoatEngine::FinalizeExternal(TupleSource* repair_source,
                                    BoatStats* stats) {
  if (archive_ != nullptr && !archive_buffer_.empty()) {
    BOAT_RETURN_NOT_OK(archive_->AddChunk(archive_buffer_));
    archive_buffer_.clear();
  }
  // Top-down finalize with verification, then repair what failed.
  std::vector<ModelNode*> failed;
  BOAT_RETURN_NOT_OK(FinalizeSubtree(root_.get(), &failed, stats));
  return RepairFailures(std::move(failed), repair_source, stats);
}

Status BoatEngine::Build(TupleSource* db, BoatStats* stats) {
  // Sampling scan.
  std::vector<Tuple> sample;
  uint64_t db_size = 0;
  if (options_.exact_coarse) {
    BOAT_ASSIGN_OR_RETURN(sample, Materialize(db));
    db_size = sample.size();
  } else {
    Rng reservoir_rng = rng_.Split(7);
    BOAT_ASSIGN_OR_RETURN(
        sample,
        ReservoirSample(db, options_.sample_size, &reservoir_rng, &db_size));
  }
  BOAT_RETURN_NOT_OK(PreparePhase(std::move(sample), db_size, stats));

  // The cleanup scan. Both paths leave identical model state (see
  // RunCleanupScanParallel), so the final tree does not depend on
  // num_threads.
  BOAT_RETURN_NOT_OK(db->Reset());
  if (stats != nullptr) ++stats->cleanup_scans;
  const int workers = ResolveThreadCount(options_.num_threads);
  if (workers > 1) {
    BOAT_RETURN_NOT_OK(RunCleanupScanParallel(db, workers));
  } else {
    Tuple t;
    while (db->Next(&t)) {
      BOAT_RETURN_NOT_OK(InjectExternal(t));
    }
  }
  return FinalizeExternal(db, stats);
}

DecisionTree BoatEngine::ExtractDecisionTree() const {
  if (root_ == nullptr) FatalError("ExtractDecisionTree before Build");
  return DecisionTree(schema_, ExtractTree(*root_));
}

}  // namespace boat
