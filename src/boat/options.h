// Configuration and instrumentation of the BOAT algorithm.

#ifndef BOAT_BOAT_OPTIONS_H_
#define BOAT_BOAT_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "split/selector.h"

namespace boat {

/// \brief Tuning knobs of BOAT. The defaults mirror the paper's setup
/// (sample of 200k, 20 bootstrap repetitions of 50k, in-memory switch at
/// 1.5M tuples) scaled down by 10x for laptop-scale experiments.
struct BoatOptions {
  /// Size of the in-memory sample D' drawn in the first scan.
  size_t sample_size = 20000;
  /// Number of bootstrap repetitions b.
  int bootstrap_count = 20;
  /// Size of each bootstrap subsample (drawn with replacement from D').
  size_t bootstrap_subsample = 5000;
  /// Families at or below this size are processed with the in-memory
  /// builder ("it is always cheaper to run a main-memory algorithm").
  int64_t inmem_threshold = 10000;
  GrowthLimits limits;
  uint64_t seed = 1234;
  /// Worker threads for the growth phase (bootstrap tree construction and
  /// the cleanup scan). 1 = fully serial (the historical path); 0 = use
  /// std::thread::hardware_concurrency(). Any value produces the same tree,
  /// byte for byte: bootstrap trees are seeded by index via Rng::Split and
  /// the cleanup scan merges per-chunk statistics in scan order, so results
  /// are independent of thread count and scheduling.
  int num_threads = 1;
  /// Scratch directory base ("" = BOAT_TMPDIR or /tmp).
  std::string temp_dir;
  /// In-memory tuple budget per spillable store (S_n files etc.).
  size_t store_memory_budget = 1 << 16;
  /// Discretization budget per numerical attribute per node.
  int max_buckets_per_attr = 128;
  /// Conservative margin for the Lemma 3.1 failure checks: a subtree is
  /// discarded whenever an out-of-criterion lower bound comes within this
  /// epsilon of the in-criterion minimum. Larger values can only cause
  /// extra rebuilds, never an incorrect tree.
  double bound_epsilon = 1e-9;
  /// Keep the model statistics and a dataset archive so the tree can be
  /// maintained incrementally (InsertChunk / DeleteChunk).
  bool enable_updates = false;
  /// Safety cap on recursive BOAT invocations (frontier families larger
  /// than memory); beyond it families are processed in memory.
  int max_recursion_depth = 4;
  /// Internal: derive the coarse tree from one exact in-memory tree over
  /// the whole (sub-)database instead of bootstrapping. Used by
  /// maintenance-time subtree rebuilds, where durable model statistics
  /// matter more than scan savings.
  bool exact_coarse = false;
  /// Keep the b bootstrap trees of the top-level sampling phase instead of
  /// discarding them after the coarse combine, so the caller can persist
  /// them as a bagged ensemble (see SaveEnsemble / CompiledEnsemble).
  /// Training-time only: not part of the persisted model manifest, and
  /// recursive BOAT invocations never keep their trees.
  bool keep_bootstrap_trees = false;
  /// Maintenance-time subtree rebuilds materialize families up to this many
  /// tuples to derive exact coarse criteria (larger families fall back to
  /// bootstrap sampling). See DESIGN.md on threshold-crossing frontiers.
  int64_t exact_rebuild_cap = 4'000'000;

  /// \brief Rejects configurations the algorithm cannot run meaningfully
  /// (empty sample, subsample larger than the sample, negative thread
  /// counts or caps, degenerate discretization budgets). Called at the top
  /// of BoatClassifier::Train and BuildTreeBoat, so nonsense configs fail
  /// fast with InvalidArgument instead of silently misbehaving.
  Status Validate() const;
};

/// \brief Counters describing the work a BOAT build or update performed.
struct BoatStats {
  uint64_t db_size = 0;            ///< |D| seen by the sampling scan.
  uint64_t bootstrap_kills = 0;    ///< Subtrees removed by disagreement.
  uint64_t coarse_nodes = 0;       ///< Nodes of the coarse tree.
  uint64_t cleanup_scans = 0;      ///< Full cleanup scans.
  uint64_t failed_checks = 0;      ///< Coarse criteria rejected (rebuilds).
  /// Coarse internal nodes whose exact statistics said "leaf" (converted to
  /// frontier nodes over their collected families).
  uint64_t leafized_nodes = 0;
  uint64_t retained_tuples = 0;    ///< Tuples held inside confidence intervals.
  uint64_t frontier_inmem = 0;     ///< Frontier families finished in memory.
  uint64_t frontier_recursive = 0; ///< Frontier families via recursive BOAT.
  uint64_t rebuild_scans = 0;      ///< Extra scans for failed subtrees.
  uint64_t side_switch_tuples = 0; ///< Update: tuples re-routed on split moves.
  uint64_t subtree_rebuilds = 0;   ///< Update: subtrees rebuilt.

  void MergeFrom(const BoatStats& other);
};

}  // namespace boat

#endif  // BOAT_BOAT_OPTIONS_H_
