// The multi-threaded cleanup scan (BoatEngine::RunCleanupScanParallel).
//
// Parallelizing BOAT's cleanup scan must not change the constructed tree by
// a single byte: the whole algorithm rests on the guarantee that its output
// equals the in-memory reference tree, and the regression suite pins
// serialized trees. The design therefore never lets two threads touch the
// same statistic:
//
//   reader (calling thread)  --chunks-->  workers  --results-->  merger
//
// * The calling thread cuts the tuple stream into fixed-size chunks (the
//   TupleSource interface is sequential, so it is the only reader) and
//   merges finished chunk results back into the model strictly in chunk
//   order.
// * Workers route each tuple of a chunk through the read-only skeleton
//   (node kinds, coarse criteria, discretization shapes — all frozen after
//   MakeSkeleton) into a private NodeAccumulator per touched node,
//   mirroring Inject()'s build path exactly.
// * Every per-node statistic the scan maintains is a sum over the family
//   (integer class/bucket/AVC counts, fixed-point moments, ordered
//   interval-AVC maps) or an insert-only extreme tracker, so merging the
//   per-chunk accumulators in chunk order reproduces the serial state
//   exactly — including the order of S_n / family store appends, hence
//   byte-identical spill files, and the order of archive writes.
//
// Workers do no I/O at all; every store and archive write happens on the
// calling thread inside MergeChunk. I/O statistics therefore match the
// serial scan's exactly, and worker reads (immutable skeleton fields) are
// disjoint from merger writes (statistics fields) — clean under
// ThreadSanitizer by construction, with the work queue as the only shared
// mutable state.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "boat/cleanup.h"
#include "common/sync.h"

namespace boat {

namespace {

// Tuples per work unit. Large enough that per-chunk accumulator setup and
// queue traffic are negligible, small enough that a handful of in-flight
// chunks bound memory and the pipeline stays busy near the end of the scan.
constexpr size_t kChunkSize = 16384;

// The model skeleton flattened into an array so accumulators can be
// addressed by dense node ids. Pointers stay owned by the model.
struct FlatNode {
  ModelNode* node = nullptr;
  int left = -1;
  int right = -1;
};

int Flatten(ModelNode* node, std::vector<FlatNode>* out) {
  const int id = static_cast<int>(out->size());
  out->push_back(FlatNode{node, -1, -1});
  if (node->kind == ModelNode::Kind::kInternal) {
    const int left = Flatten(node->left.get(), out);
    const int right = Flatten(node->right.get(), out);
    (*out)[id].left = left;
    (*out)[id].right = right;
  }
  return id;
}

// Private per-chunk statistics of one touched node: the exact fields
// UpdateNodeStats/Inject would have bumped on the model node, plus staging
// buffers for the tuples the serial scan would have appended to the node's
// pending (internal) or family (frontier) store. The pointers index into
// the chunk's tuple vector, which outlives the accumulator.
struct NodeAcc {
  std::vector<int64_t> class_totals;
  std::vector<BucketCounts> buckets;
  std::vector<CategoricalAvc> cat_avcs;
  std::optional<MomentSet> moments;
  ExtremeTracker boundary;
  std::optional<ExtremeTracker> family_max;
  std::map<double, std::vector<int64_t>> interval_avc;
  std::vector<const Tuple*> staged;
};

struct Chunk {
  size_t index = 0;
  std::vector<Tuple> tuples;
};

struct ChunkResult {
  size_t index = 0;
  std::vector<Tuple> tuples;  // kept alive for staged pointers + archive
  std::vector<std::unique_ptr<NodeAcc>> accs;  // index: flat node id
};

// Mirrors the shape setup of MakeSkeleton for one node. Reads only fields
// the merger never writes (kinds, coarse criteria, container shapes).
std::unique_ptr<NodeAcc> MakeAcc(const Schema& schema, bool impurity_mode,
                                 const ModelNode& node) {
  const int k = schema.num_classes();
  auto acc = std::make_unique<NodeAcc>();
  acc->class_totals.assign(k, 0);
  if (node.kind == ModelNode::Kind::kFrontier) return acc;
  if (impurity_mode) {
    acc->buckets.resize(schema.num_attributes());
    for (int attr = 0; attr < schema.num_attributes(); ++attr) {
      if (schema.IsNumerical(attr)) {
        acc->buckets[attr] = BucketCounts(node.buckets[attr].disc(), k);
      }
    }
  } else {
    acc->moments.emplace(schema);
  }
  acc->cat_avcs.reserve(schema.num_attributes());
  for (int attr = 0; attr < schema.num_attributes(); ++attr) {
    const int card =
        schema.IsCategorical(attr) ? schema.attribute(attr).cardinality : 1;
    acc->cat_avcs.emplace_back(card, k);
  }
  if (node.coarse.is_numerical) {
    acc->boundary = ExtremeTracker(node.coarse.interval_lo);
    if (node.family_max.has_value()) {
      acc->family_max.emplace(std::numeric_limits<double>::infinity());
    }
  }
  return acc;
}

// Routes one tuple from the root, accumulating into `result`. This is
// Inject()'s build path (weight +1, no final splits fixed yet) transcribed
// against accumulators instead of model nodes.
void RouteTuple(const Schema& schema, bool impurity_mode,
                const std::vector<FlatNode>& flat, const Tuple& t,
                ChunkResult* result) {
  int id = 0;
  while (true) {
    const ModelNode& node = *flat[id].node;
    std::unique_ptr<NodeAcc>& slot = result->accs[id];
    if (slot == nullptr) slot = MakeAcc(schema, impurity_mode, node);
    NodeAcc& acc = *slot;
    if (node.kind == ModelNode::Kind::kFrontier) {
      ++acc.class_totals[t.label()];
      if (node.collect_family) acc.staged.push_back(&t);
      return;
    }

    // UpdateNodeStats, against the accumulator.
    ++acc.class_totals[t.label()];
    if (impurity_mode) {
      for (int attr = 0; attr < schema.num_attributes(); ++attr) {
        if (schema.IsNumerical(attr)) {
          acc.buckets[attr].Add(t.value(attr), t.label());
        } else {
          acc.cat_avcs[attr].Add(t.category(attr), t.label());
        }
      }
    } else {
      acc.moments->Add(t);
      for (int attr = 0; attr < schema.num_attributes(); ++attr) {
        if (schema.IsCategorical(attr)) {
          acc.cat_avcs[attr].Add(t.category(attr), t.label());
        }
      }
    }
    const CoarseCriterion& crit = node.coarse;
    if (crit.is_numerical) {
      const double v = t.value(crit.attribute);
      acc.boundary.Insert(v);
      if (acc.family_max.has_value()) acc.family_max->Insert(v);
      if (crit.InInterval(v)) {
        auto [it, inserted] = acc.interval_avc.try_emplace(
            v, std::vector<int64_t>(schema.num_classes(), 0));
        ++it->second[t.label()];
        acc.staged.push_back(&t);  // held until the split point is known
        return;
      }
      id = v <= crit.interval_lo ? flat[id].left : flat[id].right;
    } else {
      const bool go_left = std::binary_search(
          crit.subset.begin(), crit.subset.end(), t.category(crit.attribute));
      id = go_left ? flat[id].left : flat[id].right;
    }
  }
}

}  // namespace

Status BoatEngine::RunCleanupScanParallel(TupleSource* db, int num_workers) {
  std::vector<FlatNode> flat;
  Flatten(root_.get(), &flat);
  const bool impurity_mode = impurity_ != nullptr;

  // Folds one finished chunk into the model; calling-thread only, in chunk
  // order, so every store and archive append replays in tuple-stream order.
  auto merge_chunk = [&](ChunkResult& r) -> Status {
    for (size_t id = 0; id < flat.size(); ++id) {
      if (r.accs[id] == nullptr) continue;
      NodeAcc& acc = *r.accs[id];
      ModelNode* node = flat[id].node;
      node->dirty = true;
      for (size_t c = 0; c < acc.class_totals.size(); ++c) {
        node->class_totals[c] += acc.class_totals[c];
      }
      if (node->kind == ModelNode::Kind::kFrontier) {
        if (node->collect_family) {
          BOAT_RETURN_NOT_OK(node->family->AppendBatch(acc.staged));
        }
        continue;
      }
      if (impurity_mode) {
        for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
          if (schema_.IsNumerical(attr)) {
            node->buckets[attr].MergeFrom(acc.buckets[attr]);
          } else {
            node->cat_avcs[attr].MergeFrom(acc.cat_avcs[attr]);
          }
        }
      } else {
        node->moments->Merge(*acc.moments);
        for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
          if (schema_.IsCategorical(attr)) {
            node->cat_avcs[attr].MergeFrom(acc.cat_avcs[attr]);
          }
        }
      }
      if (node->coarse.is_numerical) {
        node->boundary.MergeFrom(acc.boundary);
        if (node->family_max.has_value()) {
          node->family_max->MergeFrom(*acc.family_max);
        }
        for (const auto& [value, counts] : acc.interval_avc) {
          auto [it, inserted] = node->interval_avc.try_emplace(
              value, std::vector<int64_t>(schema_.num_classes(), 0));
          for (size_t c = 0; c < counts.size(); ++c) {
            it->second[c] += counts[c];
          }
        }
        BOAT_RETURN_NOT_OK(node->pending->AppendBatch(acc.staged));
      }
    }
    for (const Tuple& t : r.tuples) {
      BOAT_RETURN_NOT_OK(ArchiveTuple(t));
    }
    return Status::OK();
  };

  // Locals shared with the worker lambdas below; all of queue/done/
  // no_more_work are accessed under mu only. (GUARDED_BY cannot annotate
  // function locals, so the capability map lives in this comment; the
  // MutexLock scopes below are still lock/unlock-checked by the analysis.)
  Mutex mu;
  CondVar work_cv;   // workers: queue non-empty or done
  CondVar main_cv;   // caller: a result arrived
  std::deque<Chunk> queue;
  std::map<size_t, ChunkResult> done;
  bool no_more_work = false;

  auto worker_body = [&]() {
    while (true) {
      Chunk chunk;
      {
        MutexLock lock(mu);
        work_cv.Wait(lock, [&] { return !queue.empty() || no_more_work; });
        if (queue.empty()) return;
        chunk = std::move(queue.front());
        queue.pop_front();
      }
      ChunkResult result;
      result.index = chunk.index;
      result.tuples = std::move(chunk.tuples);
      result.accs.resize(flat.size());
      for (const Tuple& t : result.tuples) {
        RouteTuple(schema_, impurity_mode, flat, t, &result);
      }
      {
        MutexLock lock(mu);
        done.emplace(result.index, std::move(result));
      }
      main_cv.NotifyOne();
    }
  };

  // determinism-lint: allow(workers produce per-chunk results that merge_next folds in strict chunk-index order, so thread interleaving never reaches the accumulators)
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) workers.emplace_back(worker_body);

  // Backpressure: bound the chunks outstanding anywhere in the pipeline so
  // memory stays ~cap * kChunkSize tuples regardless of database size.
  const size_t cap = 2 * static_cast<size_t>(num_workers) + 2;
  size_t next_read = 0;
  size_t next_merge = 0;
  Status status = Status::OK();

  // Blocks until chunk `next_merge` is finished, merges it. Pre: one is
  // outstanding.
  auto merge_next = [&]() {
    ChunkResult result;
    {
      MutexLock lock(mu);
      main_cv.Wait(lock, [&] { return done.count(next_merge) > 0; });
      auto it = done.find(next_merge);
      result = std::move(it->second);
      done.erase(it);
    }
    if (status.ok()) status = merge_chunk(result);
    ++next_merge;
  };

  while (status.ok()) {
    Chunk chunk;
    chunk.index = next_read;
    chunk.tuples.reserve(kChunkSize);
    Tuple t;
    while (chunk.tuples.size() < kChunkSize && db->Next(&t)) {
      chunk.tuples.push_back(t);
    }
    if (chunk.tuples.empty()) break;
    {
      MutexLock lock(mu);
      queue.push_back(std::move(chunk));
    }
    work_cv.NotifyOne();
    ++next_read;
    while (status.ok() && next_read - next_merge >= cap) merge_next();
  }
  {
    MutexLock lock(mu);
    no_more_work = true;
  }
  work_cv.NotifyAll();
  while (next_merge < next_read) merge_next();  // drains even on error
  // determinism-lint: allow(join of the pool above; merge order was already fixed by chunk index)
  for (std::thread& w : workers) w.join();
  return status;
}

}  // namespace boat
