// The sampling phase of BOAT (Section 3.2): draw an in-memory sample D' of
// the training database, grow b bootstrap trees from with-replacement
// subsamples of D', and combine them top-down into a coarse tree with
// confidence intervals for numerical split points.

#ifndef BOAT_BOAT_BOOTSTRAP_PHASE_H_
#define BOAT_BOAT_BOOTSTRAP_PHASE_H_

#include <memory>
#include <vector>

#include "boat/coarse.h"
#include "common/result.h"
#include "common/rng.h"
#include "split/selector.h"
#include "storage/tuple_source.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief Parameters of the sampling phase (a subset of BoatOptions).
struct SamplingPhaseOptions {
  size_t sample_size = 20000;        ///< |D'|
  int bootstrap_count = 20;          ///< b
  size_t bootstrap_subsample = 5000; ///< |D_i| (drawn with replacement)
  /// Families estimated at or below this size become frontier nodes.
  int64_t frontier_threshold = 10000;
  GrowthLimits limits;               ///< shared growth limits
  int max_buckets_per_attr = 64;     ///< discretization budget
  /// Threads for the bootstrap tree constructions (0 = hardware
  /// concurrency). Trees are seeded per index via Rng::Split, so the coarse
  /// tree does not depend on this value.
  int num_threads = 1;
  /// Exact mode (used for maintenance-time subtree rebuilds): D' is the
  /// whole database and the coarse tree is the single exact tree built from
  /// it — no bootstrap disagreement, no kills, and every criterion is
  /// correct by construction. Numerical intervals are widened by
  /// `exact_interval_widen` (fraction of the node's distinct values per
  /// side) so that moderate future drift stays inside them.
  bool exact_coarse = false;
  double exact_interval_widen = 0.02;
  /// Move the bootstrap trees into SamplingPhaseResult::bootstrap_trees
  /// after the coarse combine instead of destroying them (ensemble
  /// emission; see BoatOptions::keep_bootstrap_trees).
  bool keep_bootstrap_trees = false;
  /// Schema of the tuples; set automatically by RunSamplingPhase, required
  /// when calling BuildCoarseFromSample directly.
  const Schema* schema = nullptr;
};

/// \brief Output of the sampling phase.
struct SamplingPhaseResult {
  std::vector<Tuple> sample;              ///< D'
  uint64_t db_size = 0;                   ///< |D|, counted during the scan
  std::unique_ptr<CoarseNode> coarse_root;
  uint64_t bootstrap_kills = 0;  ///< subtrees removed by disagreement
  /// The b bootstrap trees themselves, populated only when
  /// SamplingPhaseOptions::keep_bootstrap_trees is set (empty otherwise,
  /// and always empty for an empty sample).
  std::vector<DecisionTree> bootstrap_trees;
};

/// \brief Runs the sampling phase: one scan over `db` (reservoir sampling),
/// b in-memory bootstrap tree constructions, top-down combination, and (in
/// impurity mode) per-node adaptive discretizations.
Result<SamplingPhaseResult> RunSamplingPhase(TupleSource* db,
                                             const SplitSelector& selector,
                                             const SamplingPhaseOptions& opts,
                                             Rng* rng);

/// \brief The sampling phase minus the scan: builds the coarse tree from an
/// already-materialized sample (used by drivers that share one physical scan
/// among several engines, e.g. cross-validation).
Result<SamplingPhaseResult> BuildCoarseFromSample(
    std::vector<Tuple> sample, uint64_t db_size,
    const SplitSelector& selector, const SamplingPhaseOptions& opts,
    Rng* rng);

/// \brief Combines b bootstrap trees into a coarse tree (exposed for tests).
/// Nodes where the trees disagree on the splitting attribute (or on the
/// splitting subset, for categorical attributes) become frontier nodes.
std::unique_ptr<CoarseNode> CombineBootstrapTrees(
    const std::vector<DecisionTree>& trees, uint64_t* kills);

}  // namespace boat

#endif  // BOAT_BOAT_BOOTSTRAP_PHASE_H_
