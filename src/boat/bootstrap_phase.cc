#include "boat/bootstrap_phase.h"

#include <algorithm>
#include <optional>

#include "common/parallel.h"
#include "storage/sampling.h"
#include "tree/columnar_builder.h"
#include "tree/inmem_builder.h"

namespace boat {

int64_t CountCoarseNodes(const CoarseNode& root) {
  int64_t n = 1;
  if (root.left != nullptr) n += CountCoarseNodes(*root.left);
  if (root.right != nullptr) n += CountCoarseNodes(*root.right);
  return n;
}

namespace {

std::unique_ptr<CoarseNode> Combine(const std::vector<const TreeNode*>& nodes,
                                    int depth, uint64_t* kills) {
  auto coarse = std::make_unique<CoarseNode>();
  coarse->depth = depth;

  bool any_internal = false;
  bool all_internal = true;
  for (const TreeNode* n : nodes) {
    if (n->is_leaf()) {
      all_internal = false;
    } else {
      any_internal = true;
    }
  }
  if (!all_internal) {
    // At least one bootstrap tree stopped here; the combined tree stops too.
    if (any_internal && kills != nullptr) ++*kills;
    return coarse;  // frontier
  }

  const Split& first = *nodes.front()->split;
  bool agree = true;
  for (const TreeNode* n : nodes) {
    const Split& s = *n->split;
    if (s.attribute != first.attribute ||
        s.is_numerical != first.is_numerical) {
      agree = false;
      break;
    }
    // Categorical: the splitting subsets must be identical (the paper's
    // stringent rule — different subsets make subtrees incomparable).
    if (!s.is_numerical && s.subset != first.subset) {
      agree = false;
      break;
    }
  }
  if (!agree) {
    if (kills != nullptr) ++*kills;
    return coarse;  // frontier
  }

  CoarseCriterion crit;
  crit.attribute = first.attribute;
  crit.is_numerical = first.is_numerical;
  if (first.is_numerical) {
    double lo = first.value;
    double hi = first.value;
    for (const TreeNode* n : nodes) {
      lo = std::min(lo, n->split->value);
      hi = std::max(hi, n->split->value);
    }
    crit.interval_lo = lo;
    crit.interval_hi = hi;
  } else {
    crit.subset = first.subset;
  }
  coarse->criterion = std::move(crit);

  std::vector<const TreeNode*> lefts;
  std::vector<const TreeNode*> rights;
  lefts.reserve(nodes.size());
  rights.reserve(nodes.size());
  for (const TreeNode* n : nodes) {
    lefts.push_back(n->left.get());
    rights.push_back(n->right.get());
  }
  coarse->left = Combine(lefts, depth + 1, kills);
  coarse->right = Combine(rights, depth + 1, kills);
  return coarse;
}

// Routes a sample tuple at a coarse internal node; tuples inside the
// confidence interval are sent to the side of the interval midpoint (a
// heuristic — sample families only shape discretizations and frontier
// estimates, never correctness).
bool SampleGoesLeft(const CoarseCriterion& crit, const Tuple& t) {
  if (!crit.is_numerical) {
    return std::binary_search(crit.subset.begin(), crit.subset.end(),
                              t.category(crit.attribute));
  }
  const double v = t.value(crit.attribute);
  if (v <= crit.interval_lo) return true;
  if (v > crit.interval_hi) return false;
  return v <= 0.5 * (crit.interval_lo + crit.interval_hi);
}

// Fills sample_family, frontier decisions and discretizations, top-down.
void Decorate(CoarseNode* node, std::vector<Tuple> family,
              const Schema& schema, const SplitSelector& selector,
              const SamplingPhaseOptions& opts, double scale) {
  node->sample_family = static_cast<int64_t>(family.size());
  node->sample_pure = true;
  for (const Tuple& t : family) {
    if (t.label() != family.front().label()) {
      node->sample_pure = false;
      break;
    }
  }
  if (node->is_frontier()) return;

  const double estimated_family = static_cast<double>(family.size()) * scale;
  if (estimated_family <=
      static_cast<double>(opts.frontier_threshold)) {
    // Family expected to fit in memory: stop optimistic construction here.
    node->criterion.reset();
    node->left.reset();
    node->right.reset();
    return;
  }

  const bool impurity_mode = selector.kind() == SelectorKind::kImpurity;
  std::optional<AvcGroup> avc;
  if (impurity_mode || opts.exact_coarse) {
    avc.emplace(BuildAvcGroup(schema, family));
  }

  if (opts.exact_coarse && node->criterion->is_numerical) {
    // Widen the (degenerate) interval by a fraction of the node's distinct
    // values on each side so moderate drift keeps the criterion valid.
    CoarseCriterion& crit = *node->criterion;
    const NumericAvc& navc = avc->numeric(crit.attribute);
    int64_t pos = 0;
    while (pos < navc.num_values() && navc.value(pos) < crit.interval_lo) {
      ++pos;
    }
    const int64_t widen = std::max<int64_t>(
        1, static_cast<int64_t>(opts.exact_interval_widen *
                                static_cast<double>(navc.num_values())));
    const int64_t lo_pos = std::max<int64_t>(0, pos - widen);
    const int64_t hi_pos =
        std::min<int64_t>(navc.num_values() - 1, pos + widen);
    crit.interval_lo = std::min(crit.interval_lo, navc.value(lo_pos));
    crit.interval_hi = std::max(crit.interval_hi, navc.value(hi_pos));
  }

  if (impurity_mode) {
    const auto& impurity =
        static_cast<const ImpuritySplitSelector&>(selector).impurity();
    node->discretizations.assign(schema.num_attributes(), Discretization());
    for (int attr = 0; attr < schema.num_attributes(); ++attr) {
      if (!schema.IsNumerical(attr)) continue;
      node->discretizations[attr] = BuildAdaptiveDiscretization(
          avc->numeric(attr), impurity, opts.max_buckets_per_attr);
    }
    const CoarseCriterion& crit = *node->criterion;
    if (crit.is_numerical) {
      // Force bucket boundaries at the interval endpoints so every bucket of
      // the coarse splitting attribute lies entirely inside or outside it.
      node->discretizations[crit.attribute].AddBoundary(crit.interval_lo);
      node->discretizations[crit.attribute].AddBoundary(crit.interval_hi);
    }
  }

  std::vector<Tuple> left_family;
  std::vector<Tuple> right_family;
  for (Tuple& t : family) {
    (SampleGoesLeft(*node->criterion, t) ? left_family : right_family)
        .push_back(std::move(t));
  }
  family.clear();
  family.shrink_to_fit();
  Decorate(node->left.get(), std::move(left_family), schema, selector, opts,
           scale);
  Decorate(node->right.get(), std::move(right_family), schema, selector, opts,
           scale);
}

}  // namespace

std::unique_ptr<CoarseNode> CombineBootstrapTrees(
    const std::vector<DecisionTree>& trees, uint64_t* kills) {
  std::vector<const TreeNode*> roots;
  roots.reserve(trees.size());
  for (const DecisionTree& t : trees) roots.push_back(&t.root());
  return Combine(roots, /*depth=*/0, kills);
}

Result<SamplingPhaseResult> BuildCoarseFromSample(
    std::vector<Tuple> sample, uint64_t db_size,
    const SplitSelector& selector, const SamplingPhaseOptions& opts,
    Rng* rng) {
  SamplingPhaseResult result;
  result.sample = std::move(sample);
  result.db_size = db_size;
  if (result.sample.empty()) {
    result.coarse_root = std::make_unique<CoarseNode>();  // frontier root
    return result;
  }
  if (opts.schema == nullptr) {
    return Status::Internal("BuildCoarseFromSample requires opts.schema");
  }
  const Schema& schema = *opts.schema;

  if (opts.exact_coarse) {
    GrowthLimits exact_limits = opts.limits;
    exact_limits.stop_family_size =
        std::max(exact_limits.stop_family_size, opts.frontier_threshold);
    std::vector<DecisionTree> trees;
    trees.push_back(
        BuildTreeInMemory(schema, result.sample, selector, exact_limits));
    result.coarse_root =
        CombineBootstrapTrees(trees, &result.bootstrap_kills);
    Decorate(result.coarse_root.get(), result.sample, schema, selector, opts,
             /*scale=*/1.0);
    if (opts.keep_bootstrap_trees) result.bootstrap_trees = std::move(trees);
    return result;
  }

  // Bootstrap tree growth stops where the *estimated* full family would
  // reach the frontier threshold: a bootstrap family of f tuples estimates a
  // full family of f * |D| / subsample_size.
  const double per_tuple_weight =
      static_cast<double>(result.db_size) /
      static_cast<double>(std::max<size_t>(opts.bootstrap_subsample, 1));
  GrowthLimits bootstrap_limits = opts.limits;
  bootstrap_limits.stop_family_size = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(opts.frontier_threshold) /
                              per_tuple_weight));

  // One global thread budget for the phase: trees fan out first (they are
  // the coarser work unit), and whatever budget the outer loop cannot use
  // goes to intra-tree growth — so b+1 trees on a 2-core host build two at a
  // time serially, while 2 trees on an 8-core host each grow with 4 threads.
  const int budget = ResolveThreadCount(opts.num_threads);
  const int outer_workers = static_cast<int>(
      std::min<int64_t>(opts.bootstrap_count, budget));
  bootstrap_limits.num_threads =
      std::max(1, budget / std::max(outer_workers, 1));

  // Each tree draws its subsample from its own Split(i) stream, so tree i is
  // a pure function of (rng state, i): building the trees concurrently in
  // any order or on any thread count yields the identical coarse tree.
  //
  // All b+1 resamples are multisets over the one sample, so the columnar
  // engine grows every bootstrap tree as a weight vector over a single
  // sealed master dataset: the per-attribute root sort is paid once for the
  // whole phase and no resample is ever materialized. The index stream of
  // SampleIndicesWithReplacement matches SampleWithReplacement exactly, so
  // the trees — and the coarse tree — are unchanged.
  std::vector<std::optional<DecisionTree>> slots(
      static_cast<size_t>(opts.bootstrap_count));
  if (GrowthEngineIsColumnar()) {
    // Sealed before the fork; the root sorts use the whole budget.
    ColumnDataset master(schema, result.sample, budget);
    ParallelFor(opts.bootstrap_count, outer_workers, [&](int64_t i) {
                  Rng tree_rng = rng->Split(static_cast<uint64_t>(i));
                  const std::vector<uint32_t> picks =
                      SampleIndicesWithReplacement(
                          result.sample.size(), opts.bootstrap_subsample,
                          &tree_rng);
                  std::vector<int32_t> weights(result.sample.size(), 0);
                  for (const uint32_t r : picks) ++weights[r];
                  slots[i] = BuildTreeColumnarWeighted(
                      master, weights, selector, bootstrap_limits);
                });
  } else {
    ParallelFor(opts.bootstrap_count, outer_workers, [&](int64_t i) {
                  Rng tree_rng = rng->Split(static_cast<uint64_t>(i));
                  std::vector<Tuple> subsample = SampleWithReplacement(
                      result.sample, opts.bootstrap_subsample, &tree_rng);
                  slots[i] = BuildTreeInMemory(schema, std::move(subsample),
                                               selector, bootstrap_limits);
                });
  }
  std::vector<DecisionTree> trees;
  trees.reserve(slots.size());
  for (std::optional<DecisionTree>& s : slots) {
    trees.push_back(std::move(*s));
  }
  result.coarse_root = CombineBootstrapTrees(trees, &result.bootstrap_kills);

  const double scale = static_cast<double>(result.db_size) /
                       static_cast<double>(result.sample.size());
  Decorate(result.coarse_root.get(), result.sample, schema, selector, opts,
           scale);
  if (opts.keep_bootstrap_trees) result.bootstrap_trees = std::move(trees);
  return result;
}

Result<SamplingPhaseResult> RunSamplingPhase(TupleSource* db,
                                             const SplitSelector& selector,
                                             const SamplingPhaseOptions& opts,
                                             Rng* rng) {
  SamplingPhaseOptions with_schema = opts;
  with_schema.schema = &db->schema();

  std::vector<Tuple> sample;
  uint64_t db_size = 0;
  if (opts.exact_coarse) {
    // Exact mode: D' is the whole database.
    BOAT_ASSIGN_OR_RETURN(sample, Materialize(db));
    db_size = sample.size();
  } else {
    BOAT_ASSIGN_OR_RETURN(
        sample, ReservoirSample(db, opts.sample_size, rng, &db_size));
  }
  return BuildCoarseFromSample(std::move(sample), db_size, selector,
                               with_schema, rng);
}

}  // namespace boat
