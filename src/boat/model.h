// The persistent BOAT model: the per-node state built during the cleanup
// phase and kept afterwards to support incremental insertions and deletions
// (Section 4 of the paper).
//
// Every internal model node holds exactly the statistics the cleanup scan
// maintains: per-class totals, categorical AVC-sets, per-bucket counts of
// every numerical attribute (impurity mode), exact fixed-point moments
// (QUEST mode), the S_n store of tuples inside the confidence interval, and
// the boundary tracker realizing the "largest attribute value at or below
// the interval" candidate. Frontier nodes hold their full family store and
// the subtree finished from it.

#ifndef BOAT_BOAT_MODEL_H_
#define BOAT_BOAT_MODEL_H_

#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "boat/coarse.h"
#include "split/quest.h"
#include "split/selector.h"
#include "storage/tuple_store.h"
#include "tree/decision_tree.h"

namespace boat {

class ModelSerializer;  // persistence layer (boat/persistence.h)

/// \brief Tracks the largest attribute value at or below an upper bound,
/// with multiplicity, so that deletions can be handled exactly: when the
/// last tuple carrying the tracked value is deleted the true extreme becomes
/// unknown ("lost") and verification must conservatively fail if it needs
/// the value. The lost state clears itself when no qualifying tuples remain.
class ExtremeTracker {
 public:
  ExtremeTracker() = default;
  /// \param upper_bound only values <= upper_bound are tracked
  ///        (+infinity tracks the overall maximum).
  explicit ExtremeTracker(double upper_bound) : bound_(upper_bound) {}

  void Insert(double v);
  void Remove(double v);

  /// \brief Adds `other` (same bound) into this, as if every value `other`
  /// ever saw had been Insert()ed here. Exact for insert-only trackers
  /// (neither side lost), which is what the parallel cleanup scan merges.
  void MergeFrom(const ExtremeTracker& other);

  /// \brief Number of tuples with value <= bound (always exact).
  int64_t qualifying() const { return qualifying_; }
  /// \brief No qualifying tuples exist (the extreme is known not to exist).
  bool empty() const { return qualifying_ == 0; }
  /// \brief Whether the tracked value is trustworthy.
  bool known() const { return !lost_; }
  /// \brief The tracked maximum; requires known() && !empty().
  double value() const { return value_; }

  bool operator==(const ExtremeTracker&) const = default;

 private:
  friend class ModelSerializer;
  double bound_ = std::numeric_limits<double>::infinity();
  int64_t qualifying_ = 0;
  bool lost_ = false;
  double value_ = 0.0;
  int64_t count_ = 0;  // multiplicity of value_; 0 = nothing tracked
};

/// \brief A node of the persistent BOAT model.
struct ModelNode {
  enum class Kind {
    kInternal,  ///< verified coarse criterion; carries cleanup statistics
    kFrontier,  ///< optimistic construction stopped; carries the family
  };

  Kind kind = Kind::kFrontier;
  int depth = 0;

  // ------------------------------------------------------- internal state
  CoarseCriterion coarse;
  /// Per-attribute discretizations / bucket counts (impurity mode; empty
  /// entries at categorical attribute positions).
  std::vector<BucketCounts> buckets;
  /// Per-attribute categorical AVC-sets (empty entries at numerical
  /// positions; represented by cardinality-0 is invalid, so slot uses
  /// cardinality of the attribute or 1 when unused).
  std::vector<CategoricalAvc> cat_avcs;
  /// Exact fixed-point moments (QUEST mode only).
  std::optional<MomentSet> moments;
  std::vector<int64_t> class_totals;
  /// vL: largest value of the coarse splitting attribute <= interval_lo.
  ExtremeTracker boundary;
  /// Overall max of the coarse splitting attribute (QUEST mode only).
  std::optional<ExtremeTracker> family_max;
  /// In-interval tuples awaiting top-down distribution.
  std::unique_ptr<SpillableTupleStore> pending;
  /// In-interval tuples already distributed to the subtree (the S_n file).
  std::unique_ptr<SpillableTupleStore> retained;
  /// Exact per-value class counts of the in-interval tuples (pending and
  /// retained combined), kept incrementally so verification never has to
  /// re-read the S_n stores. Keyed by attribute value; zero rows pruned.
  std::map<double, std::vector<int64_t>> interval_avc;
  /// The verified exact splitting criterion (unset while unfinalized).
  std::optional<Split> final_split;
  std::unique_ptr<ModelNode> left;
  std::unique_ptr<ModelNode> right;

  // ------------------------------------------------------- frontier state
  /// Complete family of a frontier node (kept for incremental updates).
  std::unique_ptr<SpillableTupleStore> family;
  /// Whether the cleanup scan stores the family's tuples. False only for
  /// frontier nodes expected to end as stop-rule leaves when updates are
  /// off: those need nothing but class counts, so the scan skips the
  /// write-out entirely (the paper's "stop at the in-memory threshold"
  /// methodology). If the estimate was wrong the node is repaired by an
  /// extra collecting scan.
  bool collect_family = true;
  /// Subtree finished from `family` (in-memory build or recursive BOAT).
  std::unique_ptr<TreeNode> subtree;
  /// Statistics or family changed since the node was last finalized; set on
  /// every node an injection passes through so revalidation can skip
  /// untouched subtrees.
  bool dirty = false;
  /// How often this position's subtree has been rebuilt after verification
  /// failures. Persistently failing positions (flat impurity landscapes in
  /// noise regions, where the empirical optimum jitters with every chunk)
  /// are demoted to plain frontier nodes rebuilt in memory — much cheaper
  /// per update than re-deriving model statistics that will not survive the
  /// next chunk anyway.
  int rebuild_count = 0;

  int64_t total_tuples() const {
    int64_t n = 0;
    for (const int64_t c : class_totals) n += c;
    return n;
  }
};

/// \brief Extracts the final decision tree from a finalized model.
std::unique_ptr<TreeNode> ExtractTree(const ModelNode& node);

/// \brief Counts model nodes by kind (diagnostics).
struct ModelShape {
  int64_t internal_nodes = 0;
  int64_t frontier_nodes = 0;
};
ModelShape DescribeModel(const ModelNode& root);

/// \brief Append-only archive of the logical training database, used for
/// subtree rebuilds during incremental maintenance. Inserted chunks are
/// stored as table-file segments; deleted chunks as tombstone segments that
/// cancel equal tuples during scans.
class DatasetArchive {
 public:
  DatasetArchive(Schema schema, TempFileManager* temp);

  Status AddChunk(const std::vector<Tuple>& tuples);
  Status RemoveChunk(const std::vector<Tuple>& tuples);

  /// \brief Streams every live tuple (inserted and not deleted) to `fn`.
  Status Scan(const std::function<void(const Tuple&)>& fn) const;

  int64_t live_tuples() const { return live_; }

 private:
  friend class ModelSerializer;
  Schema schema_;
  TempFileManager* temp_;
  std::vector<std::string> segments_;    // inserted chunks
  std::vector<std::string> tombstones_;  // deleted chunks
  int64_t live_ = 0;
  uint64_t next_id_ = 0;
};

}  // namespace boat

#endif  // BOAT_BOAT_MODEL_H_
