#include "boat/session.h"

#include <cmath>
#include <utility>

#include "boat/persistence.h"
#include "common/str_util.h"
#include "split/quest.h"
#include "split/selector.h"

namespace boat {

Result<std::unique_ptr<SplitSelector>> MakeSelectorByName(
    const std::string& name) {
  if (name == "gini") return {MakeGiniSelector()};
  if (name == "entropy") return {MakeEntropySelector()};
  if (name == "quest") {
    return {std::unique_ptr<SplitSelector>(new QuestSelector())};
  }
  return Status::InvalidArgument("unknown selector '" + name +
                                 "' (gini|entropy|quest)");
}

Result<std::unique_ptr<Session>> Session::Open(const std::string& dir,
                                               const std::string& selector) {
  BOAT_ASSIGN_OR_RETURN(std::unique_ptr<SplitSelector> sel,
                        MakeSelectorByName(selector));
  BOAT_ASSIGN_OR_RETURN(std::unique_ptr<BoatClassifier> classifier,
                        LoadClassifier(dir, sel.get()));
  return std::unique_ptr<Session>(new Session(
      dir, selector, std::move(sel), std::move(classifier)));
}

Result<std::unique_ptr<Session>> Session::Train(TupleSource* db,
                                                const std::string& dir,
                                                const SessionOptions& options,
                                                BoatStats* stats) {
  BOAT_ASSIGN_OR_RETURN(std::unique_ptr<SplitSelector> sel,
                        MakeSelectorByName(options.selector));
  BoatOptions boat_options = options.boat;
  boat_options.enable_updates = true;
  BOAT_ASSIGN_OR_RETURN(
      std::unique_ptr<BoatClassifier> classifier,
      BoatClassifier::Train(db, sel.get(), boat_options, stats));
  std::unique_ptr<Session> session(new Session(
      dir, options.selector, std::move(sel), std::move(classifier)));
  // Keep the training-time thread budget sticky across rollback reloads —
  // the manifest deliberately does not persist it (host property).
  session->SetNumThreads(boat_options.num_threads);
  // Persist() rather than a bare SaveClassifier so a training run with
  // keep_bootstrap_trees also emits the ensemble directory.
  BOAT_RETURN_NOT_OK(session->Persist());
  return session;
}

void Session::SetNumThreads(int num_threads) {
  num_threads_ = num_threads;
  classifier_->SetNumThreads(num_threads);
}

Status Session::ValidateChunk(const std::vector<Tuple>& chunk) const {
  const Schema& s = schema();
  const int arity = s.num_attributes();
  for (size_t i = 0; i < chunk.size(); ++i) {
    const Tuple& t = chunk[i];
    if (t.num_values() != arity) {
      return Status::InvalidArgument(
          StrPrintf("chunk record %zu: arity %d, schema wants %d", i,
                    t.num_values(), arity));
    }
    if (t.label() < 0 || t.label() >= s.num_classes()) {
      return Status::InvalidArgument(
          StrPrintf("chunk record %zu: label %d out of range [0, %d)", i,
                    t.label(), s.num_classes()));
    }
    for (int a = 0; a < arity; ++a) {
      const double v = t.value(a);
      if (s.IsNumerical(a)) {
        if (!std::isfinite(v)) {
          return Status::InvalidArgument(StrPrintf(
              "chunk record %zu: attribute %d is not finite", i, a));
        }
      } else {
        const int32_t card = s.attribute(a).cardinality;
        if (v != std::floor(v) || v < 0 ||
            v >= static_cast<double>(card)) {
          return Status::InvalidArgument(StrPrintf(
              "chunk record %zu: attribute %d category %g out of range "
              "[0, %d)",
              i, a, v, card));
        }
      }
    }
  }
  return Status::OK();
}

Status Session::Reload() {
  BOAT_ASSIGN_OR_RETURN(std::unique_ptr<BoatClassifier> reloaded,
                        LoadClassifier(dir_, selector_.get()));
  classifier_ = std::move(reloaded);
  if (num_threads_.has_value()) classifier_->SetNumThreads(*num_threads_);
  return Status::OK();
}

Status Session::Apply(ChunkOp op, const std::vector<Tuple>& chunk,
                      BoatStats* stats) {
  // Reject what the engine would choke on before anything is mutated: these
  // failures cost nothing to undo.
  BOAT_RETURN_NOT_OK(ValidateChunk(chunk));
  const Status applied = op == ChunkOp::kInsert
                             ? classifier_->InsertChunk(chunk, stats)
                             : classifier_->DeleteChunk(chunk, stats);
  if (!applied.ok()) {
    // The engine may be half-updated; the directory is not (Apply persists
    // only after success). Reload the last persisted state so the caller
    // observes all-or-nothing.
    const Status rolled_back = Reload();
    if (!rolled_back.ok()) {
      return Status::Internal(StrPrintf(
          "apply failed (%s) and rollback reload of '%s' also failed (%s)",
          applied.ToString().c_str(), dir_.c_str(),
          rolled_back.ToString().c_str()));
    }
    return applied;
  }
  const Status persisted = Persist();
  if (!persisted.ok()) {
    // Keep memory and disk in lockstep even when the disk write fails —
    // otherwise the *next* failed Apply would roll back past this chunk.
    const Status rolled_back = Reload();
    if (!rolled_back.ok()) {
      return Status::Internal(StrPrintf(
          "persist failed (%s) and rollback reload of '%s' also failed (%s)",
          persisted.ToString().c_str(), dir_.c_str(),
          rolled_back.ToString().c_str()));
    }
    return persisted;
  }
  ++revision_;
  return Status::OK();
}

Status Session::Persist() {
  BOAT_RETURN_NOT_OK(SaveClassifier(*classifier_, dir_));
  // Fresh training with keep_bootstrap_trees also emits the bagged ensemble
  // beside the model. Loaded classifiers report no bootstrap trees, so
  // maintenance-time persists never touch (or clobber) an ensemble emitted
  // at train time.
  if (!classifier_->bootstrap_trees().empty()) {
    BOAT_RETURN_NOT_OK(SaveEnsemble(schema(), classifier_->bootstrap_trees(),
                                    dir_ + "/ensemble"));
  }
  return Status::OK();
}

}  // namespace boat
