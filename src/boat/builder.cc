#include "boat/builder.h"

namespace boat {

void BoatStats::MergeFrom(const BoatStats& other) {
  bootstrap_kills += other.bootstrap_kills;
  coarse_nodes += other.coarse_nodes;
  cleanup_scans += other.cleanup_scans;
  failed_checks += other.failed_checks;
  leafized_nodes += other.leafized_nodes;
  retained_tuples += other.retained_tuples;
  frontier_inmem += other.frontier_inmem;
  frontier_recursive += other.frontier_recursive;
  rebuild_scans += other.rebuild_scans;
  side_switch_tuples += other.side_switch_tuples;
  subtree_rebuilds += other.subtree_rebuilds;
}

Result<std::unique_ptr<BoatClassifier>> BoatClassifier::Train(
    TupleSource* db, const SplitSelector* selector, const BoatOptions& options,
    BoatStats* stats) {
  BOAT_RETURN_NOT_OK(options.Validate());
  BOAT_RETURN_NOT_OK(db->schema().Validate());
  auto engine = std::make_unique<BoatEngine>(db->schema(), selector, options);
  BOAT_RETURN_NOT_OK(engine->Build(db, stats));
  DecisionTree tree = engine->ExtractDecisionTree();
  return std::unique_ptr<BoatClassifier>(
      new BoatClassifier(std::move(engine), std::move(tree)));
}

Status BoatClassifier::InsertChunk(const std::vector<Tuple>& chunk,
                                   BoatStats* stats) {
  BOAT_RETURN_NOT_OK(engine_->InsertChunk(chunk, stats));
  tree_ = engine_->ExtractDecisionTree();
  return Status::OK();
}

Status BoatClassifier::DeleteChunk(const std::vector<Tuple>& chunk,
                                   BoatStats* stats) {
  BOAT_RETURN_NOT_OK(engine_->DeleteChunk(chunk, stats));
  tree_ = engine_->ExtractDecisionTree();
  return Status::OK();
}

Result<DecisionTree> BuildTreeBoat(TupleSource* db,
                                   const SplitSelector& selector,
                                   const BoatOptions& options,
                                   BoatStats* stats) {
  BOAT_RETURN_NOT_OK(options.Validate());
  BoatEngine engine(db->schema(), &selector, options);
  BOAT_RETURN_NOT_OK(engine.Build(db, stats));
  return engine.ExtractDecisionTree();
}

}  // namespace boat
