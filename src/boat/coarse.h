// Coarse splitting criteria and the coarse tree (output of the sampling
// phase, Section 3.2 / Figure 2 of the paper).

#ifndef BOAT_BOAT_COARSE_H_
#define BOAT_BOAT_COARSE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "boat/discretization.h"
#include "split/split.h"

namespace boat {

/// \brief The coarse splitting criterion at a node (Figure 2): the splitting
/// attribute plus, for numerical attributes, a confidence interval
/// [interval_lo, interval_hi] containing the final split point with high
/// probability, or, for categorical attributes, the exact splitting subset.
struct CoarseCriterion {
  int attribute = -1;
  bool is_numerical = true;
  double interval_lo = 0.0;
  double interval_hi = 0.0;
  std::vector<int32_t> subset;  ///< canonical, for categorical attributes

  /// \brief Whether a value of the splitting attribute falls inside the
  /// confidence interval (only meaningful for numerical criteria).
  bool InInterval(double v) const {
    return v > interval_lo && v <= interval_hi;
  }
};

/// \brief A node of the coarse tree. Internal nodes carry a coarse criterion
/// and, in impurity mode, a discretization per numerical attribute (for the
/// Lemma 3.1 checks); frontier nodes (no criterion) are where the optimistic
/// construction stopped — bootstrap disagreement or an estimated family
/// small enough for in-memory processing.
struct CoarseNode {
  std::optional<CoarseCriterion> criterion;
  /// Per-attribute discretizations (index = attribute; empty entries for
  /// categorical attributes). Populated for internal nodes in impurity mode.
  std::vector<Discretization> discretizations;
  /// Number of sample tuples that reached this node (diagnostics and
  /// frontier estimation).
  int64_t sample_family = 0;
  /// Whether the sample tuples reaching this node all carry one class label
  /// (predicts a purity-rule leaf in the final tree).
  bool sample_pure = false;
  int depth = 0;
  std::unique_ptr<CoarseNode> left;
  std::unique_ptr<CoarseNode> right;

  bool is_frontier() const { return !criterion.has_value(); }
};

/// \brief Counts nodes of a coarse tree (diagnostics).
int64_t CountCoarseNodes(const CoarseNode& root);

}  // namespace boat

#endif  // BOAT_BOAT_COARSE_H_
