#include "boat/crossval.h"

#include <cmath>
#include <functional>
#include <span>

#include "storage/sampling.h"
#include "storage/tuple_store.h"
#include "tree/compiled_tree.h"

namespace boat {

namespace {

// Non-owning filtered view over a shared source (repairs of one fold must
// not consume the caller's source object).
class FoldComplementSource : public TupleSource {
 public:
  FoldComplementSource(TupleSource* inner, int fold, int folds, uint64_t seed)
      : inner_(inner), fold_(fold), folds_(folds), seed_(seed) {}

  [[nodiscard]] bool Next(Tuple* tuple) override {
    while (inner_->Next(tuple)) {
      if (CrossValidationFold(*tuple, folds_, seed_) != fold_) return true;
    }
    return false;
  }
  Status Reset() override { return inner_->Reset(); }
  const Schema& schema() const override { return inner_->schema(); }

 private:
  TupleSource* inner_;
  int fold_;
  int folds_;
  uint64_t seed_;
};

}  // namespace

int CrossValidationFold(const Tuple& tuple, int folds, uint64_t seed) {
  // FNV-1a over the tuple bytes, mixed with the seed.
  const std::string key = TupleKeyBytes(tuple);
  uint64_t h = 0xcbf29ce484222325ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  return static_cast<int>(h % static_cast<uint64_t>(folds));
}

Result<BoatCrossValidationResult> BoatCrossValidate(
    TupleSource* db, int folds, const SplitSelector& selector,
    const BoatOptions& options) {
  if (folds < 2) {
    return Status::InvalidArgument("cross-validation needs >= 2 folds");
  }
  BOAT_RETURN_NOT_OK(options.Validate());
  const Schema& schema = db->schema();
  BOAT_RETURN_NOT_OK(schema.Validate());
  const uint64_t fold_seed = options.seed * 1000003 + 17;

  BoatCrossValidationResult result;

  // ---- Scan 1: shared reservoir sample + per-fold counts ------------------
  // determinism-lint: allow(root stream minted from caller-provided options.seed at the public entry point; all internal streams Split it)
  Rng rng(options.seed);
  uint64_t db_size = 0;
  // Sample enough that each fold-complement keeps ~sample_size tuples.
  const size_t shared_sample_size =
      options.sample_size * static_cast<size_t>(folds) /
      static_cast<size_t>(folds - 1);
  std::vector<uint64_t> fold_counts(static_cast<size_t>(folds), 0);
  std::vector<Tuple> sample;
  {
    BOAT_RETURN_NOT_OK(db->Reset());
    Tuple t;
    uint64_t seen = 0;
    while (db->Next(&t)) {
      ++seen;
      ++fold_counts[CrossValidationFold(t, folds, fold_seed)];
      if (sample.size() < shared_sample_size) {
        sample.push_back(t);
      } else {
        const uint64_t j = static_cast<uint64_t>(
            rng.UniformInt(0, static_cast<int64_t>(seen) - 1));
        if (j < shared_sample_size) sample[j] = t;
      }
    }
    db_size = seen;
  }
  result.db_size = db_size;

  // ---- Per-fold engines from the shared sample ----------------------------
  BoatOptions fold_options = options;
  fold_options.enable_updates = false;
  std::vector<std::unique_ptr<BoatEngine>> engines;
  engines.reserve(static_cast<size_t>(folds));
  for (int f = 0; f < folds; ++f) {
    fold_options.seed = options.seed + static_cast<uint64_t>(f) + 1;
    engines.push_back(
        std::make_unique<BoatEngine>(schema, &selector, fold_options));
    std::vector<Tuple> fold_sample;
    fold_sample.reserve(sample.size());
    for (const Tuple& t : sample) {
      if (CrossValidationFold(t, folds, fold_seed) != f) {
        fold_sample.push_back(t);
      }
    }
    BOAT_RETURN_NOT_OK(engines[f]->PreparePhase(
        std::move(fold_sample), db_size - fold_counts[f], nullptr));
  }

  // ---- Scan 2: the shared cleanup scan -------------------------------------
  {
    BOAT_RETURN_NOT_OK(db->Reset());
    Tuple t;
    while (db->Next(&t)) {
      const int f = CrossValidationFold(t, folds, fold_seed);
      for (int e = 0; e < folds; ++e) {
        if (e != f) {
          BOAT_RETURN_NOT_OK(engines[e]->InjectExternal(t));
        }
      }
    }
  }
  for (int f = 0; f < folds; ++f) {
    FoldComplementSource repair(db, f, folds, fold_seed);
    BOAT_RETURN_NOT_OK(engines[f]->FinalizeExternal(&repair, nullptr));
    result.fold_trees.push_back(engines[f]->ExtractDecisionTree());
  }

  // ---- Scan 3: held-out evaluation -----------------------------------------
  // Each fold tree is compiled once into the flat inference layout. Tuples
  // are buffered per fold and scored in chunks through the blocked batch
  // kernel (predictions identical to per-tuple Classify; chunking keeps the
  // memory footprint bounded for out-of-core databases).
  std::vector<CompiledTree> compiled;
  compiled.reserve(static_cast<size_t>(folds));
  for (int f = 0; f < folds; ++f) {
    result.fold_confusion.emplace_back(schema.num_classes());
    compiled.emplace_back(result.fold_trees[static_cast<size_t>(f)]);
  }
  {
    constexpr size_t kScoreChunk = 4096;
    std::vector<std::vector<Tuple>> pending(static_cast<size_t>(folds));
    for (auto& p : pending) p.reserve(kScoreChunk);
    std::vector<int32_t> predicted(kScoreChunk);
    const auto flush = [&](int f) {
      std::vector<Tuple>& p = pending[static_cast<size_t>(f)];
      if (p.empty()) return;
      compiled[static_cast<size_t>(f)].Predict(
          p, std::span<int32_t>(predicted.data(), p.size()),
          options.num_threads);
      for (size_t i = 0; i < p.size(); ++i) {
        result.fold_confusion[f].Add(p[i].label(), predicted[i]);
      }
      p.clear();
    };
    BOAT_RETURN_NOT_OK(db->Reset());
    Tuple t;
    while (db->Next(&t)) {
      const int f = CrossValidationFold(t, folds, fold_seed);
      pending[static_cast<size_t>(f)].push_back(t);
      if (pending[static_cast<size_t>(f)].size() >= kScoreChunk) flush(f);
    }
    for (int f = 0; f < folds; ++f) flush(f);
  }
  double sum = 0;
  for (const ConfusionMatrix& cm : result.fold_confusion) {
    sum += cm.Accuracy();
  }
  result.mean_accuracy = sum / static_cast<double>(folds);
  double var = 0;
  for (const ConfusionMatrix& cm : result.fold_confusion) {
    const double d = cm.Accuracy() - result.mean_accuracy;
    var += d * d;
  }
  result.stddev_accuracy = std::sqrt(var / static_cast<double>(folds));
  return result;
}

}  // namespace boat
