#include "boat/bounds.h"

#include <limits>

#include "common/status.h"

namespace boat {

double CornerLowerBound(const ImpurityFunction& imp,
                        const std::vector<int64_t>& lo,
                        const std::vector<int64_t>& hi,
                        const std::vector<int64_t>& node_totals,
                        int64_t total) {
  const int k = static_cast<int>(node_totals.size());
  if (k > kMaxCornerBoundClasses) {
    // 2^k corners would be an accidental exponential cliff (k=24 is 16.7M
    // impurity evaluations *per call*). -infinity is a correct lower bound;
    // it simply carries no pruning power, so the caller rebuilds from data.
    return -std::numeric_limits<double>::infinity();
  }
  std::vector<int64_t> left(k), right(k);
  double best = std::numeric_limits<double>::infinity();
  const uint32_t corners = 1u << k;
  for (uint32_t mask = 0; mask < corners; ++mask) {
    for (int c = 0; c < k; ++c) {
      left[c] = ((mask >> c) & 1u) ? hi[c] : lo[c];
      right[c] = node_totals[c] - left[c];
    }
    const double v = imp.Eval(left.data(), right.data(), k, total);
    if (v < best) best = v;
  }
  return best;
}

}  // namespace boat
