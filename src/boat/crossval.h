// BOAT-accelerated k-fold cross-validation.
//
// The paper (Section 2.1) notes that although MDL pruning is preferred for
// large datasets, "our techniques can be used to speed up cross-validation
// for large training datasets as well". This module realizes that claim: the
// k fold-complement trees are grown *concurrently* from shared physical
// scans —
//
//   scan 1: one reservoir sample + per-fold counts;
//   scan 2: every tuple is streamed into the k-1 engines whose training set
//           contains it (the shared cleanup scan);
//   scan 3: every tuple is classified by its own fold's tree (evaluation).
//
// Three scans of the training database in total (plus rare repair scans),
// against 2k + k scans for k independent BOAT builds and evaluations — and
// each fold tree is still guaranteed identical to an in-memory build on its
// fold-complement.
//
// Fold assignment is a deterministic hash of the tuple's bytes (equal tuples
// land in the same fold), so membership is consistent across scans without
// materializing anything.

#ifndef BOAT_BOAT_CROSSVAL_H_
#define BOAT_BOAT_CROSSVAL_H_

#include <vector>

#include "boat/builder.h"
#include "tree/evaluation.h"

namespace boat {

/// \brief Outcome of BOAT cross-validation.
struct BoatCrossValidationResult {
  /// Tree i was trained on every tuple outside fold i.
  std::vector<DecisionTree> fold_trees;
  /// Per-fold held-out confusion matrices and the aggregate accuracy.
  std::vector<ConfusionMatrix> fold_confusion;
  double mean_accuracy = 0;
  double stddev_accuracy = 0;
  /// Total tuples in the training database.
  uint64_t db_size = 0;
};

/// \brief Fold of a tuple under the deterministic assignment.
int CrossValidationFold(const Tuple& tuple, int folds, uint64_t seed);

/// \brief Runs k-fold cross-validation of BOAT over `db` in three shared
/// scans. `options.enable_updates` is ignored (forced off).
Result<BoatCrossValidationResult> BoatCrossValidate(
    TupleSource* db, int folds, const SplitSelector& selector,
    const BoatOptions& options);

}  // namespace boat

#endif  // BOAT_BOAT_CROSSVAL_H_
