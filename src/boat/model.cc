#include "boat/model.h"

#include <cstring>
#include <unordered_map>

#include "common/str_util.h"
#include "storage/table_file.h"

namespace boat {

// -------------------------------------------------------------- ExtremeTracker

void ExtremeTracker::Insert(double v) {
  if (v > bound_) return;
  ++qualifying_;
  if (lost_) return;  // a larger untracked value may exist; stay lost
  if (count_ == 0 || v > value_) {
    value_ = v;
    count_ = 1;
  } else if (v == value_) {
    ++count_;
  }
}

void ExtremeTracker::Remove(double v) {
  if (v > bound_) return;
  --qualifying_;
  if (qualifying_ == 0) {
    // Nothing qualifies any more: the (non-existent) extreme is known again.
    lost_ = false;
    count_ = 0;
    return;
  }
  if (!lost_ && count_ > 0 && v == value_) {
    if (--count_ == 0) lost_ = true;
  }
}

void ExtremeTracker::MergeFrom(const ExtremeTracker& other) {
  qualifying_ += other.qualifying_;
  if (other.lost_) lost_ = true;  // cannot happen insert-only; stay safe
  if (lost_ || other.count_ == 0) return;
  if (count_ == 0 || other.value_ > value_) {
    value_ = other.value_;
    count_ = other.count_;
  } else if (other.value_ == value_) {
    count_ += other.count_;
  }
}

// ----------------------------------------------------------------- ExtractTree

std::unique_ptr<TreeNode> ExtractTree(const ModelNode& node) {
  if (node.kind == ModelNode::Kind::kFrontier) {
    if (node.subtree == nullptr) {
      FatalError("ExtractTree: unresolved frontier node");
    }
    return node.subtree->Clone();
  }
  if (!node.final_split.has_value()) {
    return TreeNode::Leaf(node.class_totals);
  }
  return TreeNode::Internal(*node.final_split, node.class_totals,
                            ExtractTree(*node.left), ExtractTree(*node.right));
}

ModelShape DescribeModel(const ModelNode& root) {
  ModelShape shape;
  if (root.kind == ModelNode::Kind::kFrontier) {
    ++shape.frontier_nodes;
    return shape;
  }
  ++shape.internal_nodes;
  if (root.left != nullptr) {
    const ModelShape l = DescribeModel(*root.left);
    shape.internal_nodes += l.internal_nodes;
    shape.frontier_nodes += l.frontier_nodes;
  }
  if (root.right != nullptr) {
    const ModelShape r = DescribeModel(*root.right);
    shape.internal_nodes += r.internal_nodes;
    shape.frontier_nodes += r.frontier_nodes;
  }
  return shape;
}

// -------------------------------------------------------------- DatasetArchive

// Tuple keys come from TupleKeyBytes (storage/tuple_store.h).

DatasetArchive::DatasetArchive(Schema schema, TempFileManager* temp)
    : schema_(std::move(schema)), temp_(temp) {}

Status DatasetArchive::AddChunk(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) return Status::OK();
  const std::string path =
      temp_->NewPath(StrPrintf("archive-%llu",
                               static_cast<unsigned long long>(next_id_++)));
  BOAT_RETURN_NOT_OK(WriteTable(path, schema_, tuples));
  segments_.push_back(path);
  live_ += static_cast<int64_t>(tuples.size());
  return Status::OK();
}

Status DatasetArchive::RemoveChunk(const std::vector<Tuple>& tuples) {
  if (tuples.empty()) return Status::OK();
  const std::string path =
      temp_->NewPath(StrPrintf("tombstone-%llu",
                               static_cast<unsigned long long>(next_id_++)));
  BOAT_RETURN_NOT_OK(WriteTable(path, schema_, tuples));
  tombstones_.push_back(path);
  live_ -= static_cast<int64_t>(tuples.size());
  return Status::OK();
}

Status DatasetArchive::Scan(
    const std::function<void(const Tuple&)>& fn) const {
  // Multiset of deleted tuples; each cancels one equal inserted tuple.
  std::unordered_map<std::string, int64_t> dead;
  for (const std::string& path : tombstones_) {
    BOAT_ASSIGN_OR_RETURN(auto reader, TableReader::Open(path, schema_));
    Tuple t;
    while (reader->Next(&t)) ++dead[TupleKeyBytes(t)];
    BOAT_RETURN_NOT_OK(reader->status());
  }
  for (const std::string& path : segments_) {
    BOAT_ASSIGN_OR_RETURN(auto reader, TableReader::Open(path, schema_));
    Tuple t;
    while (reader->Next(&t)) {
      if (!dead.empty()) {
        auto it = dead.find(TupleKeyBytes(t));
        if (it != dead.end()) {
          if (--it->second == 0) dead.erase(it);
          continue;
        }
      }
      fn(t);
    }
    BOAT_RETURN_NOT_OK(reader->status());
  }
  return Status::OK();
}

}  // namespace boat
