// Discretizations of numerical attributes (Section 3.4 of the paper).
//
// At each node BOAT keeps, for every numerical predictor attribute, a
// discretization computed from the in-memory sample. During the cleanup scan
// only per-bucket class counts are maintained (not full AVC-sets); the
// cumulative counts at bucket boundaries are the "stamp points" that feed
// the Lemma 3.1 corner lower bounds.
//
// Beyond the paper's plain corner bound we additionally track, per bucket,
// the smallest attribute value present and its class counts. Every candidate
// split inside a bucket has a stamp point that dominates
// stamp(lower boundary) + min_value_counts, so the bound box can be
// tightened to [stamp(x1) + min_counts, stamp(x2)]. This keeps the bound
// exact for buckets holding a single distinct value — in particular for
// attributes that are constant within a family (e.g. commission == 0 for
// salary >= 75000 in the Agrawal data), where the plain box [stamp(x1),
// stamp(x2)] would dip to zero impurity and force a spurious rebuild on
// every check. Buckets containing no family tuples hold no candidate splits
// and are skipped altogether.

#ifndef BOAT_BOAT_DISCRETIZATION_H_
#define BOAT_BOAT_DISCRETIZATION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "split/counts.h"
#include "split/impurity.h"

namespace boat {

class ModelSerializer;  // persistence layer (boat/persistence.h)

/// \brief A discretization of a numerical domain: ascending boundary values
/// b_1 < ... < b_m defining buckets (-inf, b_1], (b_1, b_2], ..., (b_m, inf).
class Discretization {
 public:
  Discretization() = default;
  explicit Discretization(std::vector<double> boundaries);

  int num_buckets() const {
    return static_cast<int>(boundaries_.size()) + 1;
  }
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// \brief Index of the bucket containing v (0-based).
  int BucketOf(double v) const;

  /// \brief Index of a boundary value, or -1 if not a boundary.
  int BoundaryIndex(double v) const;

  /// \brief Inserts an extra boundary (no-op if already present). Used to
  /// force boundaries at the confidence-interval endpoints of the coarse
  /// splitting attribute so every bucket lies entirely inside or outside the
  /// interval.
  void AddBoundary(double v);

  bool operator==(const Discretization&) const = default;

 private:
  std::vector<double> boundaries_;
};

/// \brief Per-bucket, per-class tuple counts of one numerical attribute at
/// one node, plus the per-bucket minimum-value tracking used to tighten the
/// corner bounds. Supports weighted add (weight -1 = delete).
class BucketCounts {
 public:
  BucketCounts() = default;
  BucketCounts(Discretization disc, int num_classes);

  void Add(double value, int32_t label, int64_t weight = 1);

  /// \brief Adds `other` (same discretization and class count) into this.
  /// Both sides must have been built by insertions only (no deletions): the
  /// per-bucket extreme tracks of two insert-only counters combine exactly,
  /// which is what lets the parallel cleanup scan accumulate per-thread
  /// BucketCounts and merge them to the bit-identical serial result.
  void MergeFrom(const BucketCounts& other);

  const Discretization& disc() const { return disc_; }
  int num_classes() const { return k_; }

  /// \brief Class counts inside bucket `b` (k entries).
  const int64_t* bucket_counts(int b) const { return &counts_[b * k_]; }

  /// \brief Total tuples in bucket `b`.
  int64_t BucketTotal(int b) const;

  /// \brief Stamp point at the *upper* boundary of bucket `b`: cumulative
  /// per-class counts of tuples with value <= b's upper boundary. For the
  /// last bucket this equals the node's class totals.
  std::vector<int64_t> StampAtUpperBoundary(int b) const;

  /// \brief Class counts of the tuples carrying the smallest value in bucket
  /// `b`, if that information is still exact (deleting the tracked minimum
  /// loses it until the bucket empties). Used to raise the bound box's lower
  /// corner.
  std::optional<std::vector<int64_t>> MinValueCounts(int b) const;

  /// \brief The largest value in bucket `b` and its class counts, if exact.
  /// Used to exclude the boundary candidate vL (whose impurity the cleanup
  /// phase computes exactly) from the bound box of the bucket containing it.
  std::optional<std::pair<double, std::vector<int64_t>>> MaxValueInfo(
      int b) const;

  /// \brief Per-class totals across all buckets.
  std::vector<int64_t> Totals() const;

  /// Per-bucket extreme-value bookkeeping (public for the implementation's
  /// free helper; not part of the conceptual API).
  struct ExtremeTrack {
    double value = 0.0;
    std::vector<int64_t> counts;  // class counts at `value`; empty = none
    bool lost = false;
  };

 private:
  friend class ModelSerializer;
  Discretization disc_;
  int k_ = 0;
  std::vector<int64_t> counts_;      // num_buckets x k
  std::vector<ExtremeTrack> mins_;   // per bucket
  std::vector<ExtremeTrack> maxes_;  // per bucket
};

/// \brief Builds the paper's adaptive discretization of one numerical
/// attribute from the node's *sample* AVC-set: walking attribute values in
/// ascending order, a bucket is closed early whenever its corner lower bound
/// comes close to the estimated global impurity minimum (so the bound stays
/// tight exactly where false alarms would otherwise fire), and otherwise
/// grows to an equi-depth quota derived from `max_buckets`.
Discretization BuildAdaptiveDiscretization(const NumericAvc& sample_avc,
                                           const ImpurityFunction& imp,
                                           int max_buckets);

}  // namespace boat

#endif  // BOAT_BOAT_DISCRETIZATION_H_
