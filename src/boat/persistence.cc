#include "boat/persistence.h"

#include <algorithm>
#include <cinttypes>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "tree/serialize.h"

namespace boat {

namespace fs = std::filesystem;

// ModelSerializer has friend access to the engine and its component types;
// everything below lives in its static methods.
class ModelSerializer {
 public:
  // ------------------------------------------------------------------ save

  static Status Save(const BoatEngine& engine, const std::string& dir) {
    if (engine.root_ == nullptr) {
      return Status::InvalidArgument("engine has no model (not built)");
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) return Status::IOError("cannot create model directory: " + dir);

    std::string out;
    out += "BOATMODEL v1\n";
    out += "selector " + engine.selector_->name() + "\n";

    // Schema.
    const Schema& schema = engine.schema_;
    out += StrPrintf("schema %d %d\n", schema.num_classes(),
                     schema.num_attributes());
    for (int a = 0; a < schema.num_attributes(); ++a) {
      const Attribute& attr = schema.attribute(a);
      out += StrPrintf("attr %c %d %s\n",
                       attr.type == AttributeType::kNumerical ? 'n' : 'c',
                       attr.cardinality, attr.name.c_str());
    }

    // Options (the fields that shape future maintenance).
    const BoatOptions& o = engine.options_;
    out += StrPrintf(
        "options %zu %d %zu %lld %d %lld %lld %zu %d %a %d %d %lld %llu\n",
        o.sample_size, o.bootstrap_count, o.bootstrap_subsample,
        static_cast<long long>(o.inmem_threshold), o.limits.max_depth,
        static_cast<long long>(o.limits.min_tuples_to_split),
        static_cast<long long>(o.limits.stop_family_size),
        o.store_memory_budget, o.max_buckets_per_attr, o.bound_epsilon,
        o.enable_updates ? 1 : 0, o.max_recursion_depth,
        static_cast<long long>(o.exact_rebuild_cap),
        static_cast<unsigned long long>(o.seed));
    out += StrPrintf("dbsize %llu\n",
                     static_cast<unsigned long long>(engine.db_size_));

    // Archive.
    int64_t next_store = 0;
    if (engine.archive_ != nullptr) {
      const DatasetArchive& archive = *engine.archive_;
      out += StrPrintf("archive %zu %zu %lld\n", archive.segments_.size(),
                       archive.tombstones_.size(),
                       static_cast<long long>(archive.live_));
      BOAT_RETURN_NOT_OK(CopyFiles(archive.segments_, dir, "archive-seg"));
      BOAT_RETURN_NOT_OK(CopyFiles(archive.tombstones_, dir, "archive-dead"));
    } else {
      out += "noarchive\n";
    }

    BOAT_RETURN_NOT_OK(
        SaveNode(*engine.root_, engine, dir, &next_store, &out));

    std::ofstream manifest(dir + "/manifest.boatmodel");
    manifest << out;
    // Flush before checking: without it a full-disk (ENOSPC) failure sits in
    // the stream buffer, the check passes, and the destructor swallows the
    // error — reporting OK for a truncated manifest.
    manifest.flush();
    if (!manifest) return Status::IOError("cannot write model manifest");
    return Status::OK();
  }

  // ------------------------------------------------------------------ load

  static Result<std::unique_ptr<BoatEngine>> Load(
      const std::string& dir, const SplitSelector* selector) {
    std::ifstream in(dir + "/manifest.boatmodel");
    if (!in) return Status::NotFound("no model manifest in " + dir);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(std::move(line));
    size_t cursor = 0;
    auto next = [&lines, &cursor]() -> Result<std::string> {
      if (cursor >= lines.size()) {
        return Status::Corruption("unexpected end of model manifest");
      }
      return lines[cursor++];
    };

    BOAT_ASSIGN_OR_RETURN(std::string header, next());
    if (header != "BOATMODEL v1") {
      return Status::Corruption("bad model header: " + header);
    }
    BOAT_ASSIGN_OR_RETURN(std::string selector_line, next());
    if (selector_line != "selector " + selector->name()) {
      return Status::InvalidArgument(
          "model was trained with a different split selection method (" +
          selector_line + ")");
    }

    // Schema.
    BOAT_ASSIGN_OR_RETURN(std::string schema_line, next());
    int k = 0;
    int num_attrs = 0;
    if (std::sscanf(schema_line.c_str(), "schema %d %d", &k, &num_attrs) !=
        2) {
      return Status::Corruption("bad schema line");
    }
    std::vector<Attribute> attrs;
    for (int a = 0; a < num_attrs; ++a) {
      BOAT_ASSIGN_OR_RETURN(std::string attr_line, next());
      char type = 0;
      int cardinality = 0;
      int name_offset = 0;
      if (std::sscanf(attr_line.c_str(), "attr %c %d %n", &type, &cardinality,
                      &name_offset) != 2) {
        return Status::Corruption("bad attr line: " + attr_line);
      }
      const std::string name = attr_line.substr(name_offset);
      attrs.push_back(type == 'n' ? Attribute::Numerical(name)
                                  : Attribute::Categorical(name, cardinality));
    }
    Schema schema(std::move(attrs), k);
    BOAT_RETURN_NOT_OK(schema.Validate());

    // Options.
    BOAT_ASSIGN_OR_RETURN(std::string options_line, next());
    BoatOptions options;
    {
      std::istringstream fields(options_line);
      std::string tag, eps;
      long long inmem, min_tuples, stop_family, exact_cap;
      unsigned long long seed;
      int enable_updates;
      if (!(fields >> tag >> options.sample_size >> options.bootstrap_count >>
            options.bootstrap_subsample >> inmem >> options.limits.max_depth >>
            min_tuples >> stop_family >> options.store_memory_budget >>
            options.max_buckets_per_attr >> eps >> enable_updates >>
            options.max_recursion_depth >> exact_cap >> seed) ||
          tag != "options") {
        return Status::Corruption("bad options line");
      }
      options.inmem_threshold = inmem;
      options.limits.min_tuples_to_split = min_tuples;
      options.limits.stop_family_size = stop_family;
      options.bound_epsilon = std::strtod(eps.c_str(), nullptr);
      options.enable_updates = enable_updates != 0;
      options.exact_rebuild_cap = exact_cap;
      options.seed = seed;
    }

    auto engine =
        std::make_unique<BoatEngine>(schema, selector, options);

    BOAT_ASSIGN_OR_RETURN(std::string dbsize_line, next());
    {
      unsigned long long n = 0;
      if (std::sscanf(dbsize_line.c_str(), "dbsize %llu", &n) != 1) {
        return Status::Corruption("bad dbsize line");
      }
      engine->db_size_ = n;
    }

    // Archive.
    BOAT_ASSIGN_OR_RETURN(std::string archive_line, next());
    if (archive_line != "noarchive") {
      size_t nsegs = 0;
      size_t ndead = 0;
      long long live = 0;
      if (std::sscanf(archive_line.c_str(), "archive %zu %zu %lld", &nsegs,
                      &ndead, &live) != 3) {
        return Status::Corruption("bad archive line");
      }
      auto archive =
          std::make_unique<DatasetArchive>(schema, engine->temp_);
      BOAT_RETURN_NOT_OK(RestoreFiles(dir, "archive-seg", nsegs,
                                      engine->temp_, &archive->segments_));
      BOAT_RETURN_NOT_OK(RestoreFiles(dir, "archive-dead", ndead,
                                      engine->temp_, &archive->tombstones_));
      archive->live_ = live;
      archive->next_id_ = nsegs + ndead;
      engine->archive_ = std::move(archive);
    }

    BOAT_ASSIGN_OR_RETURN(
        auto root, LoadNode(next, dir, schema, engine.get()));
    engine->root_ = std::move(root);
    return engine;
  }

 private:
  // --------------------------------------------------------------- helpers

  static Status CopyFiles(const std::vector<std::string>& paths,
                          const std::string& dir, const char* prefix) {
    for (size_t i = 0; i < paths.size(); ++i) {
      std::error_code ec;
      fs::copy_file(paths[i], StrPrintf("%s/%s-%zu.tbl", dir.c_str(), prefix,
                                        i),
                    fs::copy_options::overwrite_existing, ec);
      if (ec) return Status::IOError("cannot copy " + paths[i]);
    }
    return Status::OK();
  }

  static Status RestoreFiles(const std::string& dir, const char* prefix,
                             size_t count, TempFileManager* temp,
                             std::vector<std::string>* out) {
    for (size_t i = 0; i < count; ++i) {
      const std::string src =
          StrPrintf("%s/%s-%zu.tbl", dir.c_str(), prefix, i);
      const std::string dst = temp->NewPath(prefix);
      std::error_code ec;
      fs::copy_file(src, dst, fs::copy_options::overwrite_existing, ec);
      if (ec) return Status::IOError("cannot restore " + src);
      out->push_back(dst);
    }
    return Status::OK();
  }

  // Writes a store's live tuples as store-<id>.tbl; returns the id (-1 for
  // null/empty stores).
  static Result<int64_t> SaveStore(const SpillableTupleStore* store,
                                   const Schema& schema,
                                   const std::string& dir,
                                   int64_t* next_store) {
    if (store == nullptr || store->empty()) return static_cast<int64_t>(-1);
    const int64_t id = (*next_store)++;
    BOAT_ASSIGN_OR_RETURN(
        auto writer,
        TableWriter::Create(StrPrintf("%s/store-%lld.tbl", dir.c_str(),
                                      static_cast<long long>(id)),
                            schema));
    Status append = Status::OK();
    BOAT_RETURN_NOT_OK(store->ForEach([&](const Tuple& t) {
      if (append.ok()) append = writer->Append(t);
    }));
    BOAT_RETURN_NOT_OK(append);
    BOAT_RETURN_NOT_OK(writer->Finish());
    return id;
  }

  static Result<std::unique_ptr<SpillableTupleStore>> LoadStore(
      int64_t id, const std::string& dir, const Schema& schema,
      BoatEngine* engine, const char* hint) {
    auto store = engine->NewStore(hint);
    if (id < 0) return store;
    BOAT_ASSIGN_OR_RETURN(
        auto tuples,
        ReadTable(StrPrintf("%s/store-%lld.tbl", dir.c_str(),
                            static_cast<long long>(id)),
                  schema));
    for (const Tuple& t : tuples) {
      BOAT_RETURN_NOT_OK(store->Append(t));
    }
    return store;
  }

  static std::string TrackerText(const ExtremeTracker& t) {
    return StrPrintf("%a %lld %d %a %lld", t.bound_,
                     static_cast<long long>(t.qualifying_), t.lost_ ? 1 : 0,
                     t.value_, static_cast<long long>(t.count_));
  }

  static Result<ExtremeTracker> ParseTracker(std::istringstream* fields) {
    std::string bound, value;
    long long qualifying, count;
    int lost;
    if (!(*fields >> bound >> qualifying >> lost >> value >> count)) {
      return Status::Corruption("bad tracker record");
    }
    ExtremeTracker t(std::strtod(bound.c_str(), nullptr));
    t.qualifying_ = qualifying;
    t.lost_ = lost != 0;
    t.value_ = std::strtod(value.c_str(), nullptr);
    t.count_ = count;
    return t;
  }

  // ------------------------------------------------------------ node save

  static Status SaveNode(const ModelNode& node, const BoatEngine& engine,
                         const std::string& dir, int64_t* next_store,
                         std::string* out) {
    const Schema& schema = engine.schema_;
    if (node.kind == ModelNode::Kind::kFrontier) {
      BOAT_ASSIGN_OR_RETURN(
          int64_t family_id,
          SaveStore(node.family.get(), schema, dir, next_store));
      out->append(StrPrintf("frontier %d %d %d %lld", node.depth,
                            node.rebuild_count, node.collect_family ? 1 : 0,
                            static_cast<long long>(family_id)));
      for (const int64_t c : node.class_totals) {
        out->append(StrPrintf(" %lld", static_cast<long long>(c)));
      }
      out->push_back('\n');
      if (node.subtree != nullptr) {
        const std::string sub = SerializeSubtree(*node.subtree);
        const long long sub_lines =
            std::count(sub.begin(), sub.end(), '\n');
        out->append(StrPrintf("subtree %lld\n", sub_lines));
        out->append(sub);
      } else {
        out->append("nosubtree\n");
      }
      return Status::OK();
    }

    out->append(StrPrintf("internal %d %d\n", node.depth, node.rebuild_count));
    // Coarse criterion.
    const CoarseCriterion& crit = node.coarse;
    if (crit.is_numerical) {
      out->append(StrPrintf("coarse %d n %a %a\n", crit.attribute,
                            crit.interval_lo, crit.interval_hi));
    } else {
      out->append(StrPrintf("coarse %d c %zu", crit.attribute,
                            crit.subset.size()));
      for (const int32_t c : crit.subset) out->append(StrPrintf(" %d", c));
      out->push_back('\n');
    }
    // Final split (reuse the tree serialization's line grammar via a
    // one-node leaf trick is awkward; emit directly).
    if (node.final_split.has_value()) {
      const Split& s = *node.final_split;
      if (s.is_numerical) {
        out->append(
            StrPrintf("final %d n %a %a\n", s.attribute, s.value, s.impurity));
      } else {
        out->append(StrPrintf("final %d c %zu", s.attribute, s.subset.size()));
        for (const int32_t c : s.subset) out->append(StrPrintf(" %d", c));
        out->append(StrPrintf(" %a\n", s.impurity));
      }
    } else {
      out->append("nofinal\n");
    }
    // Class totals.
    out->append("counts");
    for (const int64_t c : node.class_totals) {
      out->append(StrPrintf(" %lld", static_cast<long long>(c)));
    }
    out->push_back('\n');
    // Trackers.
    out->append("boundary " + TrackerText(node.boundary) + "\n");
    if (node.family_max.has_value()) {
      out->append("familymax " + TrackerText(*node.family_max) + "\n");
    } else {
      out->append("nofamilymax\n");
    }
    // Moments (QUEST mode).
    if (node.moments.has_value()) {
      out->append("moments");
      for (const auto& cell : node.moments->cells_) {
        const __int128 sq = cell.sum_sq;
        out->append(StrPrintf(
            " %lld %lld %lld %llu", static_cast<long long>(cell.count),
            static_cast<long long>(cell.sum),
            static_cast<long long>(static_cast<int64_t>(sq >> 64)),
            static_cast<unsigned long long>(
                static_cast<uint64_t>(sq & ~uint64_t{0}))));
      }
      out->push_back('\n');
    } else {
      out->append("nomoments\n");
    }
    // Categorical AVCs.
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (!schema.IsCategorical(a)) continue;
      const CategoricalAvc& avc = node.cat_avcs[a];
      out->append(StrPrintf("catavc %d", a));
      for (int32_t cat = 0; cat < avc.cardinality(); ++cat) {
        for (int cls = 0; cls < schema.num_classes(); ++cls) {
          out->append(
              StrPrintf(" %lld", static_cast<long long>(avc.count(cat, cls))));
        }
      }
      out->push_back('\n');
    }
    // Bucket counts (impurity mode).
    if (!node.buckets.empty()) {
      for (int a = 0; a < schema.num_attributes(); ++a) {
        if (!schema.IsNumerical(a)) continue;
        const BucketCounts& bc = node.buckets[a];
        out->append(StrPrintf("bucketdisc %d %zu", a,
                              bc.disc_.boundaries().size()));
        for (const double b : bc.disc_.boundaries()) {
          out->append(StrPrintf(" %a", b));
        }
        out->push_back('\n');
        out->append(StrPrintf("bucketcounts %d", a));
        for (const int64_t c : bc.counts_) {
          out->append(StrPrintf(" %lld", static_cast<long long>(c)));
        }
        out->push_back('\n');
        BOAT_RETURN_NOT_OK(SaveTracks("bucketmins", a, bc.mins_, out));
        BOAT_RETURN_NOT_OK(SaveTracks("bucketmaxes", a, bc.maxes_, out));
      }
      out->append("endbuckets\n");
    } else {
      out->append("nobuckets\n");
    }
    // Stores.
    BOAT_ASSIGN_OR_RETURN(
        int64_t pending_id,
        SaveStore(node.pending.get(), schema, dir, next_store));
    BOAT_ASSIGN_OR_RETURN(
        int64_t retained_id,
        SaveStore(node.retained.get(), schema, dir, next_store));
    out->append(StrPrintf("stores %lld %lld\n",
                          static_cast<long long>(pending_id),
                          static_cast<long long>(retained_id)));
    BOAT_RETURN_NOT_OK(SaveNode(*node.left, engine, dir, next_store, out));
    return SaveNode(*node.right, engine, dir, next_store, out);
  }

  static Status SaveTracks(const char* tag, int attr,
                           const std::vector<BucketCounts::ExtremeTrack>& ts,
                           std::string* out) {
    out->append(StrPrintf("%s %d", tag, attr));
    for (const auto& t : ts) {
      out->append(StrPrintf(" %a %d %zu", t.value, t.lost ? 1 : 0,
                            t.counts.size()));
      for (const int64_t c : t.counts) {
        out->append(StrPrintf(" %lld", static_cast<long long>(c)));
      }
    }
    out->push_back('\n');
    return Status::OK();
  }

  // ------------------------------------------------------------ node load

  using NextLine = std::function<Result<std::string>()>;

  static Result<std::unique_ptr<ModelNode>> LoadNode(const NextLine& next,
                                                     const std::string& dir,
                                                     const Schema& schema,
                                                     BoatEngine* engine) {
    BOAT_ASSIGN_OR_RETURN(std::string line, next());
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;

    auto node = std::make_unique<ModelNode>();
    if (tag == "frontier") {
      int collect = 0;
      long long family_id = -1;
      if (!(fields >> node->depth >> node->rebuild_count >> collect >>
            family_id)) {
        return Status::Corruption("bad frontier record");
      }
      node->kind = ModelNode::Kind::kFrontier;
      node->collect_family = collect != 0;
      node->class_totals.assign(schema.num_classes(), 0);
      for (int c = 0; c < schema.num_classes(); ++c) {
        long long v;
        if (!(fields >> v)) return Status::Corruption("bad frontier counts");
        node->class_totals[c] = v;
      }
      BOAT_ASSIGN_OR_RETURN(
          node->family, LoadStore(family_id, dir, schema, engine, "family"));
      BOAT_ASSIGN_OR_RETURN(std::string sub_line, next());
      if (sub_line.rfind("subtree ", 0) == 0) {
        const long long sub_lines =
            std::strtoll(sub_line.c_str() + 8, nullptr, 10);
        std::vector<std::string> lines;
        for (long long i = 0; i < sub_lines; ++i) {
          BOAT_ASSIGN_OR_RETURN(std::string l, next());
          lines.push_back(std::move(l));
        }
        size_t cursor = 0;
        BOAT_ASSIGN_OR_RETURN(node->subtree,
                              DeserializeSubtree(lines, &cursor, schema));
      } else if (sub_line != "nosubtree") {
        return Status::Corruption("bad subtree record: " + sub_line);
      }
      return node;
    }

    if (tag != "internal") {
      return Status::Corruption("unknown model node tag: " + tag);
    }
    node->kind = ModelNode::Kind::kInternal;
    if (!(fields >> node->depth >> node->rebuild_count)) {
      return Status::Corruption("bad internal record");
    }

    // Coarse criterion.
    {
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      std::istringstream f(l);
      std::string t, type;
      if (!(f >> t >> node->coarse.attribute >> type) || t != "coarse") {
        return Status::Corruption("bad coarse record: " + l);
      }
      if (type == "n") {
        std::string lo, hi;
        if (!(f >> lo >> hi)) return Status::Corruption("bad coarse interval");
        node->coarse.is_numerical = true;
        node->coarse.interval_lo = std::strtod(lo.c_str(), nullptr);
        node->coarse.interval_hi = std::strtod(hi.c_str(), nullptr);
      } else {
        size_t m = 0;
        f >> m;
        node->coarse.is_numerical = false;
        node->coarse.subset.resize(m);
        for (size_t i = 0; i < m; ++i) f >> node->coarse.subset[i];
        if (!f) return Status::Corruption("bad coarse subset");
      }
    }
    // Final split.
    {
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      if (l != "nofinal") {
        std::istringstream f(l);
        std::string t, type;
        int attr;
        if (!(f >> t >> attr >> type) || t != "final") {
          return Status::Corruption("bad final record: " + l);
        }
        if (type == "n") {
          std::string v, imp;
          if (!(f >> v >> imp)) return Status::Corruption("bad final split");
          node->final_split = Split::Numerical(
              attr, std::strtod(v.c_str(), nullptr),
              std::strtod(imp.c_str(), nullptr));
        } else {
          size_t m = 0;
          f >> m;
          std::vector<int32_t> subset(m);
          for (size_t i = 0; i < m; ++i) f >> subset[i];
          std::string imp;
          if (!(f >> imp)) return Status::Corruption("bad final subset");
          node->final_split = Split::Categorical(
              attr, std::move(subset), std::strtod(imp.c_str(), nullptr));
        }
      }
    }
    // Class totals.
    {
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      std::istringstream f(l);
      std::string t;
      f >> t;
      if (t != "counts") return Status::Corruption("bad counts record");
      node->class_totals.assign(schema.num_classes(), 0);
      for (int c = 0; c < schema.num_classes(); ++c) {
        long long v;
        if (!(f >> v)) return Status::Corruption("bad counts record");
        node->class_totals[c] = v;
      }
    }
    // Trackers.
    {
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      std::istringstream f(l);
      std::string t;
      f >> t;
      if (t != "boundary") return Status::Corruption("bad boundary record");
      BOAT_ASSIGN_OR_RETURN(node->boundary, ParseTracker(&f));
    }
    {
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      if (l != "nofamilymax") {
        std::istringstream f(l);
        std::string t;
        f >> t;
        if (t != "familymax") return Status::Corruption("bad familymax");
        BOAT_ASSIGN_OR_RETURN(ExtremeTracker tracker, ParseTracker(&f));
        node->family_max = tracker;
      }
    }
    // Moments.
    {
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      if (l != "nomoments") {
        std::istringstream f(l);
        std::string t;
        f >> t;
        if (t != "moments") return Status::Corruption("bad moments record");
        MomentSet moments(schema);
        for (auto& cell : moments.cells_) {
          long long count, sum, hi;
          unsigned long long lo;
          if (!(f >> count >> sum >> hi >> lo)) {
            return Status::Corruption("bad moments cell");
          }
          cell.count = count;
          cell.sum = sum;
          cell.sum_sq = (static_cast<__int128>(hi) << 64) |
                        static_cast<unsigned __int128>(lo);
        }
        node->moments = std::move(moments);
      }
    }
    // Categorical AVCs (one record per categorical attribute, in order).
    node->cat_avcs.reserve(schema.num_attributes());
    for (int a = 0; a < schema.num_attributes(); ++a) {
      const int card =
          schema.IsCategorical(a) ? schema.attribute(a).cardinality : 1;
      node->cat_avcs.emplace_back(card, schema.num_classes());
    }
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (!schema.IsCategorical(a)) continue;
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      std::istringstream f(l);
      std::string t;
      int attr;
      if (!(f >> t >> attr) || t != "catavc" || attr != a) {
        return Status::Corruption("bad catavc record: " + l);
      }
      for (int32_t cat = 0; cat < schema.attribute(a).cardinality; ++cat) {
        for (int cls = 0; cls < schema.num_classes(); ++cls) {
          long long v;
          if (!(f >> v)) return Status::Corruption("bad catavc counts");
          node->cat_avcs[a].Add(cat, cls, v);
        }
      }
    }
    // Buckets.
    {
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      if (l != "nobuckets") {
        node->buckets.resize(schema.num_attributes());
        std::string current = l;
        while (current != "endbuckets") {
          std::istringstream f(current);
          std::string t;
          int attr;
          size_t nb;
          if (!(f >> t >> attr >> nb) || t != "bucketdisc") {
            return Status::Corruption("bad bucketdisc record: " + current);
          }
          std::vector<double> boundaries(nb);
          for (size_t i = 0; i < nb; ++i) {
            std::string b;
            f >> b;
            boundaries[i] = std::strtod(b.c_str(), nullptr);
          }
          if (!f) return Status::Corruption("bad bucket boundaries");
          BucketCounts bc(Discretization(std::move(boundaries)),
                          schema.num_classes());
          BOAT_RETURN_NOT_OK(LoadBucketCounts(next, attr, &bc));
          BOAT_RETURN_NOT_OK(LoadTracks(next, "bucketmins", attr, &bc.mins_));
          BOAT_RETURN_NOT_OK(
              LoadTracks(next, "bucketmaxes", attr, &bc.maxes_));
          node->buckets[attr] = std::move(bc);
          BOAT_ASSIGN_OR_RETURN(current, next());
        }
      }
    }
    // Stores.
    {
      BOAT_ASSIGN_OR_RETURN(std::string l, next());
      long long pending_id, retained_id;
      if (std::sscanf(l.c_str(), "stores %lld %lld", &pending_id,
                      &retained_id) != 2) {
        return Status::Corruption("bad stores record: " + l);
      }
      if (node->coarse.is_numerical) {
        BOAT_ASSIGN_OR_RETURN(
            node->pending,
            LoadStore(pending_id, dir, schema, engine, "pending"));
        BOAT_ASSIGN_OR_RETURN(
            node->retained,
            LoadStore(retained_id, dir, schema, engine, "retained"));
        // interval_avc is derived state: rebuild it from the stores.
        Status st = Status::OK();
        auto accumulate = [&](const Tuple& t) {
          const double v = t.value(node->coarse.attribute);
          auto [it, inserted] = node->interval_avc.try_emplace(
              v, std::vector<int64_t>(schema.num_classes(), 0));
          it->second[t.label()] += 1;
        };
        BOAT_RETURN_NOT_OK(node->pending->ForEach(accumulate));
        BOAT_RETURN_NOT_OK(node->retained->ForEach(accumulate));
        BOAT_RETURN_NOT_OK(st);
      }
    }
    BOAT_ASSIGN_OR_RETURN(node->left, LoadNode(next, dir, schema, engine));
    BOAT_ASSIGN_OR_RETURN(node->right, LoadNode(next, dir, schema, engine));
    return node;
  }

  static Status LoadBucketCounts(const NextLine& next, int attr,
                                 BucketCounts* bc) {
    BOAT_ASSIGN_OR_RETURN(std::string l, next());
    std::istringstream f(l);
    std::string t;
    int a;
    if (!(f >> t >> a) || t != "bucketcounts" || a != attr) {
      return Status::Corruption("bad bucketcounts record: " + l);
    }
    for (auto& c : bc->counts_) {
      long long v;
      if (!(f >> v)) return Status::Corruption("bad bucket count");
      c = v;
    }
    return Status::OK();
  }

  static Status LoadTracks(const NextLine& next, const char* tag, int attr,
                           std::vector<BucketCounts::ExtremeTrack>* tracks) {
    BOAT_ASSIGN_OR_RETURN(std::string l, next());
    std::istringstream f(l);
    std::string t;
    int a;
    if (!(f >> t >> a) || t != tag || a != attr) {
      return Status::Corruption(StrPrintf("bad %s record", tag));
    }
    for (auto& track : *tracks) {
      std::string value;
      int lost;
      size_t n;
      if (!(f >> value >> lost >> n)) {
        return Status::Corruption(StrPrintf("bad %s track", tag));
      }
      track.value = std::strtod(value.c_str(), nullptr);
      track.lost = lost != 0;
      track.counts.resize(n);
      for (size_t i = 0; i < n; ++i) {
        long long c;
        if (!(f >> c)) return Status::Corruption("bad track counts");
        track.counts[i] = c;
      }
    }
    return Status::OK();
  }
};

Status SaveModel(const BoatEngine& engine, const std::string& dir) {
  return ModelSerializer::Save(engine, dir);
}

Result<std::unique_ptr<BoatEngine>> LoadModel(const std::string& dir,
                                              const SplitSelector* selector) {
  return ModelSerializer::Load(dir, selector);
}

Status SaveClassifier(const BoatClassifier& classifier,
                      const std::string& dir) {
  return SaveModel(classifier.engine(), dir);
}

Result<std::unique_ptr<BoatClassifier>> LoadClassifier(
    const std::string& dir, const SplitSelector* selector) {
  BOAT_ASSIGN_OR_RETURN(auto engine, LoadModel(dir, selector));
  return BoatClassifier::FromEngine(std::move(engine));
}

// ------------------------------------------------ bagged bootstrap ensembles

Status SaveEnsemble(const Schema& schema,
                    const std::vector<DecisionTree>& members,
                    const std::string& dir) {
  if (members.empty()) {
    return Status::InvalidArgument("SaveEnsemble: no member trees");
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create ensemble directory: " + dir);

  std::string out;
  out += "BOATENSEMBLE v1\n";
  out += StrPrintf("schema %d %d\n", schema.num_classes(),
                   schema.num_attributes());
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    out += StrPrintf("attr %c %d %s\n",
                     attr.type == AttributeType::kNumerical ? 'n' : 'c',
                     attr.cardinality, attr.name.c_str());
  }
  out += StrPrintf("members %zu\n", members.size());

  for (size_t i = 0; i < members.size(); ++i) {
    if (!(members[i].schema() == schema)) {
      return Status::InvalidArgument(
          "SaveEnsemble: member schema differs from the ensemble schema");
    }
    BOAT_RETURN_NOT_OK(
        SaveTree(members[i], dir + StrPrintf("/member-%zu.boattree", i)));
  }

  std::ofstream manifest(dir + "/manifest.boatensemble");
  manifest << out;
  // Flush before checking, for the same ENOSPC reason as the model manifest.
  manifest.flush();
  if (!manifest) return Status::IOError("cannot write ensemble manifest");
  return Status::OK();
}

Result<LoadedEnsemble> LoadEnsemble(const std::string& dir) {
  std::ifstream in(dir + "/manifest.boatensemble");
  if (!in) return Status::NotFound("no ensemble manifest in " + dir);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(std::move(line));
  size_t cursor = 0;
  auto next = [&lines, &cursor]() -> Result<std::string> {
    if (cursor >= lines.size()) {
      return Status::Corruption("unexpected end of ensemble manifest");
    }
    return lines[cursor++];
  };

  BOAT_ASSIGN_OR_RETURN(std::string header, next());
  if (header != "BOATENSEMBLE v1") {
    return Status::Corruption("bad ensemble header: " + header);
  }
  BOAT_ASSIGN_OR_RETURN(std::string schema_line, next());
  int k = 0;
  int num_attrs = 0;
  if (std::sscanf(schema_line.c_str(), "schema %d %d", &k, &num_attrs) != 2) {
    return Status::Corruption("bad ensemble schema line");
  }
  std::vector<Attribute> attrs;
  for (int a = 0; a < num_attrs; ++a) {
    BOAT_ASSIGN_OR_RETURN(std::string attr_line, next());
    char type = 0;
    int cardinality = 0;
    int name_offset = 0;
    if (std::sscanf(attr_line.c_str(), "attr %c %d %n", &type, &cardinality,
                    &name_offset) != 2) {
      return Status::Corruption("bad ensemble attr line: " + attr_line);
    }
    const std::string name = attr_line.substr(name_offset);
    attrs.push_back(type == 'n' ? Attribute::Numerical(name)
                                : Attribute::Categorical(name, cardinality));
  }
  LoadedEnsemble loaded;
  loaded.schema = Schema(std::move(attrs), k);
  BOAT_RETURN_NOT_OK(loaded.schema.Validate());

  BOAT_ASSIGN_OR_RETURN(std::string members_line, next());
  size_t member_count = 0;
  if (std::sscanf(members_line.c_str(), "members %zu", &member_count) != 1 ||
      member_count == 0) {
    return Status::Corruption("bad ensemble members line: " + members_line);
  }
  loaded.members.reserve(member_count);
  for (size_t i = 0; i < member_count; ++i) {
    BOAT_ASSIGN_OR_RETURN(
        DecisionTree member,
        LoadTree(dir + StrPrintf("/member-%zu.boattree", i), loaded.schema));
    loaded.members.push_back(std::move(member));
  }
  return loaded;
}

}  // namespace boat
