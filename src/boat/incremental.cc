// Incremental maintenance (Section 4): InsertChunk / DeleteChunk stream the
// chunk through the model exactly like the cleanup scan, then re-run the
// top-down verification walk. Nodes whose coarse criteria survive get their
// exact splitting criteria recomputed (side-switching retained tuples when a
// split point moves inside its confidence interval); nodes whose criteria
// fail — a statistically significant change of the underlying distribution —
// are rebuilt from the archived data, and only those subtrees pay the cost.

#include "boat/cleanup.h"

namespace boat {

namespace {
Status RequireUpdatesEnabled(const DatasetArchive* archive) {
  if (archive == nullptr) {
    return Status::NotSupported(
        "incremental updates require BoatOptions::enable_updates");
  }
  return Status::OK();
}
}  // namespace

Status BoatEngine::InsertChunk(const std::vector<Tuple>& chunk,
                               BoatStats* stats) {
  BOAT_RETURN_NOT_OK(RequireUpdatesEnabled(archive_.get()));
  for (const Tuple& t : chunk) {
    BOAT_RETURN_NOT_OK(Inject(root_.get(), t, +1));
  }
  BOAT_RETURN_NOT_OK(archive_->AddChunk(chunk));
  std::vector<ModelNode*> failed;
  BOAT_RETURN_NOT_OK(FinalizeSubtree(root_.get(), &failed, stats));
  return RepairFailures(std::move(failed), /*build_source=*/nullptr, stats);
}

Status BoatEngine::DeleteChunk(const std::vector<Tuple>& chunk,
                               BoatStats* stats) {
  BOAT_RETURN_NOT_OK(RequireUpdatesEnabled(archive_.get()));
  for (const Tuple& t : chunk) {
    BOAT_RETURN_NOT_OK(Inject(root_.get(), t, -1));
  }
  // Deleting records that were never inserted drives a root class count
  // negative; catch that before the archive records tombstones for tuples it
  // does not hold. The injections above have already mutated in-memory
  // statistics — callers that need all-or-nothing semantics reload the last
  // persisted state (boat::Session::Apply does exactly that).
  for (const int64_t count : root_->class_totals) {
    if (count < 0) {
      return Status::InvalidArgument(
          "DeleteChunk: chunk deletes records not present in the training "
          "database");
    }
  }
  BOAT_RETURN_NOT_OK(archive_->RemoveChunk(chunk));
  std::vector<ModelNode*> failed;
  BOAT_RETURN_NOT_OK(FinalizeSubtree(root_.get(), &failed, stats));
  return RepairFailures(std::move(failed), /*build_source=*/nullptr, stats);
}

}  // namespace boat
