// boat/boat.h — the supported public API of the BOAT library, one include:
//
//   #include "boat/boat.h"
//
// Everything re-exported here is the supported surface (see README.md,
// "Public API"); headers not listed below are internal and may change
// without notice between versions.
//
//   Sessions        Session (open / train / apply chunk / compile /
//                   persist — the one recommended way to own a model
//                   directory), SessionOptions, ChunkOp, MakeSelectorByName
//   Training        BoatClassifier, BoatOptions, BoatStats
//   Selectors       MakeGiniSelector / MakeEntropySelector,
//                   ImpuritySplitSelector, QuestSelector, GrowthLimits
//   Trees           DecisionTree (structure, Classify), CompiledTree
//                   (flat batched inference), pruning, rule/dot export,
//                   tree save/load
//   Evaluation      ConfusionMatrix, Evaluate, HoldoutSplit, CrossValidate,
//                   BoatCrossValidate (three-scan k-fold over a TupleSource)
//   Data access     Schema, Tuple, TupleSource (VectorSource /
//                   TableScanSource), binary tables, CSV import/export with
//                   schema inference, TempFileManager
//   Workloads       the Agrawal et al. generator, hyperplane and
//                   Gaussian-mixture generators, RainForest baselines,
//                   the in-memory reference builder
//   Utilities       Status/Result, deterministic Rng, Stopwatch, IoStats
//
// Deprecated surface (kept for source compatibility; prefer Session):
//   BuildTreeBoat            → Session::Train / BoatClassifier::Train
//   SaveClassifier/
//   LoadClassifier           → Session::Persist / Session::Open

#ifndef BOAT_BOAT_BOAT_H_
#define BOAT_BOAT_BOAT_H_

// Core training API.
#include "boat/builder.h"     // BoatClassifier (BuildTreeBoat: deprecated)
#include "boat/crossval.h"    // BoatCrossValidate
#include "boat/options.h"     // BoatOptions (+ Validate), BoatStats
#include "boat/persistence.h" // Save/LoadClassifier (deprecated; use Session)
#include "boat/session.h"     // Session: the unified model-lifecycle facade

// Split selectors.
#include "split/quest.h"      // QuestSelector (non-impurity)
#include "split/selector.h"   // impurity selectors, GrowthLimits

// Trees: structure, inference, post-processing.
#include "tree/compiled_tree.h" // CompiledTree: flat batched inference
#include "tree/decision_tree.h" // DecisionTree / TreeNode
#include "tree/evaluation.h"    // ConfusionMatrix, Evaluate, CV helpers
#include "tree/export.h"        // rules / Graphviz
#include "tree/inmem_builder.h" // the in-memory reference algorithm
#include "tree/pruning.h"       // MDL / cost-complexity / reduced-error
#include "tree/serialize.h"     // tree save/load

// Storage and data import.
#include "storage/csv.h"        // CSV import/export, schema inference
#include "storage/table_file.h" // binary tables
#include "storage/temp_file.h"  // scratch-file management
#include "storage/tuple_source.h" // restartable sources

// Synthetic workloads and baselines.
#include "datagen/agrawal.h"    // the paper's synthetic workload
#include "datagen/synthetic.h"  // hyperplane & Gaussian-mixture generators
#include "rainforest/rainforest.h" // RF-Hybrid / RF-Vertical baselines

// Utilities.
#include "common/io_stats.h" // I/O counters
#include "common/result.h"   // Result<T>
#include "common/rng.h"      // deterministic RNG
#include "common/status.h"   // Status, CheckOk
#include "common/timer.h"    // Stopwatch

#endif  // BOAT_BOAT_BOAT_H_
