// boat::Session — the unified facade over a persisted, update-capable BOAT
// model. One object owns the whole lifecycle the daemon, the CLI, and the
// tests previously re-plumbed by hand:
//
//   * Train:  build a classifier from a TupleSource and persist it into a
//             model directory (updates always enabled);
//   * Open:   reload a persisted model directory (selector chosen by name);
//   * Apply:  insert or delete one chunk of training records with
//             all-or-nothing semantics — the chunk is validated against the
//             schema up front, and if the engine fails mid-apply the session
//             rolls back to the last persisted state, so a corrupt chunk can
//             never leave the model half-updated;
//   * Compile / Persist: produce the flat inference layout for serving, and
//             write the current engine state back to the directory.
//
// Invariant: after every successful Apply the model directory equals the
// in-memory engine state (Apply persists before returning), which is what
// makes the rollback above exact. tree() keeps the paper's guarantee: it is
// byte-identical to a from-scratch build on the current training database.
//
// The session owns its split selector (resolved by name via
// MakeSelectorByName), so callers no longer thread selector lifetimes
// through load paths by hand.

#ifndef BOAT_BOAT_SESSION_H_
#define BOAT_BOAT_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "boat/builder.h"
#include "boat/options.h"
#include "common/result.h"
#include "storage/tuple_source.h"
#include "tree/compiled_tree.h"

namespace boat {

/// \brief Direction of one incremental maintenance step.
enum class ChunkOp {
  kInsert,  ///< add the chunk's records to the training database
  kDelete,  ///< remove the chunk's records (which must be present)
};

/// \brief Resolves a split selector by name: "gini", "entropy", or "quest".
/// The one registry shared by boatc, boatd, the serving layer, and tests.
Result<std::unique_ptr<SplitSelector>> MakeSelectorByName(
    const std::string& name);

struct SessionOptions {
  /// Split-selector name (MakeSelectorByName).
  std::string selector = "gini";
  /// Training knobs. enable_updates is forced on — a Session exists to
  /// maintain the model incrementally.
  BoatOptions boat;
};

class Session {
 public:
  /// \brief Opens a model directory written by Train (or SaveClassifier).
  /// `selector` must name the method the model was trained with (verified
  /// against the manifest by the persistence layer).
  static Result<std::unique_ptr<Session>> Open(
      const std::string& dir, const std::string& selector = "gini");

  /// \brief Trains a classifier on `db` and persists it into `dir`.
  static Result<std::unique_ptr<Session>> Train(TupleSource* db,
                                                const std::string& dir,
                                                const SessionOptions& options,
                                                BoatStats* stats = nullptr);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// \brief Applies one chunk with all-or-nothing semantics. The chunk is
  /// validated against schema() first (arity, finite numericals, categorical
  /// and label ranges) without touching the engine; if the engine then fails
  /// mid-apply (e.g. deleting records that were never inserted), the session
  /// reloads the last persisted state and returns the original error — the
  /// tree, the archive, and the directory are exactly what they were before
  /// the call. On success the new state is persisted and revision()
  /// increments.
  Status Apply(ChunkOp op, const std::vector<Tuple>& chunk,
               BoatStats* stats = nullptr);

  /// \brief The current decision tree (== a from-scratch build on the
  /// current training database).
  const DecisionTree& tree() const { return classifier_->tree(); }

  const Schema& schema() const { return tree().schema(); }

  /// \brief Flat batched-inference layout of tree(), for serving.
  CompiledTree Compile() const { return CompiledTree(tree()); }

  /// \brief Writes the engine state back to dir(). Apply already persists;
  /// this exists for callers that mutate through engine-level APIs.
  Status Persist();

  const std::string& dir() const { return dir_; }
  const std::string& selector_name() const { return selector_name_; }

  /// \brief Number of successful Apply calls on this session object.
  uint64_t revision() const { return revision_; }

  /// \brief Engine-level introspection (tests, STATS).
  const BoatEngine& engine() const { return classifier_->engine(); }

  /// \brief Sets the growth-phase thread budget for every subsequent Apply
  /// or retrain through this session (0 = all hardware cores). Sticky across
  /// the rollback Reload path. Host-specific, so never persisted: freshly
  /// opened sessions default to 1 until a caller (e.g. the serving Trainer)
  /// raises it. Thread count never changes a tree.
  void SetNumThreads(int num_threads);

 private:
  Session(std::string dir, std::string selector_name,
          std::unique_ptr<SplitSelector> selector,
          std::unique_ptr<BoatClassifier> classifier)
      : dir_(std::move(dir)),
        selector_name_(std::move(selector_name)),
        selector_(std::move(selector)),
        classifier_(std::move(classifier)) {}

  /// Rejects chunks the engine could choke on, before any mutation.
  Status ValidateChunk(const std::vector<Tuple>& chunk) const;

  /// Reloads classifier_ from dir_ (the rollback path).
  Status Reload();

  std::string dir_;
  std::string selector_name_;
  std::unique_ptr<SplitSelector> selector_;
  std::unique_ptr<BoatClassifier> classifier_;
  uint64_t revision_ = 0;
  /// Growth thread budget, reapplied after every Reload (the manifest does
  /// not carry it). Unset = whatever the classifier loaded with (1).
  std::optional<int> num_threads_;
};

}  // namespace boat

#endif  // BOAT_BOAT_SESSION_H_
