// Public entry points of the BOAT library.
//
// Quickstart:
//
//   auto selector = boat::MakeGiniSelector();
//   boat::BoatOptions options;
//   auto classifier =
//       boat::BoatClassifier::Train(&my_source, selector.get(), options);
//   int32_t label = classifier->tree().Classify(record);
//
// Train() is guaranteed to return exactly the tree a traditional in-memory
// algorithm (BuildTreeInMemory with the same selector and limits) would
// produce on the same data — while scanning the training database only
// twice in the common case. With enable_updates, InsertChunk/DeleteChunk
// maintain that guarantee as the training database changes.

#ifndef BOAT_BOAT_BUILDER_H_
#define BOAT_BOAT_BUILDER_H_

#include <memory>

#include "boat/cleanup.h"
#include "boat/options.h"
#include "common/result.h"
#include "storage/tuple_source.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief A trained BOAT classifier: the final decision tree plus (when
/// updates are enabled) the persistent model that supports incremental
/// insertion and deletion of training data.
class BoatClassifier {
 public:
  /// \brief Trains a classifier on a training database. `selector` must
  /// outlive the classifier.
  static Result<std::unique_ptr<BoatClassifier>> Train(
      TupleSource* db, const SplitSelector* selector,
      const BoatOptions& options, BoatStats* stats = nullptr);

  /// \brief The current decision tree.
  const DecisionTree& tree() const { return tree_; }

  /// \brief Incorporates new training records; afterwards tree() equals a
  /// from-scratch build on the enlarged database. Requires enable_updates.
  Status InsertChunk(const std::vector<Tuple>& chunk,
                     BoatStats* stats = nullptr);

  /// \brief Removes training records (which must be present); afterwards
  /// tree() equals a from-scratch build on the reduced database. Requires
  /// enable_updates.
  Status DeleteChunk(const std::vector<Tuple>& chunk,
                     BoatStats* stats = nullptr);

  /// \brief The underlying engine (model introspection, tests).
  const BoatEngine& engine() const { return *engine_; }

  /// \brief The b bootstrap trees of the sampling phase; non-empty only
  /// when trained with options.keep_bootstrap_trees (ensemble emission).
  /// Loaded classifiers always report empty — the trees are persisted
  /// separately at train time (see SaveEnsemble).
  const std::vector<DecisionTree>& bootstrap_trees() const {
    return engine_->bootstrap_trees();
  }

  /// \brief Sets the growth-phase thread budget for subsequent updates
  /// (0 = all hardware cores). Loaded classifiers default to 1 thread:
  /// num_threads is host-specific and not persisted.
  void SetNumThreads(int num_threads) { engine_->set_num_threads(num_threads); }

  /// \brief Wraps an already-built engine (used by the persistence layer).
  static std::unique_ptr<BoatClassifier> FromEngine(
      std::unique_ptr<BoatEngine> engine) {
    DecisionTree tree = engine->ExtractDecisionTree();
    return std::unique_ptr<BoatClassifier>(
        new BoatClassifier(std::move(engine), std::move(tree)));
  }

 private:
  BoatClassifier(std::unique_ptr<BoatEngine> engine, DecisionTree tree)
      : engine_(std::move(engine)), tree_(std::move(tree)) {}

  std::unique_ptr<BoatEngine> engine_;
  DecisionTree tree_;
};

/// \brief One-shot convenience: builds just the decision tree with BOAT.
///
/// \deprecated Prefer Session::Train (boat/session.h), which owns the model
/// directory and keeps the tree updatable, or BoatClassifier::Train when no
/// persistence is wanted. Kept for source compatibility; the attribute is
/// doc-level only so existing -Werror builds stay clean.
Result<DecisionTree> BuildTreeBoat(TupleSource* db,
                                   const SplitSelector& selector,
                                   const BoatOptions& options,
                                   BoatStats* stats = nullptr);

}  // namespace boat

#endif  // BOAT_BOAT_BUILDER_H_
