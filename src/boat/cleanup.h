// BoatEngine: the cleanup phase, verification machinery and incremental
// maintenance of BOAT (Sections 3.3-3.5 and 4 of the paper).
//
// Lifecycle: Build() runs the sampling phase, constructs the model skeleton
// from the coarse tree, performs the single cleanup scan, finalizes the tree
// top-down (verifying every coarse criterion and computing the exact
// splitting criteria), and repairs any failed subtrees. Afterwards
// ExtractDecisionTree() yields a tree guaranteed to be identical to the one
// the in-memory reference builder would produce on the same data.
// InsertChunk()/DeleteChunk() maintain that guarantee under updates when the
// engine was built with enable_updates.

#ifndef BOAT_BOAT_CLEANUP_H_
#define BOAT_BOAT_CLEANUP_H_

#include <memory>
#include <vector>

#include "boat/bootstrap_phase.h"
#include "boat/model.h"
#include "boat/options.h"
#include "common/result.h"
#include "common/rng.h"

namespace boat {

class ModelSerializer;  // persistence layer (boat/persistence.h)

/// \brief The BOAT construction and maintenance engine.
class BoatEngine {
  friend class ModelSerializer;

 public:
  /// \param temp  optional shared scratch manager (used by recursive
  ///              invocations); the engine creates its own when null.
  BoatEngine(Schema schema, const SplitSelector* selector, BoatOptions options,
             TempFileManager* temp = nullptr, int recursion_depth = 0);
  ~BoatEngine();

  BoatEngine(BoatEngine&&) = delete;
  BoatEngine& operator=(BoatEngine&&) = delete;

  /// \brief Builds the tree from the training database in two scans (plus
  /// repair scans when coarse criteria fail).
  Status Build(TupleSource* db, BoatStats* stats);

  /// \brief Incrementally incorporates a chunk of new training records; the
  /// resulting tree equals a from-scratch build on the enlarged database.
  /// Requires enable_updates.
  Status InsertChunk(const std::vector<Tuple>& chunk, BoatStats* stats);

  /// \brief Incrementally removes a chunk of training records (which must be
  /// present in the database). Requires enable_updates.
  Status DeleteChunk(const std::vector<Tuple>& chunk, BoatStats* stats);

  // --- piecewise build (shared-scan drivers, e.g. cross-validation) --------
  // BuildFromParts splits Build() so an external driver can share physical
  // scans among several engines: the driver supplies the in-memory sample
  // (PreparePhase), streams every tuple itself (InjectExternal), then
  // finalizes (FinalizeExternal with a repair source).

  /// \brief Runs the sampling phase on an already-materialized sample.
  Status PreparePhase(std::vector<Tuple> sample, uint64_t db_size,
                      BoatStats* stats);
  /// \brief Streams one training tuple (the driver's shared cleanup scan).
  Status InjectExternal(const Tuple& tuple);
  /// \brief Verifies and finalizes; `repair_source` is scanned only if some
  /// coarse criterion failed.
  Status FinalizeExternal(TupleSource* repair_source, BoatStats* stats);

  /// \brief The final decision tree (Build must have succeeded).
  DecisionTree ExtractDecisionTree() const;

  const ModelNode& model_root() const { return *root_; }
  const Schema& schema() const { return schema_; }

  /// \brief Re-points the growth-phase thread budget (0 = all hardware
  /// cores); takes effect on the next build or update. Thread count is a
  /// host property and is never persisted, so loaded engines default to 1 —
  /// daemons call this after load. Never changes any tree: parallel growth
  /// is byte-identical for every thread count.
  void set_num_threads(int num_threads) {
    options_.num_threads = num_threads;
    options_.limits.num_threads = num_threads;
  }
  int num_threads() const { return options_.num_threads; }

  /// \brief The bootstrap trees of the last top-level sampling phase; empty
  /// unless the engine was built with options.keep_bootstrap_trees (and
  /// always empty on loaded engines — the trees are captured at train time
  /// and persisted separately, see SaveEnsemble).
  const std::vector<DecisionTree>& bootstrap_trees() const {
    return bootstrap_trees_;
  }

  /// \brief Releases the model root (used by recursive invocations to graft
  /// a sub-model into the parent's tree).
  std::unique_ptr<ModelNode> ReleaseRoot() { return std::move(root_); }

 private:
  enum class Outcome { kPass, kLeafize, kFail };
  struct CheckResult {
    Outcome outcome = Outcome::kFail;
    std::optional<Split> split;  // set when kPass
  };

  // --- skeleton -------------------------------------------------------------
  std::unique_ptr<ModelNode> MakeSkeleton(const CoarseNode& coarse, int depth);
  std::unique_ptr<SpillableTupleStore> NewStore(const char* hint);

  // --- streaming ------------------------------------------------------------
  Status Inject(ModelNode* node, const Tuple& t, int64_t weight);
  void UpdateNodeStats(ModelNode* node, const Tuple& t, int64_t weight);
  /// Buffers one tuple for the dataset archive (no-op when updates are off).
  Status ArchiveTuple(const Tuple& t);

  // --- parallel cleanup scan (parallel_scan.cc) -----------------------------
  /// The multi-threaded equivalent of the serial Next/InjectExternal loop in
  /// Build(): workers accumulate per-chunk node statistics which are merged
  /// into the model in chunk order, producing bit-identical state for every
  /// worker count. Requires num_workers >= 2 and a build-time scan (insert
  /// weight +1 only, no final splits fixed yet).
  Status RunCleanupScanParallel(TupleSource* db, int num_workers);

  // --- finalize / verification ----------------------------------------------
  Status FinalizeSubtree(ModelNode* node, std::vector<ModelNode*>* failed,
                         BoatStats* stats);
  Result<CheckResult> CheckNode(const ModelNode& node);
  Result<CheckResult> CheckNodeImpurity(const ModelNode& node);
  Result<CheckResult> CheckNodeQuest(const ModelNode& node);
  bool StopRuleSaysLeaf(const ModelNode& node) const;
  Status DistributePending(ModelNode* node, BoatStats* stats);
  Status SideSwitch(ModelNode* node, const Split& old_split,
                    const Split& new_split, BoatStats* stats);
  /// Turns an internal node whose exact statistics say "leaf" into a
  /// frontier node over its locally collected family (or a count-only
  /// frontier when some descendant did not collect tuples).
  Status Leafize(ModelNode* node, BoatStats* stats);
  /// Appends every tuple of `node`'s family that is recoverable from the
  /// model's own stores (pending stores along each tuple's path, frontier
  /// family stores) to `out`. Returns false if some descendant did not
  /// collect its tuples, in which case `out` is incomplete.
  Result<bool> CollectSubtreeFamily(const ModelNode& node,
                                    SpillableTupleStore* out);

  // --- frontier / repair ----------------------------------------------------
  Status ResolveFrontier(ModelNode* node, BoatStats* stats);
  /// Builds a subtree for `node` from its family store, in memory or by a
  /// recursive BOAT invocation (grafting the sub-model when updates are on).
  Status BuildFromFamily(ModelNode* node, BoatStats* stats);
  Status RepairFailures(std::vector<ModelNode*> failed,
                        TupleSource* build_source, BoatStats* stats);

  Schema schema_;
  const SplitSelector* selector_;
  const ImpurityFunction* impurity_ = nullptr;  // null in QUEST mode
  BoatOptions options_;
  std::unique_ptr<TempFileManager> owned_temp_;
  TempFileManager* temp_;
  int recursion_depth_;
  Rng rng_;
  uint64_t db_size_ = 0;
  /// |D| / |D'| — scales sample family sizes to full-data estimates.
  double sample_scale_ = 1.0;
  std::unique_ptr<ModelNode> root_;
  /// Kept bootstrap trees of the top-level sampling phase (see
  /// bootstrap_trees() above); owned here so they survive until persisted.
  std::vector<DecisionTree> bootstrap_trees_;
  std::unique_ptr<DatasetArchive> archive_;
  /// Pending archive writes during a (possibly externally driven) build.
  std::vector<Tuple> archive_buffer_;
};

}  // namespace boat

#endif  // BOAT_BOAT_CLEANUP_H_
