#include "serve/trainer.h"

#include <utility>

#include "common/str_util.h"
#include "common/sync.h"

namespace boat::serve {

namespace {

/// Minimal JSON string escaping for error messages surfaced via STATS.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Trainer::Trainer(ModelRegistry* registry, TrainerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

Trainer::~Trainer() { Shutdown(); }

Status Trainer::Start() {
  MutexLock lock(lifecycle_mu_);
  if (started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("Trainer: already started");
  }
  BOAT_ASSIGN_OR_RETURN(session_,
                        Session::Open(options_.model_dir, options_.selector));
  // Loaded sessions default to single-threaded growth (thread count is not
  // persisted); give retrains the daemon's configured budget.
  session_->SetNumThreads(options_.num_threads);
  schema_ = session_->schema();
  registry_->Install(std::make_shared<const ServableModel>(
      session_->tree(), options_.model_dir));
  thread_ = std::thread(&Trainer::ApplyLoop, this);
  started_.store(true, std::memory_order_release);
  return Status::OK();
}

void Trainer::Shutdown() {
  // Every caller — explicit Shutdown, a concurrent one, the destructor —
  // serializes here and returns only once the apply thread is joined. The
  // seed version gated on started_.exchange() and joined outside any lock,
  // so two concurrent callers could both reach thread_.join() (UB) or one
  // could return while the other was still draining; regression:
  // TrainerTest.ConcurrentShutdownCallsAreSerialized.
  MutexLock lock(lifecycle_mu_);
  started_.store(false, std::memory_order_release);
  // Close() fails new pushes; the apply thread still drains every chunk
  // already queued, so an accepted Submit is never silently dropped.
  // Idempotent, so repeated Shutdown calls are harmless.
  queue_.Close();
  if (thread_.joinable()) thread_.join();
}

std::optional<uint64_t> Trainer::TrySubmit(ChunkOp op,
                                           std::vector<Tuple> chunk) {
  if (!started_.load(std::memory_order_acquire)) return std::nullopt;
  // Sequence allocation and the push happen under one lock so queue order
  // equals seq order, which is what makes Flush's barrier exact.
  MutexLock lock(mu_);
  PendingChunk pending;
  pending.seq = submitted_ + 1;
  pending.op = op;
  pending.tuples = std::move(chunk);
  if (!queue_.TryPush(std::move(pending))) return std::nullopt;
  ++submitted_;
  return submitted_;
}

Result<Trainer::RetrainResult> Trainer::Flush() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("trainer is not running");
  }
  RetrainResult result;
  {
    MutexLock lock(mu_);
    const uint64_t target = submitted_;
    cv_.Wait(lock, [&] {
      mu_.AssertHeld();
      return completed_ >= target;
    });
    result.applied = applied_;
    result.failed = failed_;
  }
  const std::shared_ptr<const ServableModel> model = registry_->Snapshot();
  if (model != nullptr) result.fingerprint = model->fingerprint;
  return result;
}

void Trainer::ApplyLoop() {
  for (;;) {
    std::optional<PendingChunk> item = queue_.Pop();
    if (!item.has_value()) return;  // closed and drained
    BoatStats stats;
    const Status status = session_->Apply(item->op, item->tuples, &stats);
    if (status.ok()) {
      // Recompile and hot-swap before the chunk counts as completed, so a
      // Flush returning implies the swap is published.
      registry_->Install(std::make_shared<const ServableModel>(
          session_->tree(), options_.model_dir));
    }
    {
      MutexLock lock(mu_);
      if (status.ok()) {
        ++applied_;
      } else {
        ++failed_;
        last_error_ = status.ToString();
      }
      completed_ = item->seq;
    }
    cv_.NotifyAll();
  }
}

std::string Trainer::StatsJson() const {
  MutexLock lock(mu_);
  return StrPrintf(
      "{\"queued\":%llu,\"applied\":%llu,\"failed\":%llu,"
      "\"last_error\":\"%s\"}",
      static_cast<unsigned long long>(submitted_ - completed_),
      static_cast<unsigned long long>(applied_),
      static_cast<unsigned long long>(failed_),
      EscapeJson(last_error_).c_str());
}

}  // namespace boat::serve
