// FleetRegistry: named models for one boatd process.
//
// One boatd historically served exactly one model. The fleet registry keys
// N independent ModelRegistry slots (each with an optional Trainer for
// streaming ingestion) by operator-chosen model ids, so a single daemon can
// serve a whole fleet and wire v3 clients route per record with an `@<id>`
// prefix (serve/wire.h). Three kinds of entries:
//
//   * AddTrained:  a SaveClassifier directory with a live Trainer — the
//     fleet analog of classic `boatd --model DIR`: scoring, RELOAD, and
//     INGEST/DELETE/RETRAIN all work, addressed at this id.
//   * AddEnsemble: a SaveEnsemble directory served as a bagged majority-vote
//     backend. Scoring and RELOAD work; streaming ingestion does not (an
//     ensemble is a train-time artifact with no incremental maintenance).
//   * AddExternal: caller-owned registry/trainer (tests, benchmarks,
//     embedders that build models in process).
//
// The first entry added is the fleet's *default* model: every wire v2 line
// (no `@` prefix) routes to it, which is what keeps single-model clients
// working unchanged against a fleet-serving daemon.
//
// Isolation: each entry has its own ModelRegistry, so a reload or eviction
// of one model swaps one RCU slot and cannot invalidate in-flight snapshots
// of any other model; a failed per-model reload keeps that model's
// last-good active (see ModelRegistry). The entry list itself is append-
// only: BoatServer captures it at construction, so Add* calls must complete
// before the server is built — after that the fleet's per-entry state is
// only reached through the entries' internally synchronized components.

#ifndef BOAT_SERVE_FLEET_H_
#define BOAT_SERVE_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "serve/model_registry.h"
#include "serve/trainer.h"

namespace boat::serve {

/// \brief One named model of the fleet. The registry/trainer pointers are
/// what the server routes to; the owned_ members keep fleet-constructed
/// components alive. Immutable after the entry is added (the components
/// they point to are internally synchronized).
struct FleetEntry {
  std::string id;
  bool ensemble = false;   ///< bagged-ensemble backend (no trainer)
  std::string source_dir;  ///< directory the entry was loaded from ("" =
                           ///< in-process); SIGHUP re-reloads from here
  std::string selector = "gini";  ///< split selector for model reloads
  ModelRegistry* registry = nullptr;  ///< never null
  Trainer* trainer = nullptr;         ///< null: no streaming ingestion
  std::unique_ptr<ModelRegistry> owned_registry;
  std::unique_ptr<Trainer> owned_trainer;
};

/// \brief Thread-safe, append-only collection of named models.
class FleetRegistry {
 public:
  FleetRegistry() = default;

  FleetRegistry(const FleetRegistry&) = delete;
  FleetRegistry& operator=(const FleetRegistry&) = delete;

  /// \brief Adds a trained model with a live Trainer over its directory
  /// (options.model_dir). The trainer is started here; on any failure
  /// nothing is added.
  Status AddTrained(const std::string& id, const TrainerOptions& options)
      BOAT_EXCLUDES(mu_);

  /// \brief Adds a bagged-ensemble backend from a SaveEnsemble directory.
  Status AddEnsemble(const std::string& id, const std::string& dir)
      BOAT_EXCLUDES(mu_);

  /// \brief Adds a caller-owned registry (and optional trainer); both must
  /// outlive the fleet. `selector` is used by Reload for this entry.
  Status AddExternal(const std::string& id, ModelRegistry* registry,
                     Trainer* trainer = nullptr,
                     const std::string& selector = "gini")
      BOAT_EXCLUDES(mu_);

  /// \brief Hot-reloads one model from `dir` (ensemble entries load a
  /// SaveEnsemble directory, others a SaveClassifier directory with the
  /// entry's selector). Failure keeps the entry's last-good model; other
  /// entries are untouched either way.
  Status Reload(const std::string& id, const std::string& dir)
      BOAT_EXCLUDES(mu_);

  /// \brief Drops one model's active slot (see ModelRegistry::Evict). The
  /// entry stays addressable and a later Reload restores service.
  Status Evict(const std::string& id) BOAT_EXCLUDES(mu_);

  /// \brief Snapshot of the named model ("" = default), or null when the id
  /// is unknown or the slot is evicted.
  std::shared_ptr<const ServableModel> Snapshot(const std::string& id) const
      BOAT_EXCLUDES(mu_);

  /// \brief The entry for `id` ("" = default), or null when unknown.
  std::shared_ptr<FleetEntry> entry(const std::string& id) const
      BOAT_EXCLUDES(mu_);

  /// \brief All entries, in insertion order (the first is the default).
  std::vector<std::shared_ptr<FleetEntry>> entries() const
      BOAT_EXCLUDES(mu_);

  /// \brief Id of the default model ("" when the fleet is empty).
  std::string default_id() const BOAT_EXCLUDES(mu_);

  size_t size() const BOAT_EXCLUDES(mu_);

  /// \brief Shuts down every fleet-owned trainer (drains queued chunks,
  /// joins apply threads). Caller-owned trainers are untouched. Called by
  /// boatd after the server has drained; idempotent.
  void ShutdownTrainers() BOAT_EXCLUDES(mu_);

 private:
  Status Add(std::shared_ptr<FleetEntry> entry) BOAT_EXCLUDES(mu_);
  std::shared_ptr<FleetEntry> Find(const std::string& id) const
      BOAT_REQUIRES(mu_);

  mutable Mutex mu_;
  /// Insertion-ordered; ids unique; index 0 is the default model.
  std::vector<std::shared_ptr<FleetEntry>> entries_ BOAT_GUARDED_BY(mu_);
};

}  // namespace boat::serve

#endif  // BOAT_SERVE_FLEET_H_
