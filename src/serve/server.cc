#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "common/str_util.h"
#include "serve/wire.h"

namespace boat::serve {

namespace {

/// Replies per connection that may be pipelined before the handler waits
/// for scoring and writes them out. Clients must not pipeline more than
/// this many lines without reading replies (boat-loadgen's window is far
/// smaller).
constexpr size_t kReplyWindow = 1024;

/// Sentinel a scoring worker writes when a request's tuple arity no longer
/// matches the (hot-reloaded) active model; the handler turns it into ERR.
constexpr int32_t kSchemaMismatchLabel = INT32_MIN;

bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

BoatServer::BoatServer(ModelRegistry* registry, ServerOptions options,
                       Trainer* trainer)
    : registry_(registry),
      options_(std::move(options)),
      trainer_(trainer),
      queue_(options_.queue_capacity) {}

BoatServer::~BoatServer() { Shutdown(); }

Status BoatServer::Start() {
  MutexLock lock(lifecycle_mu_);  // serializes against Shutdown
  if (registry_->Snapshot() == nullptr) {
    return Status::InvalidArgument("BoatServer: registry has no active model");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrPrintf("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status s = Status::IOError(
        StrPrintf("bind port %d: %s", options_.port, std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status s =
        Status::IOError(StrPrintf("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  const int workers = options_.scoring_threads > 0 ? options_.scoring_threads
                                                   : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(&BoatServer::ScoringWorker, this);
  }
  accept_thread_ = std::thread(&BoatServer::AcceptLoop, this);
  started_.store(true, std::memory_order_release);
  return Status::OK();
}

void BoatServer::Shutdown() {
  // lifecycle_mu_ serializes concurrent Shutdown callers (including the
  // destructor racing an explicit call): the first caller drains while any
  // later caller blocks here until the drain is complete, then returns via
  // the shutdown_done_ check. The seed version let the second caller return
  // mid-drain, so a destructor racing a Shutdown could free server state
  // while the first caller was still joining threads (and two callers could
  // join the same std::thread, which is UB). Regression:
  // ServeE2eTest.ConcurrentShutdownCallsAreSerialized.
  MutexLock lock(lifecycle_mu_);
  if (!started_.load(std::memory_order_acquire) || shutdown_done_) return;
  shutdown_done_ = true;
  stopping_.store(true, std::memory_order_release);

  // Stop accepting. The accept loop polls with a timeout, so it notices
  // stopping_ even if this shutdown() call has no effect on the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Half-close every live connection's read side: handlers finish replying
  // to everything already received, then exit. No admitted request drops.
  {
    MutexLock conns_lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        ::shutdown(conn->fd, SHUT_RD);
      }
    }
  }
  {
    MutexLock conns_lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
      ::close(conn->fd);
    }
    conns_.clear();
  }

  // All requests are now in the queue (or replied); drain the workers.
  queue_.Close();
  {
    MutexLock pause_lock(pause_mu_);
    scoring_paused_ = false;
  }
  pause_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void BoatServer::SetScoringPausedForTest(bool paused) {
  {
    MutexLock lock(pause_mu_);
    scoring_paused_ = paused;
  }
  pause_cv_.NotifyAll();
}

void BoatServer::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void BoatServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // timeout or EINTR: re-check stopping_
    if ((pfd.revents & POLLIN) == 0) {
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return;
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    MutexLock lock(conns_mu_);
    ReapFinishedLocked();
    int active = 0;
    for (const auto& conn : conns_) {
      if (!conn->done.load(std::memory_order_acquire)) ++active;
    }
    if (active >= options_.max_connections) {
      static const char kBusyLine[] = "BUSY\n";
      SendAll(fd, kBusyLine, sizeof(kBusyLine) - 1);
      busy_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->fd = fd;
    conn->thread = std::thread(&BoatServer::HandleConnection, this, conn);
  }
}

void BoatServer::HandleConnection(Conn* conn) {
  const int fd = conn->fd;
  std::string buf;
  internal::WaitGroup wg;
  std::vector<int32_t> slots(kReplyWindow);

  // One entry per request line, in order. slot < 0 carries a preformatted
  // text reply; slot >= 0 is a label the scoring worker will deliver.
  struct PendingReply {
    std::string text;
    int slot = -1;
  };
  std::vector<PendingReply> replies;
  size_t used_slots = 0;
  bool quit = false;
  bool send_failed = false;
  bool skipping_long_line = false;

  // Waits for every submitted record of the window, then writes all replies
  // in request order. Returns false once the peer stops reading.
  auto flush = [&]() {
    wg.Wait();
    if (replies.empty()) return !send_failed;
    std::string out;
    for (const PendingReply& r : replies) {
      if (r.slot >= 0) {
        const int32_t label = slots[static_cast<size_t>(r.slot)];
        if (label == kSchemaMismatchLabel) {
          out += "ERR model schema changed mid-flight";
        } else {
          out += StrPrintf("%d", label);
        }
      } else {
        out += r.text;
      }
      out += '\n';
    }
    replies.clear();
    used_slots = 0;
    if (!SendAll(fd, out.data(), out.size())) send_failed = true;
    return !send_failed;
  };

  // In-progress INGEST/DELETE chunk of this connection. While set, incoming
  // lines are payload — consumed without per-line replies — until
  // `remaining` hits zero and the whole chunk is answered at once.
  struct ChunkState {
    ChunkOp op = ChunkOp::kInsert;
    int64_t remaining = 0;
    std::vector<Tuple> tuples;
    std::string error;  ///< first payload/validation failure; sticky
  };
  std::optional<ChunkState> chunk;

  auto push_reply = [&](const Reply& reply) {
    if (reply.kind == Reply::Kind::kErr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
    } else if (reply.kind == Reply::Kind::kBusy) {
      busy_.fetch_add(1, std::memory_order_relaxed);
    }
    replies.push_back({FormatReply(reply), -1});
  };

  // Answers the completed chunk: one ERR for a rejected chunk, BUSY when
  // the trainer queue is saturated, otherwise OK with the queued seq.
  auto finish_chunk = [&]() {
    ChunkState done = std::move(*chunk);
    chunk.reset();
    if (!done.error.empty()) {
      push_reply(Reply::Err(done.error));
      return;
    }
    const char* what = done.op == ChunkOp::kInsert ? "ingest" : "delete";
    const size_t records = done.tuples.size();
    const std::optional<uint64_t> seq =
        trainer_->TrySubmit(done.op, std::move(done.tuples));
    if (!seq.has_value()) {
      push_reply(Reply::Busy());
      return;
    }
    push_reply(Reply::Ok(StrPrintf(
        "%s queued seq %llu records %zu", what,
        static_cast<unsigned long long>(*seq), records)));
  };

  // Consumes one payload line of the open chunk. Oversized lines poison the
  // chunk but still count against `remaining`, keeping the framing in sync.
  auto consume_payload = [&](std::string line, bool oversized) {
    if (chunk->error.empty()) {
      if (oversized) {
        chunk->error = "chunk payload line too long";
      } else {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        Result<Tuple> tuple =
            ParseLabeledRecordLine(line, trainer_->schema());
        if (!tuple.ok()) {
          chunk->error = "rejected chunk: " + tuple.status().message();
        } else {
          chunk->tuples.push_back(std::move(*tuple));
        }
      }
    }
    if (--chunk->remaining == 0) finish_chunk();
  };

  auto process_line = [&](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.size() > options_.max_line_bytes) {
      push_reply(Reply::Err("line too long"));
      return;
    }
    if (line.empty()) {
      push_reply(Reply::Err("empty line"));
      return;
    }
    Result<Request> parsed = ParseRequest(line);
    if (!parsed.ok()) {
      push_reply(Reply::Err(parsed.status().message()));
      return;
    }
    switch (parsed->verb) {
      case Verb::kRecord: {
        requests_.fetch_add(1, std::memory_order_relaxed);
        const std::shared_ptr<const ServableModel> model =
            registry_->Snapshot();
        Result<Tuple> tuple = ParseRecordLine(line, model->schema);
        if (!tuple.ok()) {
          push_reply(Reply::Err(tuple.status().message()));
          return;
        }
        internal::Request req;
        req.tuple = std::move(*tuple);
        req.out = &slots[used_slots];
        req.wg = &wg;
        // determinism-lint: allow(latency-histogram timestamp; no prediction depends on it)
        req.admitted = std::chrono::steady_clock::now();
        wg.Add(1);
        if (queue_.TryPush(std::move(req))) {
          replies.push_back({"", static_cast<int>(used_slots)});
          ++used_slots;
        } else {
          wg.Done();  // never admitted; nothing to wait for
          push_reply(Reply::Busy());
        }
        return;
      }
      case Verb::kStats:
        replies.push_back({StatsJson(), -1});
        return;
      case Verb::kPing:
        push_reply(Reply::Pong());
        return;
      case Verb::kQuit:
        quit = true;
        return;
      case Verb::kReload: {
        const std::string& dir = parsed->args;
        const Status status = registry_->LoadAndSwap(dir, options_.selector);
        if (status.ok()) {
          const std::shared_ptr<const ServableModel> model =
              registry_->Snapshot();
          push_reply(Reply::Ok(StrPrintf(
              "reloaded %s fingerprint %016llx", dir.c_str(),
              static_cast<unsigned long long>(model->fingerprint))));
        } else {
          push_reply(Reply::Err(status.ToString()));
        }
        return;
      }
      case Verb::kIngest:
      case Verb::kDelete: {
        // Enter payload mode even for rejected chunks: the client sends the
        // payload regardless, and consuming it (while discarding) is the
        // only way to keep line framing intact.
        chunk.emplace();
        chunk->op = parsed->verb == Verb::kIngest ? ChunkOp::kInsert
                                                  : ChunkOp::kDelete;
        chunk->remaining = parsed->payload_lines;
        if (trainer_ == nullptr) {
          chunk->error = "streaming ingestion requires boatd --model";
        } else if (parsed->payload_lines >
                   static_cast<int64_t>(options_.max_chunk_records)) {
          chunk->error = StrPrintf(
              "chunk too large: %lld records (max %zu)",
              static_cast<long long>(parsed->payload_lines),
              options_.max_chunk_records);
        } else {
          chunk->tuples.reserve(static_cast<size_t>(
              std::min<int64_t>(parsed->payload_lines, 4096)));
        }
        return;
      }
      case Verb::kRetrain: {
        if (trainer_ == nullptr) {
          push_reply(Reply::Err("streaming ingestion requires boatd --model"));
          return;
        }
        const Result<Trainer::RetrainResult> result = trainer_->Flush();
        if (!result.ok()) {
          push_reply(Reply::Err(result.status().ToString()));
          return;
        }
        push_reply(Reply::Ok(StrPrintf(
            "retrain applied %llu failed %llu fingerprint %016llx",
            static_cast<unsigned long long>(result->applied),
            static_cast<unsigned long long>(result->failed),
            static_cast<unsigned long long>(result->fingerprint))));
        return;
      }
    }
  };

  char rx[4096];
  bool reading = true;
  while (reading && !quit && !send_failed) {
    const ssize_t n = ::recv(fd, rx, sizeof(rx), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      reading = false;  // peer half-closed; finish what is buffered
    } else {
      buf.append(rx, static_cast<size_t>(n));
    }

    size_t start = 0;
    size_t nl;
    while (!quit && (nl = buf.find('\n', start)) != std::string::npos) {
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (skipping_long_line) {
        // Tail of an oversized line already accounted for below.
        skipping_long_line = false;
        continue;
      }
      if (chunk.has_value()) {
        consume_payload(std::move(line), /*oversized=*/false);
      } else {
        process_line(std::move(line));
      }
      if (used_slots >= kReplyWindow || replies.size() >= kReplyWindow) {
        if (!flush()) break;
      }
    }
    buf.erase(0, start);
    if (!skipping_long_line && buf.size() > options_.max_line_bytes) {
      // The oversized line is consumed exactly once here (its tail is
      // discarded above), so chunk payload accounting stays in sync.
      if (chunk.has_value()) {
        consume_payload("", /*oversized=*/true);
      } else {
        push_reply(Reply::Err("line too long"));
      }
      skipping_long_line = true;
      buf.clear();
    } else if (skipping_long_line) {
      buf.clear();
    }
    if (!reading && !quit && !buf.empty() && !skipping_long_line) {
      // Lenient: final unterminated line.
      if (chunk.has_value()) {
        consume_payload(std::move(buf), /*oversized=*/false);
      } else {
        process_line(std::move(buf));
      }
      buf.clear();
    }
    if (!reading && chunk.has_value()) {
      // The peer half-closed mid-chunk; the missing payload can never
      // arrive, so answer the chunk now.
      chunk.reset();
      push_reply(Reply::Err("truncated chunk"));
    }
    if (!flush()) break;
  }

  // Every submitted request points at this frame's slots; never leave
  // before the scoring workers are done with them.
  wg.Wait();
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void BoatServer::ScoringWorker() {
  const size_t max_batch =
      options_.max_batch > 0 ? static_cast<size_t>(options_.max_batch) : 1;
  std::vector<internal::Request> batch;
  batch.reserve(max_batch);
  std::vector<Tuple> tuples;
  tuples.reserve(max_batch);
  std::vector<int32_t> out;

  for (;;) {
    std::optional<internal::Request> first = queue_.Pop();
    if (!first.has_value()) return;  // closed and drained
    {
      // Test-only gate (see SetScoringPausedForTest): holding the popped
      // request here lets backpressure tests fill the queue exactly.
      MutexLock lock(pause_mu_);
      pause_cv_.Wait(lock, [&] {
        pause_mu_.AssertHeld();
        return !scoring_paused_ || queue_.closed();
      });
    }
    batch.clear();
    batch.push_back(std::move(*first));
    // Greedy drain: take everything already queued under one lock, without
    // waiting. Under a saturated pipeline this alone builds large batches,
    // and waiting would only add latency.
    queue_.PopAllInto(&batch, max_batch - batch.size());
    if (batch.size() < max_batch && max_batch > 1 && options_.linger_us > 0) {
      // Gather: yield the CPU to the connection handlers that are parsing
      // the next records and drain again, as long as that makes progress.
      // The moment producers stall with records in hand we score what we
      // have — a wave in flight is never delayed by the linger. Only with a
      // single record and an empty queue do we block (bounded by linger_us)
      // for a companion record, so light concurrency still coalesces.
      // determinism-lint: allow(linger deadline bounds batch wait; predictions are batch-invariant)
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.linger_us);
      for (;;) {
        std::this_thread::yield();
        const size_t got =
            queue_.PopAllInto(&batch, max_batch - batch.size());
        if (batch.size() >= max_batch) break;
        if (got == 0) {
          if (batch.size() > 1) break;  // producers stalled; score now
          std::optional<internal::Request> r = queue_.PopUntil(deadline);
          if (!r.has_value()) break;  // linger elapsed or queue closed
          batch.push_back(std::move(*r));
        }
        // determinism-lint: allow(linger deadline bounds batch wait; predictions are batch-invariant)
        if (std::chrono::steady_clock::now() >= deadline) break;
      }
    }

    // One model snapshot per batch: a concurrent RELOAD swaps the registry
    // pointer, never this batch's model (RCU-style; see model_registry.h).
    const std::shared_ptr<const ServableModel> model = registry_->Snapshot();
    const int arity = model->schema.num_attributes();
    bool uniform = true;
    for (const internal::Request& r : batch) {
      if (r.tuple.num_values() != arity) {
        uniform = false;
        break;
      }
    }
    // Reused buffer, no zero-fill: Predict (and the mismatch loop below)
    // writes every slot it is sized to.
    out.resize(batch.size());
    if (uniform) {
      tuples.clear();
      for (internal::Request& r : batch) tuples.push_back(std::move(r.tuple));
      // Routes through the blocked (SIMD-dispatched) batch kernel for
      // micro-batches of >= 32 records; smaller waves take the per-tuple
      // path. Identical labels either way.
      model->compiled.Predict(tuples, out, /*num_threads=*/1);
    } else {
      // A hot reload changed the schema arity between admission and
      // scoring: score matching tuples, flag the rest.
      for (size_t i = 0; i < batch.size(); ++i) {
        out[i] = batch[i].tuple.num_values() == arity
                     ? model->compiled.Classify(batch[i].tuple)
                     : kSchemaMismatchLabel;
      }
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_size_hist_.Record(batch.size());
    // determinism-lint: allow(latency-histogram timestamp; no prediction depends on it)
    const auto end = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          end - batch[i].admitted)
                          .count();
      latency_us_hist_.Record(us > 0 ? static_cast<uint64_t>(us) : 0);
      *batch[i].out = out[i];
    }
    // All labels are written; release the per-window wait groups with one
    // counted Done per run of same-window records. Handlers submit whole
    // reply windows in bursts, so runs are long and the wg mutex is paid
    // per window, not per record.
    size_t run_start = 0;
    for (size_t i = 1; i <= batch.size(); ++i) {
      if (i == batch.size() || batch[i].wg != batch[run_start].wg) {
        batch[run_start].wg->Done(i - run_start);
        run_start = i;
      }
    }
  }
}

std::string BoatServer::StatsJson() const {
  const std::shared_ptr<const ServableModel> model = registry_->Snapshot();
  std::string json = "{";
  json += StrPrintf(
      "\"requests\":%llu,\"errors\":%llu,\"busy\":%llu,\"batches\":%llu,"
      "\"queue_depth\":%zu,\"reloads\":%lld",
      static_cast<unsigned long long>(
          requests_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(errors_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(busy_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          batches_.load(std::memory_order_relaxed)),
      queue_.size(),
      static_cast<long long>(registry_->reload_count()));
  if (trainer_ != nullptr) {
    json += ",\"trainer\":" + trainer_->StatsJson();
  }
  json += ",\"batch_size_hist\":" + batch_size_hist_.ToJson();
  json += StrPrintf(
      ",\"latency_us\":{\"count\":%llu,\"p50\":%llu,\"p99\":%llu}",
      static_cast<unsigned long long>(latency_us_hist_.TotalCount()),
      static_cast<unsigned long long>(latency_us_hist_.ValueAtQuantile(0.5)),
      static_cast<unsigned long long>(latency_us_hist_.ValueAtQuantile(0.99)));
  if (model != nullptr) {
    json += StrPrintf(
        ",\"model\":{\"fingerprint\":\"%016llx\",\"nodes\":%zu,"
        "\"dir\":\"%s\"}",
        static_cast<unsigned long long>(model->fingerprint),
        model->tree_nodes, model->source_dir.c_str());
  }
  json += "}";
  return json;
}

}  // namespace boat::serve
