#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "common/str_util.h"
#include "serve/wire.h"

namespace boat::serve {

namespace {

/// Replies per connection that may be pipelined before the handler waits
/// for scoring and writes them out. Clients must not pipeline more than
/// this many lines without reading replies (boat-loadgen's window is far
/// smaller).
constexpr size_t kReplyWindow = 1024;

/// Sentinel a scoring worker writes when a request's tuple arity no longer
/// matches the (hot-reloaded) active model; the handler turns it into ERR.
constexpr int32_t kSchemaMismatchLabel = INT32_MIN;

/// Sentinel for a record admitted to a lane whose model was evicted before
/// its batch was scored; the handler turns it into ERR.
constexpr int32_t kNoModelLabel = INT32_MIN + 1;

bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

BoatServer::BoatServer(ModelRegistry* registry, ServerOptions options,
                       Trainer* trainer)
    : options_(std::move(options)) {
  auto lane = std::make_unique<Lane>(options_.queue_capacity);
  lane->id = "default";
  lane->registry = registry;
  lane->trainer = trainer;
  lane->selector = options_.selector;
  lane_by_id_[lane->id] = lane.get();
  lanes_.push_back(std::move(lane));
}

BoatServer::BoatServer(FleetRegistry* fleet, ServerOptions options)
    : options_(std::move(options)) {
  for (const std::shared_ptr<FleetEntry>& entry : fleet->entries()) {
    auto lane = std::make_unique<Lane>(options_.queue_capacity);
    lane->id = entry->id;
    lane->registry = entry->registry;
    lane->trainer = entry->trainer;
    lane->ensemble = entry->ensemble;
    lane->selector =
        entry->selector.empty() ? options_.selector : entry->selector;
    lane->entry = entry;
    lane_by_id_[lane->id] = lane.get();
    lanes_.push_back(std::move(lane));
  }
}

BoatServer::~BoatServer() { Shutdown(); }

BoatServer::Lane* BoatServer::ResolveLane(const std::string& model_id) const {
  if (model_id.empty()) return lanes_.front().get();
  const auto it = lane_by_id_.find(model_id);
  return it == lane_by_id_.end() ? nullptr : it->second;
}

Status BoatServer::Start() {
  MutexLock lock(lifecycle_mu_);  // serializes against Shutdown
  if (lanes_.empty()) {
    return Status::InvalidArgument("BoatServer: fleet has no models");
  }
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    if (lane->registry->Snapshot() == nullptr) {
      return Status::InvalidArgument(
          "BoatServer: model '" + lane->id + "' has no active model");
    }
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrPrintf("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status s = Status::IOError(
        StrPrintf("bind port %d: %s", options_.port, std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status s =
        Status::IOError(StrPrintf("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  const int workers = options_.scoring_threads > 0 ? options_.scoring_threads
                                                   : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back(&BoatServer::ScoringWorker, this,
                          static_cast<size_t>(i));
  }
  accept_thread_ = std::thread(&BoatServer::AcceptLoop, this);
  started_.store(true, std::memory_order_release);
  return Status::OK();
}

void BoatServer::Shutdown() {
  // lifecycle_mu_ serializes concurrent Shutdown callers (including the
  // destructor racing an explicit call): the first caller drains while any
  // later caller blocks here until the drain is complete, then returns via
  // the shutdown_done_ check. The seed version let the second caller return
  // mid-drain, so a destructor racing a Shutdown could free server state
  // while the first caller was still joining threads (and two callers could
  // join the same std::thread, which is UB). Regression:
  // ServeE2eTest.ConcurrentShutdownCallsAreSerialized.
  MutexLock lock(lifecycle_mu_);
  if (!started_.load(std::memory_order_acquire) || shutdown_done_) return;
  shutdown_done_ = true;
  stopping_.store(true, std::memory_order_release);

  // Stop accepting. The accept loop polls with a timeout, so it notices
  // stopping_ even if this shutdown() call has no effect on the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Half-close every live connection's read side: handlers finish replying
  // to everything already received, then exit. No admitted request drops.
  {
    MutexLock conns_lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        ::shutdown(conn->fd, SHUT_RD);
      }
    }
  }
  {
    MutexLock conns_lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
      ::close(conn->fd);
    }
    conns_.clear();
  }

  // All requests are now in their lanes (or replied); drain the workers:
  // close every lane, raise the work-closed signal, and release any worker
  // parked on the pause gate or the work condvar.
  for (const std::unique_ptr<Lane>& lane : lanes_) lane->queue.Close();
  {
    MutexLock work_lock(work_mu_);
    work_closed_ = true;
  }
  work_cv_.NotifyAll();
  {
    MutexLock pause_lock(pause_mu_);
    scoring_paused_ = false;
  }
  pause_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void BoatServer::SetScoringPausedForTest(bool paused) {
  {
    MutexLock lock(pause_mu_);
    scoring_paused_ = paused;
  }
  pause_cv_.NotifyAll();
}

void BoatServer::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void BoatServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc <= 0) continue;  // timeout or EINTR: re-check stopping_
    if ((pfd.revents & POLLIN) == 0) {
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return;
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    MutexLock lock(conns_mu_);
    ReapFinishedLocked();
    int active = 0;
    for (const auto& conn : conns_) {
      if (!conn->done.load(std::memory_order_acquire)) ++active;
    }
    if (active >= options_.max_connections) {
      static const char kBusyLine[] = "BUSY\n";
      SendAll(fd, kBusyLine, sizeof(kBusyLine) - 1);
      busy_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->fd = fd;
    conn->thread = std::thread(&BoatServer::HandleConnection, this, conn);
  }
}

void BoatServer::HandleConnection(Conn* conn) {
  const int fd = conn->fd;
  std::string buf;
  internal::WaitGroup wg;
  std::vector<int32_t> slots(kReplyWindow);

  // One entry per request line, in order. slot < 0 carries a preformatted
  // text reply; slot >= 0 is a label the scoring worker will deliver.
  struct PendingReply {
    std::string text;
    int slot = -1;
  };
  std::vector<PendingReply> replies;
  size_t used_slots = 0;
  bool quit = false;
  bool send_failed = false;
  bool skipping_long_line = false;

  // Records admitted to lanes but not yet announced on the fleet work
  // signal. Batched: one work_mu_ acquisition per reply window / recv burst
  // instead of per record.
  size_t unannounced = 0;
  auto publish_work = [&]() {
    if (unannounced == 0) return;
    {
      MutexLock lock(work_mu_);
      work_pending_ += static_cast<int64_t>(unannounced);
    }
    work_cv_.NotifyAll();
    unannounced = 0;
  };

  // Waits for every submitted record of the window, then writes all replies
  // in request order. Returns false once the peer stops reading.
  auto flush = [&]() {
    // Announce before waiting: wg.Wait() completes only after a worker has
    // scored every admitted record, and workers may be asleep until the
    // publish lands.
    publish_work();
    wg.Wait();
    if (replies.empty()) return !send_failed;
    std::string out;
    for (const PendingReply& r : replies) {
      if (r.slot >= 0) {
        const int32_t label = slots[static_cast<size_t>(r.slot)];
        if (label == kSchemaMismatchLabel) {
          out += "ERR model schema changed mid-flight";
        } else if (label == kNoModelLabel) {
          out += "ERR model evicted";
        } else {
          out += StrPrintf("%d", label);
        }
      } else {
        out += r.text;
      }
      out += '\n';
    }
    replies.clear();
    used_slots = 0;
    if (!SendAll(fd, out.data(), out.size())) send_failed = true;
    return !send_failed;
  };

  // In-progress INGEST/DELETE chunk of this connection. While set, incoming
  // lines are payload — consumed without per-line replies — until
  // `remaining` hits zero and the whole chunk is answered at once.
  struct ChunkState {
    ChunkOp op = ChunkOp::kInsert;
    int64_t remaining = 0;
    Lane* lane = nullptr;  ///< routing target; null for an unknown model
    std::vector<Tuple> tuples;
    std::string error;  ///< first payload/validation failure; sticky
  };
  std::optional<ChunkState> chunk;

  auto push_reply = [&](const Reply& reply, Lane* lane = nullptr) {
    if (reply.kind == Reply::Kind::kErr) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (lane != nullptr) {
        lane->errors.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (reply.kind == Reply::Kind::kBusy) {
      busy_.fetch_add(1, std::memory_order_relaxed);
      if (lane != nullptr) {
        lane->busy.fetch_add(1, std::memory_order_relaxed);
      }
    }
    replies.push_back({FormatReply(reply), -1});
  };

  // Answers the completed chunk: one ERR for a rejected chunk, BUSY when
  // the trainer queue is saturated, otherwise OK with the queued seq.
  auto finish_chunk = [&]() {
    ChunkState done = std::move(*chunk);
    chunk.reset();
    if (!done.error.empty()) {
      push_reply(Reply::Err(done.error), done.lane);
      return;
    }
    const char* what = done.op == ChunkOp::kInsert ? "ingest" : "delete";
    const size_t records = done.tuples.size();
    const std::optional<uint64_t> seq =
        done.lane->trainer->TrySubmit(done.op, std::move(done.tuples));
    if (!seq.has_value()) {
      push_reply(Reply::Busy(), done.lane);
      return;
    }
    push_reply(Reply::Ok(StrPrintf(
        "%s queued seq %llu records %zu", what,
        static_cast<unsigned long long>(*seq), records)));
  };

  // Consumes one payload line of the open chunk. Oversized lines poison the
  // chunk but still count against `remaining`, keeping the framing in sync.
  auto consume_payload = [&](std::string line, bool oversized) {
    if (chunk->error.empty()) {
      if (oversized) {
        chunk->error = "chunk payload line too long";
      } else {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        // error.empty() implies the chunk resolved to a lane with a live
        // trainer (see Verb::kIngest below).
        Result<Tuple> tuple =
            ParseLabeledRecordLine(line, chunk->lane->trainer->schema());
        if (!tuple.ok()) {
          chunk->error = "rejected chunk: " + tuple.status().message();
        } else {
          chunk->tuples.push_back(std::move(*tuple));
        }
      }
    }
    if (--chunk->remaining == 0) finish_chunk();
  };

  auto process_line = [&](std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.size() > options_.max_line_bytes) {
      push_reply(Reply::Err("line too long"));
      return;
    }
    if (line.empty()) {
      push_reply(Reply::Err("empty line"));
      return;
    }
    Result<Request> parsed = ParseRequest(line);
    if (!parsed.ok()) {
      push_reply(Reply::Err(parsed.status().message()));
      return;
    }
    // Route: empty id = the default model; PING/QUIT ignore the target.
    Lane* lane = ResolveLane(parsed->model_id);
    const auto unknown_model = [&]() {
      return Reply::Err("unknown model '" + parsed->model_id + "'");
    };
    switch (parsed->verb) {
      case Verb::kRecord: {
        requests_.fetch_add(1, std::memory_order_relaxed);
        if (lane == nullptr) {
          push_reply(unknown_model());
          return;
        }
        lane->requests.fetch_add(1, std::memory_order_relaxed);
        const std::shared_ptr<const ServableModel> model =
            lane->registry->Snapshot();
        if (model == nullptr) {
          push_reply(
              Reply::Err("model '" + lane->id + "' has no active model"),
              lane);
          return;
        }
        Result<Tuple> tuple = ParseRecordLine(parsed->args, model->schema);
        if (!tuple.ok()) {
          push_reply(Reply::Err(tuple.status().message()), lane);
          return;
        }
        internal::Request req;
        req.tuple = std::move(*tuple);
        req.out = &slots[used_slots];
        req.wg = &wg;
        // determinism-lint: allow(latency-histogram timestamp; no prediction depends on it)
        req.admitted = std::chrono::steady_clock::now();
        wg.Add(1);
        if (lane->queue.TryPush(std::move(req))) {
          replies.push_back({"", static_cast<int>(used_slots)});
          ++used_slots;
          ++unannounced;
        } else {
          wg.Done();  // never admitted; nothing to wait for
          push_reply(Reply::Busy(), lane);
        }
        return;
      }
      case Verb::kStats:
        if (parsed->model_id.empty()) {
          replies.push_back({StatsJson(), -1});
        } else if (lane == nullptr) {
          push_reply(unknown_model());
        } else {
          replies.push_back({LaneStatsJson(*lane), -1});
        }
        return;
      case Verb::kPing:
        push_reply(Reply::Pong());
        return;
      case Verb::kQuit:
        quit = true;
        return;
      case Verb::kReload: {
        if (lane == nullptr) {
          push_reply(unknown_model());
          return;
        }
        const std::string& dir = parsed->args;
        // Per-model isolation: only this lane's registry swaps. A failure
        // keeps the lane's last-good model active.
        const Status status =
            lane->ensemble ? lane->registry->LoadAndSwapEnsemble(dir)
                           : lane->registry->LoadAndSwap(dir, lane->selector);
        if (status.ok()) {
          const std::shared_ptr<const ServableModel> model =
              lane->registry->Snapshot();
          push_reply(Reply::Ok(StrPrintf(
              "reloaded %s fingerprint %016llx", dir.c_str(),
              static_cast<unsigned long long>(model->fingerprint))));
        } else {
          push_reply(Reply::Err(status.ToString()), lane);
        }
        return;
      }
      case Verb::kIngest:
      case Verb::kDelete: {
        // Enter payload mode even for rejected chunks: the client sends the
        // payload regardless, and consuming it (while discarding) is the
        // only way to keep line framing intact.
        chunk.emplace();
        chunk->op = parsed->verb == Verb::kIngest ? ChunkOp::kInsert
                                                  : ChunkOp::kDelete;
        chunk->remaining = parsed->payload_lines;
        chunk->lane = lane;
        if (lane == nullptr) {
          chunk->error = "unknown model '" + parsed->model_id + "'";
        } else if (lane->trainer == nullptr) {
          chunk->error = "streaming ingestion requires boatd --model";
        } else if (parsed->payload_lines >
                   static_cast<int64_t>(options_.max_chunk_records)) {
          chunk->error = StrPrintf(
              "chunk too large: %lld records (max %zu)",
              static_cast<long long>(parsed->payload_lines),
              options_.max_chunk_records);
        } else {
          chunk->tuples.reserve(static_cast<size_t>(
              std::min<int64_t>(parsed->payload_lines, 4096)));
        }
        return;
      }
      case Verb::kRetrain: {
        if (lane == nullptr) {
          push_reply(unknown_model());
          return;
        }
        if (lane->trainer == nullptr) {
          push_reply(Reply::Err("streaming ingestion requires boatd --model"),
                     lane);
          return;
        }
        const Result<Trainer::RetrainResult> result = lane->trainer->Flush();
        if (!result.ok()) {
          push_reply(Reply::Err(result.status().ToString()), lane);
          return;
        }
        push_reply(Reply::Ok(StrPrintf(
            "retrain applied %llu failed %llu fingerprint %016llx",
            static_cast<unsigned long long>(result->applied),
            static_cast<unsigned long long>(result->failed),
            static_cast<unsigned long long>(result->fingerprint))));
        return;
      }
    }
  };

  char rx[4096];
  bool reading = true;
  while (reading && !quit && !send_failed) {
    const ssize_t n = ::recv(fd, rx, sizeof(rx), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      reading = false;  // peer half-closed; finish what is buffered
    } else {
      buf.append(rx, static_cast<size_t>(n));
    }

    size_t start = 0;
    size_t nl;
    while (!quit && (nl = buf.find('\n', start)) != std::string::npos) {
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (skipping_long_line) {
        // Tail of an oversized line already accounted for below.
        skipping_long_line = false;
        continue;
      }
      if (chunk.has_value()) {
        consume_payload(std::move(line), /*oversized=*/false);
      } else {
        process_line(std::move(line));
      }
      if (used_slots >= kReplyWindow || replies.size() >= kReplyWindow) {
        if (!flush()) break;
      }
    }
    buf.erase(0, start);
    if (!skipping_long_line && buf.size() > options_.max_line_bytes) {
      // The oversized line is consumed exactly once here (its tail is
      // discarded above), so chunk payload accounting stays in sync.
      if (chunk.has_value()) {
        consume_payload("", /*oversized=*/true);
      } else {
        push_reply(Reply::Err("line too long"));
      }
      skipping_long_line = true;
      buf.clear();
    } else if (skipping_long_line) {
      buf.clear();
    }
    if (!reading && !quit && !buf.empty() && !skipping_long_line) {
      // Lenient: final unterminated line.
      if (chunk.has_value()) {
        consume_payload(std::move(buf), /*oversized=*/false);
      } else {
        process_line(std::move(buf));
      }
      buf.clear();
    }
    if (!reading && chunk.has_value()) {
      // The peer half-closed mid-chunk; the missing payload can never
      // arrive, so answer the chunk now.
      chunk.reset();
      push_reply(Reply::Err("truncated chunk"));
    }
    if (!flush()) break;
  }

  // Every submitted request points at this frame's slots; never leave
  // before the scoring workers are done with them. Publish first —
  // unannounced records would otherwise leave the workers asleep.
  publish_work();
  wg.Wait();
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void BoatServer::ScoringWorker(size_t worker_index) {
  const size_t max_batch =
      options_.max_batch > 0 ? static_cast<size_t>(options_.max_batch) : 1;
  std::vector<internal::Request> batch;
  batch.reserve(max_batch);
  std::vector<Tuple> tuples;
  tuples.reserve(max_batch);
  std::vector<int32_t> out;

  // Fairness between models: each worker scans the lanes round-robin from
  // its own cursor (staggered by worker index so co-workers start on
  // different lanes) and always resumes *past* the lane it just served, so
  // one saturated model cannot starve the others.
  const size_t lane_count = lanes_.size();
  size_t cursor = worker_index % lane_count;

  for (;;) {
    bool closed;
    {
      // Sleep until handlers announce work (or shutdown). The signed tally
      // may lag pops (handlers publish in batches), so a wakeup is a hint,
      // not a guarantee — the scan below is the source of truth.
      MutexLock lock(work_mu_);
      work_cv_.Wait(lock, [&] {
        work_mu_.AssertHeld();
        return work_pending_ > 0 || work_closed_;
      });
      closed = work_closed_;
    }

    Lane* lane = nullptr;
    std::optional<internal::Request> first;
    for (size_t probe = 0; probe < lane_count; ++probe) {
      Lane* candidate = lanes_[(cursor + probe) % lane_count].get();
      first = candidate->queue.TryPop();
      if (first.has_value()) {
        lane = candidate;
        cursor = (cursor + probe + 1) % lane_count;
        break;
      }
    }
    if (lane == nullptr) {
      if (closed) {
        // Closed and every lane drained: done. (A co-worker may still be
        // scoring its final batch; those records are no longer queued.)
        bool all_empty = true;
        for (const std::unique_ptr<Lane>& l : lanes_) {
          if (l->queue.size() != 0) {
            all_empty = false;
            break;
          }
        }
        if (all_empty) return;
      }
      // Spurious hint (another worker won the race, or the tally ran ahead
      // of a pop's accounting): yield and re-check.
      std::this_thread::yield();
      continue;
    }

    {
      // Test-only gate (see SetScoringPausedForTest): holding the popped
      // request here lets backpressure tests fill the lane exactly.
      MutexLock lock(pause_mu_);
      pause_cv_.Wait(lock, [&] {
        pause_mu_.AssertHeld();
        return !scoring_paused_ || lane->queue.closed();
      });
    }
    batch.clear();
    batch.push_back(std::move(*first));
    // Greedy drain, confined to the chosen lane (batches never mix models):
    // take everything already queued under one lock, without waiting. Under
    // a saturated pipeline this alone builds large batches, and waiting
    // would only add latency.
    lane->queue.PopAllInto(&batch, max_batch - batch.size());
    if (batch.size() < max_batch && max_batch > 1 && options_.linger_us > 0) {
      // Gather: yield the CPU to the connection handlers that are parsing
      // the next records and drain again, as long as that makes progress.
      // The moment producers stall with records in hand we score what we
      // have — a wave in flight is never delayed by the linger. Only with a
      // single record and an empty lane do we block (bounded by linger_us)
      // for a companion record, so light concurrency still coalesces.
      // determinism-lint: allow(linger deadline bounds batch wait; predictions are batch-invariant)
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.linger_us);
      for (;;) {
        std::this_thread::yield();
        const size_t got =
            lane->queue.PopAllInto(&batch, max_batch - batch.size());
        if (batch.size() >= max_batch) break;
        if (got == 0) {
          if (batch.size() > 1) break;  // producers stalled; score now
          std::optional<internal::Request> r = lane->queue.PopUntil(deadline);
          if (!r.has_value()) break;  // linger elapsed or queue closed
          batch.push_back(std::move(*r));
        }
        // determinism-lint: allow(linger deadline bounds batch wait; predictions are batch-invariant)
        if (std::chrono::steady_clock::now() >= deadline) break;
      }
    }
    {
      // Account for the whole batch with one lock; see work_pending_'s
      // invariant in server.h for why this may go transiently negative.
      MutexLock lock(work_mu_);
      work_pending_ -= static_cast<int64_t>(batch.size());
    }

    // One model snapshot per batch: a concurrent RELOAD swaps this lane's
    // registry pointer, never this batch's model (RCU-style; see
    // model_registry.h). Other lanes' reloads touch other registries.
    const std::shared_ptr<const ServableModel> model =
        lane->registry->Snapshot();
    out.resize(batch.size());
    if (model == nullptr) {
      // The model was evicted after admission; flag every record.
      for (size_t i = 0; i < batch.size(); ++i) out[i] = kNoModelLabel;
    } else {
      const int arity = model->schema.num_attributes();
      bool uniform = true;
      for (const internal::Request& r : batch) {
        if (r.tuple.num_values() != arity) {
          uniform = false;
          break;
        }
      }
      // Reused buffer, no zero-fill: Predict (and the mismatch loop below)
      // writes every slot it is sized to.
      if (uniform) {
        tuples.clear();
        for (internal::Request& r : batch) {
          tuples.push_back(std::move(r.tuple));
        }
        // Routes through the blocked (SIMD-dispatched) batch kernel for
        // micro-batches of >= 32 records; smaller waves take the per-tuple
        // path. Identical labels either way. An ensemble-backed lane votes
        // across its members with one batched Predict per member.
        model->compiled.Predict(tuples, out, /*num_threads=*/1);
      } else {
        // A hot reload changed the schema arity between admission and
        // scoring: score matching tuples, flag the rest.
        for (size_t i = 0; i < batch.size(); ++i) {
          out[i] = batch[i].tuple.num_values() == arity
                       ? model->compiled.Classify(batch[i].tuple)
                       : kSchemaMismatchLabel;
        }
      }
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_size_hist_.Record(batch.size());
    // determinism-lint: allow(latency-histogram timestamp; no prediction depends on it)
    const auto end = std::chrono::steady_clock::now();
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          end - batch[i].admitted)
                          .count();
      latency_us_hist_.Record(us > 0 ? static_cast<uint64_t>(us) : 0);
      *batch[i].out = out[i];
    }
    // All labels are written; release the per-window wait groups with one
    // counted Done per run of same-window records. Handlers submit whole
    // reply windows in bursts, so runs are long and the wg mutex is paid
    // per window, not per record.
    size_t run_start = 0;
    for (size_t i = 1; i <= batch.size(); ++i) {
      if (i == batch.size() || batch[i].wg != batch[run_start].wg) {
        batch[run_start].wg->Done(i - run_start);
        run_start = i;
      }
    }
  }
}

std::string BoatServer::LaneStatsJson(const Lane& lane) const {
  const std::shared_ptr<const ServableModel> model = lane.registry->Snapshot();
  std::string json = StrPrintf(
      "{\"model_id\":\"%s\",\"requests\":%llu,\"errors\":%llu,"
      "\"busy\":%llu,\"queue_depth\":%zu,\"reloads\":%lld,\"ensemble\":%s",
      lane.id.c_str(),
      static_cast<unsigned long long>(
          lane.requests.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          lane.errors.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          lane.busy.load(std::memory_order_relaxed)),
      lane.queue.size(), static_cast<long long>(lane.registry->reload_count()),
      lane.ensemble ? "true" : "false");
  if (lane.trainer != nullptr) {
    json += ",\"trainer\":" + lane.trainer->StatsJson();
  }
  if (model != nullptr) {
    json += StrPrintf(
        ",\"model\":{\"fingerprint\":\"%016llx\",\"nodes\":%zu,"
        "\"members\":%d,\"dir\":\"%s\"}",
        static_cast<unsigned long long>(model->fingerprint),
        model->tree_nodes, model->compiled.num_members(),
        model->source_dir.c_str());
  }
  json += "}";
  return json;
}

std::string BoatServer::StatsJson() const {
  const Lane& default_lane = *lanes_.front();
  const std::shared_ptr<const ServableModel> model =
      default_lane.registry->Snapshot();
  size_t queue_depth = 0;
  int64_t reloads = 0;
  for (const std::unique_ptr<Lane>& lane : lanes_) {
    queue_depth += lane->queue.size();
    reloads += lane->registry->reload_count();
  }
  std::string json = "{";
  json += StrPrintf(
      "\"requests\":%llu,\"errors\":%llu,\"busy\":%llu,\"batches\":%llu,"
      "\"queue_depth\":%zu,\"reloads\":%lld",
      static_cast<unsigned long long>(
          requests_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(errors_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(busy_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          batches_.load(std::memory_order_relaxed)),
      queue_depth, static_cast<long long>(reloads));
  if (default_lane.trainer != nullptr) {
    json += ",\"trainer\":" + default_lane.trainer->StatsJson();
  }
  json += ",\"batch_size_hist\":" + batch_size_hist_.ToJson();
  json += StrPrintf(
      ",\"latency_us\":{\"count\":%llu,\"p50\":%llu,\"p99\":%llu}",
      static_cast<unsigned long long>(latency_us_hist_.TotalCount()),
      static_cast<unsigned long long>(latency_us_hist_.ValueAtQuantile(0.5)),
      static_cast<unsigned long long>(latency_us_hist_.ValueAtQuantile(0.99)));
  if (model != nullptr) {
    json += StrPrintf(
        ",\"model\":{\"fingerprint\":\"%016llx\",\"nodes\":%zu,"
        "\"dir\":\"%s\"}",
        static_cast<unsigned long long>(model->fingerprint),
        model->tree_nodes, model->source_dir.c_str());
  }
  if (lanes_.size() > 1) {
    json += ",\"models\":{";
    bool first = true;
    for (const std::unique_ptr<Lane>& lane : lanes_) {
      if (!first) json += ",";
      first = false;
      json += "\"" + lane->id + "\":" + LaneStatsJson(*lane);
    }
    json += "}";
  }
  json += "}";
  return json;
}

}  // namespace boat::serve
