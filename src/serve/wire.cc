#include "serve/wire.h"

#include <cstdlib>

#include "common/str_util.h"
#include "storage/csv.h"

namespace boat::serve {

namespace {

bool IsAsciiLetter(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r')) {
    ++begin;
  }
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool ParseDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseCategory(const std::string& field, int32_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

}  // namespace

RequestKind ClassifyRequestLine(const std::string& line) {
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || !IsAsciiLetter(line[i])) return RequestKind::kRecord;
  const std::string trimmed = Trim(line.substr(i));
  if (trimmed == "STATS") return RequestKind::kStats;
  if (trimmed == "PING") return RequestKind::kPing;
  if (trimmed == "QUIT") return RequestKind::kQuit;
  if (trimmed.rfind("RELOAD", 0) == 0 &&
      (trimmed.size() == 6 || trimmed[6] == ' ' || trimmed[6] == '\t')) {
    return RequestKind::kReload;
  }
  return RequestKind::kUnknown;
}

std::string ReloadArgument(const std::string& line) {
  const std::string trimmed = Trim(line);
  if (trimmed.size() <= 6) return "";
  return Trim(trimmed.substr(6));
}

Result<Tuple> ParseRecordLine(const std::string& line, const Schema& schema) {
  const std::vector<std::string> fields = SplitCsvLine(line, ',');
  const int arity = schema.num_attributes();
  if (static_cast<int>(fields.size()) != arity) {
    return Status::InvalidArgument(
        StrPrintf("schema arity mismatch: got %zu fields, want %d",
                  fields.size(), arity));
  }
  std::vector<double> values(static_cast<size_t>(arity));
  for (int a = 0; a < arity; ++a) {
    const std::string& field = fields[static_cast<size_t>(a)];
    if (schema.IsNumerical(a)) {
      double v = 0;
      if (!ParseDouble(field, &v)) {
        return Status::InvalidArgument(StrPrintf(
            "field %d ('%s') is not a number", a, field.c_str()));
      }
      values[static_cast<size_t>(a)] = v;
    } else {
      int32_t c = 0;
      if (!ParseCategory(field, &c)) {
        return Status::InvalidArgument(StrPrintf(
            "field %d ('%s') is not a category id", a, field.c_str()));
      }
      const int32_t card = schema.attribute(a).cardinality;
      if (c < 0 || c >= card) {
        return Status::InvalidArgument(StrPrintf(
            "field %d category %d out of range [0, %d)", a, c, card));
      }
      values[static_cast<size_t>(a)] = static_cast<double>(c);
    }
  }
  return Tuple(std::move(values), /*label=*/0);
}

std::vector<std::string> FormatRecordLines(const Schema& schema,
                                           const std::vector<Tuple>& tuples) {
  std::vector<std::string> lines;
  lines.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    std::string line;
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (a > 0) line += ',';
      if (schema.IsNumerical(a)) {
        line += StrPrintf("%.17g", t.value(a));
      } else {
        line += StrPrintf("%d", t.category(a));
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace boat::serve
