#include "serve/wire.h"

#include <cstdlib>

#include "common/str_util.h"
#include "storage/csv.h"

namespace boat::serve {

namespace {

bool IsAsciiLetter(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

bool IsModelIdChar(char c) {
  return IsAsciiLetter(c) || (c >= '0' && c <= '9') || c == '_' || c == '.' ||
         c == '-';
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r')) {
    ++begin;
  }
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool ParseDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseCategory(const std::string& field, int32_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

/// Strict decimal count: digits only, full consume, no sign.
bool ParseCount(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  for (const char c : field) {
    if (c < '0' || c > '9') return false;
  }
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

Result<Tuple> ParseRecordFields(const std::string& line, const Schema& schema,
                                bool labeled) {
  const std::vector<std::string> fields = SplitCsvLine(line, ',');
  const int arity = schema.num_attributes();
  const size_t want = static_cast<size_t>(arity) + (labeled ? 1 : 0);
  if (fields.size() != want) {
    return Status::InvalidArgument(
        StrPrintf("schema arity mismatch: got %zu fields, want %zu",
                  fields.size(), want));
  }
  std::vector<double> values(static_cast<size_t>(arity));
  for (int a = 0; a < arity; ++a) {
    const std::string& field = fields[static_cast<size_t>(a)];
    if (schema.IsNumerical(a)) {
      double v = 0;
      if (!ParseDouble(field, &v)) {
        return Status::InvalidArgument(StrPrintf(
            "field %d ('%s') is not a number", a, field.c_str()));
      }
      values[static_cast<size_t>(a)] = v;
    } else {
      int32_t c = 0;
      if (!ParseCategory(field, &c)) {
        return Status::InvalidArgument(StrPrintf(
            "field %d ('%s') is not a category id", a, field.c_str()));
      }
      const int32_t card = schema.attribute(a).cardinality;
      if (c < 0 || c >= card) {
        return Status::InvalidArgument(StrPrintf(
            "field %d category %d out of range [0, %d)", a, c, card));
      }
      values[static_cast<size_t>(a)] = static_cast<double>(c);
    }
  }
  int32_t label = 0;
  if (labeled) {
    const std::string& field = fields.back();
    if (!ParseCategory(field, &label)) {
      return Status::InvalidArgument(
          StrPrintf("label field ('%s') is not a class id", field.c_str()));
    }
    if (label < 0 || label >= schema.num_classes()) {
      return Status::InvalidArgument(
          StrPrintf("label %d out of range [0, %d)", label,
                    schema.num_classes()));
    }
  }
  return Tuple(std::move(values), label);
}

std::string FormatFields(const Schema& schema, const Tuple& t, bool labeled) {
  std::string line;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (a > 0) line += ',';
    if (schema.IsNumerical(a)) {
      line += StrPrintf("%.17g", t.value(a));
    } else {
      line += StrPrintf("%d", t.category(a));
    }
  }
  if (labeled) {
    line += ',';
    line += StrPrintf("%d", t.label());
  }
  return line;
}

/// The v2 grammar: `line` carries no routing prefix (or the prefix was
/// already stripped by ParseRequest). For kRecord, args is `line` itself.
Result<Request> ParseUnrouted(const std::string& line) {
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || !IsAsciiLetter(line[i])) {
    Request request;
    request.verb = Verb::kRecord;
    request.args = line;
    return request;
  }
  const std::string trimmed = Trim(line.substr(i));
  const size_t space = trimmed.find_first_of(" \t");
  const std::string verb =
      space == std::string::npos ? trimmed : trimmed.substr(0, space);
  const std::string rest =
      space == std::string::npos ? "" : Trim(trimmed.substr(space + 1));

  Request request;
  if (verb == "STATS" && rest.empty()) {
    request.verb = Verb::kStats;
    return request;
  }
  if (verb == "PING" && rest.empty()) {
    request.verb = Verb::kPing;
    return request;
  }
  if (verb == "QUIT" && rest.empty()) {
    request.verb = Verb::kQuit;
    return request;
  }
  if (verb == "RETRAIN" && rest.empty()) {
    request.verb = Verb::kRetrain;
    return request;
  }
  if (verb == "RELOAD") {
    if (rest.empty()) {
      return Status::InvalidArgument("RELOAD needs a model directory");
    }
    request.verb = Verb::kReload;
    request.args = rest;
    return request;
  }
  if (verb == "INGEST" || verb == "DELETE") {
    int64_t n = 0;
    if (!ParseCount(rest, &n) || n < 1 || n > kMaxWireChunkRecords) {
      return Status::InvalidArgument(
          verb + " needs a positive record count");
    }
    request.verb = verb == "INGEST" ? Verb::kIngest : Verb::kDelete;
    request.payload_lines = n;
    return request;
  }
  return Status::InvalidArgument("unknown command");
}

}  // namespace

bool IsValidModelId(const std::string& id) {
  if (id.empty() || id.size() > kMaxModelIdBytes) return false;
  for (const char c : id) {
    if (!IsModelIdChar(c)) return false;
  }
  return true;
}

Result<Request> ParseRequest(const std::string& line) {
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != '@') return ParseUnrouted(line);

  // v3 routing prefix: @<id> <rest>. The id charset excludes whitespace, so
  // the id ends at the first non-id character, which must be a separator.
  const size_t id_begin = i + 1;
  size_t id_end = id_begin;
  while (id_end < line.size() && IsModelIdChar(line[id_end])) ++id_end;
  const std::string id = line.substr(id_begin, id_end - id_begin);
  if (!IsValidModelId(id)) {
    return Status::InvalidArgument("malformed model id after '@'");
  }
  if (id_end >= line.size() ||
      (line[id_end] != ' ' && line[id_end] != '\t')) {
    return Status::InvalidArgument("model id must be followed by a request");
  }
  size_t rest_begin = id_end;
  while (rest_begin < line.size() &&
         (line[rest_begin] == ' ' || line[rest_begin] == '\t')) {
    ++rest_begin;
  }
  const std::string rest = line.substr(rest_begin);
  if (Trim(rest).empty()) {
    return Status::InvalidArgument("model id must be followed by a request");
  }
  BOAT_ASSIGN_OR_RETURN(Request request, ParseUnrouted(rest));
  request.model_id = id;
  return request;
}

std::string FormatReply(const Reply& reply) {
  switch (reply.kind) {
    case Reply::Kind::kLabel:
      return StrPrintf("%d", reply.label);
    case Reply::Kind::kOk:
      return reply.text.empty() ? "OK" : "OK " + reply.text;
    case Reply::Kind::kErr:
      return reply.text.empty() ? "ERR" : "ERR " + reply.text;
    case Reply::Kind::kBusy:
      return "BUSY";
    case Reply::Kind::kPong:
      return "PONG";
    case Reply::Kind::kJson:
      return reply.text;
  }
  return "ERR";
}

Reply ParseReply(const std::string& line) {
  if (line == "BUSY") return Reply::Busy();
  if (line == "PONG") return Reply::Pong();
  if (line == "OK") return Reply::Ok("");
  if (line.rfind("OK ", 0) == 0) return Reply::Ok(line.substr(3));
  if (line == "ERR") return Reply::Err("");
  if (line.rfind("ERR ", 0) == 0) return Reply::Err(line.substr(4));
  if (!line.empty() && line.front() == '{') return Reply::Json(line);
  if (!line.empty()) {
    char* end = nullptr;
    const long long v = std::strtoll(line.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && v >= INT32_MIN && v <= INT32_MAX) {
      return Reply::Label(static_cast<int32_t>(v));
    }
  }
  // Total: anything unrecognized classifies as an error reply carrying the
  // raw line, so clients never have to special-case garbage.
  return Reply::Err(line);
}

Result<Tuple> ParseRecordLine(const std::string& line, const Schema& schema) {
  return ParseRecordFields(line, schema, /*labeled=*/false);
}

Result<Tuple> ParseLabeledRecordLine(const std::string& line,
                                     const Schema& schema) {
  return ParseRecordFields(line, schema, /*labeled=*/true);
}

std::vector<std::string> FormatRecordLines(const Schema& schema,
                                           const std::vector<Tuple>& tuples) {
  std::vector<std::string> lines;
  lines.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    lines.push_back(FormatFields(schema, t, /*labeled=*/false));
  }
  return lines;
}

std::vector<std::string> FormatLabeledRecordLines(
    const Schema& schema, const std::vector<Tuple>& tuples) {
  std::vector<std::string> lines;
  lines.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    lines.push_back(FormatFields(schema, t, /*labeled=*/true));
  }
  return lines;
}

}  // namespace boat::serve
