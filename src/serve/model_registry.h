// ModelRegistry: the serving subsystem's hot-swappable model slot.
//
// A ServableModel is an immutable (Schema, CompiledEnsemble, fingerprint)
// triple. The registry publishes the active model behind a shared_ptr: every
// scoring batch takes one Snapshot() and scores the whole batch against it,
// so a concurrent LoadAndSwap (RELOAD admin command or SIGHUP) never mutates
// anything a batch can see — readers that grabbed the old model finish on
// the old model, readers that snapshot afterwards see the new one, and the
// old model is freed when its last in-flight batch drops the reference
// (RCU-style reclamation via shared_ptr refcounts). No request is ever
// dropped or scored against a half-loaded model.
//
// Two servable backends share this type: a single compiled tree (the
// classic SaveClassifier model, a one-member CompiledEnsemble with zero vote
// overhead) and a bagged bootstrap ensemble (a SaveEnsemble directory,
// served by majority vote). A registry slot holds either; per-model routing
// over many registries is the FleetRegistry's job (serve/fleet.h).
//
// Concurrency invariants are compile-time-checked (common/sync.h): the
// active slot is guarded by mu_, and the only lock-free member is the
// reload counter. See DESIGN.md §11 for the full capability map.

#ifndef BOAT_SERVE_MODEL_REGISTRY_H_
#define BOAT_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sync.h"
#include "storage/schema.h"
#include "tree/decision_tree.h"
#include "tree/ensemble.h"

namespace boat::serve {

/// \brief An immutable, ready-to-score model: the schema it validates
/// requests against, the compiled inference layout, and a stable
/// fingerprint (FNV-1a over the serialized tree(s), mixed with the schema
/// fingerprint) that STATS exposes so operators can tell which model
/// revision is live.
struct ServableModel {
  Schema schema;
  CompiledEnsemble compiled;
  uint64_t fingerprint;
  std::string source_dir;  ///< model directory, or "" for in-process installs
  size_t tree_nodes;       ///< total nodes across ensemble members
  bool ensemble_backend;   ///< true when built from >1 bootstrap member

  /// \brief Single-tree backend (classic SaveClassifier model).
  ServableModel(const DecisionTree& tree, std::string dir);
  /// \brief Bagged-ensemble backend over `members` (non-empty, one schema).
  ServableModel(const std::vector<DecisionTree>& members, std::string dir);
};

/// \brief Thread-safe holder of the active ServableModel.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// \brief The active model (never null after the first Install/Load,
  /// until an Evict). Callers keep the shared_ptr for the duration of one
  /// batch.
  std::shared_ptr<const ServableModel> Snapshot() const BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return active_;
  }

  /// \brief Publishes `model` as the active model (atomic swap).
  void Install(std::shared_ptr<const ServableModel> model)
      BOAT_EXCLUDES(mu_);

  /// \brief Loads a SaveClassifier directory (with the named split
  /// selector: gini|entropy|quest) and publishes it. On any error the
  /// previously active model stays in place.
  Status LoadAndSwap(const std::string& dir, const std::string& selector)
      BOAT_EXCLUDES(mu_);

  /// \brief Loads a SaveEnsemble directory and publishes it as a bagged
  /// majority-vote backend. On any error the previously active model stays
  /// in place.
  Status LoadAndSwapEnsemble(const std::string& dir) BOAT_EXCLUDES(mu_);

  /// \brief Drops the active model (fleet eviction). In-flight snapshots
  /// keep scoring against their reference; later snapshots see null and the
  /// server answers per-line errors until a reload re-populates the slot.
  /// Not counted as a reload.
  void Evict() BOAT_EXCLUDES(mu_);

  /// \brief Number of successful Install/LoadAndSwap calls after the first.
  int64_t reload_count() const {
    return reloads_.load(std::memory_order_relaxed);
  }

  /// \brief Directory of the most recent successful LoadAndSwap ("" if the
  /// active model was installed in-process). Used by boatd's SIGHUP.
  std::string last_dir() const BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return active_ != nullptr ? active_->source_dir : "";
  }

 private:
  mutable Mutex mu_;
  /// The RCU publish point: swapped only under mu_; readers copy the
  /// shared_ptr under mu_ and then use the (immutable) model lock-free.
  std::shared_ptr<const ServableModel> active_ BOAT_GUARDED_BY(mu_);
  /// Relaxed is correct: a monotonic counter read only for STATS display;
  /// no reader orders other memory against it.
  std::atomic<int64_t> reloads_{0};
};

/// \brief Builds a ServableModel by loading a SaveClassifier directory.
Result<std::shared_ptr<const ServableModel>> LoadServableModel(
    const std::string& dir, const std::string& selector);

/// \brief Builds a ServableModel by loading a SaveEnsemble directory.
Result<std::shared_ptr<const ServableModel>> LoadServableEnsemble(
    const std::string& dir);

}  // namespace boat::serve

#endif  // BOAT_SERVE_MODEL_REGISTRY_H_
