#include "serve/model_registry.h"

#include <utility>

#include "boat/persistence.h"
#include "boat/session.h"
#include "tree/serialize.h"

namespace boat::serve {

namespace {

uint64_t Fnv1a64(const std::string& bytes, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Fingerprint of an ensemble: the schema fingerprint folded through every
/// member's serialized form in member order. A single-member ensemble hashes
/// exactly like the single-tree constructor, so the two backends agree on
/// fingerprints for the same one tree.
uint64_t EnsembleFingerprint(const std::vector<DecisionTree>& members) {
  uint64_t h = members.front().schema().Fingerprint();
  for (const DecisionTree& member : members) {
    h = Fnv1a64(SerializeTree(member), h);
  }
  return h;
}

}  // namespace

ServableModel::ServableModel(const DecisionTree& tree, std::string dir)
    : schema(tree.schema()),
      compiled(tree),
      fingerprint(Fnv1a64(SerializeTree(tree), tree.schema().Fingerprint())),
      source_dir(std::move(dir)),
      tree_nodes(tree.num_nodes()),
      ensemble_backend(false) {}

ServableModel::ServableModel(const std::vector<DecisionTree>& members,
                             std::string dir)
    : schema(members.front().schema()),
      compiled(members),
      fingerprint(EnsembleFingerprint(members)),
      source_dir(std::move(dir)),
      tree_nodes(compiled.total_nodes()),
      ensemble_backend(members.size() > 1) {}

void ModelRegistry::Install(std::shared_ptr<const ServableModel> model) {
  MutexLock lock(mu_);
  if (active_ != nullptr) reloads_.fetch_add(1, std::memory_order_relaxed);
  active_ = std::move(model);
}

Status ModelRegistry::LoadAndSwap(const std::string& dir,
                                  const std::string& selector) {
  BOAT_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> model,
                        LoadServableModel(dir, selector));
  Install(std::move(model));
  return Status::OK();
}

Status ModelRegistry::LoadAndSwapEnsemble(const std::string& dir) {
  BOAT_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> model,
                        LoadServableEnsemble(dir));
  Install(std::move(model));
  return Status::OK();
}

void ModelRegistry::Evict() {
  MutexLock lock(mu_);
  active_.reset();
}

Result<std::shared_ptr<const ServableModel>> LoadServableModel(
    const std::string& dir, const std::string& selector) {
  // The session (and its selector) only has to outlive this scope: once the
  // tree is compiled the ServableModel holds no reference to either.
  auto session = Session::Open(dir, selector);
  if (!session.ok()) return session.status();
  return std::make_shared<const ServableModel>((*session)->tree(), dir);
}

Result<std::shared_ptr<const ServableModel>> LoadServableEnsemble(
    const std::string& dir) {
  BOAT_ASSIGN_OR_RETURN(LoadedEnsemble loaded, LoadEnsemble(dir));
  return std::make_shared<const ServableModel>(loaded.members, dir);
}

}  // namespace boat::serve
