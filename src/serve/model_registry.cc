#include "serve/model_registry.h"

#include <utility>

#include "boat/session.h"
#include "tree/serialize.h"

namespace boat::serve {

namespace {

uint64_t Fnv1a64(const std::string& bytes, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ServableModel::ServableModel(const DecisionTree& tree, std::string dir)
    : schema(tree.schema()),
      compiled(tree),
      fingerprint(Fnv1a64(SerializeTree(tree), tree.schema().Fingerprint())),
      source_dir(std::move(dir)),
      tree_nodes(tree.num_nodes()) {}

void ModelRegistry::Install(std::shared_ptr<const ServableModel> model) {
  MutexLock lock(mu_);
  if (active_ != nullptr) reloads_.fetch_add(1, std::memory_order_relaxed);
  active_ = std::move(model);
}

Status ModelRegistry::LoadAndSwap(const std::string& dir,
                                  const std::string& selector) {
  BOAT_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> model,
                        LoadServableModel(dir, selector));
  Install(std::move(model));
  return Status::OK();
}

Result<std::shared_ptr<const ServableModel>> LoadServableModel(
    const std::string& dir, const std::string& selector) {
  // The session (and its selector) only has to outlive this scope: once the
  // tree is compiled the ServableModel holds no reference to either.
  auto session = Session::Open(dir, selector);
  if (!session.ok()) return session.status();
  return std::make_shared<const ServableModel>((*session)->tree(), dir);
}

}  // namespace boat::serve
