// BoatServer: a micro-batching TCP model server over the CompiledEnsemble
// batch-inference path, serving one model or a whole named fleet.
//
// Architecture (see DESIGN.md §8 and §12):
//   * one accept thread; one handler thread per connection (bounded by
//     max_connections — excess connections get one BUSY line and a close);
//   * handlers parse newline-delimited wire requests (serve/wire.h),
//     resolve the target model from the v3 `@<id>` routing prefix (absent =
//     the default model), validate records against that model's schema, and
//     submit accepted records to the model's *lane* — a per-model bounded
//     admission queue (common/bounded_queue.h). A full lane yields an
//     immediate per-line BUSY reply — backpressure, not unbounded
//     buffering, and one model's saturation never consumes another model's
//     admission budget;
//   * scoring_threads batch workers are shared across the fleet: each
//     worker round-robins over the lanes from its own starting offset
//     (fairness between models), claims the first lane with work, and
//     gathers a micro-batch confined to that lane: bulk-drain everything
//     already queued, then alternate yield/drain while the handlers keep
//     producing (blocking, bounded by linger_us, only when a single record
//     is in hand). The whole batch is scored with one
//     CompiledEnsemble::Predict call against one snapshot of that lane's
//     ModelRegistry — batches never mix models, so hot reload stays atomic
//     per batch and per model;
//   * replies are written strictly in request order per connection;
//     handlers pipeline up to an internal reply window before waiting.
//
// Shutdown() (SIGTERM in boatd) is a graceful drain: stop accepting,
// half-close every connection's read side (handlers finish replying to
// everything already received), close every lane, join the workers. No
// admitted request is dropped. Concurrent Shutdown calls (including the
// destructor racing an explicit call) serialize on lifecycle_mu_: every
// caller blocks until the drain is complete.
//
// Concurrency invariants are compile-time-checked via the annotated
// primitives in common/sync.h; the full capability map (each mutex -> the
// fields it guards -> the functions that acquire it) is in DESIGN.md §11.

#ifndef BOAT_SERVE_SERVER_H_
#define BOAT_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/histogram.h"
#include "common/status.h"
#include "common/sync.h"
#include "serve/fleet.h"
#include "serve/model_registry.h"
#include "serve/trainer.h"
#include "storage/tuple.h"

namespace boat::serve {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (see port()).
  int port = 0;
  /// Number of micro-batch scoring worker threads (shared by all models).
  int scoring_threads = 1;
  /// Maximum records per micro-batch.
  int max_batch = 2048;
  /// Upper bound on the time a worker spends gathering one micro-batch, in
  /// microseconds. A worker first bulk-drains everything already queued and
  /// keeps draining while producers make progress; it only sleeps (within
  /// this bound) when exactly one record is in hand and the lane is empty,
  /// so a saturated pipeline never waits out the linger.
  int64_t linger_us = 1000;
  /// Per-lane admission high-water mark; a full lane replies BUSY.
  size_t queue_capacity = 8192;
  /// Request lines longer than this are rejected with ERR.
  size_t max_line_bytes = 64 * 1024;
  /// Connection cap; excess accepts receive one BUSY line and are closed.
  int max_connections = 256;
  /// Split-selector name RELOAD passes to LoadClassifier (fleet entries may
  /// carry their own; this is the single-model default).
  std::string selector = "gini";
  /// INGEST/DELETE chunks larger than this are rejected (their payload is
  /// still consumed, so the protocol stays in sync).
  size_t max_chunk_records = 100000;
};

namespace internal {

/// \brief Counts outstanding requests of one reply window; the connection
/// handler waits until every scored label has been written to its slot.
class WaitGroup {
 public:
  void Add(size_t n) BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    pending_ += n;
  }
  /// \brief Marks `n` requests complete. Notifies under the lock so a
  /// waiter can never return (and destroy this WaitGroup) while the
  /// notification is still in flight.
  void Done(size_t n = 1) BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    pending_ -= n;
    if (pending_ == 0) cv_.NotifyAll();
  }
  void Wait() BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cv_.Wait(lock, [&] {
      mu_.AssertHeld();
      return pending_ == 0;
    });
  }

 private:
  Mutex mu_;
  CondVar cv_;
  size_t pending_ BOAT_GUARDED_BY(mu_) = 0;
};

/// \brief One admitted record: the parsed tuple, the label slot the scoring
/// worker writes, and the window's wait group.
struct Request {
  Tuple tuple;
  int32_t* out = nullptr;
  WaitGroup* wg = nullptr;
  std::chrono::steady_clock::time_point admitted;
};

}  // namespace internal

class BoatServer {
 public:
  /// \brief Single-model server (wire v2 compatible; v3 lines may address
  /// the model as `@default`). `registry` must hold an active model before
  /// Start() and must outlive the server. `trainer`, when non-null, enables
  /// the streaming INGEST/DELETE/RETRAIN verbs (it must be started and must
  /// outlive the server); when null those verbs reply ERR.
  BoatServer(ModelRegistry* registry, ServerOptions options,
             Trainer* trainer = nullptr);

  /// \brief Fleet server: one lane per fleet entry, in fleet order (the
  /// first entry is the default model for unrouted lines). The fleet must
  /// be fully populated before construction — the server captures the entry
  /// list here — and every entry must hold an active model before Start().
  /// `fleet` must outlive the server.
  BoatServer(FleetRegistry* fleet, ServerOptions options);

  ~BoatServer();

  BoatServer(const BoatServer&) = delete;
  BoatServer& operator=(const BoatServer&) = delete;

  /// \brief Binds, listens, and spawns the accept and scoring threads.
  Status Start() BOAT_EXCLUDES(lifecycle_mu_);

  /// \brief The bound port (useful with options.port == 0). Written exactly
  /// once inside Start() before it returns; callers may only read it after
  /// Start() succeeded, which orders the read on every caller thread.
  int port() const { return port_; }

  /// \brief Graceful drain; idempotent and safe to call concurrently (every
  /// caller returns only once the drain is complete). Also run by the
  /// destructor.
  void Shutdown() BOAT_EXCLUDES(lifecycle_mu_);

  /// \brief The STATS admin reply: one JSON object with request/batch
  /// counters, the batch-size histogram, latency quantiles, total queue
  /// depth, reload count, the default model's fingerprint, and (fleet) a
  /// per-model "models" section.
  std::string StatsJson() const;

  /// \brief Test hook: while paused, scoring workers do not pop any lane,
  /// so the queues fill deterministically (backpressure tests). Never used
  /// by boatd.
  void SetScoringPausedForTest(bool paused) BOAT_EXCLUDES(pause_mu_);

 private:
  /// One served model: its admission queue plus routing metadata and
  /// per-model counters. Built in the constructors and immutable afterwards
  /// (the vector/map are read lock-free by handlers and workers); the
  /// queue and counters are internally synchronized.
  struct Lane {
    explicit Lane(size_t queue_capacity) : queue(queue_capacity) {}

    std::string id;
    ModelRegistry* registry = nullptr;  ///< never null
    Trainer* trainer = nullptr;         ///< null: no streaming ingestion
    bool ensemble = false;  ///< RELOAD loads a SaveEnsemble directory
    std::string selector;   ///< RELOAD selector for tree-backed lanes
    /// Keeps fleet-owned components (registry/trainer) alive for the
    /// server's lifetime; null for the single-model constructor.
    std::shared_ptr<FleetEntry> entry;

    BoundedQueue<internal::Request> queue;

    // Per-model counters for STATS; relaxed (monotonic tallies, no reader
    // orders other memory against them).
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> busy{0};
  };

  struct Conn {
    int fd = -1;
    std::thread thread;
    /// release-store by the handler as its last action; acquire-load by the
    /// reaper/Shutdown so joining implies the handler's writes are visible.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(Conn* conn);
  void ScoringWorker(size_t worker_index);
  /// Joins and closes finished connections.
  void ReapFinishedLocked() BOAT_REQUIRES(conns_mu_);
  /// Resolves a parsed model id ("" = default) to its lane, or null.
  Lane* ResolveLane(const std::string& model_id) const;
  /// One JSON object for `@<id> STATS` and the global "models" section.
  std::string LaneStatsJson(const Lane& lane) const;

  const ServerOptions options_;

  /// The fleet's lanes, in fleet order; lanes_[0] is the default model.
  /// Both containers are built in the constructors and never change, so
  /// handlers and workers read them without a lock.
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::map<std::string, Lane*> lane_by_id_;

  /// Written once by Start() before any server thread exists and reset only
  /// after every thread is joined (Shutdown); the accept loop's unguarded
  /// reads are ordered by thread creation/join, not by a capability.
  int listen_fd_ = -1;
  int port_ = 0;  ///< see port(): write-once inside Start()

  /// Serializes Start/Shutdown and guards the thread handles; never taken
  /// by the server's own threads, so joining under it cannot deadlock.
  Mutex lifecycle_mu_;
  bool shutdown_done_ BOAT_GUARDED_BY(lifecycle_mu_) = false;
  std::thread accept_thread_ BOAT_GUARDED_BY(lifecycle_mu_);
  std::vector<std::thread> workers_ BOAT_GUARDED_BY(lifecycle_mu_);

  /// started_: release-store as Start()'s final action; acquire-load in
  /// Shutdown/StatsJson pairs with it so they observe a fully-built server.
  std::atomic<bool> started_{false};
  /// stopping_: release-store by the first Shutdown; acquire-load in the
  /// accept loop ends it and orders the fd teardown that follows.
  std::atomic<bool> stopping_{false};

  /// Fleet work signal: handlers batch-announce admitted records here and
  /// workers sleep on it when every lane is empty, so idle workers cost
  /// nothing while busy pipelines pay one lock per reply window / batch.
  /// work_pending_ is a *signed* tally: a worker may pop (and account for)
  /// records before the admitting handler's batched publish lands, so the
  /// counter is transiently negative by design — it converges to the true
  /// queued total whenever producers and consumers quiesce.
  Mutex work_mu_;
  CondVar work_cv_;
  int64_t work_pending_ BOAT_GUARDED_BY(work_mu_) = 0;
  bool work_closed_ BOAT_GUARDED_BY(work_mu_) = false;

  Mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_ BOAT_GUARDED_BY(conns_mu_);

  Mutex pause_mu_;
  CondVar pause_cv_;
  bool scoring_paused_ BOAT_GUARDED_BY(pause_mu_) = false;

  // Counters for STATS; relaxed atomics. Invariant for all four: monotonic
  // tallies with no reader ordering other memory against them, so relaxed
  // is the correct (and strongest useful) order.
  std::atomic<uint64_t> requests_{0};  ///< data-record lines admitted or not
  std::atomic<uint64_t> errors_{0};    ///< per-line ERR replies
  std::atomic<uint64_t> busy_{0};      ///< per-line BUSY replies
  std::atomic<uint64_t> batches_{0};
  Log2Histogram batch_size_hist_;  ///< lock-free (see histogram.h)
  Log2Histogram latency_us_hist_;  ///< lock-free (see histogram.h)
};

}  // namespace boat::serve

#endif  // BOAT_SERVE_SERVER_H_
