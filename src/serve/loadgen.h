// Load generator for BoatServer: drives N concurrent connections over a
// fixed corpus of wire-format record lines, optionally checking every
// reply against precomputed expected labels, and reports client-observed
// throughput and latency quantiles. Used by tools/boat-loadgen.cpp and
// bench/bench_serving.cpp.
//
// Two entry points share one engine: RunLoadGen drives a single (default)
// model with plain v2 lines; RunRoutedLoadGen interleaves per-record routed
// traffic (`@<id> <record>`) across a fleet of named models round-robin and
// reports both the aggregate and a per-model breakdown (each model's
// throughput uses the shared wall clock, so the per-model rps sum to the
// aggregate).

#ifndef BOAT_SERVE_LOADGEN_H_
#define BOAT_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "boat/session.h"
#include "common/result.h"
#include "serve/wire.h"

namespace boat::serve {

struct LoadGenOptions {
  /// Server port on 127.0.0.1.
  int port = 0;
  /// Number of concurrent client connections.
  int connections = 1;
  /// Passes each connection makes over the corpus.
  int repeat = 1;
  /// Maximum pipelined requests per connection before reading replies.
  /// Must stay below the server's internal reply window (1024).
  int window = 256;
};

/// \brief Per-model slice of a routed run (same counters as the aggregate).
struct ModelLoadGenStats {
  std::string model_id;  ///< "" = the default model (unrouted lines)
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t mismatches = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  /// Replies per second against the run's shared wall clock.
  double throughput_rps = 0;
  uint64_t latency_p50_us = 0;
  uint64_t latency_p99_us = 0;
};

struct LoadGenReport {
  uint64_t sent = 0;
  uint64_t ok = 0;          ///< numeric replies matching the expected label
  uint64_t mismatches = 0;  ///< numeric replies that contradict expectations
  uint64_t busy = 0;
  uint64_t errors = 0;  ///< ERR replies and transport-level failures
  double wall_seconds = 0;
  double throughput_rps = 0;
  /// Client-observed per-request latency (send to reply), microseconds.
  uint64_t latency_p50_us = 0;
  uint64_t latency_p99_us = 0;
  /// Routed runs only: one entry per model, in corpus order. Empty for
  /// RunLoadGen.
  std::vector<ModelLoadGenStats> per_model;
};

/// \brief One model's share of a routed run: the id it is addressed by on
/// the wire ("" sends unrouted v2 lines, i.e. the server's default model),
/// its record corpus, and optionally the labels every reply must match.
struct RoutedModelCorpus {
  std::string model_id;
  std::vector<std::string> record_lines;
  /// When non-null, must be aligned with record_lines; label replies for
  /// this model are checked against it.
  const std::vector<int32_t>* expected_labels = nullptr;
};

/// \brief Runs the load: every connection sends `record_lines` (repeat
/// times) with pipelining and validates replies in order. When
/// `expected_labels` is non-null it must be aligned with `record_lines`,
/// and every label reply is checked against it; when null, any numeric
/// reply counts as ok. Returns an error if a connection cannot be
/// established or is dropped mid-run.
Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options,
                                 const std::vector<std::string>& record_lines,
                                 const std::vector<int32_t>* expected_labels);

/// \brief Routed fleet run: builds one interleaved corpus that cycles the
/// models round-robin record by record (model m's record j sits at combined
/// position j*k + m, wrapping shorter corpora), prefixes each line with the
/// model's `@<id>` route, and drives it exactly like RunLoadGen. The report
/// carries the aggregate plus a per-model breakdown.
Result<LoadGenReport> RunRoutedLoadGen(
    const LoadGenOptions& options,
    const std::vector<RoutedModelCorpus>& models);

/// \brief Streams one labeled chunk into a running server on 127.0.0.1:
/// sends `INGEST <n>` (kInsert) or `DELETE <n>` (kDelete) followed by the
/// payload lines (FormatLabeledRecordLines output), optionally a RETRAIN
/// barrier, then half-closes and reads every reply. A non-empty `model_id`
/// routes the chunk (and the RETRAIN) to that model with the v3 `@<id>`
/// prefix. Returns one parsed Reply per command sent (the chunk reply, then
/// the RETRAIN reply when requested); transport failures come back as a
/// Status.
Result<std::vector<Reply>> SendChunk(
    int port, ChunkOp op, const std::vector<std::string>& payload_lines,
    bool retrain, const std::string& model_id = "");

}  // namespace boat::serve

#endif  // BOAT_SERVE_LOADGEN_H_
