#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "common/histogram.h"
#include "common/str_util.h"

namespace boat::serve {

namespace {

struct ConnStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t mismatches = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  Log2Histogram latency_us;
  std::string failure;  // non-empty on transport failure
};

bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool LooksNumeric(const std::string& reply) {
  if (reply.empty()) return false;
  const char c = reply[0];
  return c == '-' || (c >= '0' && c <= '9');
}

void RunConnection(const LoadGenOptions& options,
                   const std::vector<std::string>& record_lines,
                   const std::vector<int32_t>* expected_labels,
                   ConnStats* stats) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    stats->failure = StrPrintf("socket: %s", std::strerror(errno));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    stats->failure =
        StrPrintf("connect port %d: %s", options.port, std::strerror(errno));
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const uint64_t total =
      static_cast<uint64_t>(record_lines.size()) *
      static_cast<uint64_t>(options.repeat > 0 ? options.repeat : 1);
  const size_t window =
      options.window > 0 ? static_cast<size_t>(options.window) : 1;
  const size_t corpus = record_lines.size();

  uint64_t next_to_send = 0;
  uint64_t next_reply = 0;
  std::deque<std::chrono::steady_clock::time_point> in_flight;
  std::string recv_buf;
  char chunk[16 * 1024];
  bool write_closed = false;

  auto expected_for = [&](uint64_t reply_index) -> const int32_t* {
    if (expected_labels == nullptr) return nullptr;
    return &(*expected_labels)[static_cast<size_t>(reply_index % corpus)];
  };

  while (next_reply < total) {
    // Fill the pipeline window, batching lines into one send.
    if (next_to_send < total && in_flight.size() < window) {
      std::string out;
      // determinism-lint: allow(client-side latency measurement; replies are label-checked, not time-dependent)
      const auto send_time = std::chrono::steady_clock::now();
      while (next_to_send < total && in_flight.size() < window) {
        out += record_lines[static_cast<size_t>(next_to_send % corpus)];
        out += '\n';
        in_flight.push_back(send_time);
        ++next_to_send;
        ++stats->sent;
      }
      if (!SendAll(fd, out.data(), out.size())) {
        stats->failure = StrPrintf("send: %s", std::strerror(errno));
        break;
      }
      if (next_to_send == total) {
        // Everything is written; half-close so the server replies to the
        // tail and then closes cleanly.
        ::shutdown(fd, SHUT_WR);
        write_closed = true;
      }
    }

    // Read replies until the window has room (or, at the end, until every
    // reply arrived).
    while (next_reply < total &&
           (in_flight.size() >= window || write_closed ||
            recv_buf.find('\n') != std::string::npos)) {
      size_t nl;
      while (next_reply < total &&
             (nl = recv_buf.find('\n')) != std::string::npos) {
        std::string reply = recv_buf.substr(0, nl);
        recv_buf.erase(0, nl + 1);
        if (!reply.empty() && reply.back() == '\r') reply.pop_back();

        // determinism-lint: allow(client-side latency measurement; replies are label-checked, not time-dependent)
        const auto now = std::chrono::steady_clock::now();
        if (!in_flight.empty()) {
          const auto us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - in_flight.front())
                  .count();
          stats->latency_us.Record(us > 0 ? static_cast<uint64_t>(us) : 0);
          in_flight.pop_front();
        }
        if (reply == "BUSY") {
          ++stats->busy;
        } else if (LooksNumeric(reply)) {
          const int32_t* want = expected_for(next_reply);
          if (want == nullptr || reply == StrPrintf("%d", *want)) {
            ++stats->ok;
          } else {
            ++stats->mismatches;
          }
        } else {
          ++stats->errors;
        }
        ++next_reply;
      }
      if (next_reply >= total) break;
      if (recv_buf.find('\n') != std::string::npos) continue;
      if (in_flight.size() < window && !write_closed) break;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        stats->failure = StrPrintf("recv: %s", std::strerror(errno));
        break;
      }
      if (n == 0) {
        stats->failure = StrPrintf(
            "server closed with %llu of %llu replies outstanding",
            static_cast<unsigned long long>(total - next_reply),
            static_cast<unsigned long long>(total));
        break;
      }
      recv_buf.append(chunk, static_cast<size_t>(n));
    }
    if (!stats->failure.empty()) break;
  }
  ::close(fd);
}

}  // namespace

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options,
                                 const std::vector<std::string>& record_lines,
                                 const std::vector<int32_t>* expected_labels) {
  if (record_lines.empty()) {
    return Status::InvalidArgument("loadgen: empty corpus");
  }
  if (expected_labels != nullptr &&
      expected_labels->size() != record_lines.size()) {
    return Status::InvalidArgument(StrPrintf(
        "loadgen: %zu expected labels for %zu records",
        expected_labels->size(), record_lines.size()));
  }
  const int conns = options.connections > 0 ? options.connections : 1;
  std::vector<ConnStats> stats(static_cast<size_t>(conns));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(conns));

  // determinism-lint: allow(wall-clock bracket around the run measures throughput only)
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < conns; ++i) {
    threads.emplace_back(RunConnection, std::cref(options),
                         std::cref(record_lines), expected_labels,
                         &stats[static_cast<size_t>(i)]);
  }
  for (std::thread& t : threads) t.join();
  // determinism-lint: allow(wall-clock bracket around the run measures throughput only)
  const auto end = std::chrono::steady_clock::now();

  LoadGenReport report;
  Log2Histogram merged;
  for (const ConnStats& s : stats) {
    if (!s.failure.empty()) {
      return Status::IOError("loadgen connection failed: " + s.failure);
    }
    report.sent += s.sent;
    report.ok += s.ok;
    report.mismatches += s.mismatches;
    report.busy += s.busy;
    report.errors += s.errors;
    merged.MergeFrom(s.latency_us);
  }
  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  const uint64_t replies =
      report.ok + report.mismatches + report.busy + report.errors;
  report.throughput_rps =
      report.wall_seconds > 0
          ? static_cast<double>(replies) / report.wall_seconds
          : 0;
  report.latency_p50_us = merged.ValueAtQuantile(0.5);
  report.latency_p99_us = merged.ValueAtQuantile(0.99);
  return report;
}

}  // namespace boat::serve
