#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <utility>

#include "common/histogram.h"
#include "common/str_util.h"
#include "serve/wire.h"

namespace boat::serve {

namespace {

struct ConnStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t mismatches = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  Log2Histogram latency_us;
  std::string failure;  // non-empty on transport failure
};

bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Drives one connection over the (possibly routed) combined corpus.
/// `model_of_line`, when non-null, maps every corpus position to its model
/// index, and per-model counters are recorded into `per_model` (sized to the
/// model count) alongside the aggregate `stats`.
void RunConnection(const LoadGenOptions& options,
                   const std::vector<std::string>& record_lines,
                   const std::vector<int32_t>* expected_labels,
                   const std::vector<size_t>* model_of_line,
                   std::vector<ConnStats>* per_model, ConnStats* stats) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    stats->failure = StrPrintf("socket: %s", std::strerror(errno));
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    stats->failure =
        StrPrintf("connect port %d: %s", options.port, std::strerror(errno));
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const uint64_t total =
      static_cast<uint64_t>(record_lines.size()) *
      static_cast<uint64_t>(options.repeat > 0 ? options.repeat : 1);
  const size_t window =
      options.window > 0 ? static_cast<size_t>(options.window) : 1;
  const size_t corpus = record_lines.size();

  uint64_t next_to_send = 0;
  uint64_t next_reply = 0;
  std::deque<std::chrono::steady_clock::time_point> in_flight;
  std::string recv_buf;
  char chunk[16 * 1024];
  bool write_closed = false;

  auto expected_for = [&](uint64_t reply_index) -> const int32_t* {
    if (expected_labels == nullptr) return nullptr;
    return &(*expected_labels)[static_cast<size_t>(reply_index % corpus)];
  };
  auto model_stats_for = [&](uint64_t index) -> ConnStats* {
    if (model_of_line == nullptr) return nullptr;
    return &(*per_model)[(*model_of_line)[static_cast<size_t>(index %
                                                              corpus)]];
  };

  while (next_reply < total) {
    // Fill the pipeline window, batching lines into one send.
    if (next_to_send < total && in_flight.size() < window) {
      std::string out;
      // determinism-lint: allow(client-side latency measurement; replies are label-checked, not time-dependent)
      const auto send_time = std::chrono::steady_clock::now();
      while (next_to_send < total && in_flight.size() < window) {
        out += record_lines[static_cast<size_t>(next_to_send % corpus)];
        out += '\n';
        in_flight.push_back(send_time);
        if (ConnStats* m = model_stats_for(next_to_send)) ++m->sent;
        ++next_to_send;
        ++stats->sent;
      }
      if (!SendAll(fd, out.data(), out.size())) {
        stats->failure = StrPrintf("send: %s", std::strerror(errno));
        break;
      }
      if (next_to_send == total) {
        // Everything is written; half-close so the server replies to the
        // tail and then closes cleanly.
        ::shutdown(fd, SHUT_WR);
        write_closed = true;
      }
    }

    // Read replies until the window has room (or, at the end, until every
    // reply arrived).
    while (next_reply < total &&
           (in_flight.size() >= window || write_closed ||
            recv_buf.find('\n') != std::string::npos)) {
      size_t nl;
      while (next_reply < total &&
             (nl = recv_buf.find('\n')) != std::string::npos) {
        std::string reply = recv_buf.substr(0, nl);
        recv_buf.erase(0, nl + 1);
        if (!reply.empty() && reply.back() == '\r') reply.pop_back();

        // determinism-lint: allow(client-side latency measurement; replies are label-checked, not time-dependent)
        const auto now = std::chrono::steady_clock::now();
        ConnStats* model = model_stats_for(next_reply);
        if (!in_flight.empty()) {
          const auto us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - in_flight.front())
                  .count();
          const uint64_t clamped = us > 0 ? static_cast<uint64_t>(us) : 0;
          stats->latency_us.Record(clamped);
          if (model != nullptr) model->latency_us.Record(clamped);
          in_flight.pop_front();
        }
        const Reply parsed = ParseReply(reply);
        if (parsed.kind == Reply::Kind::kBusy) {
          ++stats->busy;
          if (model != nullptr) ++model->busy;
        } else if (parsed.kind == Reply::Kind::kLabel) {
          const int32_t* want = expected_for(next_reply);
          if (want == nullptr || parsed.label == *want) {
            ++stats->ok;
            if (model != nullptr) ++model->ok;
          } else {
            ++stats->mismatches;
            if (model != nullptr) ++model->mismatches;
          }
        } else {
          ++stats->errors;
          if (model != nullptr) ++model->errors;
        }
        ++next_reply;
      }
      if (next_reply >= total) break;
      if (recv_buf.find('\n') != std::string::npos) continue;
      if (in_flight.size() < window && !write_closed) break;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        stats->failure = StrPrintf("recv: %s", std::strerror(errno));
        break;
      }
      if (n == 0) {
        stats->failure = StrPrintf(
            "server closed with %llu of %llu replies outstanding",
            static_cast<unsigned long long>(total - next_reply),
            static_cast<unsigned long long>(total));
        break;
      }
      recv_buf.append(chunk, static_cast<size_t>(n));
    }
    if (!stats->failure.empty()) break;
  }
  ::close(fd);
}

/// Shared engine behind RunLoadGen/RunRoutedLoadGen. `model_of_line` and
/// `model_ids` are both null/empty for an unrouted run.
Result<LoadGenReport> RunCombined(const LoadGenOptions& options,
                                  const std::vector<std::string>& record_lines,
                                  const std::vector<int32_t>* expected_labels,
                                  const std::vector<size_t>* model_of_line,
                                  const std::vector<std::string>& model_ids) {
  if (record_lines.empty()) {
    return Status::InvalidArgument("loadgen: empty corpus");
  }
  if (expected_labels != nullptr &&
      expected_labels->size() != record_lines.size()) {
    return Status::InvalidArgument(StrPrintf(
        "loadgen: %zu expected labels for %zu records",
        expected_labels->size(), record_lines.size()));
  }
  const int conns = options.connections > 0 ? options.connections : 1;
  const size_t model_count = model_ids.size();
  std::vector<ConnStats> stats(static_cast<size_t>(conns));
  // ConnStats is non-copyable (atomic histogram buckets), so build each
  // per-connection slice in place instead of fill-constructing.
  std::vector<std::vector<ConnStats>> per_model_stats;
  per_model_stats.reserve(static_cast<size_t>(conns));
  for (int i = 0; i < conns; ++i) per_model_stats.emplace_back(model_count);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(conns));

  // determinism-lint: allow(wall-clock bracket around the run measures throughput only)
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < conns; ++i) {
    threads.emplace_back(
        RunConnection, std::cref(options), std::cref(record_lines),
        expected_labels, model_of_line,
        &per_model_stats[static_cast<size_t>(i)],
        &stats[static_cast<size_t>(i)]);
  }
  for (std::thread& t : threads) t.join();
  // determinism-lint: allow(wall-clock bracket around the run measures throughput only)
  const auto end = std::chrono::steady_clock::now();

  LoadGenReport report;
  Log2Histogram merged;
  for (const ConnStats& s : stats) {
    if (!s.failure.empty()) {
      return Status::IOError("loadgen connection failed: " + s.failure);
    }
    report.sent += s.sent;
    report.ok += s.ok;
    report.mismatches += s.mismatches;
    report.busy += s.busy;
    report.errors += s.errors;
    merged.MergeFrom(s.latency_us);
  }
  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  const uint64_t replies =
      report.ok + report.mismatches + report.busy + report.errors;
  report.throughput_rps =
      report.wall_seconds > 0
          ? static_cast<double>(replies) / report.wall_seconds
          : 0;
  report.latency_p50_us = merged.ValueAtQuantile(0.5);
  report.latency_p99_us = merged.ValueAtQuantile(0.99);

  for (size_t m = 0; m < model_count; ++m) {
    ModelLoadGenStats slice;
    slice.model_id = model_ids[m];
    Log2Histogram model_hist;
    for (const std::vector<ConnStats>& conn : per_model_stats) {
      slice.sent += conn[m].sent;
      slice.ok += conn[m].ok;
      slice.mismatches += conn[m].mismatches;
      slice.busy += conn[m].busy;
      slice.errors += conn[m].errors;
      model_hist.MergeFrom(conn[m].latency_us);
    }
    const uint64_t model_replies =
        slice.ok + slice.mismatches + slice.busy + slice.errors;
    // Shared wall clock: the per-model rps sum to the aggregate.
    slice.throughput_rps =
        report.wall_seconds > 0
            ? static_cast<double>(model_replies) / report.wall_seconds
            : 0;
    slice.latency_p50_us = model_hist.ValueAtQuantile(0.5);
    slice.latency_p99_us = model_hist.ValueAtQuantile(0.99);
    report.per_model.push_back(std::move(slice));
  }
  return report;
}

}  // namespace

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options,
                                 const std::vector<std::string>& record_lines,
                                 const std::vector<int32_t>* expected_labels) {
  return RunCombined(options, record_lines, expected_labels,
                     /*model_of_line=*/nullptr, /*model_ids=*/{});
}

Result<LoadGenReport> RunRoutedLoadGen(
    const LoadGenOptions& options,
    const std::vector<RoutedModelCorpus>& models) {
  if (models.empty()) {
    return Status::InvalidArgument("loadgen: no routed models");
  }
  size_t rounds = 0;
  for (const RoutedModelCorpus& model : models) {
    if (model.record_lines.empty()) {
      return Status::InvalidArgument(
          "loadgen: empty corpus for model '" + model.model_id + "'");
    }
    if (model.expected_labels != nullptr &&
        model.expected_labels->size() != model.record_lines.size()) {
      return Status::InvalidArgument(StrPrintf(
          "loadgen: %zu expected labels for %zu records of model '%s'",
          model.expected_labels->size(), model.record_lines.size(),
          model.model_id.c_str()));
    }
    if (!model.model_id.empty() && !IsValidModelId(model.model_id)) {
      return Status::InvalidArgument("loadgen: invalid model id '" +
                                     model.model_id + "'");
    }
    rounds = std::max(rounds, model.record_lines.size());
  }

  // Interleave round-robin: round j emits one record of every model (model
  // m's record j % len_m), so routed traffic alternates models record by
  // record — the fairness-stressing shape, not model-sized blocks.
  const size_t k = models.size();
  // Labels are checked only when every model supplied expectations; a mixed
  // run (some models unchecked) counts all numeric replies as ok.
  const bool check = std::all_of(
      models.begin(), models.end(),
      [](const RoutedModelCorpus& m) { return m.expected_labels != nullptr; });
  std::vector<std::string> combined;
  std::vector<int32_t> expected;
  std::vector<size_t> model_of_line;
  std::vector<std::string> model_ids;
  combined.reserve(rounds * k);
  if (check) expected.reserve(rounds * k);
  model_of_line.reserve(rounds * k);
  model_ids.reserve(k);
  for (const RoutedModelCorpus& model : models) {
    model_ids.push_back(model.model_id);
  }
  for (size_t j = 0; j < rounds; ++j) {
    for (size_t m = 0; m < k; ++m) {
      const RoutedModelCorpus& model = models[m];
      const size_t idx = j % model.record_lines.size();
      std::string line;
      if (!model.model_id.empty()) {
        line = "@" + model.model_id + " ";
      }
      line += model.record_lines[idx];
      combined.push_back(std::move(line));
      model_of_line.push_back(m);
      if (check) expected.push_back((*model.expected_labels)[idx]);
    }
  }
  return RunCombined(options, combined, check ? &expected : nullptr,
                     &model_of_line, model_ids);
}

Result<std::vector<Reply>> SendChunk(
    int port, ChunkOp op, const std::vector<std::string>& payload_lines,
    bool retrain, const std::string& model_id) {
  if (payload_lines.empty()) {
    return Status::InvalidArgument("SendChunk: empty chunk");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrPrintf("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Status::IOError(
        StrPrintf("connect port %d: %s", port, std::strerror(errno)));
    ::close(fd);
    return s;
  }
  const std::string route = model_id.empty() ? "" : "@" + model_id + " ";
  std::string out = StrPrintf(
      "%s%s %zu\n", route.c_str(),
      op == ChunkOp::kInsert ? "INGEST" : "DELETE", payload_lines.size());
  for (const std::string& line : payload_lines) {
    out += line;
    out += '\n';
  }
  if (retrain) out += route + "RETRAIN\n";
  if (!SendAll(fd, out.data(), out.size())) {
    const Status s =
        Status::IOError(StrPrintf("send: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  // Half-close; the server answers everything received, then closes.
  ::shutdown(fd, SHUT_WR);

  std::string recv_buf;
  char chunk_buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk_buf, sizeof(chunk_buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s =
          Status::IOError(StrPrintf("recv: %s", std::strerror(errno)));
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    recv_buf.append(chunk_buf, static_cast<size_t>(n));
  }
  ::close(fd);

  std::vector<Reply> replies;
  size_t start = 0;
  size_t nl;
  while ((nl = recv_buf.find('\n', start)) != std::string::npos) {
    std::string line = recv_buf.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    replies.push_back(ParseReply(line));
  }
  const size_t want = retrain ? 2 : 1;
  if (replies.size() != want) {
    return Status::IOError(StrPrintf(
        "SendChunk: %zu replies for %zu commands", replies.size(), want));
  }
  return replies;
}

}  // namespace boat::serve
