// Trainer: boatd's background incremental-retrain component.
//
// One Trainer owns a live boat::Session over the daemon's --model directory
// and a single apply thread. Connection handlers Submit() whole chunks
// (parsed INGEST/DELETE payloads) into a bounded queue — never blocking the
// serving path — and the apply thread drains it: each chunk goes through
// Session::Apply (exact incremental InsertChunk/DeleteChunk with
// all-or-nothing rollback), and after every *successful* apply the updated
// tree is recompiled into a fresh ServableModel and hot-swapped into the
// ModelRegistry. In-flight scoring batches finish on their snapshot
// (RCU-style, see model_registry.h), so no request is ever dropped or
// scored against a half-updated model. A failed chunk changes nothing: the
// session rolls back to the last persisted state and the registry keeps
// serving the active model.
//
// Flush() is the RETRAIN barrier: it waits until every chunk submitted
// before the call has been applied (or rejected) and its swap published,
// then reports cumulative applied/failed counts and the live fingerprint.
//
// Threading: Submit/Flush/StatsJson are safe from any handler thread;
// schema() returns a copy captured at Start() and is immutable afterwards.

#ifndef BOAT_SERVE_TRAINER_H_
#define BOAT_SERVE_TRAINER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "boat/session.h"
#include "common/bounded_queue.h"
#include "serve/model_registry.h"

namespace boat::serve {

struct TrainerOptions {
  /// Model directory the session opens, persists to, and rolls back from.
  std::string model_dir;
  /// Split-selector name (must match the persisted model's manifest).
  std::string selector = "gini";
  /// Chunks queued but not yet applied before Submit reports backpressure.
  size_t queue_capacity = 64;
  /// Growth-phase thread budget for incremental retrains (0 = all hardware
  /// cores). Applied to the session after open — loaded models default to 1
  /// because thread count is host-specific and never persisted. Any value
  /// produces the byte-identical model.
  int num_threads = 1;
};

class Trainer {
 public:
  /// \brief `registry` must outlive the trainer. Start() publishes the
  /// initial model into it.
  Trainer(ModelRegistry* registry, TrainerOptions options);
  ~Trainer();

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// \brief Opens the session, installs the initial ServableModel into the
  /// registry, and spawns the apply thread.
  Status Start();

  /// \brief Drains the queue (every queued chunk is still applied), then
  /// joins the apply thread. Idempotent; also run by the destructor.
  void Shutdown();

  /// \brief The training schema, captured at Start(). Stable storage —
  /// handler threads parse chunk payloads against it while the apply
  /// thread mutates the session.
  const Schema& schema() const { return schema_; }

  /// \brief Queues one chunk; returns its sequence number, or nullopt when
  /// the trainer is saturated or not running (callers reply BUSY).
  std::optional<uint64_t> TrySubmit(ChunkOp op, std::vector<Tuple> chunk);

  struct RetrainResult {
    uint64_t applied = 0;      ///< chunks applied since Start
    uint64_t failed = 0;       ///< chunks rejected since Start
    uint64_t fingerprint = 0;  ///< live model fingerprint after the barrier
  };

  /// \brief RETRAIN barrier: blocks until every chunk submitted before this
  /// call has been applied or rejected (and any resulting swap published).
  Result<RetrainResult> Flush();

  /// \brief One JSON object for the STATS reply's "trainer" section.
  std::string StatsJson() const;

 private:
  struct PendingChunk {
    uint64_t seq = 0;
    ChunkOp op = ChunkOp::kInsert;
    std::vector<Tuple> tuples;
  };

  void ApplyLoop();

  ModelRegistry* const registry_;
  const TrainerOptions options_;

  std::unique_ptr<Session> session_;  ///< apply-thread-owned after Start
  Schema schema_;

  BoundedQueue<PendingChunk> queue_;
  std::thread thread_;
  std::atomic<bool> started_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t submitted_ = 0;  ///< seq of the newest accepted chunk
  uint64_t completed_ = 0;  ///< seq of the newest applied/rejected chunk
  uint64_t applied_ = 0;
  uint64_t failed_ = 0;
  std::string last_error_;
};

}  // namespace boat::serve

#endif  // BOAT_SERVE_TRAINER_H_
