// Trainer: boatd's background incremental-retrain component.
//
// One Trainer owns a live boat::Session over the daemon's --model directory
// and a single apply thread. Connection handlers Submit() whole chunks
// (parsed INGEST/DELETE payloads) into a bounded queue — never blocking the
// serving path — and the apply thread drains it: each chunk goes through
// Session::Apply (exact incremental InsertChunk/DeleteChunk with
// all-or-nothing rollback), and after every *successful* apply the updated
// tree is recompiled into a fresh ServableModel and hot-swapped into the
// ModelRegistry. In-flight scoring batches finish on their snapshot
// (RCU-style, see model_registry.h), so no request is ever dropped or
// scored against a half-updated model. A failed chunk changes nothing: the
// session rolls back to the last persisted state and the registry keeps
// serving the active model.
//
// Flush() is the RETRAIN barrier: it waits until every chunk submitted
// before the call has been applied (or rejected) and its swap published,
// then reports cumulative applied/failed counts and the live fingerprint.
//
// Threading: Submit/Flush/StatsJson are safe from any handler thread;
// schema() returns a copy captured at Start() and is immutable afterwards.
// Shutdown is safe to call concurrently (callers serialize on
// lifecycle_mu_ and return only once the apply thread is joined). The
// seq/flush protocol lives entirely under mu_, and the registry-install-
// before-completed ordering in ApplyLoop is what makes a returned Flush
// imply the swap is published — both invariants are stated as capability
// annotations (common/sync.h) and mapped in DESIGN.md §11.

#ifndef BOAT_SERVE_TRAINER_H_
#define BOAT_SERVE_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "boat/session.h"
#include "common/bounded_queue.h"
#include "common/sync.h"
#include "serve/model_registry.h"

namespace boat::serve {

struct TrainerOptions {
  /// Model directory the session opens, persists to, and rolls back from.
  std::string model_dir;
  /// Split-selector name (must match the persisted model's manifest).
  std::string selector = "gini";
  /// Chunks queued but not yet applied before Submit reports backpressure.
  size_t queue_capacity = 64;
  /// Growth-phase thread budget for incremental retrains (0 = all hardware
  /// cores). Applied to the session after open — loaded models default to 1
  /// because thread count is host-specific and never persisted. Any value
  /// produces the byte-identical model.
  int num_threads = 1;
};

class Trainer {
 public:
  /// \brief `registry` must outlive the trainer. Start() publishes the
  /// initial model into it.
  Trainer(ModelRegistry* registry, TrainerOptions options);
  ~Trainer();

  Trainer(const Trainer&) = delete;
  Trainer& operator=(const Trainer&) = delete;

  /// \brief Opens the session, installs the initial ServableModel into the
  /// registry, and spawns the apply thread.
  Status Start() BOAT_EXCLUDES(lifecycle_mu_);

  /// \brief Drains the queue (every queued chunk is still applied), then
  /// joins the apply thread. Idempotent and safe to call concurrently;
  /// every caller returns only once the apply thread is joined. Also run
  /// by the destructor.
  void Shutdown() BOAT_EXCLUDES(lifecycle_mu_);

  /// \brief The training schema, captured at Start(). Stable storage —
  /// handler threads parse chunk payloads against it while the apply
  /// thread mutates the session.
  const Schema& schema() const { return schema_; }

  /// \brief Queues one chunk; returns its sequence number, or nullopt when
  /// the trainer is saturated or not running (callers reply BUSY).
  std::optional<uint64_t> TrySubmit(ChunkOp op, std::vector<Tuple> chunk)
      BOAT_EXCLUDES(mu_);

  struct RetrainResult {
    uint64_t applied = 0;      ///< chunks applied since Start
    uint64_t failed = 0;       ///< chunks rejected since Start
    uint64_t fingerprint = 0;  ///< live model fingerprint after the barrier
  };

  /// \brief RETRAIN barrier: blocks until every chunk submitted before this
  /// call has been applied or rejected (and any resulting swap published).
  Result<RetrainResult> Flush() BOAT_EXCLUDES(mu_);

  /// \brief One JSON object for the STATS reply's "trainer" section.
  std::string StatsJson() const BOAT_EXCLUDES(mu_);

 private:
  struct PendingChunk {
    uint64_t seq = 0;
    ChunkOp op = ChunkOp::kInsert;
    std::vector<Tuple> tuples;
  };

  void ApplyLoop();

  ModelRegistry* const registry_;
  const TrainerOptions options_;

  /// Apply-thread-owned after Start: written by Start() before the thread
  /// is spawned (thread creation is the happens-before edge), then touched
  /// only from ApplyLoop until the join in Shutdown. No capability guards
  /// it because no two threads may ever hold it concurrently by design.
  std::unique_ptr<Session> session_;
  Schema schema_;  ///< immutable after Start (see schema())

  BoundedQueue<PendingChunk> queue_;

  /// Serializes Start/Shutdown and guards the thread handle; never taken
  /// by the apply thread, so joining under it cannot deadlock.
  Mutex lifecycle_mu_;
  std::thread thread_ BOAT_GUARDED_BY(lifecycle_mu_);

  /// release-store in Start (last action) / Shutdown (first action);
  /// acquire-loads in TrySubmit/Flush/StatsJson pair with Start's store so
  /// a caller that sees true also sees the opened session and schema.
  std::atomic<bool> started_{false};

  mutable Mutex mu_;
  CondVar cv_;  ///< signals completed_ advancing (Flush barrier)
  uint64_t submitted_ BOAT_GUARDED_BY(mu_) = 0;  ///< newest accepted seq
  uint64_t completed_ BOAT_GUARDED_BY(mu_) = 0;  ///< newest finished seq
  uint64_t applied_ BOAT_GUARDED_BY(mu_) = 0;
  uint64_t failed_ BOAT_GUARDED_BY(mu_) = 0;
  std::string last_error_ BOAT_GUARDED_BY(mu_);
};

}  // namespace boat::serve

#endif  // BOAT_SERVE_TRAINER_H_
