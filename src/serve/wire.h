// boatd wire protocol v3: newline-delimited text over one TCP connection.
//
// v3 adds fleet routing on top of v2: any request line may carry a model-id
// prefix `@<id> ` (id over [A-Za-z0-9_.-], 1..kMaxModelIdBytes bytes,
// followed by whitespace and the v2 request). '@' is not an ASCII letter and
// not a CSV record character, so the v2 record/admin dichotomy is untouched
// and every v2 line still parses exactly as before — it routes to the
// server's default model (Request::model_id empty). `@m 1.5,2,3` scores a
// record against model `m`; `@m STATS`, `@m RELOAD <dir>`, `@m INGEST <n>`,
// `@m DELETE <n>` and `@m RETRAIN` address model m's registry and trainer.
// PING/QUIT accept a prefix too (the id is validated, then ignored).
//
// Client -> server, one request per line:
//   * data record:  CSV fields, exactly schema.num_attributes() of them, no
//     label column. Numerical attributes parse as doubles (strtod, full
//     consume); categorical attributes parse as decimal integers in
//     [0, cardinality). Records never start with an ASCII letter.
//   * admin:        a line whose first character is a letter —
//       STATS         -> one-line JSON stats object
//       RELOAD <dir>  -> hot-swaps the model from a SaveClassifier directory
//       PING          -> PONG
//       QUIT          -> server closes the connection
//   * streaming ingestion (requires boatd --model, i.e. a live Trainer):
//       INGEST <n>    -> the next n lines are *labeled* CSV records (label
//                        as the last field, as written by WriteCsv /
//                        `boatc generate`). The chunk is atomic: all n lines
//                        are consumed, and the whole chunk is either queued
//                        for incremental insertion (one `OK ingest seq <s>
//                        records <n>` reply) or rejected (one ERR reply, or
//                        BUSY when the trainer queue is full). Payload lines
//                        get no per-line replies.
//       DELETE <n>    -> same framing; the chunk is queued for incremental
//                        deletion (the records must be present).
//       RETRAIN       -> synchronous barrier: waits until every queued chunk
//                        has been applied, recompiled, and hot-swapped, then
//                        replies `OK retrain applied <a> failed <f>
//                        fingerprint <hex>`. After an OK RETRAIN, records
//                        are scored by the updated model.
//
// Server -> client, exactly one line per request line (payload lines of an
// INGEST/DELETE chunk are not request lines), in request order:
//   * <label>        decimal class id, for an accepted data record
//   * ERR <reason>   the line was rejected (parse/validation); the
//                    connection stays usable
//   * BUSY           the admission or trainer queue was full; retry later
//   * OK ... / PONG / {json}   admin replies
//
// Parsing is schema-driven and bounded: lines longer than
// ServerOptions::max_line_bytes are rejected before parsing, and chunk
// counts above ServerOptions::max_chunk_records are rejected at the INGEST
// line, so a hostile client cannot make the server buffer an unbounded
// record or chunk.

#ifndef BOAT_SERVE_WIRE_H_
#define BOAT_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace boat::serve {

/// \brief Protocol-level ceiling on an INGEST/DELETE count. Servers apply
/// their (much smaller) ServerOptions::max_chunk_records on top; this bound
/// only keeps the parsed count sane.
inline constexpr int64_t kMaxWireChunkRecords = 1'000'000'000;

/// \brief Ceiling on a v3 model-id prefix, in bytes. Ids are operator-chosen
/// names, not data; the bound keeps hostile prefixes from inflating parses.
inline constexpr size_t kMaxModelIdBytes = 64;

/// \brief True iff `id` is a well-formed v3 model id: 1..kMaxModelIdBytes
/// characters over [A-Za-z0-9_.-].
bool IsValidModelId(const std::string& id);

/// \brief Verb of one request line.
enum class Verb {
  kRecord,   ///< CSV data record to classify
  kStats,    ///< STATS
  kReload,   ///< RELOAD <dir>
  kPing,     ///< PING
  kQuit,     ///< QUIT
  kIngest,   ///< INGEST <n>: insert the next n labeled records
  kDelete,   ///< DELETE <n>: delete the next n labeled records
  kRetrain,  ///< RETRAIN: barrier until queued chunks are applied + swapped
};

/// \brief One parsed request line. Record payloads stay unparsed here
/// (records are schema-driven; see ParseRecordLine) — `args` carries the
/// raw line for kRecord and the trimmed argument for kReload.
struct Request {
  Verb verb = Verb::kRecord;
  /// kRecord: the record line (for a routed line, the part after the model
  /// id with leading whitespace stripped; otherwise the raw line). kReload:
  /// the directory, trimmed. Else empty.
  std::string args;
  /// kIngest/kDelete: number of payload lines that follow, >= 1.
  int64_t payload_lines = 0;
  /// v3 routing: the `@<id>` prefix, or empty for a v2 line (the server
  /// routes empty to its default model).
  std::string model_id;
};

/// \brief Parses one request line. A leading `@<id>` (after optional
/// whitespace) routes the rest of the line to the named model; the rest —
/// or the whole line when unrouted — follows the v2 rules: any line not
/// starting with an ASCII letter is a record (record fields are numeric,
/// admin verbs are words). Lines that start with a letter must be a
/// well-formed admin verb; unknown verbs, malformed arguments (e.g. a
/// non-numeric INGEST count) and malformed model ids are errors. Never
/// inspects record fields, so it needs no schema.
Result<Request> ParseRequest(const std::string& line);

/// \brief One reply line, as written by the server and read back by
/// clients (loadgen, tests). FormatReply/ParseReply are exact inverses for
/// every representable reply.
struct Reply {
  enum class Kind {
    kLabel,  ///< a predicted class id
    kOk,     ///< OK [detail]
    kErr,    ///< ERR [reason]
    kBusy,   ///< BUSY
    kPong,   ///< PONG
    kJson,   ///< one-line JSON object (STATS)
  };
  Kind kind = Kind::kErr;
  int32_t label = 0;  ///< kLabel only
  std::string text;   ///< kOk detail / kErr reason / kJson body

  static Reply Label(int32_t label) { return {Kind::kLabel, label, ""}; }
  static Reply Ok(std::string detail) {
    return {Kind::kOk, 0, std::move(detail)};
  }
  static Reply Err(std::string reason) {
    return {Kind::kErr, 0, std::move(reason)};
  }
  static Reply Busy() { return {Kind::kBusy, 0, ""}; }
  static Reply Pong() { return {Kind::kPong, 0, ""}; }
  static Reply Json(std::string body) {
    return {Kind::kJson, 0, std::move(body)};
  }
};

/// \brief Renders one reply line (no trailing newline).
std::string FormatReply(const Reply& reply);

/// \brief Parses one reply line. Total: unrecognized lines come back as
/// kErr with the raw line as text, so clients can always classify a reply.
Reply ParseReply(const std::string& line);

/// \brief Parses one data-record line against `schema`: splits the CSV
/// fields, checks the arity, and converts each field per the attribute type
/// (double for numerical; integer in [0, cardinality) for categorical).
/// The returned tuple has label 0 — the label is what the server predicts.
Result<Tuple> ParseRecordLine(const std::string& line, const Schema& schema);

/// \brief Parses one *labeled* record line (INGEST/DELETE payload): the
/// last CSV field is the class label, in [0, num_classes). The layout
/// matches WriteCsv data rows, so generated corpora stream through
/// unchanged.
Result<Tuple> ParseLabeledRecordLine(const std::string& line,
                                     const Schema& schema);

/// \brief Formats `tuples` as wire record lines (no trailing newline).
/// Numerical values are rendered with %.17g so the server-side strtod
/// reconstructs bit-identical doubles; categorical values as plain ints.
std::vector<std::string> FormatRecordLines(const Schema& schema,
                                           const std::vector<Tuple>& tuples);

/// \brief Formats `tuples` as labeled payload lines (label last), the
/// inverse of ParseLabeledRecordLine.
std::vector<std::string> FormatLabeledRecordLines(
    const Schema& schema, const std::vector<Tuple>& tuples);

}  // namespace boat::serve

#endif  // BOAT_SERVE_WIRE_H_
