// boatd wire protocol v1: newline-delimited text over one TCP connection.
//
// Client -> server, one request per line:
//   * data record:  CSV fields, exactly schema.num_attributes() of them, no
//     label column. Numerical attributes parse as doubles (strtod, full
//     consume); categorical attributes parse as decimal integers in
//     [0, cardinality). Records never start with an ASCII letter.
//   * admin:        a line whose first character is a letter —
//       STATS         -> one-line JSON stats object
//       RELOAD <dir>  -> hot-swaps the model from a SaveClassifier directory
//       PING          -> PONG
//       QUIT          -> server closes the connection
//
// Server -> client, exactly one line per request line, in request order:
//   * <label>        decimal class id, for an accepted data record
//   * ERR <reason>   the line was rejected (parse/validation); the
//                    connection stays usable
//   * BUSY           the admission queue was full; retry later
//   * OK ... / PONG / {json}   admin replies
//
// Parsing is schema-driven and bounded: lines longer than
// ServerOptions::max_line_bytes are rejected before parsing, so a hostile
// client cannot make the server buffer an unbounded record.

#ifndef BOAT_SERVE_WIRE_H_
#define BOAT_SERVE_WIRE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace boat::serve {

/// \brief Kind of one request line.
enum class RequestKind {
  kRecord,   ///< CSV data record to classify
  kStats,    ///< STATS
  kReload,   ///< RELOAD <dir>
  kPing,     ///< PING
  kQuit,     ///< QUIT
  kUnknown,  ///< starts with a letter but is not a known admin command
};

/// \brief Classifies a request line without parsing record fields. Records
/// are any line not starting with an ASCII letter (record fields are
/// numeric, admin verbs are words).
RequestKind ClassifyRequestLine(const std::string& line);

/// \brief Argument of a RELOAD line (the directory), trimmed.
std::string ReloadArgument(const std::string& line);

/// \brief Parses one data-record line against `schema`: splits the CSV
/// fields, checks the arity, and converts each field per the attribute type
/// (double for numerical; integer in [0, cardinality) for categorical).
/// The returned tuple has label 0 — the label is what the server predicts.
Result<Tuple> ParseRecordLine(const std::string& line, const Schema& schema);

/// \brief Formats `tuples` as wire record lines (no trailing newline).
/// Numerical values are rendered with %.17g so the server-side strtod
/// reconstructs bit-identical doubles; categorical values as plain ints.
std::vector<std::string> FormatRecordLines(const Schema& schema,
                                           const std::vector<Tuple>& tuples);

}  // namespace boat::serve

#endif  // BOAT_SERVE_WIRE_H_
