#include "serve/fleet.h"

#include <utility>

#include "serve/wire.h"

namespace boat::serve {

Status FleetRegistry::Add(std::shared_ptr<FleetEntry> entry) {
  if (!IsValidModelId(entry->id)) {
    return Status::InvalidArgument(
        "model id '" + entry->id +
        "' is not a valid wire id ([A-Za-z0-9_.-], 1..64 bytes)");
  }
  MutexLock lock(mu_);
  for (const std::shared_ptr<FleetEntry>& existing : entries_) {
    if (existing->id == entry->id) {
      return Status::InvalidArgument("duplicate model id '" + entry->id +
                                     "'");
    }
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status FleetRegistry::AddTrained(const std::string& id,
                                 const TrainerOptions& options) {
  auto entry = std::make_shared<FleetEntry>();
  entry->id = id;
  entry->source_dir = options.model_dir;
  entry->selector = options.selector;
  entry->owned_registry = std::make_unique<ModelRegistry>();
  entry->registry = entry->owned_registry.get();
  entry->owned_trainer =
      std::make_unique<Trainer>(entry->registry, options);
  entry->trainer = entry->owned_trainer.get();
  // Start before publishing: a started trainer has installed the initial
  // model, so a successfully added entry is immediately servable.
  BOAT_RETURN_NOT_OK(entry->trainer->Start());
  return Add(std::move(entry));
}

Status FleetRegistry::AddEnsemble(const std::string& id,
                                  const std::string& dir) {
  auto entry = std::make_shared<FleetEntry>();
  entry->id = id;
  entry->ensemble = true;
  entry->source_dir = dir;
  entry->owned_registry = std::make_unique<ModelRegistry>();
  entry->registry = entry->owned_registry.get();
  BOAT_RETURN_NOT_OK(entry->registry->LoadAndSwapEnsemble(dir));
  return Add(std::move(entry));
}

Status FleetRegistry::AddExternal(const std::string& id,
                                  ModelRegistry* registry, Trainer* trainer,
                                  const std::string& selector) {
  if (registry == nullptr) {
    return Status::InvalidArgument("AddExternal: registry is null");
  }
  auto entry = std::make_shared<FleetEntry>();
  entry->id = id;
  entry->selector = selector;
  entry->registry = registry;
  entry->trainer = trainer;
  return Add(std::move(entry));
}

Status FleetRegistry::Reload(const std::string& id, const std::string& dir) {
  std::shared_ptr<FleetEntry> entry = this->entry(id);
  if (entry == nullptr) {
    return Status::NotFound("unknown model '" + id + "'");
  }
  // Per-model isolation: only this entry's registry swaps; every other
  // model's RCU slot — and any in-flight snapshot of this one — is
  // untouched. On failure the entry keeps its last-good model.
  return entry->ensemble ? entry->registry->LoadAndSwapEnsemble(dir)
                         : entry->registry->LoadAndSwap(dir, entry->selector);
}

Status FleetRegistry::Evict(const std::string& id) {
  std::shared_ptr<FleetEntry> entry = this->entry(id);
  if (entry == nullptr) {
    return Status::NotFound("unknown model '" + id + "'");
  }
  entry->registry->Evict();
  return Status::OK();
}

std::shared_ptr<const ServableModel> FleetRegistry::Snapshot(
    const std::string& id) const {
  std::shared_ptr<FleetEntry> entry = this->entry(id);
  return entry == nullptr ? nullptr : entry->registry->Snapshot();
}

std::shared_ptr<FleetEntry> FleetRegistry::Find(const std::string& id) const {
  if (entries_.empty()) return nullptr;
  if (id.empty()) return entries_.front();  // wire v2: the default model
  for (const std::shared_ptr<FleetEntry>& entry : entries_) {
    if (entry->id == id) return entry;
  }
  return nullptr;
}

std::shared_ptr<FleetEntry> FleetRegistry::entry(
    const std::string& id) const {
  MutexLock lock(mu_);
  return Find(id);
}

std::vector<std::shared_ptr<FleetEntry>> FleetRegistry::entries() const {
  MutexLock lock(mu_);
  return entries_;
}

std::string FleetRegistry::default_id() const {
  MutexLock lock(mu_);
  return entries_.empty() ? "" : entries_.front()->id;
}

size_t FleetRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void FleetRegistry::ShutdownTrainers() {
  // Copy out under the lock, shut down outside it: Trainer::Shutdown joins
  // an apply thread and must not run under fleet state locks.
  std::vector<std::shared_ptr<FleetEntry>> entries;
  {
    MutexLock lock(mu_);
    entries = entries_;
  }
  for (const std::shared_ptr<FleetEntry>& entry : entries) {
    if (entry->owned_trainer != nullptr) entry->owned_trainer->Shutdown();
  }
}

}  // namespace boat::serve
