// Synthetic training-data generator of Agrawal, Imielinski and Swami,
// "Database Mining: A Performance Perspective" (IEEE TKDE 1993) — the
// generator used by the SLIQ/SPRINT/PUBLIC/RainForest/BOAT evaluations.
//
// Nine predictor attributes describe a person:
//   salary      numerical   uniform [20000, 150000]
//   commission  numerical   0 if salary >= 75000, else uniform [10000, 75000]
//   age         numerical   uniform [20, 80]
//   elevel      categorical uniform {0..4}           (education level)
//   car         categorical uniform {0..19}          (make of car)
//   zipcode     categorical uniform {0..8}
//   hvalue      numerical   uniform [0.5,1.5]*k*100000, k = zipcode+1
//   hyears      numerical   uniform [1, 30]          (years house owned)
//   loan        numerical   uniform [0, 500000]      (total loan amount)
//
// Classification functions F1..F10 assign each record to Group A (label 0)
// or Group B (label 1). The BOAT paper evaluates on F1, F6, F7.
//
// Options reproduce the paper's experimental knobs: label noise (a record's
// label is replaced by a uniformly random label with probability p), extra
// uniformly-random numerical attributes carrying no predictive power, and a
// "drifted" variant of a function that relabels part of the attribute space
// (used by the dynamic-environment experiment, Figure 14).

#ifndef BOAT_DATAGEN_AGRAWAL_H_
#define BOAT_DATAGEN_AGRAWAL_H_

#include <cstdint>

#include "common/rng.h"
#include "storage/tuple_source.h"

namespace boat {

/// \brief How (if at all) the generator's underlying distribution is altered
/// relative to the base classification function.
enum class Drift {
  kNone,
  /// Inverts the class label in the subspace age >= 60: the decision tree
  /// changes in one region of the attribute space and is unchanged elsewhere,
  /// matching the paper's Figure 14 setup.
  kRelabelOldAge,
};

/// \brief Configuration of the synthetic generator.
struct AgrawalConfig {
  int function = 1;             ///< Classification function, 1..10.
  double noise = 0.0;           ///< P(label replaced by a random one).
  int extra_numeric_attrs = 0;  ///< Random attributes appended to the schema.
  Drift drift = Drift::kNone;
  uint64_t seed = 42;           ///< Generator stream seed.
};

/// \brief Schema produced by the generator for a given number of extra
/// random numerical attributes.
Schema MakeAgrawalSchema(int extra_numeric_attrs = 0);

/// Attribute indices within the Agrawal schema.
enum AgrawalAttr : int {
  kSalary = 0,
  kCommission = 1,
  kAge = 2,
  kElevel = 3,
  kCar = 4,
  kZipcode = 5,
  kHvalue = 6,
  kHyears = 7,
  kLoan = 8,
};

/// \brief Deterministic, restartable stream of `num_rows` synthetic records.
/// Reset() replays exactly the same sequence (same seed), so the stream can
/// serve as a non-materialized training database.
class AgrawalGenerator : public TupleSource {
 public:
  AgrawalGenerator(AgrawalConfig config, uint64_t num_rows);

  [[nodiscard]] bool Next(Tuple* tuple) override;
  Status Reset() override;
  const Schema& schema() const override { return schema_; }

  uint64_t num_rows() const { return num_rows_; }
  const AgrawalConfig& config() const { return config_; }

  /// \brief Classification function f on attribute values (ignores noise and
  /// drift); exposed for tests. `t` must match the Agrawal schema.
  static int32_t Classify(int function, const Tuple& t);

 private:
  AgrawalConfig config_;
  uint64_t num_rows_;
  Schema schema_;
  Rng rng_;
  uint64_t produced_ = 0;
};

/// \brief Convenience: materializes `num_rows` records into a vector.
std::vector<Tuple> GenerateAgrawal(const AgrawalConfig& config,
                                   uint64_t num_rows);

/// \brief Convenience: writes `num_rows` records to a table file at `path`.
Status GenerateAgrawalTable(const AgrawalConfig& config, uint64_t num_rows,
                            const std::string& path);

}  // namespace boat

#endif  // BOAT_DATAGEN_AGRAWAL_H_
