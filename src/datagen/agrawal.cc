#include "datagen/agrawal.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace boat {

Schema MakeAgrawalSchema(int extra_numeric_attrs) {
  std::vector<Attribute> attrs = {
      Attribute::Numerical("salary"),      Attribute::Numerical("commission"),
      Attribute::Numerical("age"),         Attribute::Categorical("elevel", 5),
      Attribute::Categorical("car", 20),   Attribute::Categorical("zipcode", 9),
      Attribute::Numerical("hvalue"),      Attribute::Numerical("hyears"),
      Attribute::Numerical("loan"),
  };
  for (int i = 0; i < extra_numeric_attrs; ++i) {
    attrs.push_back(Attribute::Numerical(StrPrintf("extra%d", i)));
  }
  return Schema(std::move(attrs), /*num_classes=*/2);
}

namespace {

// Group membership predicates of [AIS93]; true means Group A (label 0).
bool GroupA(int function, double salary, double commission, double age,
            int elevel, double hvalue, double hyears, double loan) {
  const double sc = salary + commission;
  switch (function) {
    case 1:
      return age < 40 || age >= 60;
    case 2:
      return (age < 40 && salary >= 50000 && salary <= 100000) ||
             (age >= 40 && age < 60 && salary >= 75000 && salary <= 125000) ||
             (age >= 60 && salary >= 25000 && salary <= 75000);
    case 3:
      return (age < 40 && (elevel == 0 || elevel == 1)) ||
             (age >= 40 && age < 60 && elevel >= 1 && elevel <= 3) ||
             (age >= 60 && elevel >= 2 && elevel <= 4);
    case 4:
      if (age < 40) {
        return (elevel == 0 || elevel == 1)
                   ? (salary >= 25000 && salary <= 75000)
                   : (salary >= 50000 && salary <= 100000);
      }
      if (age < 60) {
        return (elevel >= 1 && elevel <= 3)
                   ? (salary >= 50000 && salary <= 100000)
                   : (salary >= 75000 && salary <= 125000);
      }
      return (elevel >= 2 && elevel <= 4)
                 ? (salary >= 50000 && salary <= 100000)
                 : (salary >= 25000 && salary <= 75000);
    case 5:
      if (age < 40) {
        return (salary >= 50000 && salary <= 100000)
                   ? (loan >= 100000 && loan <= 300000)
                   : (loan >= 200000 && loan <= 400000);
      }
      if (age < 60) {
        return (salary >= 75000 && salary <= 125000)
                   ? (loan >= 200000 && loan <= 400000)
                   : (loan >= 300000 && loan <= 500000);
      }
      return (salary >= 25000 && salary <= 75000)
                 ? (loan >= 300000 && loan <= 500000)
                 : (loan >= 100000 && loan <= 300000);
    case 6:
      return (age < 40 && sc >= 50000 && sc <= 100000) ||
             (age >= 40 && age < 60 && sc >= 75000 && sc <= 125000) ||
             (age >= 60 && sc >= 25000 && sc <= 75000);
    case 7:
      return (2.0 / 3.0) * sc - 0.2 * loan - 20000 > 0;
    case 8:
      return (2.0 / 3.0) * sc - 5000.0 * elevel - 20000 > 0;
    case 9:
      return (2.0 / 3.0) * sc - 5000.0 * elevel - 0.2 * loan - 10000 > 0;
    case 10: {
      const double equity = 0.1 * hvalue * std::max(hyears - 20.0, 0.0);
      return (2.0 / 3.0) * sc - 5000.0 * elevel + 0.2 * equity - 10000 > 0;
    }
    default:
      FatalError(StrPrintf("unknown Agrawal function %d", function));
  }
}

}  // namespace

AgrawalGenerator::AgrawalGenerator(AgrawalConfig config, uint64_t num_rows)
    : config_(config),
      num_rows_(num_rows),
      schema_(MakeAgrawalSchema(config.extra_numeric_attrs)),
      rng_(config.seed) {
  if (config_.function < 1 || config_.function > 10) {
    FatalError(StrPrintf("Agrawal function must be 1..10, got %d",
                         config_.function));
  }
}

int32_t AgrawalGenerator::Classify(int function, const Tuple& t) {
  return GroupA(function, t.value(kSalary), t.value(kCommission),
                t.value(kAge), t.category(kElevel), t.value(kHvalue),
                t.value(kHyears), t.value(kLoan))
             ? 0
             : 1;
}

bool AgrawalGenerator::Next(Tuple* tuple) {
  if (produced_ >= num_rows_) return false;
  ++produced_;

  // Values are integer-valued, as in the original generator; bounded
  // domains are what keeps RainForest AVC-sets compact.
  const double salary =
      static_cast<double>(rng_.UniformInt(20000, 150000));
  const double commission =
      salary >= 75000 ? 0.0
                      : static_cast<double>(rng_.UniformInt(10000, 75000));
  const double age = static_cast<double>(rng_.UniformInt(20, 80));
  const int elevel = static_cast<int>(rng_.UniformInt(0, 4));
  const int car = static_cast<int>(rng_.UniformInt(0, 19));
  const int zipcode = static_cast<int>(rng_.UniformInt(0, 8));
  const int64_t k = zipcode + 1;
  const double hvalue =
      static_cast<double>(rng_.UniformInt(50000 * k, 150000 * k));
  const double hyears = static_cast<double>(rng_.UniformInt(1, 30));
  const double loan = static_cast<double>(rng_.UniformInt(0, 500000));

  std::vector<double> values = {salary,
                                commission,
                                age,
                                static_cast<double>(elevel),
                                static_cast<double>(car),
                                static_cast<double>(zipcode),
                                hvalue,
                                hyears,
                                loan};
  for (int i = 0; i < config_.extra_numeric_attrs; ++i) {
    values.push_back(static_cast<double>(rng_.UniformInt(0, 9999)));
  }

  bool group_a = GroupA(config_.function, salary, commission, age, elevel,
                        hvalue, hyears, loan);
  if (config_.drift == Drift::kRelabelOldAge && age >= 60) {
    group_a = !group_a;
  }
  int32_t label = group_a ? 0 : 1;
  // Label noise: with probability `noise` the label is replaced by a
  // uniformly random class label. Both random draws happen unconditionally
  // so that the predictor-attribute stream is identical across noise levels.
  const double noise_draw = rng_.UniformDouble(0.0, 1.0);
  const int32_t random_label = static_cast<int32_t>(rng_.UniformInt(0, 1));
  if (noise_draw < config_.noise) label = random_label;

  *tuple = Tuple(std::move(values), label);
  return true;
}

Status AgrawalGenerator::Reset() {
  rng_ = Rng(config_.seed);
  produced_ = 0;
  return Status::OK();
}

std::vector<Tuple> GenerateAgrawal(const AgrawalConfig& config,
                                   uint64_t num_rows) {
  AgrawalGenerator gen(config, num_rows);
  std::vector<Tuple> out;
  out.reserve(num_rows);
  Tuple t;
  while (gen.Next(&t)) out.push_back(std::move(t));
  return out;
}

Status GenerateAgrawalTable(const AgrawalConfig& config, uint64_t num_rows,
                            const std::string& path) {
  AgrawalGenerator gen(config, num_rows);
  BOAT_ASSIGN_OR_RETURN(auto writer, TableWriter::Create(path, gen.schema()));
  Tuple t;
  while (gen.Next(&t)) {
    BOAT_RETURN_NOT_OK(writer->Append(t));
  }
  return writer->Finish();
}

}  // namespace boat
