#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace boat {

namespace {

Schema NumericSchema(int dimensions, int num_classes) {
  std::vector<Attribute> attrs;
  attrs.reserve(static_cast<size_t>(dimensions));
  for (int d = 0; d < dimensions; ++d) {
    attrs.push_back(Attribute::Numerical(StrPrintf("x%d", d)));
  }
  return Schema(std::move(attrs), num_classes);
}

// Box-Muller normal deviate from the deterministic Rng.
double Normal(Rng* rng, double mean, double stddev) {
  const double u1 = std::max(rng->UniformDouble(0.0, 1.0), 1e-300);
  const double u2 = rng->UniformDouble(0.0, 1.0);
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

}  // namespace

// -------------------------------------------------------- HyperplaneGenerator

HyperplaneGenerator::HyperplaneGenerator(HyperplaneConfig config,
                                         uint64_t num_rows)
    : config_(std::move(config)),
      num_rows_(num_rows),
      schema_(NumericSchema(config_.dimensions, 2)),
      rng_(config_.seed) {
  CheckOk(Reset());
}

Status HyperplaneGenerator::Reset() {
  rng_ = Rng(config_.seed);
  produced_ = 0;
  weights_ = config_.weights;
  weights_.resize(static_cast<size_t>(config_.dimensions), 1.0);
  // Center the boundary: theta = sum(w) * E[x].
  theta_ = 0.0;
  for (const double w : weights_) {
    theta_ += w * 0.5 * static_cast<double>(config_.value_range);
  }
  return Status::OK();
}

bool HyperplaneGenerator::Next(Tuple* tuple) {
  if (produced_ >= num_rows_) return false;
  // Concept drift: rotate the hyperplane between blocks. The drift draws
  // come from the same deterministic stream, so Reset() replays everything.
  if (produced_ > 0 && config_.drift > 0.0 &&
      produced_ % static_cast<uint64_t>(config_.drift_block) == 0) {
    theta_ = 0.0;
    for (double& w : weights_) {
      w += rng_.UniformDouble(-config_.drift, config_.drift);
      theta_ += w * 0.5 * static_cast<double>(config_.value_range);
    }
  }
  ++produced_;

  std::vector<double> values(static_cast<size_t>(config_.dimensions));
  double dot = 0.0;
  for (int d = 0; d < config_.dimensions; ++d) {
    values[d] = static_cast<double>(rng_.UniformInt(0, config_.value_range));
    dot += weights_[d] * values[d];
  }
  int32_t label = dot > theta_ ? 1 : 0;
  const double noise_draw = rng_.UniformDouble(0.0, 1.0);
  const int32_t random_label = static_cast<int32_t>(rng_.UniformInt(0, 1));
  if (noise_draw < config_.noise) label = random_label;
  *tuple = Tuple(std::move(values), label);
  return true;
}

// --------------------------------------------------- GaussianMixtureGenerator

GaussianMixtureGenerator::GaussianMixtureGenerator(
    GaussianMixtureConfig config, uint64_t num_rows)
    : config_(std::move(config)),
      num_rows_(num_rows),
      schema_(NumericSchema(config_.dimensions, config_.num_classes)),
      rng_(config_.seed) {
  // Cluster centers are fixed per seed (drawn from a dedicated stream so the
  // tuple stream below replays identically after Reset).
  Rng center_rng = Rng(config_.seed).Split(1);
  centers_.resize(static_cast<size_t>(config_.num_classes));
  for (auto& per_class : centers_) {
    per_class.resize(static_cast<size_t>(config_.clusters_per_class));
    for (auto& center : per_class) {
      center.resize(static_cast<size_t>(config_.dimensions));
      for (double& c : center) c = center_rng.UniformDouble(0, config_.spread);
    }
  }
  CheckOk(Reset());
}

Status GaussianMixtureGenerator::Reset() {
  rng_ = Rng(config_.seed).Split(2);
  produced_ = 0;
  return Status::OK();
}

bool GaussianMixtureGenerator::Next(Tuple* tuple) {
  if (produced_ >= num_rows_) return false;
  ++produced_;
  const int32_t cls =
      static_cast<int32_t>(rng_.UniformInt(0, config_.num_classes - 1));
  const int cluster =
      static_cast<int>(rng_.UniformInt(0, config_.clusters_per_class - 1));
  const auto& center = centers_[cls][cluster];
  std::vector<double> values(static_cast<size_t>(config_.dimensions));
  for (int d = 0; d < config_.dimensions; ++d) {
    double v = Normal(&rng_, center[d], config_.stddev);
    v = std::clamp(v, 0.0, config_.spread);
    values[d] = std::round(v);
  }
  int32_t label = cls;
  const double noise_draw = rng_.UniformDouble(0.0, 1.0);
  const int32_t random_label =
      static_cast<int32_t>(rng_.UniformInt(0, config_.num_classes - 1));
  if (noise_draw < config_.noise) label = random_label;
  *tuple = Tuple(std::move(values), label);
  return true;
}

// ----------------------------------------------------------------- converters

std::vector<Tuple> GenerateHyperplane(const HyperplaneConfig& config,
                                      uint64_t num_rows) {
  HyperplaneGenerator gen(config, num_rows);
  std::vector<Tuple> out;
  out.reserve(num_rows);
  Tuple t;
  while (gen.Next(&t)) out.push_back(std::move(t));
  return out;
}

std::vector<Tuple> GenerateGaussianMixture(const GaussianMixtureConfig& config,
                                           uint64_t num_rows) {
  GaussianMixtureGenerator gen(config, num_rows);
  std::vector<Tuple> out;
  out.reserve(num_rows);
  Tuple t;
  while (gen.Next(&t)) out.push_back(std::move(t));
  return out;
}

}  // namespace boat
