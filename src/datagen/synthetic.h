// Additional synthetic workload generators beyond the Agrawal family:
//
//  * HyperplaneGenerator — the rotating-hyperplane concept of the data-stream
//    literature: labels are sign(w . x - theta); the weight vector can drift
//    per block, giving a controllable gradual concept change (a finer drift
//    instrument than the Agrawal relabeling used for Figure 14).
//  * GaussianMixtureGenerator — m Gaussian clusters per class over d
//    numerical attributes; exercises the multi-class (k > 2) paths end to
//    end with data that has smooth, non-axis-aligned structure.
//
// Both are deterministic, restartable TupleSources like AgrawalGenerator.

#ifndef BOAT_DATAGEN_SYNTHETIC_H_
#define BOAT_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/tuple_source.h"

namespace boat {

/// \brief Configuration of the rotating-hyperplane generator.
struct HyperplaneConfig {
  int dimensions = 5;
  /// Attribute values are integers in [0, value_range] (bounded domains keep
  /// AVC-sets realistic, as in the Agrawal generator).
  int64_t value_range = 1000;
  /// Initial weights; resized/filled with 1.0 when shorter than dimensions.
  std::vector<double> weights;
  /// Weight drift applied after every `drift_block` tuples: each weight
  /// moves by uniform(-drift, +drift) * value_range.
  double drift = 0.0;
  int64_t drift_block = 10'000;
  /// Label noise probability.
  double noise = 0.0;
  uint64_t seed = 7;
};

/// \brief Labels are 1 iff w . x > theta, where theta centers the boundary.
class HyperplaneGenerator : public TupleSource {
 public:
  HyperplaneGenerator(HyperplaneConfig config, uint64_t num_rows);

  [[nodiscard]] bool Next(Tuple* tuple) override;
  Status Reset() override;
  const Schema& schema() const override { return schema_; }

  uint64_t num_rows() const { return num_rows_; }

 private:
  HyperplaneConfig config_;
  uint64_t num_rows_;
  Schema schema_;
  Rng rng_;
  std::vector<double> weights_;
  double theta_ = 0.0;
  uint64_t produced_ = 0;
};

/// \brief Configuration of the Gaussian-mixture generator.
struct GaussianMixtureConfig {
  int dimensions = 4;
  int num_classes = 3;
  int clusters_per_class = 2;
  /// Cluster centers are drawn uniformly in [0, spread]; values are rounded
  /// to integers and clamped at [0, spread].
  double spread = 1000.0;
  double stddev = 60.0;
  double noise = 0.0;  ///< label replaced uniformly at random with prob.
  uint64_t seed = 11;
};

/// \brief Multi-class Gaussian mixture over numerical attributes.
class GaussianMixtureGenerator : public TupleSource {
 public:
  GaussianMixtureGenerator(GaussianMixtureConfig config, uint64_t num_rows);

  [[nodiscard]] bool Next(Tuple* tuple) override;
  Status Reset() override;
  const Schema& schema() const override { return schema_; }

  /// \brief Cluster centers, exposed for tests: [class][cluster][dim].
  const std::vector<std::vector<std::vector<double>>>& centers() const {
    return centers_;
  }

 private:
  GaussianMixtureConfig config_;
  uint64_t num_rows_;
  Schema schema_;
  Rng rng_;
  std::vector<std::vector<std::vector<double>>> centers_;
  uint64_t produced_ = 0;
};

/// \brief Convenience materializers.
std::vector<Tuple> GenerateHyperplane(const HyperplaneConfig& config,
                                      uint64_t num_rows);
std::vector<Tuple> GenerateGaussianMixture(const GaussianMixtureConfig& config,
                                           uint64_t num_rows);

}  // namespace boat

#endif  // BOAT_DATAGEN_SYNTHETIC_H_
