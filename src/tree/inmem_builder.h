// The traditional main-memory greedy top-down tree builder (Figure 1 of the
// paper). This is the reference algorithm: BOAT and RainForest are required
// to produce exactly the tree this builder produces on the same data.

#ifndef BOAT_TREE_INMEM_BUILDER_H_
#define BOAT_TREE_INMEM_BUILDER_H_

#include <vector>

#include "split/selector.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief Grows a subtree from an in-memory family by greedy top-down
/// induction. `depth` is the depth of this subtree's root in the full tree
/// (for the max_depth limit). Consumes `tuples`.
std::unique_ptr<TreeNode> BuildSubtreeInMemory(const Schema& schema,
                                               std::vector<Tuple> tuples,
                                               const SplitSelector& selector,
                                               const GrowthLimits& limits,
                                               int depth);

/// \brief Grows a full decision tree from an in-memory training set.
DecisionTree BuildTreeInMemory(const Schema& schema, std::vector<Tuple> tuples,
                               const SplitSelector& selector,
                               const GrowthLimits& limits = GrowthLimits());

}  // namespace boat

#endif  // BOAT_TREE_INMEM_BUILDER_H_
