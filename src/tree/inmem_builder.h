// The traditional main-memory greedy top-down tree builder (Figure 1 of the
// paper). This is the reference algorithm: BOAT and RainForest are required
// to produce exactly the tree this builder produces on the same data.
//
// Two engines implement it, guaranteed byte-identical
// (tests/columnar_equivalence_test.cpp):
//   * the columnar engine (tree/columnar_builder.h): one root-time sort per
//     numeric attribute, AVC-sets from linear walks over presorted index
//     ranges, stable in-place partitions, no per-node allocations — the
//     default;
//   * the legacy row-at-a-time engine (...Rows below): re-sorts every
//     numeric attribute at every node; retained for differential testing
//     and selectable at runtime with BOAT_GROWTH_ENGINE=rows.

#ifndef BOAT_TREE_INMEM_BUILDER_H_
#define BOAT_TREE_INMEM_BUILDER_H_

#include <vector>

#include "split/selector.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief Whether in-memory growth routes through the columnar engine (the
/// default) or the legacy row engine (BOAT_GROWTH_ENGINE=rows). Read once
/// per process.
bool GrowthEngineIsColumnar();

/// \brief Grows a subtree from an in-memory family by greedy top-down
/// induction. `depth` is the depth of this subtree's root in the full tree
/// (for the max_depth limit). Consumes `tuples`. Dispatches to the engine
/// selected by GrowthEngineIsColumnar().
std::unique_ptr<TreeNode> BuildSubtreeInMemory(const Schema& schema,
                                               std::vector<Tuple> tuples,
                                               const SplitSelector& selector,
                                               const GrowthLimits& limits,
                                               int depth);

/// \brief Grows a full decision tree from an in-memory training set.
DecisionTree BuildTreeInMemory(const Schema& schema, std::vector<Tuple> tuples,
                               const SplitSelector& selector,
                               const GrowthLimits& limits = GrowthLimits());

/// \brief The legacy row-at-a-time engine, kept for differential testing
/// against the columnar engine (and as the BOAT_GROWTH_ENGINE=rows
/// fallback).
std::unique_ptr<TreeNode> BuildSubtreeInMemoryRows(
    const Schema& schema, std::vector<Tuple> tuples,
    const SplitSelector& selector, const GrowthLimits& limits, int depth);

/// \brief Full-tree entry point of the legacy row engine.
DecisionTree BuildTreeInMemoryRows(const Schema& schema,
                                   std::vector<Tuple> tuples,
                                   const SplitSelector& selector,
                                   const GrowthLimits& limits =
                                       GrowthLimits());

}  // namespace boat

#endif  // BOAT_TREE_INMEM_BUILDER_H_
