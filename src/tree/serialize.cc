#include "tree/serialize.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "common/str_util.h"

namespace boat {

namespace {

constexpr const char* kHeader = "BOATTREE v1";

void WriteNode(const TreeNode& node, std::string* out) {
  auto append_counts = [out, &node]() {
    out->append(StrPrintf(" %d", static_cast<int>(node.class_counts.size())));
    for (const int64_t c : node.class_counts) {
      out->append(StrPrintf(" %lld", static_cast<long long>(c)));
    }
    out->push_back('\n');
  };
  if (node.is_leaf()) {
    out->append("L");
    append_counts();
    return;
  }
  const Split& s = *node.split;
  if (s.is_numerical) {
    out->append(StrPrintf("N %d n %a %a", s.attribute, s.value, s.impurity));
  } else {
    out->append(StrPrintf("N %d c %d", s.attribute,
                          static_cast<int>(s.subset.size())));
    for (const int32_t cat : s.subset) out->append(StrPrintf(" %d", cat));
    out->append(StrPrintf(" %a", s.impurity));
  }
  append_counts();
  WriteNode(*node.left, out);
  WriteNode(*node.right, out);
}

// Pull-based line supplier shared by the document parser and the bare
// subtree parser.
using LineSupplier = std::function<Result<std::string>()>;

class LineParser {
 public:
  explicit LineParser(const std::string& text) : in_(text) {}

  Result<std::string> NextLine() {
    std::string line;
    if (!std::getline(in_, line)) {
      return Status::Corruption("unexpected end of tree document");
    }
    return line;
  }

  LineSupplier AsSupplier() {
    return [this]() { return NextLine(); };
  }

 private:
  std::istringstream in_;
};

// Streams do not reliably parse hex-float ("%a") tokens; route through
// strtod, which does.
bool ReadDouble(std::istringstream* fields, double* out) {
  std::string token;
  if (!(*fields >> token)) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' && end != token.c_str();
}

// Caps on untrusted arities. A corrupt (or adversarial) document must not be
// able to request a multi-gigabyte allocation or overflow the stack before
// parsing fails; legitimate trees are orders of magnitude below these.
constexpr int kMaxClasses = 1 << 20;
constexpr int kMaxSubsetSize = 1 << 20;
// The depth cap must leave the recursive parser comfortably inside an 8 MiB
// stack even under ASan, which inflates each frame to several KiB.
constexpr int kMaxParseDepth = 512;

Result<std::vector<int64_t>> ParseCounts(std::istringstream* fields) {
  int k = 0;
  if (!(*fields >> k) || k <= 0 || k > kMaxClasses) {
    return Status::Corruption("bad class-count arity in tree document");
  }
  std::vector<int64_t> counts(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    long long v = 0;
    if (!(*fields >> v)) {
      return Status::Corruption("bad class count in tree document");
    }
    counts[i] = v;
  }
  return counts;
}

Result<std::unique_ptr<TreeNode>> ParseNode(const LineSupplier& next_line,
                                            const Schema& schema,
                                            int depth = 0) {
  if (depth > kMaxParseDepth) {
    return Status::Corruption("tree document nesting exceeds depth limit");
  }
  BOAT_ASSIGN_OR_RETURN(std::string line, next_line());
  std::istringstream fields(line);
  std::string tag;
  if (!(fields >> tag)) return Status::Corruption("empty node line");

  if (tag == "L") {
    BOAT_ASSIGN_OR_RETURN(auto counts, ParseCounts(&fields));
    return TreeNode::Leaf(std::move(counts));
  }
  if (tag != "N") return Status::Corruption("unknown node tag: " + tag);

  int attr = -1;
  std::string type;
  if (!(fields >> attr >> type) || attr < 0 ||
      attr >= schema.num_attributes()) {
    return Status::Corruption("bad split attribute in tree document");
  }
  Split split;
  if (type == "n") {
    double value = 0;
    double impurity = 0;
    if (!ReadDouble(&fields, &value) || !ReadDouble(&fields, &impurity)) {
      return Status::Corruption("bad numerical split line");
    }
    split = Split::Numerical(attr, value, impurity);
  } else if (type == "c") {
    int m = 0;
    if (!(fields >> m) || m <= 0 || m > kMaxSubsetSize) {
      return Status::Corruption("bad subset arity");
    }
    std::vector<int32_t> subset(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      if (!(fields >> subset[i])) {
        return Status::Corruption("bad subset member");
      }
    }
    double impurity = 0;
    if (!ReadDouble(&fields, &impurity)) {
      return Status::Corruption("bad categorical split line");
    }
    split = Split::Categorical(attr, std::move(subset), impurity);
  } else {
    return Status::Corruption("unknown split type: " + type);
  }
  BOAT_ASSIGN_OR_RETURN(auto counts, ParseCounts(&fields));
  BOAT_ASSIGN_OR_RETURN(auto left, ParseNode(next_line, schema, depth + 1));
  BOAT_ASSIGN_OR_RETURN(auto right, ParseNode(next_line, schema, depth + 1));
  return TreeNode::Internal(std::move(split), std::move(counts),
                            std::move(left), std::move(right));
}

}  // namespace

std::string SerializeTree(const DecisionTree& tree) {
  std::string out = kHeader;
  out += StrPrintf("\nfingerprint %016llx\n",
                   static_cast<unsigned long long>(
                       tree.schema().Fingerprint()));
  WriteNode(tree.root(), &out);
  return out;
}

Result<DecisionTree> DeserializeTree(const std::string& text,
                                     const Schema& schema) {
  LineParser parser(text);
  BOAT_ASSIGN_OR_RETURN(std::string header, parser.NextLine());
  if (header != kHeader) {
    return Status::Corruption("bad tree document header: " + header);
  }
  BOAT_ASSIGN_OR_RETURN(std::string fp_line, parser.NextLine());
  unsigned long long fp = 0;
  if (std::sscanf(fp_line.c_str(), "fingerprint %llx", &fp) != 1) {
    return Status::Corruption("bad fingerprint line");
  }
  if (fp != schema.Fingerprint()) {
    return Status::InvalidArgument("tree was grown against a different schema");
  }
  BOAT_ASSIGN_OR_RETURN(auto root, ParseNode(parser.AsSupplier(), schema));
  return DecisionTree(schema, std::move(root));
}

std::string SerializeSubtree(const TreeNode& root) {
  std::string out;
  WriteNode(root, &out);
  return out;
}

Result<std::unique_ptr<TreeNode>> DeserializeSubtree(
    const std::vector<std::string>& lines, size_t* cursor,
    const Schema& schema) {
  LineSupplier supplier = [&lines, cursor]() -> Result<std::string> {
    if (*cursor >= lines.size()) {
      return Status::Corruption("unexpected end of subtree document");
    }
    return lines[(*cursor)++];
  };
  return ParseNode(supplier, schema);
}

Status SaveTree(const DecisionTree& tree, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  const std::string doc = SerializeTree(tree);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  if (std::fclose(f) != 0 || !ok) {
    return Status::IOError("cannot write " + path);
  }
  return Status::OK();
}

Result<DecisionTree> LoadTree(const std::string& path, const Schema& schema) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string doc;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) doc.append(buf, n);
  std::fclose(f);
  return DeserializeTree(doc, schema);
}

}  // namespace boat
