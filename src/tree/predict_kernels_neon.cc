// NEON block kernel for AArch64. NEON has no gather, so node fields are
// loaded per lane; the win over the scalar kernel is the 2-wide f64
// predicate evaluation (vcleq_f64 — false for NaN, so NaN goes right like
// the scalar `!(v <= t)`) and the lane-independent loads the level sweep
// exposes. Predictions are byte-identical to ScoreBlockScalar — the
// equivalence matrix in tests/compiled_tree_test.cpp runs this kernel on
// ARM hosts. NEON is baseline on AArch64, so no special build flags.

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstdint>

#include "tree/predict_kernels.h"

namespace boat::detail {

namespace {

// Categorical membership probe, identical to the scalar kernel's.
inline int32_t CategoricalGoRight(const NodePoolView& pool, double v,
                                  int32_t slot, int32_t off) {
  const int32_t c = static_cast<int32_t>(v);
  const bool left =
      c >= 0 && c < pool.slot_domain_bits[slot] &&
      ((pool.bits[static_cast<size_t>(off) + (static_cast<size_t>(c) >> 6)] >>
        (static_cast<uint32_t>(c) & 63)) &
       1) != 0;
  return left ? 0 : 1;
}

}  // namespace

void ScoreBlockNeon(const NodePoolView& pool, const double* col,
                    int64_t stride, int64_t nb, int32_t* act_idx,
                    int32_t* act_node, int32_t* out) {
  if (nb <= 0) return;
  if (pool.pair_child[0] == 0) {  // single-leaf tree
    for (int64_t i = 0; i < nb; ++i) out[i] = pool.label[0];
    return;
  }
  for (int64_t i = 0; i < nb; ++i) {
    act_idx[i] = static_cast<int32_t>(i);
    act_node[i] = 0;
  }
  int64_t na = nb;
  while (na > 0) {
    int64_t m = 0;
    int64_t k = 0;
    for (; k + 2 <= na; k += 2) {
      const int32_t i0 = act_idx[k], i1 = act_idx[k + 1];
      const int32_t n0 = act_node[k], n1 = act_node[k + 1];
      const int32_t s0 = pool.slot[n0], s1 = pool.slot[n1];
      const float64x2_t v = {
          col[static_cast<size_t>(s0) * static_cast<size_t>(stride) +
              static_cast<size_t>(i0)],
          col[static_cast<size_t>(s1) * static_cast<size_t>(stride) +
              static_cast<size_t>(i1)]};
      const float64x2_t t = {pool.threshold[n0], pool.threshold[n1]};
      // le lane = all-ones iff v <= t (false for NaN): right = !le.
      const uint64x2_t le = vcleq_f64(v, t);
      const int32_t off0 = pool.bitset_offset[n0];
      const int32_t off1 = pool.bitset_offset[n1];
      const int32_t right0 =
          off0 < 0 ? (vgetq_lane_u64(le, 0) != 0 ? 0 : 1)
                   : CategoricalGoRight(pool, vgetq_lane_f64(v, 0), s0, off0);
      const int32_t right1 =
          off1 < 0 ? (vgetq_lane_u64(le, 1) != 0 ? 0 : 1)
                   : CategoricalGoRight(pool, vgetq_lane_f64(v, 1), s1, off1);
      const int32_t next0 = pool.pair_child[2 * n0 + right0];
      const int32_t next1 = pool.pair_child[2 * n1 + right1];
      out[i0] = pool.label[next0];
      out[i1] = pool.label[next1];
      act_idx[m] = i0;
      act_node[m] = next0;
      m += pool.pair_child[2 * next0] == next0 ? 0 : 1;
      act_idx[m] = i1;
      act_node[m] = next1;
      m += pool.pair_child[2 * next1] == next1 ? 0 : 1;
    }
    for (; k < na; ++k) {  // odd tail lane
      const int32_t i = act_idx[k];
      const int32_t n = act_node[k];
      const int32_t s = pool.slot[n];
      const double v = col[static_cast<size_t>(s) *
                               static_cast<size_t>(stride) +
                           static_cast<size_t>(i)];
      const int32_t off = pool.bitset_offset[n];
      const int32_t right = off < 0 ? ((v <= pool.threshold[n]) ? 0 : 1)
                                    : CategoricalGoRight(pool, v, s, off);
      const int32_t next = pool.pair_child[2 * n + right];
      out[i] = pool.label[next];
      act_idx[m] = i;
      act_node[m] = next;
      m += pool.pair_child[2 * next] == next ? 0 : 1;
    }
    na = m;
  }
}

}  // namespace boat::detail

#endif  // AArch64 NEON
