// Binary decision-tree classifier structure.

#ifndef BOAT_TREE_DECISION_TREE_H_
#define BOAT_TREE_DECISION_TREE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "split/split.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace boat {

/// \brief A node of a binary decision tree.
///
/// Internal nodes carry a splitting criterion (tuples satisfying it follow
/// the left edge); leaves carry the majority class label. Every node also
/// records the class distribution of its family, which determines the leaf
/// label deterministically (majority, smallest class id on ties).
struct TreeNode {
  std::optional<Split> split;        ///< nullopt => leaf
  std::vector<int64_t> class_counts; ///< family class distribution
  std::unique_ptr<TreeNode> left;
  std::unique_ptr<TreeNode> right;

  bool is_leaf() const { return !split.has_value(); }

  /// \brief Majority class of the family (smallest class id wins ties).
  int32_t MajorityLabel() const;

  /// \brief Total family size (sum of class_counts).
  int64_t family_size() const;

  /// \brief Deep copy.
  std::unique_ptr<TreeNode> Clone() const;

  static std::unique_ptr<TreeNode> Leaf(std::vector<int64_t> counts);
  static std::unique_ptr<TreeNode> Internal(Split s,
                                            std::vector<int64_t> counts,
                                            std::unique_ptr<TreeNode> l,
                                            std::unique_ptr<TreeNode> r);
};

/// \brief A decision-tree classifier: a tree of TreeNodes plus the schema it
/// was grown against.
class DecisionTree {
 public:
  DecisionTree(Schema schema, std::unique_ptr<TreeNode> root);

  DecisionTree(DecisionTree&&) = default;
  DecisionTree& operator=(DecisionTree&&) = default;

  /// \brief Deep copy of the tree.
  DecisionTree Clone() const;

  /// \brief Predicts the class label of a record.
  [[nodiscard]] int32_t Classify(const Tuple& tuple) const;

  /// \brief Fraction of `tuples` whose label differs from the prediction.
  double MisclassificationRate(const std::vector<Tuple>& tuples) const;

  const Schema& schema() const { return schema_; }
  const TreeNode& root() const { return *root_; }
  TreeNode* mutable_root() { return root_.get(); }

  size_t num_nodes() const;
  size_t num_leaves() const;
  int depth() const;

  /// \brief Exact structural equality: same shape, same splitting criteria,
  /// same leaf labels. This is the paper's "exactly the same tree" relation.
  bool StructurallyEqual(const DecisionTree& other) const;

  /// \brief Human-readable rendering (indented, one node per line).
  std::string ToString() const;

 private:
  Schema schema_;
  std::unique_ptr<TreeNode> root_;
};

/// \brief Structural equality on subtrees (criteria + leaf labels).
bool SubtreesEqual(const TreeNode& a, const TreeNode& b);

}  // namespace boat

#endif  // BOAT_TREE_DECISION_TREE_H_
