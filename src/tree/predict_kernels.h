// Block scoring kernels for CompiledTree::Predict.
//
// The batch path scores tuples in L2-sized blocks. Each block is transposed
// once into a column-major scratch pane (one contiguous row of doubles per
// split attribute), then a kernel walks *tree levels over the whole block*
// instead of whole root-to-leaf paths over one tuple: every active lane
// advances one level per sweep through branchless index arithmetic
// (`next = pair_child[2 * node + go_right]`, leaves self-loop), settled
// lanes are compacted out, and their labels are written the moment they
// reach a leaf. The loads of different lanes are independent, so the
// memory-level parallelism the per-tuple walk cannot express is exposed to
// the hardware — and to SIMD.
//
// Kernels are interchangeable: every kernel must produce predictions
// byte-identical to DecisionTree::Classify (the scalar kernel is the
// reference; the equivalence matrix in tests/compiled_tree_test.cpp checks
// all of them against the pointer walk). Dispatch is at runtime: AVX2 on
// x86-64 when the CPU supports it, NEON on AArch64, with the scalar block
// kernel as the always-available fallback and a BOAT_SIMD=off override (see
// ChooseBlockKernel).

#ifndef BOAT_TREE_PREDICT_KERNELS_H_
#define BOAT_TREE_PREDICT_KERNELS_H_

#include <cstdint>

namespace boat::detail {

/// \brief POD view over a CompiledTree's node pool, precomputed for the
/// block kernels. All arrays are indexed by the dense preorder node id
/// except `slot_domain_bits`, which is indexed by column slot.
struct NodePoolView {
  const int32_t* slot;           ///< column slot of the split attr; leaf: 0
  const double* threshold;       ///< numeric: go left iff value <= threshold
  const int32_t* bitset_offset;  ///< word offset into bits; -1 = numeric
  /// Adjacent child pairs: [2n] = left child, [2n + 1] = right child.
  /// Leaves store their own id in both slots (self-loop), so
  /// `pair_child[2n] == n` is the leaf test and level sweeps never branch
  /// on node kind.
  const int32_t* pair_child;
  const uint64_t* bits;          ///< shared categorical bitset pool
  const int32_t* slot_domain_bits;  ///< per-slot bitset width; 0 = numeric
  const int32_t* label;          ///< leaf: precomputed majority label
};

/// \brief Scores one transposed block. `col` is column-major scratch:
/// the value of column slot s for block-lane i is col[s * stride + i],
/// i in [0, nb). Writes out[i] for every lane. `act_idx` and `act_node` are
/// caller-provided scratch of at least nb + kActPad int32 each (kernels pad
/// past the live prefix so vector sweeps can overread safely).
using BlockKernelFn = void (*)(const NodePoolView& pool, const double* col,
                               int64_t stride, int64_t nb, int32_t* act_idx,
                               int32_t* act_node, int32_t* out);

/// Scratch padding required past nb in act_idx / act_node.
inline constexpr int64_t kActPad = 8;

/// \brief Reference scalar block kernel (always available, every platform).
void ScoreBlockScalar(const NodePoolView& pool, const double* col,
                      int64_t stride, int64_t nb, int32_t* act_idx,
                      int32_t* act_node, int32_t* out);

#if defined(__x86_64__) || defined(_M_X64)
/// \brief AVX2 block kernel: 8 lanes per sweep, gathered node fields,
/// vector predicate evaluation, mask-compacted active set. Call only when
/// Avx2Supported() is true.
void ScoreBlockAvx2(const NodePoolView& pool, const double* col,
                    int64_t stride, int64_t nb, int32_t* act_idx,
                    int32_t* act_node, int32_t* out);
bool Avx2Supported();
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
/// \brief NEON block kernel: 2-lane f64 predicate evaluation (AArch64 has
/// no gather, so node fields are loaded per lane).
void ScoreBlockNeon(const NodePoolView& pool, const double* col,
                    int64_t stride, int64_t nb, int32_t* act_idx,
                    int32_t* act_node, int32_t* out);
#endif

/// \brief A dispatched kernel plus its name ("avx2", "neon", "scalar") for
/// diagnostics and bench trajectories.
struct BlockKernelChoice {
  BlockKernelFn fn;
  const char* name;
};

/// \brief True when a SIMD block kernel exists for this build *and* the
/// running CPU supports it.
bool SimdBlockKernelAvailable();

/// \brief Picks the fastest kernel: SIMD when `allow_simd` and the hardware
/// supports it, otherwise the scalar block kernel. Pure CPU dispatch — the
/// BOAT_SIMD environment override is applied by the caller (CompiledTree),
/// not here.
BlockKernelChoice ChooseBlockKernel(bool allow_simd);

}  // namespace boat::detail

#endif  // BOAT_TREE_PREDICT_KERNELS_H_
