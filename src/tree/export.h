// Human-oriented tree exports: classification rules ("due to their intuitive
// representation, the resulting model is easy to assimilate by humans") and
// Graphviz dot rendering.

#ifndef BOAT_TREE_EXPORT_H_
#define BOAT_TREE_EXPORT_H_

#include <string>
#include <vector>

#include "tree/decision_tree.h"

namespace boat {

/// \brief Optional dictionaries mapping categorical ids and class ids back
/// to human-readable names (e.g. from a CsvDataset).
struct ExportNames {
  /// Per attribute: category id -> name (empty vectors for numericals).
  std::vector<std::vector<std::string>> categories;
  /// Class id -> name.
  std::vector<std::string> classes;
};

/// \brief One classification rule per leaf: the conjunction of the splitting
/// predicates on the path from the root (the paper's f_n -> c encoding).
std::string ExportRules(const DecisionTree& tree,
                        const ExportNames& names = ExportNames());

/// \brief Graphviz dot document for the tree.
std::string ExportDot(const DecisionTree& tree,
                      const ExportNames& names = ExportNames());

}  // namespace boat

#endif  // BOAT_TREE_EXPORT_H_
