// AVX2 block kernel: the level-synchronous sweep of ScoreBlockScalar with 8
// lanes per step. Node fields are fetched with vector gathers, the numeric
// predicate is one vcmppd (NLE_UQ, so NaN goes right exactly like the
// scalar `!(v <= t)`), categorical membership is a masked 64-bit gather into
// the shared bitset pool plus a variable shift, and the surviving (still
// internal) lanes are left-packed with a permutevar LUT. Predictions are
// byte-identical to ScoreBlockScalar / DecisionTree::Classify — only the
// schedule differs.
//
// This translation unit alone is built with -mavx2 (see src/CMakeLists.txt);
// callers must check Avx2Supported() first, which keeps the rest of the
// library runnable on any x86-64.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstdint>

#include "tree/predict_kernels.h"

namespace boat::detail {

namespace {

// lut[mask] packs, one byte each, the lane indices of mask's set bits in
// ascending order; _mm256_cvtepu8_epi32 of it feeds permutevar8x32 to
// left-pack surviving lanes.
struct CompactLut {
  alignas(64) uint64_t packed[256];
  constexpr CompactLut() : packed() {
    for (int m = 0; m < 256; ++m) {
      uint64_t p = 0;
      int out = 0;
      for (int b = 0; b < 8; ++b) {
        if ((m & (1 << b)) != 0) {
          p |= static_cast<uint64_t>(b) << (8 * out);
          ++out;
        }
      }
      packed[m] = p;
    }
  }
};
constexpr CompactLut kCompactLut{};

// Packs the sign dwords of two 4x64-bit compare masks into one 8x32 mask
// (lanes 0-3 from lo, 4-7 from hi).
inline __m256i PackMask64(__m256i lo, __m256i hi) {
  const __m256i even = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m128i l =
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(lo, even));
  const __m128i h =
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(hi, even));
  return _mm256_set_m128i(h, l);
}

// Unconditional f64 gather via the masked form: GCC's unmasked
// _mm256_i32gather_pd expands through _mm256_undefined_pd and trips
// -Wmaybe-uninitialized under -Werror; the all-ones-mask form is the same
// instruction without the bogus warning.
inline __m256d GatherPd(const double* base, __m128i vindex) {
  const __m256d ones =
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, vindex, ones, 8);
}

}  // namespace

bool Avx2Supported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void ScoreBlockAvx2(const NodePoolView& pool, const double* col,
                    int64_t stride, int64_t nb, int32_t* act_idx,
                    int32_t* act_node, int32_t* out) {
  if (nb <= 0) return;
  if (pool.pair_child[0] == 0) {  // single-leaf tree
    for (int64_t i = 0; i < nb; ++i) out[i] = pool.label[0];
    return;
  }
  for (int64_t i = 0; i < nb; ++i) {
    act_idx[i] = static_cast<int32_t>(i);
    act_node[i] = 0;
  }
  // Pad so full-width loads past the live prefix see valid lane values
  // (results of padding lanes are discarded via the valid-bit mask).
  for (int64_t i = nb; i < nb + kActPad; ++i) {
    act_idx[i] = 0;
    act_node[i] = 0;
  }

  const auto* node_i32 = reinterpret_cast<const int*>(pool.slot);
  const auto* off_i32 = reinterpret_cast<const int*>(pool.bitset_offset);
  const auto* pair_i32 = reinterpret_cast<const int*>(pool.pair_child);
  const auto* dw_i32 = reinterpret_cast<const int*>(pool.slot_domain_bits);
  const auto* label_i32 = reinterpret_cast<const int*>(pool.label);
  const auto* bits_i64 = reinterpret_cast<const long long*>(pool.bits);

  const __m256i vstride = _mm256_set1_epi32(static_cast<int32_t>(stride));
  const __m256i vneg1 = _mm256_set1_epi32(-1);
  const __m256i v63_64 = _mm256_set1_epi64x(63);
  const __m256i vone_64 = _mm256_set1_epi64x(1);

  int64_t na = nb;
  while (na > 0) {
    int64_t m = 0;
    for (int64_t k = 0; k < na; k += 8) {
      const int valid = static_cast<int>(na - k < 8 ? na - k : 8);
      const unsigned valid_mask = (1u << valid) - 1u;
      const __m256i vidx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(act_idx + k));
      const __m256i vnode = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(act_node + k));

      const __m256i slot = _mm256_i32gather_epi32(node_i32, vnode, 4);
      const __m256i colidx =
          _mm256_add_epi32(_mm256_mullo_epi32(slot, vstride), vidx);
      const __m128i colidx_lo = _mm256_castsi256_si128(colidx);
      const __m128i colidx_hi = _mm256_extracti128_si256(colidx, 1);
      const __m256d v_lo = GatherPd(col, colidx_lo);
      const __m256d v_hi = GatherPd(col, colidx_hi);
      const __m128i vnode_lo = _mm256_castsi256_si128(vnode);
      const __m128i vnode_hi = _mm256_extracti128_si256(vnode, 1);
      const __m256d t_lo = GatherPd(pool.threshold, vnode_lo);
      const __m256d t_hi = GatherPd(pool.threshold, vnode_hi);

      // Numeric: go right iff !(v <= t); NLE_UQ is true for NaN, matching
      // the scalar comparison semantics exactly.
      const __m256i right_num = PackMask64(
          _mm256_castpd_si256(_mm256_cmp_pd(v_lo, t_lo, _CMP_NLE_UQ)),
          _mm256_castpd_si256(_mm256_cmp_pd(v_hi, t_hi, _CMP_NLE_UQ)));

      const __m256i off = _mm256_i32gather_epi32(off_i32, vnode, 4);
      const __m256i is_cat = _mm256_cmpgt_epi32(off, vneg1);
      __m256i right = _mm256_andnot_si256(is_cat, right_num);

      if (_mm256_movemask_epi8(is_cat) != 0) {
        // Categorical: c = (int32)v truncated toward zero (cvttpd matches
        // the scalar cast), left iff 0 <= c < width and bit c is set.
        const __m256i c = _mm256_set_m128i(_mm256_cvttpd_epi32(v_hi),
                                           _mm256_cvttpd_epi32(v_lo));
        const __m256i dw = _mm256_i32gather_epi32(dw_i32, slot, 4);
        const __m256i in_dom = _mm256_and_si256(
            _mm256_cmpgt_epi32(c, vneg1), _mm256_cmpgt_epi32(dw, c));
        const __m256i probe = _mm256_and_si256(is_cat, in_dom);
        const __m256i widx =
            _mm256_add_epi32(off, _mm256_srai_epi32(c, 6));
        const __m128i probe_lo_m = _mm256_castsi256_si128(probe);
        const __m128i probe_hi_m = _mm256_extracti128_si256(probe, 1);
        const __m256i mask_lo = _mm256_cvtepi32_epi64(probe_lo_m);
        const __m256i mask_hi = _mm256_cvtepi32_epi64(probe_hi_m);
        // Out-of-domain / numeric / padding lanes gather nothing (word 0),
        // so their bit is 0 and they fall through to "right", exactly like
        // the scalar short-circuit.
        const __m256i word_lo = _mm256_mask_i32gather_epi64(
            _mm256_setzero_si256(), bits_i64, _mm256_castsi256_si128(widx),
            mask_lo, 8);
        const __m256i word_hi = _mm256_mask_i32gather_epi64(
            _mm256_setzero_si256(), bits_i64,
            _mm256_extracti128_si256(widx, 1), mask_hi, 8);
        const __m256i c64_lo =
            _mm256_cvtepi32_epi64(_mm256_castsi256_si128(c));
        const __m256i c64_hi =
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(c, 1));
        const __m256i bit_lo = _mm256_and_si256(
            _mm256_srlv_epi64(word_lo, _mm256_and_si256(c64_lo, v63_64)),
            vone_64);
        const __m256i bit_hi = _mm256_and_si256(
            _mm256_srlv_epi64(word_hi, _mm256_and_si256(c64_hi, v63_64)),
            vone_64);
        const __m256i left_cat =
            PackMask64(_mm256_cmpeq_epi64(bit_lo, vone_64),
                       _mm256_cmpeq_epi64(bit_hi, vone_64));
        const __m256i right_cat = _mm256_andnot_si256(left_cat, vneg1);
        right = _mm256_or_si256(
            right, _mm256_and_si256(is_cat, right_cat));
      }

      // next = pair_child[2 * node + go_right]; settled iff next self-loops.
      const __m256i right01 = _mm256_srli_epi32(right, 31);
      const __m256i childidx =
          _mm256_add_epi32(_mm256_add_epi32(vnode, vnode), right01);
      const __m256i next = _mm256_i32gather_epi32(pair_i32, childidx, 4);
      const __m256i pc = _mm256_i32gather_epi32(
          pair_i32, _mm256_add_epi32(next, next), 4);
      const __m256i settled = _mm256_cmpeq_epi32(pc, next);
      const __m256i lbl = _mm256_i32gather_epi32(label_i32, next, 4);

      // AVX2 has no scatter: spill lanes and store labels scalar. Internal
      // nodes write -1, overwritten when the lane settles (same
      // write-every-level contract as the scalar kernel).
      alignas(32) int32_t idx_buf[8];
      alignas(32) int32_t lbl_buf[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx_buf), vidx);
      _mm256_store_si256(reinterpret_cast<__m256i*>(lbl_buf), lbl);
      for (int j = 0; j < valid; ++j) out[idx_buf[j]] = lbl_buf[j];

      // Left-pack surviving lanes onto the active arrays. m <= k always, so
      // the in-place store never overwrites a chunk not yet read.
      const unsigned keep =
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(
              _mm256_xor_si256(settled, vneg1)))) &
          valid_mask;
      const __m256i perm = _mm256_cvtepu8_epi32(_mm_cvtsi64_si128(
          static_cast<long long>(kCompactLut.packed[keep])));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(act_idx + m),
                          _mm256_permutevar8x32_epi32(vidx, perm));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(act_node + m),
                          _mm256_permutevar8x32_epi32(next, perm));
      m += __builtin_popcount(keep);
    }
    // Re-pad: the tail of the last packed store may hold copies of settled
    // lanes; point padding back at safe lane values.
    for (int64_t i = m; i < m + kActPad && i < nb + kActPad; ++i) {
      act_idx[i] = 0;
      act_node[i] = 0;
    }
    na = m;
  }
}

}  // namespace boat::detail

#endif  // x86-64
