// Model evaluation utilities: confusion matrices, holdout splits, and
// k-fold cross-validation.
//
// The paper notes (Section 2.1) that its techniques "can be used to speed up
// cross-validation for large training datasets as well"; CrossValidate is
// parameterized by an arbitrary builder so it runs over the in-memory
// reference builder, RainForest, or BOAT alike.

#ifndef BOAT_TREE_EVALUATION_H_
#define BOAT_TREE_EVALUATION_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tree/compiled_tree.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief k x k confusion matrix (rows: actual, columns: predicted).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(int32_t actual, int32_t predicted, int64_t weight = 1);

  int num_classes() const { return k_; }
  int64_t count(int32_t actual, int32_t predicted) const {
    return counts_[static_cast<size_t>(actual) * k_ + predicted];
  }
  int64_t total() const;

  /// \brief Fraction of correctly classified records.
  double Accuracy() const;
  /// \brief Per-class precision/recall (0 when the denominator is empty).
  double Precision(int32_t cls) const;
  double Recall(int32_t cls) const;

  /// \brief Aligned text rendering.
  std::string ToString() const;

 private:
  int k_;
  std::vector<int64_t> counts_;
};

/// \brief Classifies every tuple and tallies the confusion matrix. Scoring
/// runs through the flat CompiledTree layout; `num_threads` shards the batch
/// (0 = all cores, 1 = serial) without changing any count.
ConfusionMatrix Evaluate(const DecisionTree& tree,
                         const std::vector<Tuple>& data, int num_threads = 1);

/// \brief Evaluate against an already-compiled tree (skips recompilation
/// when the same model scores many batches).
ConfusionMatrix Evaluate(const CompiledTree& tree,
                         const std::vector<Tuple>& data, int num_threads = 1);

/// \brief Deterministic shuffled holdout split: `test_fraction` of `data`
/// goes into the second result.
std::pair<std::vector<Tuple>, std::vector<Tuple>> HoldoutSplit(
    std::vector<Tuple> data, double test_fraction, Rng* rng);

/// \brief Per-fold result of cross-validation.
struct FoldResult {
  double accuracy = 0;
  size_t tree_nodes = 0;
};

/// \brief Summary over folds.
struct CrossValidationResult {
  std::vector<FoldResult> folds;
  double mean_accuracy = 0;
  double stddev_accuracy = 0;
};

/// \brief k-fold cross-validation of an arbitrary tree builder. The builder
/// receives the training partition and returns a tree.
CrossValidationResult CrossValidate(
    const std::vector<Tuple>& data, int folds, Rng* rng,
    const std::function<DecisionTree(const std::vector<Tuple>&)>& builder);

}  // namespace boat

#endif  // BOAT_TREE_EVALUATION_H_
