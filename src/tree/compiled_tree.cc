#include "tree/compiled_tree.h"

#include <algorithm>
#include <limits>

#include "common/parallel.h"
#include "common/status.h"

namespace boat {

CompiledTree::CompiledTree(const DecisionTree& tree) : schema_(tree.schema()) {
  // Per-attribute bitset widths: the declared cardinality, widened if any
  // split subset mentions a larger category (so the probe bound is exact).
  domain_bits_.assign(static_cast<size_t>(schema_.num_attributes()), 0);
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    if (schema_.IsCategorical(a)) {
      domain_bits_[static_cast<size_t>(a)] = schema_.attribute(a).cardinality;
    }
  }
  std::vector<const TreeNode*> stack;  // explicit stack: depth-safe walks
  stack.push_back(&tree.root());
  while (!stack.empty()) {
    const TreeNode* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) continue;
    for (const int32_t c : node->split->subset) {
      auto& width = domain_bits_[static_cast<size_t>(node->split->attribute)];
      width = std::max(width, c + 1);
    }
    stack.push_back(node->left.get());
    stack.push_back(node->right.get());
  }

  // Assign preorder ids (left subtree first, so left child = parent + 1) and
  // fill the arrays. Emitting a node costs O(1); categorical nodes also
  // claim a bitset slab in the shared pool.
  struct Frame {
    const TreeNode* node;
    int32_t parent;   // id of the parent, -1 for the root
    bool is_left;     // which child slot of the parent to patch
  };
  std::vector<Frame> work;
  work.push_back({&tree.root(), -1, false});
  while (!work.empty()) {
    const Frame f = work.back();
    work.pop_back();
    const int32_t id = static_cast<int32_t>(attr_.size());
    if (f.parent >= 0) {
      (f.is_left ? left_ : right_)[static_cast<size_t>(f.parent)] = id;
    }
    if (f.node->is_leaf()) {
      attr_.push_back(-1);
      left_.push_back(-1);
      right_.push_back(-1);
      threshold_.push_back(0.0);
      bitset_offset_.push_back(-1);
      label_.push_back(f.node->MajorityLabel());
      continue;
    }
    const Split& split = *f.node->split;
    attr_.push_back(split.attribute);
    left_.push_back(-1);   // patched when the child is emitted
    right_.push_back(-1);
    label_.push_back(-1);
    if (split.is_numerical) {
      threshold_.push_back(split.value);
      bitset_offset_.push_back(-1);
    } else {
      threshold_.push_back(0.0);
      const int32_t width = domain_bits_[static_cast<size_t>(split.attribute)];
      const size_t words = (static_cast<size_t>(width) + 63) / 64;
      const size_t offset = bits_.size();
      if (offset > static_cast<size_t>(
                       std::numeric_limits<int32_t>::max() - 64)) {
        FatalError("CompiledTree: categorical bitset pool exceeds int32");
      }
      bits_.resize(offset + words, 0);
      for (const int32_t c : split.subset) {
        bits_[offset + (static_cast<size_t>(c) >> 6)] |=
            uint64_t{1} << (static_cast<uint32_t>(c) & 63);
      }
      bitset_offset_.push_back(static_cast<int32_t>(offset));
    }
    // Right pushed first so the left child pops next (preorder).
    work.push_back({f.node->right.get(), id, false});
    work.push_back({f.node->left.get(), id, true});
  }
}

void CompiledTree::Predict(std::span<const Tuple> tuples,
                           std::span<int32_t> out, int num_threads) const {
  if (out.size() != tuples.size()) {
    FatalError("CompiledTree::Predict: output span size mismatch");
  }
  const int64_t n = static_cast<int64_t>(tuples.size());
  const int threads = ResolveThreadCount(num_threads);
  // Fixed-size shards keep the work queue balanced; each shard writes only
  // its own output slots, so the result is identical for any thread count.
  constexpr int64_t kShard = 2048;
  const int64_t shards = (n + kShard - 1) / kShard;
  ParallelFor(shards, threads, [&](int64_t s) {
    const int64_t begin = s * kShard;
    const int64_t end = std::min(n, begin + kShard);
    for (int64_t i = begin; i < end; ++i) {
      out[static_cast<size_t>(i)] = Classify(tuples[static_cast<size_t>(i)]);
    }
  });
}

std::vector<int32_t> CompiledTree::Predict(std::span<const Tuple> tuples,
                                           int num_threads) const {
  std::vector<int32_t> out(tuples.size());
  Predict(tuples, out, num_threads);
  return out;
}

double CompiledTree::MisclassificationRate(std::span<const Tuple> tuples,
                                           int num_threads) const {
  if (tuples.empty()) return 0.0;
  const std::vector<int32_t> predicted = Predict(tuples, num_threads);
  int64_t wrong = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (predicted[i] != tuples[i].label()) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(tuples.size());
}

size_t CompiledTree::pool_bytes() const {
  return attr_.size() * (sizeof(int32_t) * 4 + sizeof(double) +
                         sizeof(int32_t)) +
         bits_.size() * sizeof(uint64_t) +
         domain_bits_.size() * sizeof(int32_t);
}

}  // namespace boat
