#include "tree/compiled_tree.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>

#include "common/parallel.h"
#include "common/status.h"
#include "tree/predict_kernels.h"

namespace boat {

namespace {

/// Tuples per block: with the Agrawal schema (9 columns) the transposed
/// pane is 36 KiB — the pane, the active-lane arrays, and the output slice
/// all sit in L2 together on any modern core.
constexpr int64_t kBlockTuples = 512;

/// Static stripe grain for the output array: 16 int32 = one 64-byte cache
/// line, so no two worker threads ever store to the same line of `out`.
constexpr int64_t kOutGrain = 16;

/// Below this batch size the per-tuple loop beats the transpose + sweep
/// setup even when a caller asked for a block kernel explicitly; outputs
/// are identical either way.
constexpr int64_t kMinBlockBatch = 32;

// kAuto's tuple/block crossover. The block kernels win by streaming a
// batch too large for the cache through a transposed pane; the per-tuple
// walk wins whenever the working set (batch + hot tree levels) stays
// cache-resident, because the block path pays the transpose and the
// level-synchronous sweep re-visits every live lane per level. Measured on
// the Agrawal schema (see BENCH_inference.json for this host's t1 rates):
// the tuple loop is 2-5x faster below ~2k tuples at every depth, the block
// kernels break even around 2k tuples for deep (>= ~20 level) trees, and
// shallow trees need ~16k tuples before blocking pays at all.
constexpr int64_t kTupleCrossoverBatch = 2048;   ///< below: always tuple
constexpr int kTupleCrossoverDepth = 20;         ///< deep-tree threshold
constexpr int64_t kTupleCrossoverBatchShallow = 16384;  ///< shallow trees

/// BOAT_SIMD environment override, mirroring BOAT_GROWTH_ENGINE. Kernel
/// choice never changes predictions — every kernel is byte-identical by
/// contract (enforced by the equivalence matrix in
/// tests/compiled_tree_test.cpp).
enum class SimdMode {
  kAuto,         ///< unset/unknown: crossover dispatch, SIMD if available
  kForceScalar,  ///< "off"/"0"/"scalar"/"false": scalar block kernel
  kForceTuple,   ///< "tuple": per-tuple loop regardless of batch size
  kForceBlock,   ///< "block"/"simd"/"on"/"1": block path, skip crossover
};

SimdMode SimdModeByEnv() {
  // determinism-lint: allow(kernel selection is output-invariant; all kernels produce byte-identical predictions)
  const char* env = std::getenv("BOAT_SIMD");
  if (env == nullptr || env[0] == '\0') return SimdMode::kAuto;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "scalar") == 0 || std::strcmp(env, "false") == 0) {
    return SimdMode::kForceScalar;
  }
  if (std::strcmp(env, "tuple") == 0) return SimdMode::kForceTuple;
  if (std::strcmp(env, "block") == 0 || std::strcmp(env, "simd") == 0 ||
      std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) {
    return SimdMode::kForceBlock;
  }
  return SimdMode::kAuto;
}

}  // namespace

CompiledTree::CompiledTree(const DecisionTree& tree)
    : schema_(tree.schema()),
      depth_(static_cast<int32_t>(tree.depth())) {
  // Per-attribute bitset widths: the declared cardinality, widened if any
  // split subset mentions a larger category (so the probe bound is exact).
  domain_bits_.assign(static_cast<size_t>(schema_.num_attributes()), 0);
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    if (schema_.IsCategorical(a)) {
      domain_bits_[static_cast<size_t>(a)] = schema_.attribute(a).cardinality;
    }
  }
  std::vector<const TreeNode*> stack;  // explicit stack: depth-safe walks
  stack.push_back(&tree.root());
  while (!stack.empty()) {
    const TreeNode* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) continue;
    for (const int32_t c : node->split->subset) {
      auto& width = domain_bits_[static_cast<size_t>(node->split->attribute)];
      width = std::max(width, c + 1);
    }
    stack.push_back(node->left.get());
    stack.push_back(node->right.get());
  }

  // Assign preorder ids (left subtree first, so left child = parent + 1) and
  // fill the arrays. Emitting a node costs O(1); categorical nodes also
  // claim a bitset slab in the shared pool.
  struct Frame {
    const TreeNode* node;
    int32_t parent;   // id of the parent, -1 for the root
    bool is_left;     // which child slot of the parent to patch
  };
  std::vector<Frame> work;
  work.push_back({&tree.root(), -1, false});
  while (!work.empty()) {
    const Frame f = work.back();
    work.pop_back();
    const int32_t id = static_cast<int32_t>(attr_.size());
    if (f.parent >= 0) {
      (f.is_left ? left_ : right_)[static_cast<size_t>(f.parent)] = id;
    }
    if (f.node->is_leaf()) {
      attr_.push_back(-1);
      left_.push_back(-1);
      right_.push_back(-1);
      threshold_.push_back(0.0);
      bitset_offset_.push_back(-1);
      label_.push_back(f.node->MajorityLabel());
      continue;
    }
    const Split& split = *f.node->split;
    attr_.push_back(split.attribute);
    left_.push_back(-1);   // patched when the child is emitted
    right_.push_back(-1);
    label_.push_back(-1);
    if (split.is_numerical) {
      threshold_.push_back(split.value);
      bitset_offset_.push_back(-1);
    } else {
      threshold_.push_back(0.0);
      const int32_t width = domain_bits_[static_cast<size_t>(split.attribute)];
      const size_t words = (static_cast<size_t>(width) + 63) / 64;
      const size_t offset = bits_.size();
      if (offset > static_cast<size_t>(
                       std::numeric_limits<int32_t>::max() - 64)) {
        FatalError("CompiledTree: categorical bitset pool exceeds int32");
      }
      bits_.resize(offset + words, 0);
      for (const int32_t c : split.subset) {
        bits_[offset + (static_cast<size_t>(c) >> 6)] |=
            uint64_t{1} << (static_cast<uint32_t>(c) & 63);
      }
      bitset_offset_.push_back(static_cast<int32_t>(offset));
    }
    // Right pushed first so the left child pops next (preorder).
    work.push_back({f.node->right.get(), id, false});
    work.push_back({f.node->left.get(), id, true});
  }

  // ---- Block-kernel layout: column slots + adjacent child pairs.
  // The kernels index pair_child_ at 2 * id, so ids must fit with headroom.
  if (attr_.size() > (size_t{1} << 30)) {
    FatalError("CompiledTree: node pool exceeds the block-kernel id range");
  }
  const size_t nodes = attr_.size();
  std::vector<int32_t> attr_slot(
      static_cast<size_t>(schema_.num_attributes()), -1);
  kslot_.resize(nodes);
  pair_child_.resize(2 * nodes);
  for (size_t n = 0; n < nodes; ++n) {
    if (attr_[n] < 0) {
      // Leaf: self-loop, and a harmless slot 0 so level sweeps can load a
      // value unconditionally (the comparison result is never used).
      kslot_[n] = 0;
      pair_child_[2 * n] = static_cast<int32_t>(n);
      pair_child_[2 * n + 1] = static_cast<int32_t>(n);
      continue;
    }
    auto& slot = attr_slot[static_cast<size_t>(attr_[n])];
    if (slot < 0) {
      // First split on this attribute (preorder, so slot assignment is
      // deterministic): claim the next column slot.
      slot = static_cast<int32_t>(slot_attr_.size());
      slot_attr_.push_back(attr_[n]);
      slot_domain_bits_.push_back(
          domain_bits_[static_cast<size_t>(attr_[n])]);
    }
    kslot_[n] = slot;
    pair_child_[2 * n] = left_[n];
    pair_child_[2 * n + 1] = right_[n];
  }
}

void CompiledTree::Predict(std::span<const Tuple> tuples,
                           std::span<int32_t> out, int num_threads) const {
  PredictWithKernel(tuples, out, num_threads, PredictKernel::kAuto);
}

void CompiledTree::PredictWithKernel(std::span<const Tuple> tuples,
                                     std::span<int32_t> out, int num_threads,
                                     PredictKernel kernel) const {
  if (out.size() != tuples.size()) {
    FatalError("CompiledTree::Predict: output span size mismatch");
  }
  const int64_t n = static_cast<int64_t>(tuples.size());
  if (n == 0) return;
  const int threads = ResolveThreadCount(num_threads);
  if (kernel == PredictKernel::kAuto) {
    switch (SimdModeByEnv()) {
      case SimdMode::kForceScalar:
        kernel = PredictKernel::kScalarBlock;
        break;
      case SimdMode::kForceTuple:
        kernel = PredictKernel::kScalarTuple;
        break;
      case SimdMode::kForceBlock:
        kernel = PredictKernel::kSimd;
        break;
      case SimdMode::kAuto:
        // Batch-size/depth crossover (constants above): block the batch
        // only when it is big enough — and, for shallow trees, much bigger
        // — for the transpose + level sweeps to beat the per-tuple walk.
        kernel = (n >= kTupleCrossoverBatch &&
                  (depth_ >= kTupleCrossoverDepth ||
                   n >= kTupleCrossoverBatchShallow))
                     ? PredictKernel::kSimd
                     : PredictKernel::kScalarTuple;
        break;
    }
  }
  // Static contiguous stripes (no shared shard counter — fixed-cost work
  // would serialize on it) with cache-line-aligned slab boundaries; every
  // stripe writes only its own output slots, so the result is identical
  // for any thread count and any kernel.
  if (kernel == PredictKernel::kScalarTuple || n < kMinBlockBatch) {
    ParallelForStatic(n, threads, kOutGrain,
                      [&](int64_t begin, int64_t end, int) {
                        for (int64_t i = begin; i < end; ++i) {
                          out[static_cast<size_t>(i)] =
                              Classify(tuples[static_cast<size_t>(i)]);
                        }
                      });
    return;
  }
  const detail::BlockKernelChoice choice =
      detail::ChooseBlockKernel(kernel == PredictKernel::kSimd);
  ParallelForStatic(n, threads, kOutGrain,
                    [&](int64_t begin, int64_t end, int) {
                      ScoreRange(tuples, out, begin, end, choice.fn);
                    });
}

void CompiledTree::ScoreRange(std::span<const Tuple> tuples,
                              std::span<int32_t> out, int64_t begin,
                              int64_t end, detail::BlockKernelFn fn) const {
  const size_t slots = slot_attr_.size();
  // Per-call (= per-thread) scratch: the transposed column pane plus the
  // two active-lane arrays, padded for the SIMD kernels' full-width sweeps.
  std::vector<double> col(std::max<size_t>(slots, 1) *
                          static_cast<size_t>(kBlockTuples));
  const size_t act_cap =
      static_cast<size_t>(kBlockTuples + detail::kActPad);
  std::vector<int32_t> act(2 * act_cap);
  const detail::NodePoolView pool{
      kslot_.data(),      threshold_.data(),
      bitset_offset_.data(), pair_child_.data(),
      bits_.data(),       slot_domain_bits_.data(),
      label_.data()};
  for (int64_t b = begin; b < end; b += kBlockTuples) {
    const int64_t nb = std::min(kBlockTuples, end - b);
    // Transpose once: column-major pane, one contiguous row per used
    // attribute. Reads each tuple's value vector exactly once.
    for (int64_t i = 0; i < nb; ++i) {
      const std::vector<double>& values =
          tuples[static_cast<size_t>(b + i)].values();
      for (size_t s = 0; s < slots; ++s) {
        col[s * static_cast<size_t>(kBlockTuples) +
            static_cast<size_t>(i)] =
            values[static_cast<size_t>(slot_attr_[s])];
      }
    }
    fn(pool, col.data(), kBlockTuples, nb, act.data(),
       act.data() + act_cap, out.data() + b);
  }
}

std::vector<int32_t> CompiledTree::Predict(std::span<const Tuple> tuples,
                                           int num_threads) const {
  std::vector<int32_t> out(tuples.size());
  Predict(tuples, out, num_threads);
  return out;
}

bool CompiledTree::SimdAvailable() {
  return detail::SimdBlockKernelAvailable();
}

const char* CompiledTree::ActiveKernelName() {
  switch (SimdModeByEnv()) {
    case SimdMode::kForceTuple:
      return "tuple";
    case SimdMode::kForceScalar:
      return detail::ChooseBlockKernel(false).name;
    default:
      return detail::ChooseBlockKernel(true).name;
  }
}

double CompiledTree::MisclassificationRate(std::span<const Tuple> tuples,
                                           int num_threads) const {
  if (tuples.empty()) return 0.0;
  // Score into uninitialized-capacity storage: Predict writes every slot,
  // so the redundant zero-fill of a sized vector is skipped on this path.
  const auto predicted =
      std::make_unique_for_overwrite<int32_t[]>(tuples.size());
  Predict(tuples, std::span<int32_t>(predicted.get(), tuples.size()),
          num_threads);
  int64_t wrong = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (predicted[i] != tuples[i].label()) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(tuples.size());
}

size_t CompiledTree::pool_bytes() const {
  return attr_.size() * (sizeof(int32_t) * 4 + sizeof(double) +
                         sizeof(int32_t)) +
         bits_.size() * sizeof(uint64_t) +
         domain_bits_.size() * sizeof(int32_t);
}

}  // namespace boat
