#include "tree/column_dataset.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "common/status.h"

namespace boat {

ColumnDataset::ColumnDataset(const Schema& schema) : schema_(&schema) {
  const int m = schema.num_attributes();
  numeric_cols_.resize(m);
  categorical_cols_.resize(m);
  sorted_.resize(m);
}

ColumnDataset::ColumnDataset(const Schema& schema,
                             const std::vector<Tuple>& tuples,
                             int num_threads)
    : ColumnDataset(schema) {
  Reserve(static_cast<int64_t>(tuples.size()));
  for (const Tuple& t : tuples) Append(t);
  Seal(num_threads);
}

void ColumnDataset::Reserve(int64_t rows) {
  const size_t n = static_cast<size_t>(rows);
  for (int i = 0; i < schema_->num_attributes(); ++i) {
    if (schema_->IsNumerical(i)) {
      numeric_cols_[i].reserve(n);
    } else {
      categorical_cols_[i].reserve(n);
    }
  }
  labels_.reserve(n);
}

void ColumnDataset::Append(const Tuple& tuple) {
  if (sealed_) FatalError("ColumnDataset::Append after Seal");
  for (int i = 0; i < schema_->num_attributes(); ++i) {
    if (schema_->IsNumerical(i)) {
      numeric_cols_[i].push_back(tuple.value(i));
    } else {
      categorical_cols_[i].push_back(tuple.category(i));
    }
  }
  labels_.push_back(tuple.label());
}

void ColumnDataset::Seal(int num_threads) {
  if (sealed_) return;
  sealed_ = true;
  const uint32_t n = static_cast<uint32_t>(labels_.size());
  std::vector<int> numeric_attrs;
  for (int attr = 0; attr < schema_->num_attributes(); ++attr) {
    if (schema_->IsNumerical(attr)) numeric_attrs.push_back(attr);
  }
  // Each attribute's permutation depends only on its own column, so the
  // sorts fan out across threads with no shared mutable state.
  ParallelFor(static_cast<int64_t>(numeric_attrs.size()),
              ResolveThreadCount(num_threads), [&](int64_t i) {
    const int attr = numeric_attrs[static_cast<size_t>(i)];
    const double* col = numeric_cols_[attr].data();
    // Sorting (value, row) pairs keeps every comparison's operands adjacent
    // in memory; sorting bare indices with a col[a] < col[b] comparator
    // incurs two dependent cache misses per comparison instead.
    std::vector<std::pair<double, uint32_t>> keyed(n);
    for (uint32_t r = 0; r < n; ++r) keyed[r] = {col[r], r};
    // Ascending value, ties by row id — a stable, deterministic order.
    std::sort(keyed.begin(), keyed.end());
    std::vector<uint32_t>& order = sorted_[attr];
    order.resize(n);
    for (uint32_t i2 = 0; i2 < n; ++i2) order[i2] = keyed[i2].second;
  });
}

const std::vector<uint32_t>& ColumnDataset::sorted_order(int attr) const {
  if (!sealed_) FatalError("ColumnDataset::sorted_order before Seal");
  return sorted_[attr];
}

}  // namespace boat
