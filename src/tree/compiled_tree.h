// CompiledTree: an immutable, flat, structure-of-arrays compilation of a
// DecisionTree for high-throughput inference.
//
// DecisionTree::Classify chases std::unique_ptr children one tuple at a
// time; every hop is a dependent pointer load into an arbitrary heap
// location. CompiledTree lays the same tree out as parallel arrays indexed
// by a dense int32 node id (preorder, so the left child of node i is always
// i+1 and the hot edge is a sequential prefetch), replaces categorical
// subset binary searches by packed-bitset probes over the attribute's
// domain, and precomputes every leaf's majority label. Predictions are
// guaranteed identical to DecisionTree::Classify for every input — the
// compilation is a pure layout change (see DESIGN.md, "CompiledTree").
//
// Batched scoring (Predict) stripes the input statically over worker
// threads (contiguous per-thread output slabs, boundaries on cache-line
// multiples — no shared work-queue counter, no false sharing), blocks
// tuples to L2, transposes each block once into a column-major scratch
// pane, and walks tree levels over the whole block with a branchless,
// optionally SIMD (AVX2/NEON) kernel — see tree/predict_kernels.h and
// DESIGN.md, "Blocked batch inference". Every kernel x thread-count
// combination produces predictions byte-identical to
// DecisionTree::Classify. kAuto picks the per-tuple loop for batches below
// a measured batch-size/depth crossover (small or cache-resident batches,
// shallow trees) and the block path above it; BOAT_SIMD overrides the
// choice: "off"/"scalar" forces the scalar block kernel, "tuple" forces
// the per-tuple loop, "block"/"simd" forces block dispatch.

#ifndef BOAT_TREE_COMPILED_TREE_H_
#define BOAT_TREE_COMPILED_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tree/decision_tree.h"
#include "tree/predict_kernels.h"

namespace boat {

/// \brief Batch-scoring kernel selection for CompiledTree::PredictWithKernel.
/// All kernels produce byte-identical predictions; this exists for the
/// equivalence tests, benchmarks, and the BOAT_SIMD escape hatch.
enum class PredictKernel {
  kAuto = 0,     ///< BOAT_SIMD override, then batch/depth crossover dispatch
  kScalarTuple,  ///< reference per-tuple Classify loop (no blocking)
  kScalarBlock,  ///< blocked level-synchronous scalar kernel
  kSimd,         ///< SIMD block kernel; scalar block if unavailable
};

class CompiledTree {
 public:
  /// \brief Compiles `tree` into the flat layout. O(nodes) time and space;
  /// the result is independent of `tree`'s lifetime.
  explicit CompiledTree(const DecisionTree& tree);

  /// \brief Predicts the class label of one record. Identical to
  /// DecisionTree::Classify on the source tree for every tuple.
  [[nodiscard]] int32_t Classify(const Tuple& tuple) const {
    int32_t i = 0;
    while (attr_[static_cast<size_t>(i)] >= 0) {
      const size_t n = static_cast<size_t>(i);
      const int attr = attr_[n];
      bool left;
      const int32_t bits = bitset_offset_[n];
      if (bits < 0) {
        left = tuple.value(attr) <= threshold_[n];
      } else {
        const int32_t c = tuple.category(attr);
        left = c >= 0 && c < domain_bits_[static_cast<size_t>(attr)] &&
               ((bits_[static_cast<size_t>(bits) +
                       (static_cast<size_t>(c) >> 6)] >>
                 (static_cast<uint32_t>(c) & 63)) &
                1) != 0;
      }
      i = left ? left_[n] : right_[n];
    }
    return label_[static_cast<size_t>(i)];
  }

  /// \brief Batched scoring: out[i] = Classify(tuples[i]). `out` must have
  /// exactly tuples.size() elements and may be uninitialized — every slot
  /// is written. With num_threads != 1 (0 = all hardware cores) the batch
  /// is striped statically into contiguous per-thread slabs whose
  /// boundaries fall on cache-line multiples; every thread writes only its
  /// own slab, so any thread count produces identical output.
  void Predict(std::span<const Tuple> tuples, std::span<int32_t> out,
               int num_threads = 1) const;

  /// \brief Convenience overload returning the predictions. Hot callers
  /// should prefer the span overload with a reused / uninitialized buffer:
  /// this one value-initializes the vector before scoring overwrites it.
  std::vector<int32_t> Predict(std::span<const Tuple> tuples,
                               int num_threads = 1) const;

  /// \brief Predict with an explicit kernel choice (tests and benchmarks;
  /// production callers use Predict, i.e. PredictKernel::kAuto). Output is
  /// byte-identical across kernels by contract.
  void PredictWithKernel(std::span<const Tuple> tuples,
                         std::span<int32_t> out, int num_threads,
                         PredictKernel kernel) const;

  /// \brief True when a SIMD block kernel exists for this build and CPU.
  static bool SimdAvailable();

  /// \brief Name of the kernel family kAuto resolves to right now ("avx2",
  /// "neon", "scalar", or "tuple" when BOAT_SIMD=tuple pins the per-tuple
  /// loop); re-reads BOAT_SIMD on every call. In auto mode large batches
  /// use the named block kernel and sub-crossover batches the tuple loop.
  static const char* ActiveKernelName();

  /// \brief Fraction of `tuples` whose label differs from the prediction.
  double MisclassificationRate(std::span<const Tuple> tuples,
                               int num_threads = 1) const;

  const Schema& schema() const { return schema_; }
  size_t num_nodes() const { return attr_.size(); }
  /// \brief Bytes of the node pool (diagnostics; excludes the schema).
  size_t pool_bytes() const;

 private:
  /// Scores [begin, end) of `tuples` through the block kernel `fn`:
  /// L2-sized blocks, transposed into a per-call column scratch pane.
  void ScoreRange(std::span<const Tuple> tuples, std::span<int32_t> out,
                  int64_t begin, int64_t end,
                  detail::BlockKernelFn fn) const;

  Schema schema_;
  /// Max root-to-leaf depth of the source tree; input to kAuto's
  /// batch-size/depth crossover (deep trees amortize the block transpose
  /// sooner).
  int32_t depth_ = 0;
  // Parallel node arrays, preorder. attr_[i] < 0 marks a leaf.
  std::vector<int32_t> attr_;           ///< split attribute; -1 = leaf
  std::vector<int32_t> left_;           ///< child id when predicate holds
  std::vector<int32_t> right_;          ///< child id otherwise
  std::vector<double> threshold_;       ///< numeric: go left iff v <= t
  std::vector<int32_t> bitset_offset_;  ///< word offset into bits_; -1 = numeric
  std::vector<int32_t> label_;          ///< leaf: precomputed majority label
  /// Packed categorical subsets: bitset_offset_[i] points at the first of
  /// domain_bits_[attr]/64 (rounded up) words; bit c set = category c goes
  /// left. One shared pool keeps the per-node footprint at a single int32.
  std::vector<uint64_t> bits_;
  /// Per-attribute bitset width: the attribute's cardinality, widened when a
  /// split subset mentions a category beyond it (defensive; categories
  /// outside [0, width) always go right, exactly like the binary search on
  /// an absent subset element).
  std::vector<int32_t> domain_bits_;

  // ---- Block-kernel layout (derived from the arrays above; see
  // tree/predict_kernels.h). Only attributes actually referenced by a split
  // get a column slot, so the per-block transpose never reads tuple values
  // the tree cannot inspect.
  std::vector<int32_t> kslot_;       ///< node -> column slot (leaf: 0)
  std::vector<int32_t> pair_child_;  ///< [2n]=left, [2n+1]=right; leaf: self
  std::vector<int32_t> slot_attr_;   ///< column slot -> attribute id
  std::vector<int32_t> slot_domain_bits_;  ///< per-slot bitset width; 0=num
};

}  // namespace boat

#endif  // BOAT_TREE_COMPILED_TREE_H_
