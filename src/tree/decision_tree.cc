#include "tree/decision_tree.h"

#include "common/status.h"
#include "common/str_util.h"
#include "tree/compiled_tree.h"

namespace boat {

// ------------------------------------------------------------------- TreeNode

int32_t TreeNode::MajorityLabel() const {
  int32_t best = 0;
  for (size_t i = 1; i < class_counts.size(); ++i) {
    if (class_counts[i] > class_counts[best]) best = static_cast<int32_t>(i);
  }
  return best;
}

int64_t TreeNode::family_size() const {
  int64_t total = 0;
  for (const int64_t c : class_counts) total += c;
  return total;
}

std::unique_ptr<TreeNode> TreeNode::Clone() const {
  auto copy = std::make_unique<TreeNode>();
  copy->split = split;
  copy->class_counts = class_counts;
  if (left != nullptr) copy->left = left->Clone();
  if (right != nullptr) copy->right = right->Clone();
  return copy;
}

std::unique_ptr<TreeNode> TreeNode::Leaf(std::vector<int64_t> counts) {
  auto node = std::make_unique<TreeNode>();
  node->class_counts = std::move(counts);
  return node;
}

std::unique_ptr<TreeNode> TreeNode::Internal(Split s,
                                             std::vector<int64_t> counts,
                                             std::unique_ptr<TreeNode> l,
                                             std::unique_ptr<TreeNode> r) {
  auto node = std::make_unique<TreeNode>();
  node->split = std::move(s);
  node->class_counts = std::move(counts);
  node->left = std::move(l);
  node->right = std::move(r);
  return node;
}

// --------------------------------------------------------------- DecisionTree

DecisionTree::DecisionTree(Schema schema, std::unique_ptr<TreeNode> root)
    : schema_(std::move(schema)), root_(std::move(root)) {
  if (root_ == nullptr) FatalError("DecisionTree with null root");
}

DecisionTree DecisionTree::Clone() const {
  return DecisionTree(schema_, root_->Clone());
}

int32_t DecisionTree::Classify(const Tuple& tuple) const {
  const TreeNode* node = root_.get();
  while (!node->is_leaf()) {
    node = node->split->SendLeft(tuple) ? node->left.get() : node->right.get();
  }
  return node->MajorityLabel();
}

double DecisionTree::MisclassificationRate(
    const std::vector<Tuple>& tuples) const {
  if (tuples.empty()) return 0.0;
  return CompiledTree(*this).MisclassificationRate(tuples);
}

namespace {

size_t CountNodes(const TreeNode& node) {
  if (node.is_leaf()) return 1;
  return 1 + CountNodes(*node.left) + CountNodes(*node.right);
}

size_t CountLeaves(const TreeNode& node) {
  if (node.is_leaf()) return 1;
  return CountLeaves(*node.left) + CountLeaves(*node.right);
}

int Depth(const TreeNode& node) {
  if (node.is_leaf()) return 0;
  return 1 + std::max(Depth(*node.left), Depth(*node.right));
}

void Render(const TreeNode& node, const Schema& schema, int indent,
            std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  std::vector<std::string> counts;
  counts.reserve(node.class_counts.size());
  for (const int64_t c : node.class_counts) {
    counts.push_back(StrPrintf("%lld", static_cast<long long>(c)));
  }
  if (node.is_leaf()) {
    out->append(StrPrintf("leaf label=%d [%s]\n", node.MajorityLabel(),
                          StrJoin(counts, " ").c_str()));
    return;
  }
  out->append(StrPrintf("node %s [%s]\n",
                        node.split->ToString(schema).c_str(),
                        StrJoin(counts, " ").c_str()));
  Render(*node.left, schema, indent + 1, out);
  Render(*node.right, schema, indent + 1, out);
}

}  // namespace

size_t DecisionTree::num_nodes() const { return CountNodes(*root_); }
size_t DecisionTree::num_leaves() const { return CountLeaves(*root_); }
int DecisionTree::depth() const { return Depth(*root_); }

bool SubtreesEqual(const TreeNode& a, const TreeNode& b) {
  if (a.is_leaf() != b.is_leaf()) return false;
  if (a.is_leaf()) return a.MajorityLabel() == b.MajorityLabel();
  if (!a.split->SameCriterion(*b.split)) return false;
  return SubtreesEqual(*a.left, *b.left) && SubtreesEqual(*a.right, *b.right);
}

bool DecisionTree::StructurallyEqual(const DecisionTree& other) const {
  return schema_ == other.schema_ && SubtreesEqual(*root_, *other.root_);
}

std::string DecisionTree::ToString() const {
  std::string out;
  Render(*root_, schema_, 0, &out);
  return out;
}

}  // namespace boat
