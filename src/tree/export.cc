#include "tree/export.h"

#include "common/str_util.h"

namespace boat {

namespace {

std::string ClassName(const ExportNames& names, int32_t cls) {
  if (static_cast<size_t>(cls) < names.classes.size()) {
    return names.classes[cls];
  }
  return StrPrintf("%d", cls);
}

std::string CategoryName(const ExportNames& names, int attr, int32_t cat) {
  if (static_cast<size_t>(attr) < names.categories.size() &&
      static_cast<size_t>(cat) < names.categories[attr].size()) {
    return names.categories[attr][cat];
  }
  return StrPrintf("%d", cat);
}

// Renders a split predicate, optionally negated (the right branch).
std::string PredicateText(const Split& split, const Schema& schema,
                          const ExportNames& names, bool negated) {
  const std::string& attr_name = schema.attribute(split.attribute).name;
  if (split.is_numerical) {
    return StrPrintf("%s %s %.6g", attr_name.c_str(), negated ? ">" : "<=",
                     split.value);
  }
  std::vector<std::string> cats;
  cats.reserve(split.subset.size());
  for (const int32_t c : split.subset) {
    cats.push_back(CategoryName(names, split.attribute, c));
  }
  return attr_name + (negated ? " not in {" : " in {") + StrJoin(cats, ", ") +
         "}";
}

void CollectRules(const TreeNode& node, const Schema& schema,
                  const ExportNames& names, std::vector<std::string>* path,
                  std::string* out) {
  if (node.is_leaf()) {
    const int64_t total = node.family_size();
    const int64_t majority =
        total > 0 ? node.class_counts[node.MajorityLabel()] : 0;
    out->append("IF ");
    out->append(path->empty() ? std::string("true") : StrJoin(*path, " AND "));
    out->append(StrPrintf(
        " THEN class = %s    [%lld/%lld]\n",
        ClassName(names, node.MajorityLabel()).c_str(),
        static_cast<long long>(majority), static_cast<long long>(total)));
    return;
  }
  path->push_back(PredicateText(*node.split, schema, names, false));
  CollectRules(*node.left, schema, names, path, out);
  path->back() = PredicateText(*node.split, schema, names, true);
  CollectRules(*node.right, schema, names, path, out);
  path->pop_back();
}

void DotNodes(const TreeNode& node, const Schema& schema,
              const ExportNames& names, int* next_id, std::string* out) {
  const int id = (*next_id)++;
  if (node.is_leaf()) {
    out->append(StrPrintf(
        "  n%d [shape=box, style=filled, fillcolor=lightgrey, "
        "label=\"%s\\n(n=%lld)\"];\n",
        id, ClassName(names, node.MajorityLabel()).c_str(),
        static_cast<long long>(node.family_size())));
    return;
  }
  out->append(StrPrintf("  n%d [shape=ellipse, label=\"%s\"];\n", id,
                        PredicateText(*node.split, schema, names, false)
                            .c_str()));
  const int left_id = *next_id;
  DotNodes(*node.left, schema, names, next_id, out);
  const int right_id = *next_id;
  DotNodes(*node.right, schema, names, next_id, out);
  out->append(StrPrintf("  n%d -> n%d [label=\"yes\"];\n", id, left_id));
  out->append(StrPrintf("  n%d -> n%d [label=\"no\"];\n", id, right_id));
}

}  // namespace

std::string ExportRules(const DecisionTree& tree, const ExportNames& names) {
  std::string out;
  std::vector<std::string> path;
  CollectRules(tree.root(), tree.schema(), names, &path, &out);
  return out;
}

std::string ExportDot(const DecisionTree& tree, const ExportNames& names) {
  std::string out = "digraph decision_tree {\n";
  int next_id = 0;
  DotNodes(tree.root(), tree.schema(), names, &next_id, &out);
  out += "}\n";
  return out;
}

}  // namespace boat
