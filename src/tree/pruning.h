// Pruning (the second phase of classification-tree construction).
//
// The paper concentrates on the growth phase and treats pruning as an
// orthogonal post-pass ("How the tree is pruned is an orthogonal issue",
// Section 2.1, citing MDL-based pruning [MAR96, RS98] as the popular choice
// for large datasets). This module supplies the standard post-pruning
// algorithms so the library is usable end to end:
//
//  * MDL pruning (SLIQ-style): a subtree is replaced by a leaf when the
//    description length of the leaf (resubstitution errors + one node's
//    encoding cost) does not exceed that of the subtree.
//  * Cost-complexity pruning (CART): minimizes R(T) + alpha * |leaves(T)|
//    over all prunings of the grown tree, for a given alpha.
//  * Reduced-error pruning: bottom-up replacement of subtrees by leaves
//    whenever that does not increase error on a held-out validation set.
//
// All three operate on the class-count annotations the builders leave in
// every node, never on the training data itself.

#ifndef BOAT_TREE_PRUNING_H_
#define BOAT_TREE_PRUNING_H_

#include "tree/decision_tree.h"

namespace boat {

/// \brief MDL pruning. `penalty` is the encoding cost of one tree node in
/// error-units; the SLIQ-flavored default 0.5*log2(n)+1 per node is applied
/// when `penalty` <= 0 (n = training size at the root).
DecisionTree PruneMdl(const DecisionTree& tree, double penalty = 0.0);

/// \brief CART cost-complexity pruning at complexity parameter `alpha` >= 0
/// (in error-units per leaf). alpha = 0 only collapses subtrees that do not
/// reduce resubstitution error at all.
DecisionTree PruneCostComplexity(const DecisionTree& tree, double alpha);

/// \brief The critical alpha values of the cost-complexity path, ascending.
/// PruneCostComplexity at each returns the next-smaller tree of the path.
std::vector<double> CostComplexityAlphas(const DecisionTree& tree);

/// \brief Reduced-error pruning against a validation set: a subtree becomes
/// a leaf whenever the leaf misclassifies no more validation tuples than the
/// subtree does.
DecisionTree PruneReducedError(const DecisionTree& tree,
                               const std::vector<Tuple>& validation);

/// \brief Picks the best tree along the cost-complexity path by validation
/// error (ties: the smaller tree).
DecisionTree SelectByValidation(const DecisionTree& tree,
                                const std::vector<Tuple>& validation);

}  // namespace boat

#endif  // BOAT_TREE_PRUNING_H_
