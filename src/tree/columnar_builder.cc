#include "tree/columnar_builder.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/parallel.h"
#include "common/status.h"

namespace boat {

namespace {

// Scheduling knobs for intra-tree parallelism. None of them affect the
// resulting tree — a different thread count or block size only reorders
// work; every partition and every AVC-set comes out byte-identical to the
// sequential build (DESIGN.md, "Parallel columnar growth").
constexpr size_t kMinParallelRows = 2048;    // below: fully sequential build
constexpr size_t kPartitionBlock = 1 << 12;  // rows per count/scatter block
constexpr size_t kParallelPartitionMin = 1 << 13;  // below: serial partition
constexpr size_t kFrontierPerThread = 4;  // target frontier items per worker
constexpr int64_t kMarkGrain = 2048;      // stripe grain for parallel marking

/// One tree growth over index ranges of a sealed ColumnDataset. Each numeric
/// attribute gets a private SPRINT-style attribute list — (value, row, label)
/// entries in ascending value order, copied once from the dataset's master
/// sort — plus one row-id array in original order for categorical counting.
/// A split stably partitions each array's [begin, end) range in place, so
/// children are contiguous subranges, the root-time sort is never repeated,
/// and every per-node AVC fill is a single sequential pass.
///
/// With limits.num_threads != 1 the build runs in three phases: the top of
/// the tree is expanded breadth-first with every range-linear pass (AVC
/// fill, side marking, partition) parallelized internally, then the
/// remaining frontier nodes — disjoint [begin, end) ranges — fan out across
/// workers that each grow their subtrees sequentially with a private scratch
/// arena, and finally the subtrees are assembled in preorder. Every phase is
/// deterministic by construction, so the tree is byte-identical to the
/// single-threaded build.
class ColumnarGrowth {
 public:
  ColumnarGrowth(const ColumnDataset& data, const SplitSelector& selector,
                 const GrowthLimits& limits, const int32_t* weights)
      : data_(data),
        selector_(selector),
        limits_(limits),
        weights_(weights),
        schema_(data.schema()),
        threads_(ResolveThreadCount(limits.num_threads)) {
    if (!data.sealed()) FatalError("ColumnarGrowth over unsealed dataset");
    const uint32_t n = static_cast<uint32_t>(data.num_rows());
    rows_.reserve(n);
    for (uint32_t r = 0; r < n; ++r) {
      if (Weight(r) > 0) rows_.push_back(r);
    }
    lists_.resize(schema_.num_attributes());
    // Per-attribute list construction writes only its own slot; fan the
    // attributes out when a thread budget is available.
    ParallelFor(schema_.num_attributes(), threads_, [&](int64_t attr) {
      if (!schema_.IsNumerical(static_cast<int>(attr))) return;
      const double* col = data_.numeric_column(static_cast<int>(attr)).data();
      std::vector<AttrEntry>& list = lists_[static_cast<size_t>(attr)];
      list.reserve(rows_.size());
      for (const uint32_t r : data_.sorted_order(static_cast<int>(attr))) {
        if (Weight(r) > 0) list.push_back({col[r], r, data_.label(r)});
      }
    });
    go_left_.resize(n);
  }

  /// Number of live (positive-weight) rows across the whole dataset.
  size_t num_live_rows() const { return rows_.size(); }

  /// Per-class counts of the whole live row set — the root's counts.
  std::vector<int64_t> RootCounts() const {
    std::vector<int64_t> counts(schema_.num_classes(), 0);
    for (const uint32_t r : rows_) counts[data_.label(r)] += Weight(r);
    return counts;
  }

  /// Grows the whole tree over the live rows, dispatching to the parallel
  /// frontier scheme when a thread budget is available.
  std::unique_ptr<TreeNode> BuildRoot(int depth) {
    std::vector<int64_t> counts = RootCounts();
    if (threads_ <= 1 || rows_.size() < kMinParallelRows) {
      Scratch scratch;
      return Build(0, rows_.size(), depth, std::move(counts), &scratch);
    }
    return BuildParallel(depth, std::move(counts));
  }

 private:
  /// One row of a numeric attribute list: the SoA column value plus the
  /// row's id and label, kept adjacent so the AVC fill never leaves the
  /// cache line it is streaming.
  struct AttrEntry {
    double value;
    uint32_t row;
    int32_t label;
  };

  /// Per-worker growth arena: the right-side partition buffers and the
  /// categorical subset membership table. One per fan-out worker (plus one
  /// for the expansion phase), so subtree growth never allocates per node
  /// and workers never share mutable scratch.
  struct Scratch {
    std::vector<uint32_t> row_scratch;    // right-side buffer, PartitionRows
    std::vector<AttrEntry> list_scratch;  // right-side buffer, PartitionList
    std::vector<uint8_t> in_subset;       // categorical subset membership
  };

  /// Shadow node used while the top of the tree is expanded breadth-first.
  /// TreeNode requires both children at construction, so the expansion
  /// records splits here and Assemble() converts to TreeNodes bottom-up —
  /// in preorder, so serialization never sees the difference.
  struct PendingNode {
    size_t begin = 0;
    size_t end = 0;
    int depth = 0;
    uint64_t id = 0;  // creation order; deterministic tie-break key
    std::vector<int64_t> counts;
    std::optional<Split> split;  // set when expanded to an internal node
    std::unique_ptr<PendingNode> left;
    std::unique_ptr<PendingNode> right;
    std::unique_ptr<TreeNode> done;  // leaf, or worker-built subtree
  };

  int64_t Weight(uint32_t row) const {
    return weights_ == nullptr ? 1 : weights_[row];
  }

  /// The stop rules shared by the sequential build and the expansion phase.
  bool IsLeafFamily(int depth, const std::vector<int64_t>& counts) const {
    int64_t total = 0;
    for (const int64_t c : counts) total += c;
    const bool at_depth_limit = depth >= limits_.max_depth;
    const bool too_small = total < limits_.min_tuples_to_split;
    const bool below_stop_threshold =
        limits_.stop_family_size > 0 && total <= limits_.stop_family_size;
    int populated_classes = 0;
    for (const int64_t c : counts) {
      if (c > 0) ++populated_classes;
    }
    // A pure family needs no AVC-group: no split selector would divide it.
    return at_depth_limit || too_small || below_stop_threshold ||
           populated_classes <= 1;
  }

  /// `counts` is the range's per-class weight totals, computed by the parent
  /// from its AVC-set (ChildCounts*) — the engine never rescans a family
  /// just to count it.
  std::unique_ptr<TreeNode> Build(size_t begin, size_t end, int depth,
                                  std::vector<int64_t> counts,
                                  Scratch* scratch) {
    if (IsLeafFamily(depth, counts)) return TreeNode::Leaf(std::move(counts));

    AvcGroup avc(schema_);
    FillAvcGroup(begin, end, counts, &avc);
    std::optional<Split> split = selector_.ChooseSplit(avc);
    if (!split.has_value()) return TreeNode::Leaf(std::move(counts));

    auto [left_counts, right_counts] =
        split->is_numerical
            ? ChildCountsNumeric(avc.numeric(split->attribute), *split)
            : ChildCountsCategorical(avc.categorical(split->attribute),
                                     *split);

    const size_t left_rows = MarkSides(*split, begin, end, scratch);
    PartitionRows(begin, end, scratch);
    for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
      if (schema_.IsNumerical(attr)) {
        PartitionList(&lists_[attr], begin, end, scratch);
      }
    }

    auto left = Build(begin, begin + left_rows, depth + 1,
                      std::move(left_counts), scratch);
    auto right = Build(begin + left_rows, end, depth + 1,
                       std::move(right_counts), scratch);
    return TreeNode::Internal(*std::move(split), std::move(counts),
                              std::move(left), std::move(right));
  }

  // ------------------------------------------------ parallel frontier build

  std::unique_ptr<TreeNode> BuildParallel(int root_depth,
                                          std::vector<int64_t> counts) {
    auto root = std::make_unique<PendingNode>();
    root->begin = 0;
    root->end = rows_.size();
    root->depth = root_depth;
    root->counts = std::move(counts);
    uint64_t next_id = 1;

    // Phase 1: expand the largest pending node (ties by creation order — a
    // deterministic rule, though any rule yields the same tree) until the
    // frontier can feed every worker or only small nodes remain. Each
    // expansion step is itself parallelized across the node's range and
    // attributes, so the top of the tree — where one node spans most rows —
    // does not serialize the build.
    std::vector<PendingNode*> frontier{root.get()};
    const size_t target = kFrontierPerThread * static_cast<size_t>(threads_);
    const size_t small_node =
        std::max<size_t>(size_t{1024}, rows_.size() / (2 * target));
    while (!frontier.empty() && frontier.size() < target) {
      size_t pick = 0;
      for (size_t i = 1; i < frontier.size(); ++i) {
        const size_t si = frontier[i]->end - frontier[i]->begin;
        const size_t sp = frontier[pick]->end - frontier[pick]->begin;
        if (si > sp || (si == sp && frontier[i]->id < frontier[pick]->id)) {
          pick = i;
        }
      }
      PendingNode* p = frontier[pick];
      if (p->end - p->begin <= small_node) break;  // largest is small: stop
      frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(pick));
      if (ExpandStep(p, &next_id)) {
        frontier.push_back(p->left.get());
        frontier.push_back(p->right.get());
      }
    }

    // Phase 2: longest-processing-time assignment of the frontier's disjoint
    // subtree ranges onto workers (sort by size desc, id asc; each item goes
    // to the least-loaded worker — all of it deterministic), then one
    // statically-striped fan-out. Workers touch disjoint [begin, end) ranges
    // of rows_/lists_ and disjoint go_left_ rows, each with a private
    // scratch arena.
    if (!frontier.empty()) {
      std::vector<PendingNode*> items = frontier;
      std::sort(items.begin(), items.end(),
                [](const PendingNode* a, const PendingNode* b) {
                  const size_t sa = a->end - a->begin;
                  const size_t sb = b->end - b->begin;
                  if (sa != sb) return sa > sb;
                  return a->id < b->id;
                });
      const int workers = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(threads_), items.size()));
      std::vector<std::vector<PendingNode*>> buckets(
          static_cast<size_t>(workers));
      std::vector<size_t> load(static_cast<size_t>(workers), 0);
      for (PendingNode* p : items) {
        size_t w = 0;
        for (size_t i = 1; i < load.size(); ++i) {
          if (load[i] < load[w]) w = i;
        }
        buckets[w].push_back(p);
        load[w] += (p->end - p->begin) + 1;
      }
      std::vector<Scratch> scratch(static_cast<size_t>(workers));
      ParallelForStatic(workers, workers, /*grain=*/1,
                        [&](int64_t wb, int64_t we, int) {
                          for (int64_t w = wb; w < we; ++w) {
                            for (PendingNode* p : buckets[static_cast<size_t>(w)]) {
                              p->done = Build(p->begin, p->end, p->depth,
                                              std::move(p->counts),
                                              &scratch[static_cast<size_t>(w)]);
                            }
                          }
                        });
    }
    return Assemble(root.get());
  }

  /// Runs one split step on a pending node, with every linear pass
  /// parallelized: AVC fill across attributes, side marking across the
  /// range, partitions via the blocked count/prefix/scatter scheme. Returns
  /// false when the node settled as a leaf (done set), true when it split
  /// (left/right created).
  bool ExpandStep(PendingNode* p, uint64_t* next_id) {
    if (IsLeafFamily(p->depth, p->counts)) {
      p->done = TreeNode::Leaf(std::move(p->counts));
      return false;
    }
    AvcGroup avc(schema_);
    FillAvcGroupParallel(p->begin, p->end, p->counts, &avc);
    std::optional<Split> split = selector_.ChooseSplit(avc);
    if (!split.has_value()) {
      p->done = TreeNode::Leaf(std::move(p->counts));
      return false;
    }
    auto [left_counts, right_counts] =
        split->is_numerical
            ? ChildCountsNumeric(avc.numeric(split->attribute), *split)
            : ChildCountsCategorical(avc.categorical(split->attribute),
                                     *split);

    const size_t left_rows = MarkSidesParallel(*split, p->begin, p->end);
    if (p->end - p->begin >= kParallelPartitionMin) {
      BlockedPartition(&rows_, &row_part_scratch_, p->begin, p->end,
                       left_rows,
                       [this](uint32_t r) { return go_left_[r] != 0; });
      for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
        if (!schema_.IsNumerical(attr)) continue;
        BlockedPartition(
            &lists_[attr], &list_part_scratch_, p->begin, p->end, left_rows,
            [this](const AttrEntry& e) { return go_left_[e.row] != 0; });
      }
    } else {
      PartitionRows(p->begin, p->end, &expand_scratch_);
      for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
        if (schema_.IsNumerical(attr)) {
          PartitionList(&lists_[attr], p->begin, p->end, &expand_scratch_);
        }
      }
    }

    p->split = std::move(split);
    p->left = std::make_unique<PendingNode>();
    p->left->begin = p->begin;
    p->left->end = p->begin + left_rows;
    p->left->depth = p->depth + 1;
    p->left->id = (*next_id)++;
    p->left->counts = std::move(left_counts);
    p->right = std::make_unique<PendingNode>();
    p->right->begin = p->begin + left_rows;
    p->right->end = p->end;
    p->right->depth = p->depth + 1;
    p->right->id = (*next_id)++;
    p->right->counts = std::move(right_counts);
    return true;
  }

  /// Converts the shadow tree to TreeNodes, preorder — identical shape and
  /// serialization to the purely recursive build.
  std::unique_ptr<TreeNode> Assemble(PendingNode* p) {
    if (p->done != nullptr) return std::move(p->done);
    auto left = Assemble(p->left.get());
    auto right = Assemble(p->right.get());
    return TreeNode::Internal(*std::move(p->split), std::move(p->counts),
                              std::move(left), std::move(right));
  }

  // ----------------------------------------------------------- AVC filling

  /// One attribute's AVC-set over the range. Writes only that attribute's
  /// slot of the (fully preallocated) AvcGroup, so distinct attributes fill
  /// concurrently without synchronization.
  void FillAvcAttr(int attr, size_t begin, size_t end, AvcGroup* avc) {
    const size_t k = static_cast<size_t>(schema_.num_classes());
    if (schema_.IsNumerical(attr)) {
      // One streaming pass over the presorted list aggregates the whole
      // AVC-set; values_/counts_ come out exactly as a staged sort-and-
      // merge Finalize would produce them.
      std::vector<double> values;
      std::vector<int64_t> cell_counts;
      values.reserve(end - begin);  // distinct values <= range size
      cell_counts.reserve((end - begin) * k);
      const std::vector<AttrEntry>& list = lists_[attr];
      for (size_t i = begin; i < end; ++i) {
        const AttrEntry& e = list[i];
        if (values.empty() || e.value != values.back()) {
          values.push_back(e.value);
          cell_counts.resize(cell_counts.size() + k, 0);
        }
        cell_counts[cell_counts.size() - k + static_cast<size_t>(e.label)] +=
            Weight(e.row);
      }
      avc->mutable_numeric(attr)->InstallSorted(std::move(values),
                                                std::move(cell_counts));
    } else {
      CategoricalAvc* cat = avc->mutable_categorical(attr);
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = rows_[i];
        cat->Add(data_.category(attr, r), data_.label(r), Weight(r));
      }
    }
  }

  void FillAvcGroup(size_t begin, size_t end,
                    const std::vector<int64_t>& counts, AvcGroup* avc) {
    for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
      FillAvcAttr(attr, begin, end, avc);
    }
    AddClassTotals(counts, avc);
  }

  /// Expansion-phase variant: attributes fan out across the thread budget.
  /// Each attribute's fill is the identical sequential pass, so the group is
  /// byte-equal to FillAvcGroup's.
  void FillAvcGroupParallel(size_t begin, size_t end,
                            const std::vector<int64_t>& counts,
                            AvcGroup* avc) {
    ParallelFor(schema_.num_attributes(), threads_, [&](int64_t attr) {
      FillAvcAttr(static_cast<int>(attr), begin, end, avc);
    });
    AddClassTotals(counts, avc);
  }

  static void AddClassTotals(const std::vector<int64_t>& counts,
                             AvcGroup* avc) {
    for (int32_t c = 0; c < static_cast<int32_t>(counts.size()); ++c) {
      if (counts[c] != 0) avc->AddToClassTotals(c, counts[c]);
    }
  }

  // ------------------------------------------------------- marking / sides

  /// Flags every row of the range with its side under `split` and returns
  /// the number of left-bound rows (positions, not weights).
  size_t MarkSides(const Split& split, size_t begin, size_t end,
                   Scratch* scratch) {
    size_t left_rows = 0;
    if (split.is_numerical) {
      const double* col = data_.numeric_column(split.attribute).data();
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = rows_[i];
        const bool left = col[r] <= split.value;
        go_left_[r] = left;
        left_rows += left;
      }
    } else {
      const int32_t card = schema_.attribute(split.attribute).cardinality;
      scratch->in_subset.assign(static_cast<size_t>(card), 0);
      for (const int32_t c : split.subset) scratch->in_subset[c] = 1;
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = rows_[i];
        const bool left =
            scratch->in_subset[data_.category(split.attribute, r)];
        go_left_[r] = left;
        left_rows += left;
      }
    }
    return left_rows;
  }

  /// Expansion-phase marking: static stripes over the range; every stripe
  /// writes disjoint go_left_ rows, and the left count is a sum of per-
  /// worker partials (integer addition — order-independent).
  size_t MarkSidesParallel(const Split& split, size_t begin, size_t end) {
    const int64_t n = static_cast<int64_t>(end - begin);
    std::vector<size_t> partial(static_cast<size_t>(threads_), 0);
    if (split.is_numerical) {
      const double* col = data_.numeric_column(split.attribute).data();
      ParallelForStatic(n, threads_, kMarkGrain,
                        [&](int64_t b, int64_t e, int w) {
                          size_t c = 0;
                          for (int64_t i = b; i < e; ++i) {
                            const uint32_t r =
                                rows_[begin + static_cast<size_t>(i)];
                            const bool left = col[r] <= split.value;
                            go_left_[r] = left;
                            c += left;
                          }
                          partial[static_cast<size_t>(w)] += c;
                        });
    } else {
      const int32_t card = schema_.attribute(split.attribute).cardinality;
      expand_scratch_.in_subset.assign(static_cast<size_t>(card), 0);
      for (const int32_t c : split.subset) expand_scratch_.in_subset[c] = 1;
      const uint8_t* in_subset = expand_scratch_.in_subset.data();
      ParallelForStatic(
          n, threads_, kMarkGrain, [&](int64_t b, int64_t e, int w) {
            size_t c = 0;
            for (int64_t i = b; i < e; ++i) {
              const uint32_t r = rows_[begin + static_cast<size_t>(i)];
              const bool left = in_subset[data_.category(split.attribute, r)];
              go_left_[r] = left;
              c += left;
            }
            partial[static_cast<size_t>(w)] += c;
          });
    }
    size_t left_rows = 0;
    for (const size_t c : partial) left_rows += c;
    return left_rows;
  }

  // ----------------------------------------------------------- partitions

  // Stable in-place partition of an array's [begin, end) range: left rows
  // keep their relative order at the front, right rows at the back.
  // Stability keeps every array of the node aligned on the same row set.

  void PartitionRows(size_t begin, size_t end, Scratch* scratch) {
    scratch->row_scratch.clear();
    size_t out = begin;
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = rows_[i];
      if (go_left_[r]) {
        rows_[out++] = r;
      } else {
        scratch->row_scratch.push_back(r);
      }
    }
    std::copy(scratch->row_scratch.begin(), scratch->row_scratch.end(),
              rows_.begin() + static_cast<ptrdiff_t>(out));
  }

  void PartitionList(std::vector<AttrEntry>* list, size_t begin, size_t end,
                     Scratch* scratch) {
    std::vector<AttrEntry>& a = *list;
    scratch->list_scratch.clear();
    size_t out = begin;
    for (size_t i = begin; i < end; ++i) {
      const AttrEntry e = a[i];
      if (go_left_[e.row]) {
        a[out++] = e;
      } else {
        scratch->list_scratch.push_back(e);
      }
    }
    std::copy(scratch->list_scratch.begin(), scratch->list_scratch.end(),
              a.begin() + static_cast<ptrdiff_t>(out));
  }

  /// Parallel stable partition for the top-of-tree nodes: fixed blocks count
  /// their left rows, an exclusive prefix sum turns the counts into per-
  /// block destination offsets, and a scatter pass writes each block's left
  /// run to scratch[left_before(b)] and its right run to
  /// scratch[total_left + right_before(b)] — two disjoint contiguous
  /// destination ranges per block, so the scatter is race-free and the
  /// output is the sequential stable partition by construction (block order
  /// == index order). `total_left` comes from MarkSides* (every array of a
  /// node holds exactly its live rows, so the count is shared).
  template <typename T, typename IsLeft>
  void BlockedPartition(std::vector<T>* arr, std::vector<T>* scratch,
                        size_t begin, size_t end, size_t total_left,
                        IsLeft is_left) {
    const size_t n = end - begin;
    if (scratch->size() < n) scratch->resize(n);
    const size_t nb = (n + kPartitionBlock - 1) / kPartitionBlock;
    block_lefts_.assign(nb, 0);
    T* const a = arr->data() + begin;
    T* const s = scratch->data();
    ParallelForStatic(static_cast<int64_t>(nb), threads_, /*grain=*/1,
                      [&](int64_t bb, int64_t be, int) {
                        for (int64_t b = bb; b < be; ++b) {
                          const size_t lo =
                              static_cast<size_t>(b) * kPartitionBlock;
                          const size_t hi =
                              std::min(n, lo + kPartitionBlock);
                          size_t c = 0;
                          for (size_t i = lo; i < hi; ++i) {
                            c += is_left(a[i]) ? 1 : 0;
                          }
                          block_lefts_[static_cast<size_t>(b)] = c;
                        }
                      });
    size_t run = 0;  // exclusive prefix: lefts strictly before block b
    for (size_t b = 0; b < nb; ++b) {
      const size_t c = block_lefts_[b];
      block_lefts_[b] = run;
      run += c;
    }
    ParallelForStatic(
        static_cast<int64_t>(nb), threads_, /*grain=*/1,
        [&](int64_t bb, int64_t be, int) {
          for (int64_t b = bb; b < be; ++b) {
            const size_t lo = static_cast<size_t>(b) * kPartitionBlock;
            const size_t hi = std::min(n, lo + kPartitionBlock);
            size_t lpos = block_lefts_[static_cast<size_t>(b)];
            size_t rpos = total_left + (lo - lpos);
            for (size_t i = lo; i < hi; ++i) {
              const T v = a[i];
              if (is_left(v)) {
                s[lpos++] = v;
              } else {
                s[rpos++] = v;
              }
            }
          }
        });
    ParallelForStatic(static_cast<int64_t>(n), threads_,
                      static_cast<int64_t>(kPartitionBlock),
                      [&](int64_t b, int64_t e, int) {
                        std::copy(s + b, s + e, a + b);
                      });
  }

  const ColumnDataset& data_;
  const SplitSelector& selector_;
  GrowthLimits limits_;
  const int32_t* weights_;
  const Schema& schema_;
  const int threads_;  // resolved growth thread budget (>= 1)

  std::vector<uint32_t> rows_;  // original-order row ids, node-partitioned
  std::vector<std::vector<AttrEntry>> lists_;  // per numeric attr, sorted
  std::vector<uint8_t> go_left_;  // per row id: side under the current split

  // Expansion-phase (single orchestrator thread) scratch.
  Scratch expand_scratch_;
  std::vector<uint32_t> row_part_scratch_;    // BlockedPartition, rows
  std::vector<AttrEntry> list_part_scratch_;  // BlockedPartition, lists
  std::vector<size_t> block_lefts_;           // per-block left counts/offsets
};

}  // namespace

std::unique_ptr<TreeNode> BuildSubtreeColumnar(const ColumnDataset& data,
                                               const SplitSelector& selector,
                                               const GrowthLimits& limits,
                                               int depth) {
  ColumnarGrowth growth(data, selector, limits, /*weights=*/nullptr);
  return growth.BuildRoot(depth);
}

std::unique_ptr<TreeNode> BuildSubtreeColumnarWeighted(
    const ColumnDataset& data, const std::vector<int32_t>& weights,
    const SplitSelector& selector, const GrowthLimits& limits, int depth) {
  if (static_cast<int64_t>(weights.size()) != data.num_rows()) {
    FatalError("BuildSubtreeColumnarWeighted: weights/rows size mismatch");
  }
  ColumnarGrowth growth(data, selector, limits, weights.data());
  return growth.BuildRoot(depth);
}

DecisionTree BuildTreeColumnar(const ColumnDataset& data,
                               const SplitSelector& selector,
                               const GrowthLimits& limits) {
  return DecisionTree(data.schema(),
                      BuildSubtreeColumnar(data, selector, limits, 0));
}

DecisionTree BuildTreeColumnarWeighted(const ColumnDataset& data,
                                       const std::vector<int32_t>& weights,
                                       const SplitSelector& selector,
                                       const GrowthLimits& limits) {
  return DecisionTree(data.schema(),
                      BuildSubtreeColumnarWeighted(data, weights, selector,
                                                   limits, 0));
}

}  // namespace boat
