#include "tree/columnar_builder.h"

#include <algorithm>

#include "common/status.h"

namespace boat {

namespace {

/// One tree growth over index ranges of a sealed ColumnDataset. Each numeric
/// attribute gets a private SPRINT-style attribute list — (value, row, label)
/// entries in ascending value order, copied once from the dataset's master
/// sort — plus one row-id array in original order for categorical counting.
/// A split stably partitions each array's [begin, end) range in place, so
/// children are contiguous subranges, the root-time sort is never repeated,
/// and every per-node AVC fill is a single sequential pass.
class ColumnarGrowth {
 public:
  ColumnarGrowth(const ColumnDataset& data, const SplitSelector& selector,
                 const GrowthLimits& limits, const int32_t* weights)
      : data_(data),
        selector_(selector),
        limits_(limits),
        weights_(weights),
        schema_(data.schema()) {
    if (!data.sealed()) FatalError("ColumnarGrowth over unsealed dataset");
    const uint32_t n = static_cast<uint32_t>(data.num_rows());
    rows_.reserve(n);
    for (uint32_t r = 0; r < n; ++r) {
      if (Weight(r) > 0) rows_.push_back(r);
    }
    lists_.resize(schema_.num_attributes());
    for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
      if (!schema_.IsNumerical(attr)) continue;
      const double* col = data.numeric_column(attr).data();
      std::vector<AttrEntry>& list = lists_[attr];
      list.reserve(rows_.size());
      for (const uint32_t r : data.sorted_order(attr)) {
        if (Weight(r) > 0) list.push_back({col[r], r, data.label(r)});
      }
    }
    go_left_.resize(n);
    row_scratch_.reserve(rows_.size());
    list_scratch_.reserve(rows_.size());
  }

  /// Number of live (positive-weight) rows across the whole dataset.
  size_t num_live_rows() const { return rows_.size(); }

  /// Per-class counts of the whole live row set — the root's counts.
  std::vector<int64_t> RootCounts() const {
    std::vector<int64_t> counts(schema_.num_classes(), 0);
    for (const uint32_t r : rows_) counts[data_.label(r)] += Weight(r);
    return counts;
  }

  /// `counts` is the range's per-class weight totals, computed by the parent
  /// from its AVC-set (ChildCounts*) — the engine never rescans a family
  /// just to count it.
  std::unique_ptr<TreeNode> Build(size_t begin, size_t end, int depth,
                                  std::vector<int64_t> counts) {
    int64_t total = 0;
    for (const int64_t c : counts) total += c;

    const bool at_depth_limit = depth >= limits_.max_depth;
    const bool too_small = total < limits_.min_tuples_to_split;
    const bool below_stop_threshold =
        limits_.stop_family_size > 0 && total <= limits_.stop_family_size;
    int populated_classes = 0;
    for (const int64_t c : counts) {
      if (c > 0) ++populated_classes;
    }
    // A pure family needs no AVC-group: no split selector would divide it.
    if (at_depth_limit || too_small || below_stop_threshold ||
        populated_classes <= 1) {
      return TreeNode::Leaf(std::move(counts));
    }

    AvcGroup avc(schema_);
    FillAvcGroup(begin, end, counts, &avc);
    std::optional<Split> split = selector_.ChooseSplit(avc);
    if (!split.has_value()) return TreeNode::Leaf(std::move(counts));

    auto [left_counts, right_counts] =
        split->is_numerical
            ? ChildCountsNumeric(avc.numeric(split->attribute), *split)
            : ChildCountsCategorical(avc.categorical(split->attribute),
                                     *split);

    const size_t left_rows = MarkSides(*split, begin, end);
    PartitionRows(begin, end);
    for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
      if (schema_.IsNumerical(attr)) PartitionList(&lists_[attr], begin, end);
    }

    auto left = Build(begin, begin + left_rows, depth + 1,
                      std::move(left_counts));
    auto right = Build(begin + left_rows, end, depth + 1,
                       std::move(right_counts));
    return TreeNode::Internal(*std::move(split), std::move(counts),
                              std::move(left), std::move(right));
  }

 private:
  /// One row of a numeric attribute list: the SoA column value plus the
  /// row's id and label, kept adjacent so the AVC fill never leaves the
  /// cache line it is streaming.
  struct AttrEntry {
    double value;
    uint32_t row;
    int32_t label;
  };

  int64_t Weight(uint32_t row) const {
    return weights_ == nullptr ? 1 : weights_[row];
  }

  void FillAvcGroup(size_t begin, size_t end,
                    const std::vector<int64_t>& counts, AvcGroup* avc) {
    const size_t k = static_cast<size_t>(schema_.num_classes());
    for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
      if (schema_.IsNumerical(attr)) {
        // One streaming pass over the presorted list aggregates the whole
        // AVC-set; values_/counts_ come out exactly as a staged sort-and-
        // merge Finalize would produce them.
        std::vector<double> values;
        std::vector<int64_t> cell_counts;
        values.reserve(end - begin);  // distinct values <= range size
        cell_counts.reserve((end - begin) * k);
        const std::vector<AttrEntry>& list = lists_[attr];
        for (size_t i = begin; i < end; ++i) {
          const AttrEntry& e = list[i];
          if (values.empty() || e.value != values.back()) {
            values.push_back(e.value);
            cell_counts.resize(cell_counts.size() + k, 0);
          }
          cell_counts[cell_counts.size() - k + static_cast<size_t>(e.label)] +=
              Weight(e.row);
        }
        avc->mutable_numeric(attr)->InstallSorted(std::move(values),
                                                  std::move(cell_counts));
      } else {
        CategoricalAvc* cat = avc->mutable_categorical(attr);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t r = rows_[i];
          cat->Add(data_.category(attr, r), data_.label(r), Weight(r));
        }
      }
    }
    for (int32_t c = 0; c < static_cast<int32_t>(counts.size()); ++c) {
      if (counts[c] != 0) avc->AddToClassTotals(c, counts[c]);
    }
  }

  /// Flags every row of the range with its side under `split` and returns
  /// the number of left-bound rows (positions, not weights).
  size_t MarkSides(const Split& split, size_t begin, size_t end) {
    size_t left_rows = 0;
    if (split.is_numerical) {
      const double* col = data_.numeric_column(split.attribute).data();
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = rows_[i];
        const bool left = col[r] <= split.value;
        go_left_[r] = left;
        left_rows += left;
      }
    } else {
      const int32_t card = schema_.attribute(split.attribute).cardinality;
      in_subset_.assign(static_cast<size_t>(card), 0);
      for (const int32_t c : split.subset) in_subset_[c] = 1;
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = rows_[i];
        const bool left = in_subset_[data_.category(split.attribute, r)];
        go_left_[r] = left;
        left_rows += left;
      }
    }
    return left_rows;
  }

  // Stable in-place partition of an array's [begin, end) range: left rows
  // keep their relative order at the front, right rows at the back.
  // Stability keeps every array of the node aligned on the same row set.

  void PartitionRows(size_t begin, size_t end) {
    row_scratch_.clear();
    size_t out = begin;
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = rows_[i];
      if (go_left_[r]) {
        rows_[out++] = r;
      } else {
        row_scratch_.push_back(r);
      }
    }
    std::copy(row_scratch_.begin(), row_scratch_.end(), rows_.begin() + out);
  }

  void PartitionList(std::vector<AttrEntry>* list, size_t begin, size_t end) {
    std::vector<AttrEntry>& a = *list;
    list_scratch_.clear();
    size_t out = begin;
    for (size_t i = begin; i < end; ++i) {
      const AttrEntry e = a[i];
      if (go_left_[e.row]) {
        a[out++] = e;
      } else {
        list_scratch_.push_back(e);
      }
    }
    std::copy(list_scratch_.begin(), list_scratch_.end(), a.begin() + out);
  }

  const ColumnDataset& data_;
  const SplitSelector& selector_;
  GrowthLimits limits_;
  const int32_t* weights_;
  const Schema& schema_;

  std::vector<uint32_t> rows_;  // original-order row ids, node-partitioned
  std::vector<std::vector<AttrEntry>> lists_;  // per numeric attr, sorted
  std::vector<uint8_t> go_left_;   // per row id: side under the current split
  std::vector<uint32_t> row_scratch_;     // right-side buffer, PartitionRows
  std::vector<AttrEntry> list_scratch_;   // right-side buffer, PartitionList
  std::vector<uint8_t> in_subset_;  // categorical subset membership scratch
};

}  // namespace

std::unique_ptr<TreeNode> BuildSubtreeColumnar(const ColumnDataset& data,
                                               const SplitSelector& selector,
                                               const GrowthLimits& limits,
                                               int depth) {
  ColumnarGrowth growth(data, selector, limits, /*weights=*/nullptr);
  return growth.Build(0, static_cast<size_t>(data.num_rows()), depth,
                      growth.RootCounts());
}

std::unique_ptr<TreeNode> BuildSubtreeColumnarWeighted(
    const ColumnDataset& data, const std::vector<int32_t>& weights,
    const SplitSelector& selector, const GrowthLimits& limits, int depth) {
  if (static_cast<int64_t>(weights.size()) != data.num_rows()) {
    FatalError("BuildSubtreeColumnarWeighted: weights/rows size mismatch");
  }
  ColumnarGrowth growth(data, selector, limits, weights.data());
  return growth.Build(0, growth.num_live_rows(), depth, growth.RootCounts());
}

DecisionTree BuildTreeColumnar(const ColumnDataset& data,
                               const SplitSelector& selector,
                               const GrowthLimits& limits) {
  return DecisionTree(data.schema(),
                      BuildSubtreeColumnar(data, selector, limits, 0));
}

DecisionTree BuildTreeColumnarWeighted(const ColumnDataset& data,
                                       const std::vector<int32_t>& weights,
                                       const SplitSelector& selector,
                                       const GrowthLimits& limits) {
  return DecisionTree(data.schema(),
                      BuildSubtreeColumnarWeighted(data, weights, selector,
                                                   limits, 0));
}

}  // namespace boat
