#include "tree/ensemble.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace boat {

namespace {

/// Vote accumulation block: bounds the per-class counter pane to ~a few MB
/// worst case (4096 tuples x k classes x 4 bytes) while keeping each
/// member's batched Predict call large enough to hit the block kernels.
constexpr size_t kVoteBlock = 4096;

}  // namespace

void EnsemblePredict(std::span<const CompiledTree> members, int num_classes,
                     std::span<const Tuple> tuples, std::span<int32_t> out,
                     std::span<double> confidence, int num_threads) {
  assert(!members.empty());
  assert(out.size() == tuples.size());
  assert(confidence.empty() || confidence.size() == tuples.size());
  if (members.size() == 1 && confidence.empty()) {
    // Single member: the vote is the tree's own label; skip the counter
    // pane entirely so a one-tree ensemble serves at bare-tree speed.
    members[0].Predict(tuples, out, num_threads);
    return;
  }
  const size_t k = static_cast<size_t>(num_classes);
  std::vector<int32_t> scratch(std::min(kVoteBlock, tuples.size()));
  std::vector<int32_t> votes;
  for (size_t base = 0; base < tuples.size(); base += kVoteBlock) {
    const size_t n = std::min(kVoteBlock, tuples.size() - base);
    votes.assign(n * k, 0);
    const std::span<const Tuple> block = tuples.subspan(base, n);
    const std::span<int32_t> labels(scratch.data(), n);
    for (const CompiledTree& member : members) {
      member.Predict(block, labels, num_threads);
      for (size_t i = 0; i < n; ++i) {
        const int32_t label = labels[i];
        if (label >= 0 && static_cast<size_t>(label) < k) {
          ++votes[i * k + static_cast<size_t>(label)];
        }
      }
    }
    // Argmax scans classes ascending with a strict >, so ties resolve to
    // the lowest class id — deterministic for any member order or thread
    // count (the thread count only stripes each member's Predict).
    for (size_t i = 0; i < n; ++i) {
      int32_t best = 0;
      int32_t best_votes = votes[i * k];
      for (size_t c = 1; c < k; ++c) {
        if (votes[i * k + c] > best_votes) {
          best = static_cast<int32_t>(c);
          best_votes = votes[i * k + c];
        }
      }
      out[base + i] = best;
      if (!confidence.empty()) {
        confidence[base + i] = static_cast<double>(best_votes) /
                               static_cast<double>(members.size());
      }
    }
  }
}

CompiledEnsemble::CompiledEnsemble(const DecisionTree& tree)
    : num_classes_(tree.schema().num_classes()) {
  members_.emplace_back(tree);
}

CompiledEnsemble::CompiledEnsemble(const std::vector<DecisionTree>& members) {
  assert(!members.empty());
  members_.reserve(members.size());
  for (const DecisionTree& tree : members) members_.emplace_back(tree);
  num_classes_ = members_.front().schema().num_classes();
}

int32_t CompiledEnsemble::Classify(const Tuple& tuple) const {
  if (members_.size() == 1) return members_.front().Classify(tuple);
  std::vector<int32_t> counts(static_cast<size_t>(num_classes_), 0);
  for (const CompiledTree& member : members_) {
    const int32_t label = member.Classify(tuple);
    if (label >= 0 && label < num_classes_) {
      ++counts[static_cast<size_t>(label)];
    }
  }
  int32_t best = 0;
  for (int32_t c = 1; c < num_classes_; ++c) {
    if (counts[static_cast<size_t>(c)] > counts[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

void CompiledEnsemble::Predict(std::span<const Tuple> tuples,
                               std::span<int32_t> out, int num_threads) const {
  EnsemblePredict(members_, num_classes_, tuples, out, /*confidence=*/{},
                  num_threads);
}

void CompiledEnsemble::PredictWithConfidence(std::span<const Tuple> tuples,
                                             std::span<int32_t> out,
                                             std::span<double> confidence,
                                             int num_threads) const {
  EnsemblePredict(members_, num_classes_, tuples, out, confidence,
                  num_threads);
}

size_t CompiledEnsemble::total_nodes() const {
  size_t nodes = 0;
  for (const CompiledTree& member : members_) nodes += member.num_nodes();
  return nodes;
}

}  // namespace boat
