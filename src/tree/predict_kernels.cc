#include "tree/predict_kernels.h"

#include <cstddef>

namespace boat::detail {

// Level-synchronous sweep with active-lane compaction. Every lane starts at
// the root; one pass advances every active lane one level. A lane whose next
// node is a leaf writes its label and is dropped from the active set, so the
// cost is the sum of *path lengths*, not block_size * max_depth. The
// branch on node kind (numeric vs categorical bitset probe) is the only
// data-dependent branch; the direction choice itself is index arithmetic.
void ScoreBlockScalar(const NodePoolView& pool, const double* col,
                      int64_t stride, int64_t nb, int32_t* act_idx,
                      int32_t* act_node, int32_t* out) {
  if (nb <= 0) return;
  if (pool.pair_child[0] == 0) {
    // Single-leaf tree: the root self-loops and no sweep would terminate
    // lanes, so emit directly.
    for (int64_t i = 0; i < nb; ++i) out[i] = pool.label[0];
    return;
  }
  for (int64_t i = 0; i < nb; ++i) {
    act_idx[i] = static_cast<int32_t>(i);
    act_node[i] = 0;
  }
  int64_t na = nb;
  while (na > 0) {
    int64_t m = 0;
    for (int64_t k = 0; k < na; ++k) {
      const int32_t i = act_idx[k];
      const int32_t n = act_node[k];
      const size_t un = static_cast<size_t>(n);
      const int32_t s = pool.slot[un];
      const double v =
          col[static_cast<size_t>(s) * static_cast<size_t>(stride) +
              static_cast<size_t>(i)];
      const int32_t off = pool.bitset_offset[un];
      int32_t right;
      if (off < 0) {
        // Mirror Classify exactly: left iff v <= t, so NaN goes right.
        right = (v <= pool.threshold[un]) ? 0 : 1;
      } else {
        const int32_t c = static_cast<int32_t>(v);
        const bool left =
            c >= 0 && c < pool.slot_domain_bits[s] &&
            ((pool.bits[static_cast<size_t>(off) +
                        (static_cast<size_t>(c) >> 6)] >>
              (static_cast<uint32_t>(c) & 63)) &
             1) != 0;
        right = left ? 0 : 1;
      }
      const int32_t next = pool.pair_child[2 * un + static_cast<size_t>(right)];
      const bool settled =
          pool.pair_child[2 * static_cast<size_t>(next)] == next;
      // Unconditional label write: internal nodes carry -1, overwritten by
      // the final level; every lane writes its real label exactly once when
      // it settles. This is what lets Predict target uninitialized storage.
      out[i] = pool.label[static_cast<size_t>(next)];
      act_idx[m] = i;
      act_node[m] = next;
      m += settled ? 0 : 1;
    }
    na = m;
  }
}

bool SimdBlockKernelAvailable() {
#if defined(__x86_64__) || defined(_M_X64)
  return Avx2Supported();
#elif defined(__aarch64__) && defined(__ARM_NEON)
  return true;
#else
  return false;
#endif
}

BlockKernelChoice ChooseBlockKernel(bool allow_simd) {
#if defined(__x86_64__) || defined(_M_X64)
  if (allow_simd && Avx2Supported()) return {&ScoreBlockAvx2, "avx2"};
#elif defined(__aarch64__) && defined(__ARM_NEON)
  if (allow_simd) return {&ScoreBlockNeon, "neon"};
#else
  (void)allow_simd;
#endif
  return {&ScoreBlockScalar, "scalar"};
}

}  // namespace boat::detail
