#include "tree/evaluation.h"

#include <cmath>
#include <memory>
#include <span>

#include "common/status.h"
#include "common/str_util.h"

namespace boat {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : k_(num_classes),
      counts_(static_cast<size_t>(num_classes) * num_classes, 0) {}

void ConfusionMatrix::Add(int32_t actual, int32_t predicted, int64_t weight) {
  counts_[static_cast<size_t>(actual) * k_ + predicted] += weight;
}

int64_t ConfusionMatrix::total() const {
  int64_t n = 0;
  for (const int64_t c : counts_) n += c;
  return n;
}

double ConfusionMatrix::Accuracy() const {
  const int64_t n = total();
  if (n == 0) return 0.0;
  int64_t correct = 0;
  for (int c = 0; c < k_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(n);
}

double ConfusionMatrix::Precision(int32_t cls) const {
  int64_t predicted = 0;
  for (int a = 0; a < k_; ++a) predicted += count(a, cls);
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(int32_t cls) const {
  int64_t actual = 0;
  for (int p = 0; p < k_; ++p) actual += count(cls, p);
  if (actual == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(actual);
}

std::string ConfusionMatrix::ToString() const {
  std::string out = "actual\\predicted";
  for (int p = 0; p < k_; ++p) out += StrPrintf("%10d", p);
  out += "\n";
  for (int a = 0; a < k_; ++a) {
    out += StrPrintf("%16d", a);
    for (int p = 0; p < k_; ++p) {
      out += StrPrintf("%10lld", static_cast<long long>(count(a, p)));
    }
    out += "\n";
  }
  return out;
}

ConfusionMatrix Evaluate(const DecisionTree& tree,
                         const std::vector<Tuple>& data, int num_threads) {
  return Evaluate(CompiledTree(tree), data, num_threads);
}

ConfusionMatrix Evaluate(const CompiledTree& tree,
                         const std::vector<Tuple>& data, int num_threads) {
  ConfusionMatrix cm(tree.schema().num_classes());
  // Uninitialized-capacity scoring buffer: Predict writes every slot, so
  // the zero-fill a sized std::vector would do is pure overhead here.
  const auto predicted = std::make_unique_for_overwrite<int32_t[]>(data.size());
  tree.Predict(data, std::span<int32_t>(predicted.get(), data.size()),
               num_threads);
  for (size_t i = 0; i < data.size(); ++i) {
    cm.Add(data[i].label(), predicted[i]);
  }
  return cm;
}

std::pair<std::vector<Tuple>, std::vector<Tuple>> HoldoutSplit(
    std::vector<Tuple> data, double test_fraction, Rng* rng) {
  // Fisher-Yates shuffle, then cut.
  for (size_t i = data.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(data[i - 1], data[j]);
  }
  const size_t test_size = static_cast<size_t>(
      test_fraction * static_cast<double>(data.size()));
  std::vector<Tuple> test(data.end() - static_cast<int64_t>(test_size),
                          data.end());
  data.resize(data.size() - test_size);
  return {std::move(data), std::move(test)};
}

CrossValidationResult CrossValidate(
    const std::vector<Tuple>& data, int folds, Rng* rng,
    const std::function<DecisionTree(const std::vector<Tuple>&)>& builder) {
  if (folds < 2) FatalError("CrossValidate requires at least 2 folds");
  // Deterministic shuffled fold assignment.
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }

  CrossValidationResult result;
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<Tuple> train;
    std::vector<Tuple> test;
    for (size_t i = 0; i < order.size(); ++i) {
      const bool in_test = static_cast<int>(i % folds) == fold;
      (in_test ? test : train).push_back(data[order[i]]);
    }
    DecisionTree tree = builder(train);
    FoldResult fr;
    fr.accuracy = Evaluate(tree, test).Accuracy();
    fr.tree_nodes = tree.num_nodes();
    result.folds.push_back(fr);
  }
  double sum = 0;
  for (const FoldResult& fr : result.folds) sum += fr.accuracy;
  result.mean_accuracy = sum / static_cast<double>(folds);
  double var = 0;
  for (const FoldResult& fr : result.folds) {
    const double d = fr.accuracy - result.mean_accuracy;
    var += d * d;
  }
  result.stddev_accuracy = std::sqrt(var / static_cast<double>(folds));
  return result;
}

}  // namespace boat
