// CompiledEnsemble: a bagged majority-vote classifier over one or more
// CompiledTrees, sharing one schema.
//
// BOAT's sampling phase builds b bootstrap trees and (by default) discards
// them after the cleanup scan. When they are kept (see
// BoatOptions::keep_bootstrap_trees) they form a classic bagged ensemble:
// each member votes with its leaf label and the ensemble answers the
// majority class, with ties broken toward the lowest class id so the vote
// is deterministic regardless of member order evaluation or thread count.
//
// Scoring runs one batched CompiledTree::Predict per member over a block of
// tuples and accumulates per-class vote counts, so the ensemble inherits the
// blocked/SIMD batch kernels instead of re-walking trees tuple-at-a-time.
// A single-member ensemble delegates straight to CompiledTree::Predict and
// is byte- and speed-identical to serving the tree directly — this is what
// lets the serving layer hold every servable model as a CompiledEnsemble.

#ifndef BOAT_TREE_ENSEMBLE_H_
#define BOAT_TREE_ENSEMBLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tree/compiled_tree.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief Bagged majority vote over compiled trees: out[i] = argmax_c
/// |{m : members[m].Classify(tuples[i]) == c}|, ties toward the lower class
/// id. When `confidence` is non-empty it must have tuples.size() elements
/// and receives the winning vote fraction (votes_for_winner / num_members).
/// All members must share one schema; `num_classes` is the vote width.
/// Deterministic for every `num_threads` (the thread count only stripes the
/// per-member batched Predict calls).
void EnsemblePredict(std::span<const CompiledTree> members, int num_classes,
                     std::span<const Tuple> tuples, std::span<int32_t> out,
                     std::span<double> confidence, int num_threads = 1);

/// \brief An immutable compiled ensemble. One member behaves exactly like a
/// bare CompiledTree; b members behave like a bagged vote over them.
class CompiledEnsemble {
 public:
  /// \brief Single-member ensemble: serving-compatible wrapper around one
  /// compiled tree. Classify/Predict delegate with zero vote overhead.
  explicit CompiledEnsemble(const DecisionTree& tree);

  /// \brief Bagged ensemble over `members` (must be non-empty and share one
  /// schema, e.g. the bootstrap trees of one sampling phase).
  explicit CompiledEnsemble(const std::vector<DecisionTree>& members);

  /// \brief Majority-vote label of one record (lowest class id on ties).
  [[nodiscard]] int32_t Classify(const Tuple& tuple) const;

  /// \brief Batched scoring: out[i] = Classify(tuples[i]). `out` must have
  /// exactly tuples.size() elements and may be uninitialized. Identical
  /// output for every thread count.
  void Predict(std::span<const Tuple> tuples, std::span<int32_t> out,
               int num_threads = 1) const;

  /// \brief Predict plus per-record confidence: the winning class's vote
  /// fraction in [1/num_members, 1]. A single-member ensemble always
  /// reports 1.0.
  void PredictWithConfidence(std::span<const Tuple> tuples,
                             std::span<int32_t> out,
                             std::span<double> confidence,
                             int num_threads = 1) const;

  const Schema& schema() const { return members_.front().schema(); }
  int num_members() const { return static_cast<int>(members_.size()); }
  const std::vector<CompiledTree>& members() const { return members_; }
  /// \brief Sum of node counts across members (diagnostics / STATS).
  size_t total_nodes() const;

 private:
  std::vector<CompiledTree> members_;
  int num_classes_ = 0;
};

}  // namespace boat

#endif  // BOAT_TREE_ENSEMBLE_H_
