// ColumnDataset: a structure-of-arrays materialization of a node family for
// the columnar growth engine.
//
// The in-memory reference builder historically re-staged and re-sorted every
// numeric attribute at every node. A ColumnDataset instead holds each
// attribute as one contiguous column (double for numerical, int32 for
// categorical) plus a label array, and — once Seal() is called — one sorted
// index permutation per numeric attribute, computed exactly once. Tree
// growth then operates on [begin, end) ranges of these permutations,
// partitioning them stably in place at each split, so numeric AVC-sets are
// built by a single linear walk in presorted order with zero per-node
// sorting, and categorical AVC-sets by a dense counting pass.

#ifndef BOAT_TREE_COLUMN_DATASET_H_
#define BOAT_TREE_COLUMN_DATASET_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace boat {

/// \brief Columnar (SoA) training-set container. Append rows, then Seal()
/// once to compute the per-numeric-attribute sort permutations; after Seal
/// the dataset is immutable and safe to share read-only across threads (the
/// bootstrap phase grows all b+1 trees over one sealed master dataset).
class ColumnDataset {
 public:
  /// \param schema must outlive the dataset.
  explicit ColumnDataset(const Schema& schema);

  /// \brief Convenience: materialize and Seal() in one step. `num_threads`
  /// parallelizes the root sorts (see Seal).
  ColumnDataset(const Schema& schema, const std::vector<Tuple>& tuples,
                int num_threads = 1);

  void Reserve(int64_t rows);

  /// \brief Appends one row; only valid before Seal().
  void Append(const Tuple& tuple);

  /// \brief Sorts each numeric column's index permutation (ascending value,
  /// ties by row id — a stable order). Idempotent. With num_threads != 1
  /// (0 = all hardware cores) attributes sort concurrently; each permutation
  /// is a pure function of its own column, so the result is identical for
  /// every thread count.
  void Seal(int num_threads = 1);
  bool sealed() const { return sealed_; }

  const Schema& schema() const { return *schema_; }
  int64_t num_rows() const { return static_cast<int64_t>(labels_.size()); }

  double numeric(int attr, uint32_t row) const {
    return numeric_cols_[attr][row];
  }
  int32_t category(int attr, uint32_t row) const {
    return categorical_cols_[attr][row];
  }
  int32_t label(uint32_t row) const { return labels_[row]; }

  const std::vector<double>& numeric_column(int attr) const {
    return numeric_cols_[attr];
  }
  const std::vector<int32_t>& labels() const { return labels_; }

  /// \brief Row ids sorted by the numeric attribute's value (requires
  /// Seal()). Empty for categorical attributes.
  const std::vector<uint32_t>& sorted_order(int attr) const;

 private:
  const Schema* schema_;
  bool sealed_ = false;
  std::vector<std::vector<double>> numeric_cols_;    // per attr ([] for cat)
  std::vector<std::vector<int32_t>> categorical_cols_;  // per attr
  std::vector<int32_t> labels_;
  std::vector<std::vector<uint32_t>> sorted_;  // per numeric attr, by Seal()
};

}  // namespace boat

#endif  // BOAT_TREE_COLUMN_DATASET_H_
