#include "tree/inmem_builder.h"

namespace boat {

std::unique_ptr<TreeNode> BuildSubtreeInMemory(const Schema& schema,
                                               std::vector<Tuple> tuples,
                                               const SplitSelector& selector,
                                               const GrowthLimits& limits,
                                               int depth) {
  std::vector<int64_t> counts(schema.num_classes(), 0);
  for (const Tuple& t : tuples) ++counts[t.label()];
  const int64_t total = static_cast<int64_t>(tuples.size());

  const bool at_depth_limit = depth >= limits.max_depth;
  const bool too_small = total < limits.min_tuples_to_split;
  const bool below_stop_threshold =
      limits.stop_family_size > 0 && total <= limits.stop_family_size;
  int populated_classes = 0;
  for (const int64_t c : counts) {
    if (c > 0) ++populated_classes;
  }
  // A pure family needs no AVC-group: no split selector would divide it.
  if (at_depth_limit || too_small || below_stop_threshold ||
      populated_classes <= 1) {
    return TreeNode::Leaf(std::move(counts));
  }

  AvcGroup avc = BuildAvcGroup(schema, tuples);
  std::optional<Split> split = selector.ChooseSplit(avc);
  if (!split.has_value()) return TreeNode::Leaf(std::move(counts));

  std::vector<Tuple> left_tuples;
  std::vector<Tuple> right_tuples;
  for (Tuple& t : tuples) {
    (split->SendLeft(t) ? left_tuples : right_tuples)
        .push_back(std::move(t));
  }
  tuples.clear();
  tuples.shrink_to_fit();

  auto left = BuildSubtreeInMemory(schema, std::move(left_tuples), selector,
                                   limits, depth + 1);
  auto right = BuildSubtreeInMemory(schema, std::move(right_tuples), selector,
                                    limits, depth + 1);
  return TreeNode::Internal(*std::move(split), std::move(counts),
                            std::move(left), std::move(right));
}

DecisionTree BuildTreeInMemory(const Schema& schema, std::vector<Tuple> tuples,
                               const SplitSelector& selector,
                               const GrowthLimits& limits) {
  auto root =
      BuildSubtreeInMemory(schema, std::move(tuples), selector, limits, 0);
  return DecisionTree(schema, std::move(root));
}

}  // namespace boat
