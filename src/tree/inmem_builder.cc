#include "tree/inmem_builder.h"

#include <cstdlib>
#include <cstring>
#include <numeric>

#include "tree/column_dataset.h"
#include "tree/columnar_builder.h"

namespace boat {

bool GrowthEngineIsColumnar() {
  static const bool columnar = [] {
    // determinism-lint: allow(engine selection is output-invariant; both growth engines build the byte-identical tree, enforced by the bench-smoke byte-compare)
    const char* engine = std::getenv("BOAT_GROWTH_ENGINE");
    return engine == nullptr || std::strcmp(engine, "rows") != 0;
  }();
  return columnar;
}

std::unique_ptr<TreeNode> BuildSubtreeInMemoryRows(
    const Schema& schema, std::vector<Tuple> tuples,
    const SplitSelector& selector, const GrowthLimits& limits, int depth) {
  std::vector<int64_t> counts(schema.num_classes(), 0);
  for (const Tuple& t : tuples) ++counts[t.label()];
  const int64_t total = static_cast<int64_t>(tuples.size());

  const bool at_depth_limit = depth >= limits.max_depth;
  const bool too_small = total < limits.min_tuples_to_split;
  const bool below_stop_threshold =
      limits.stop_family_size > 0 && total <= limits.stop_family_size;
  int populated_classes = 0;
  for (const int64_t c : counts) {
    if (c > 0) ++populated_classes;
  }
  // A pure family needs no AVC-group: no split selector would divide it.
  if (at_depth_limit || too_small || below_stop_threshold ||
      populated_classes <= 1) {
    return TreeNode::Leaf(std::move(counts));
  }

  AvcGroup avc = BuildAvcGroup(schema, tuples);
  std::optional<Split> split = selector.ChooseSplit(avc);
  if (!split.has_value()) return TreeNode::Leaf(std::move(counts));

  // The chosen split's AVC-set already knows both child sizes; reserve
  // exactly instead of growing the child vectors geometrically.
  const auto [left_counts, right_counts] =
      split->is_numerical
          ? ChildCountsNumeric(avc.numeric(split->attribute), *split)
          : ChildCountsCategorical(avc.categorical(split->attribute), *split);
  std::vector<Tuple> left_tuples;
  std::vector<Tuple> right_tuples;
  left_tuples.reserve(static_cast<size_t>(
      std::accumulate(left_counts.begin(), left_counts.end(), int64_t{0})));
  right_tuples.reserve(static_cast<size_t>(
      std::accumulate(right_counts.begin(), right_counts.end(), int64_t{0})));
  for (Tuple& t : tuples) {
    (split->SendLeft(t) ? left_tuples : right_tuples)
        .push_back(std::move(t));
  }

  auto left = BuildSubtreeInMemoryRows(schema, std::move(left_tuples),
                                       selector, limits, depth + 1);
  auto right = BuildSubtreeInMemoryRows(schema, std::move(right_tuples),
                                        selector, limits, depth + 1);
  return TreeNode::Internal(*std::move(split), std::move(counts),
                            std::move(left), std::move(right));
}

DecisionTree BuildTreeInMemoryRows(const Schema& schema,
                                   std::vector<Tuple> tuples,
                                   const SplitSelector& selector,
                                   const GrowthLimits& limits) {
  auto root =
      BuildSubtreeInMemoryRows(schema, std::move(tuples), selector, limits, 0);
  return DecisionTree(schema, std::move(root));
}

std::unique_ptr<TreeNode> BuildSubtreeInMemory(const Schema& schema,
                                               std::vector<Tuple> tuples,
                                               const SplitSelector& selector,
                                               const GrowthLimits& limits,
                                               int depth) {
  if (!GrowthEngineIsColumnar()) {
    return BuildSubtreeInMemoryRows(schema, std::move(tuples), selector,
                                    limits, depth);
  }
  ColumnDataset data(schema, tuples, limits.num_threads);
  tuples.clear();
  tuples.shrink_to_fit();
  return BuildSubtreeColumnar(data, selector, limits, depth);
}

DecisionTree BuildTreeInMemory(const Schema& schema, std::vector<Tuple> tuples,
                               const SplitSelector& selector,
                               const GrowthLimits& limits) {
  auto root =
      BuildSubtreeInMemory(schema, std::move(tuples), selector, limits, 0);
  return DecisionTree(schema, std::move(root));
}

}  // namespace boat
