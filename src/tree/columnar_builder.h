// Columnar greedy top-down tree growth over a sealed ColumnDataset.
//
// Produces the byte-identical tree to the row-at-a-time reference builder
// (BuildSubtreeInMemoryRows) for every split selector: AVC-sets are
// order-free sufficient statistics, and both engines feed the selector
// identical AVC content — the columnar one from a single linear walk over
// the root-sorted index permutations instead of a per-node sort.
//
// The weighted variants grow the tree of the *multiset* in which row r
// appears weights[r] times (rows with weight 0 are absent). This is how the
// bootstrap phase grows all b+1 resample trees over one shared master
// dataset — and one shared root sort — without materializing any resample.

#ifndef BOAT_TREE_COLUMNAR_BUILDER_H_
#define BOAT_TREE_COLUMNAR_BUILDER_H_

#include <memory>
#include <vector>

#include "split/selector.h"
#include "tree/column_dataset.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief Grows a subtree over all rows of `data` (which must be sealed).
/// `depth` is the depth of the subtree's root in the full tree.
std::unique_ptr<TreeNode> BuildSubtreeColumnar(const ColumnDataset& data,
                                               const SplitSelector& selector,
                                               const GrowthLimits& limits,
                                               int depth);

/// \brief Weighted variant: row r participates with multiplicity weights[r]
/// (weights.size() == data.num_rows(); zero-weight rows are skipped).
std::unique_ptr<TreeNode> BuildSubtreeColumnarWeighted(
    const ColumnDataset& data, const std::vector<int32_t>& weights,
    const SplitSelector& selector, const GrowthLimits& limits, int depth);

/// \brief Grows a full decision tree over a sealed ColumnDataset.
DecisionTree BuildTreeColumnar(const ColumnDataset& data,
                               const SplitSelector& selector,
                               const GrowthLimits& limits = GrowthLimits());

/// \brief Weighted full-tree variant (see BuildSubtreeColumnarWeighted).
DecisionTree BuildTreeColumnarWeighted(const ColumnDataset& data,
                                       const std::vector<int32_t>& weights,
                                       const SplitSelector& selector,
                                       const GrowthLimits& limits =
                                           GrowthLimits());

}  // namespace boat

#endif  // BOAT_TREE_COLUMNAR_BUILDER_H_
