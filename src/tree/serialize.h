// Decision-tree (de)serialization: a line-based text format with exact
// (hex-float) round-tripping of split values.

#ifndef BOAT_TREE_SERIALIZE_H_
#define BOAT_TREE_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief Serializes a tree to the BOATTREE v1 text format.
[[nodiscard]] std::string SerializeTree(const DecisionTree& tree);

/// \brief Parses a BOATTREE v1 document; the schema must match the one the
/// tree was grown against (validated by fingerprint).
Result<DecisionTree> DeserializeTree(const std::string& text,
                                     const Schema& schema);

/// \brief Serializes a bare subtree (no header) in the same line format;
/// used by the model persistence layer.
[[nodiscard]] std::string SerializeSubtree(const TreeNode& root);

/// \brief Parses a bare subtree serialized by SerializeSubtree. `cursor` is
/// advanced past the consumed lines.
Result<std::unique_ptr<TreeNode>> DeserializeSubtree(
    const std::vector<std::string>& lines, size_t* cursor,
    const Schema& schema);

/// \brief Writes the serialized tree to a file.
Status SaveTree(const DecisionTree& tree, const std::string& path);

/// \brief Reads a tree from a file written by SaveTree.
Result<DecisionTree> LoadTree(const std::string& path, const Schema& schema);

}  // namespace boat

#endif  // BOAT_TREE_SERIALIZE_H_
