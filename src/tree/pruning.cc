#include "tree/pruning.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace boat {

namespace {

// Resubstitution errors of a node treated as a leaf (training tuples not of
// the majority class).
int64_t LeafErrors(const TreeNode& node) {
  int64_t total = 0;
  int64_t maxc = 0;
  for (const int64_t c : node.class_counts) {
    total += c;
    maxc = std::max(maxc, c);
  }
  return total - maxc;
}

// ------------------------------------------------------------------ MDL

struct MdlResult {
  double cost;  // description length of the best encoding of the subtree
  std::unique_ptr<TreeNode> pruned;
};

MdlResult MdlPrune(const TreeNode& node, double penalty) {
  const double leaf_cost = static_cast<double>(LeafErrors(node)) + penalty;
  if (node.is_leaf()) {
    return {leaf_cost, TreeNode::Leaf(node.class_counts)};
  }
  MdlResult left = MdlPrune(*node.left, penalty);
  MdlResult right = MdlPrune(*node.right, penalty);
  const double split_cost = penalty + left.cost + right.cost;
  if (leaf_cost <= split_cost) {
    return {leaf_cost, TreeNode::Leaf(node.class_counts)};
  }
  return {split_cost,
          TreeNode::Internal(*node.split, node.class_counts,
                             std::move(left.pruned), std::move(right.pruned))};
}

// -------------------------------------------------------- cost-complexity

struct CcInfo {
  int64_t subtree_errors;  // resubstitution errors of the (pruned) subtree
  int64_t leaves;
  std::unique_ptr<TreeNode> pruned;
};

CcInfo CcPrune(const TreeNode& node, double alpha) {
  const int64_t leaf_errors = LeafErrors(node);
  if (node.is_leaf()) {
    return {leaf_errors, 1, TreeNode::Leaf(node.class_counts)};
  }
  CcInfo left = CcPrune(*node.left, alpha);
  CcInfo right = CcPrune(*node.right, alpha);
  const int64_t subtree_errors = left.subtree_errors + right.subtree_errors;
  const int64_t leaves = left.leaves + right.leaves;
  // Collapse when leaf cost <= subtree cost at complexity alpha:
  //   leaf_errors + alpha <= subtree_errors + alpha * leaves
  const double leaf_cost = static_cast<double>(leaf_errors) + alpha;
  const double subtree_cost = static_cast<double>(subtree_errors) +
                              alpha * static_cast<double>(leaves);
  if (leaf_cost <= subtree_cost) {
    return {leaf_errors, 1, TreeNode::Leaf(node.class_counts)};
  }
  return {subtree_errors, leaves,
          TreeNode::Internal(*node.split, node.class_counts,
                             std::move(left.pruned), std::move(right.pruned))};
}

// Collects every internal node's critical alpha: the complexity at which
// collapsing it becomes worthwhile, g(t) = (R(t) - R(T_t)) / (|T_t| - 1).
void CollectAlphas(const TreeNode& node, int64_t* errors, int64_t* leaves,
                   std::vector<double>* alphas) {
  if (node.is_leaf()) {
    *errors = LeafErrors(node);
    *leaves = 1;
    return;
  }
  int64_t le, ll, re, rl;
  CollectAlphas(*node.left, &le, &ll, alphas);
  CollectAlphas(*node.right, &re, &rl, alphas);
  *errors = le + re;
  *leaves = ll + rl;
  if (*leaves > 1) {
    const double g = static_cast<double>(LeafErrors(node) - *errors) /
                     static_cast<double>(*leaves - 1);
    alphas->push_back(std::max(0.0, g));
  }
}

// --------------------------------------------------------- reduced error

struct ReResult {
  int64_t validation_errors;
  std::unique_ptr<TreeNode> pruned;
};

ReResult RePrune(const TreeNode& node, std::vector<Tuple> validation) {
  const int32_t majority = node.MajorityLabel();
  int64_t leaf_errors = 0;
  for (const Tuple& t : validation) {
    if (t.label() != majority) ++leaf_errors;
  }
  if (node.is_leaf()) {
    return {leaf_errors, TreeNode::Leaf(node.class_counts)};
  }
  std::vector<Tuple> left_val;
  std::vector<Tuple> right_val;
  for (Tuple& t : validation) {
    (node.split->SendLeft(t) ? left_val : right_val).push_back(std::move(t));
  }
  validation.clear();
  ReResult left = RePrune(*node.left, std::move(left_val));
  ReResult right = RePrune(*node.right, std::move(right_val));
  const int64_t subtree_errors =
      left.validation_errors + right.validation_errors;
  if (leaf_errors <= subtree_errors) {
    return {leaf_errors, TreeNode::Leaf(node.class_counts)};
  }
  return {subtree_errors,
          TreeNode::Internal(*node.split, node.class_counts,
                             std::move(left.pruned), std::move(right.pruned))};
}

}  // namespace

DecisionTree PruneMdl(const DecisionTree& tree, double penalty) {
  if (penalty <= 0.0) {
    const double n =
        std::max<double>(2.0, static_cast<double>(tree.root().family_size()));
    penalty = 0.5 * std::log2(n) + 1.0;
  }
  return DecisionTree(tree.schema(), MdlPrune(tree.root(), penalty).pruned);
}

DecisionTree PruneCostComplexity(const DecisionTree& tree, double alpha) {
  return DecisionTree(tree.schema(), CcPrune(tree.root(), alpha).pruned);
}

std::vector<double> CostComplexityAlphas(const DecisionTree& tree) {
  std::vector<double> alphas;
  int64_t errors, leaves;
  CollectAlphas(tree.root(), &errors, &leaves, &alphas);
  std::sort(alphas.begin(), alphas.end());
  alphas.erase(std::unique(alphas.begin(), alphas.end()), alphas.end());
  return alphas;
}

DecisionTree PruneReducedError(const DecisionTree& tree,
                               const std::vector<Tuple>& validation) {
  return DecisionTree(tree.schema(),
                      RePrune(tree.root(), validation).pruned);
}

DecisionTree SelectByValidation(const DecisionTree& tree,
                                const std::vector<Tuple>& validation) {
  DecisionTree best = tree.Clone();
  double best_error = tree.MisclassificationRate(validation);
  size_t best_size = tree.num_nodes();
  for (const double alpha : CostComplexityAlphas(tree)) {
    DecisionTree candidate =
        PruneCostComplexity(tree, std::nextafter(alpha, alpha + 1.0));
    const double error = candidate.MisclassificationRate(validation);
    const size_t size = candidate.num_nodes();
    if (error < best_error || (error == best_error && size < best_size)) {
      best_error = error;
      best_size = size;
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace boat
