// Umbrella header: the public API of the BOAT library.
//
//   #include "boat.h"
//
// pulls in training (BoatClassifier / BuildTreeBoat), the baselines, the
// in-memory reference builder, selectors, pruning, evaluation, exports,
// persistence, cross-validation, CSV loading and the synthetic generators.

#ifndef BOAT_BOAT_H_
#define BOAT_BOAT_H_

#include "boat/builder.h"       // BoatClassifier, BuildTreeBoat, options
#include "boat/crossval.h"      // BoatCrossValidate
#include "boat/persistence.h"   // SaveClassifier / LoadClassifier
#include "datagen/agrawal.h"    // the paper's synthetic workload
#include "datagen/synthetic.h"  // hyperplane & Gaussian-mixture generators
#include "rainforest/rainforest.h"  // RF-Hybrid / RF-Vertical baselines
#include "split/quest.h"        // the non-impurity selector
#include "split/selector.h"     // impurity selectors, growth limits
#include "storage/csv.h"        // CSV import/export
#include "storage/table_file.h" // binary tables
#include "tree/evaluation.h"    // confusion matrices, cross-validation
#include "tree/export.h"        // rules / Graphviz
#include "tree/inmem_builder.h" // the reference algorithm
#include "tree/pruning.h"       // MDL / cost-complexity / reduced-error
#include "tree/serialize.h"     // tree save/load

#endif  // BOAT_BOAT_H_
