// Deprecated spelling of the umbrella header; the supported facade is
//
//   #include "boat/boat.h"
//
// which this forwards to. Kept so existing includes keep compiling.

#ifndef BOAT_BOAT_H_
#define BOAT_BOAT_H_

#include "boat/boat.h"

#endif  // BOAT_BOAT_H_
