#include "split/impurity.h"

#include <cmath>
#include <vector>

namespace boat {

double ImpurityFunction::EvalNode(const int64_t* counts, int k,
                                  int64_t total) const {
  // An unsplit node is the degenerate partition (all | nothing); every
  // implemented impurity gives the node impurity in that case because the
  // empty side contributes weight zero.
  static thread_local std::vector<int64_t> zeros;
  zeros.assign(static_cast<size_t>(k), 0);
  return Eval(counts, zeros.data(), k, total);
}

namespace {

double EntropySide(const int64_t* counts, int k, int64_t total) {
  int64_t side = 0;
  for (int i = 0; i < k; ++i) side += counts[i];
  if (side == 0) return 0.0;
  const double s = static_cast<double>(side);
  double h = 0.0;
  for (int i = 0; i < k; ++i) {
    if (counts[i] > 0) {
      const double p = static_cast<double>(counts[i]) / s;
      h -= p * std::log2(p);
    }
  }
  return h * (s / static_cast<double>(total));
}

double MisclassSide(const int64_t* counts, int k, int64_t total) {
  int64_t side = 0;
  int64_t maxc = 0;
  for (int i = 0; i < k; ++i) {
    side += counts[i];
    if (counts[i] > maxc) maxc = counts[i];
  }
  if (side == 0) return 0.0;
  return static_cast<double>(side - maxc) / static_cast<double>(total);
}

}  // namespace

double GiniImpurity::Eval(const int64_t* left, const int64_t* right, int k,
                          int64_t total) const {
  return GiniEval(left, right, k, total);
}

double EntropyImpurity::Eval(const int64_t* left, const int64_t* right, int k,
                             int64_t total) const {
  return EntropySide(left, k, total) + EntropySide(right, k, total);
}

double MisclassificationImpurity::Eval(const int64_t* left,
                                       const int64_t* right, int k,
                                       int64_t total) const {
  return MisclassSide(left, k, total) + MisclassSide(right, k, total);
}

std::unique_ptr<ImpurityFunction> MakeImpurity(const std::string& name) {
  if (name == "gini") return std::make_unique<GiniImpurity>();
  if (name == "entropy") return std::make_unique<EntropyImpurity>();
  if (name == "misclassification") {
    return std::make_unique<MisclassificationImpurity>();
  }
  return nullptr;
}

}  // namespace boat
