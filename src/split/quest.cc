#include "split/quest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace boat {

namespace {
constexpr double kScale = 256.0;  // 48.8 fixed point

double FromFixed(int64_t q) { return static_cast<double>(q) / kScale; }
double FromFixedSq(__int128 q) {
  return static_cast<double>(q) / (kScale * kScale);
}
}  // namespace

int64_t QuantizeValue(double v) {
  return static_cast<int64_t>(std::llround(v * kScale));
}

// ------------------------------------------------------------------ MomentSet

MomentSet::MomentSet(const Schema& schema)
    : schema_(schema),
      k_(schema.num_classes()),
      cells_(static_cast<size_t>(schema.num_attributes()) * k_) {}

void MomentSet::Add(const Tuple& tuple, int64_t weight) {
  for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
    if (!schema_.IsNumerical(attr)) continue;
    const int64_t q = QuantizeValue(tuple.value(attr));
    Cell& cell = at(attr, tuple.label());
    cell.count += weight;
    cell.sum += weight * q;
    cell.sum_sq += static_cast<__int128>(weight) * q * q;
  }
}

void MomentSet::Merge(const MomentSet& other) {
  if (cells_.size() != other.cells_.size()) {
    FatalError("MomentSet::Merge: schema mismatch");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].count += other.cells_[i].count;
    cells_[i].sum += other.cells_[i].sum;
    cells_[i].sum_sq += other.cells_[i].sum_sq;
  }
}

// -------------------------------------------------------------- QuestSelector

double QuestSelector::NumericScore(const int64_t* count, const int64_t* sum,
                                   const __int128* sum_sq, int k) {
  int64_t n = 0;
  int64_t total_sum_fixed = 0;
  int populated = 0;
  for (int i = 0; i < k; ++i) {
    n += count[i];
    total_sum_fixed += sum[i];
    if (count[i] > 0) ++populated;
  }
  if (populated < 2 || n < 3) return 0.0;

  // Between-group and within-group sums of squares, from integer moments.
  const double grand_mean = FromFixed(total_sum_fixed) / static_cast<double>(n);
  double ss_between = 0.0;
  double ss_within = 0.0;
  for (int i = 0; i < k; ++i) {
    if (count[i] <= 0) continue;
    const double ni = static_cast<double>(count[i]);
    const double mean_i = FromFixed(sum[i]) / ni;
    const double dev = mean_i - grand_mean;
    ss_between += ni * dev * dev;
    ss_within += FromFixedSq(sum_sq[i]) - ni * mean_i * mean_i;
  }
  const double df_between = static_cast<double>(populated - 1);
  const double df_within = static_cast<double>(n - populated);
  if (df_within <= 0.0) return 0.0;
  if (ss_within <= 0.0) {
    // Classes are point masses; perfect separation iff between-group SS > 0.
    return ss_between > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return (ss_between / df_between) / (ss_within / df_within);
}

double QuestSelector::CategoricalScore(const CategoricalAvc& avc) {
  const int k = avc.num_classes();
  std::vector<int64_t> class_totals = avc.Totals();
  int64_t n = 0;
  int populated_classes = 0;
  for (const int64_t c : class_totals) {
    n += c;
    if (c > 0) ++populated_classes;
  }
  int populated_cats = 0;
  for (int32_t cat = 0; cat < avc.cardinality(); ++cat) {
    if (avc.CategoryTotal(cat) > 0) ++populated_cats;
  }
  if (n == 0 || populated_cats < 2 || populated_classes < 2) return 0.0;

  double chi2 = 0.0;
  for (int32_t cat = 0; cat < avc.cardinality(); ++cat) {
    const int64_t row_total = avc.CategoryTotal(cat);
    if (row_total == 0) continue;
    for (int cls = 0; cls < k; ++cls) {
      if (class_totals[cls] == 0) continue;
      const double expected = static_cast<double>(row_total) *
                              static_cast<double>(class_totals[cls]) /
                              static_cast<double>(n);
      const double observed = static_cast<double>(avc.count(cat, cls));
      const double dev = observed - expected;
      chi2 += dev * dev / expected;
    }
  }
  const double dof = static_cast<double>(populated_cats - 1) *
                     static_cast<double>(populated_classes - 1);
  return dof > 0.0 ? chi2 / dof : 0.0;
}

std::optional<double> QuestSelector::Threshold(const int64_t* count,
                                               const int64_t* sum, int k) {
  // Superclass A: the most populous class (smallest id on ties); B: the rest.
  int major = -1;
  for (int i = 0; i < k; ++i) {
    if (count[i] > 0 && (major < 0 || count[i] > count[major])) major = i;
  }
  if (major < 0) return std::nullopt;
  int64_t n_a = count[major];
  int64_t sum_a = sum[major];
  int64_t n_b = 0;
  int64_t sum_b = 0;
  for (int i = 0; i < k; ++i) {
    if (i == major) continue;
    n_b += count[i];
    sum_b += sum[i];
  }
  if (n_a == 0 || n_b == 0) return std::nullopt;
  const double mean_a = FromFixed(sum_a) / static_cast<double>(n_a);
  const double mean_b = FromFixed(sum_b) / static_cast<double>(n_b);
  return 0.5 * (mean_a + mean_b);
}

void QuestSelector::MomentsFromAvc(const NumericAvc& avc,
                                   std::vector<int64_t>* count,
                                   std::vector<int64_t>* sum,
                                   std::vector<__int128>* sum_sq) {
  const int k = avc.num_classes();
  count->assign(k, 0);
  sum->assign(k, 0);
  sum_sq->assign(k, 0);
  for (int64_t i = 0; i < avc.num_values(); ++i) {
    const int64_t q = QuantizeValue(avc.value(i));
    const int64_t* row = avc.counts(i);
    for (int cls = 0; cls < k; ++cls) {
      (*count)[cls] += row[cls];
      (*sum)[cls] += row[cls] * q;
      (*sum_sq)[cls] += static_cast<__int128>(row[cls]) * q * q;
    }
  }
}

std::optional<Split> QuestSelector::EvaluateNumericAttr(const NumericAvc& avc,
                                                        int attr) const {
  if (avc.num_values() < 2) return std::nullopt;
  const int k = avc.num_classes();
  std::vector<int64_t> count, sum;
  std::vector<__int128> sum_sq;
  MomentsFromAvc(avc, &count, &sum, &sum_sq);
  const double score = NumericScore(count.data(), sum.data(), sum_sq.data(), k);
  if (!(score > 0.0)) return std::nullopt;
  const std::optional<double> theta = Threshold(count.data(), sum.data(), k);
  if (!theta.has_value()) return std::nullopt;
  // Snap to the largest family value <= theta; clamp into the valid
  // candidate range [min value, second-largest value].
  double split_value = avc.value(0);
  for (int64_t i = 0; i < avc.num_values(); ++i) {
    if (avc.value(i) <= *theta) split_value = avc.value(i);
  }
  if (split_value >= avc.value(avc.num_values() - 1)) {
    split_value = avc.value(avc.num_values() - 2);
  }
  return Split::Numerical(attr, split_value, -score);
}

std::optional<Split> QuestSelector::EvaluateCategoricalAttr(
    const CategoricalAvc& avc, int attr) const {
  const double score = CategoricalScore(avc);
  if (!(score > 0.0)) return std::nullopt;
  // Subset selection by gini on the chosen attribute only.
  static const GiniImpurity gini;
  std::optional<Split> s = BestCategoricalSplit(avc, attr, gini);
  if (!s.has_value()) return std::nullopt;
  s->impurity = -score;
  return s;
}

bool QuestSelector::Accept(const Split& best,
                           const std::vector<int64_t>& /*totals*/,
                           int64_t /*total_tuples*/) const {
  // Candidates only exist with a positive association score.
  return best.impurity < 0.0;
}

}  // namespace boat
