#include "split/counts.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"

namespace boat {

// ----------------------------------------------------------------- NumericAvc

void NumericAvc::Add(double value, int32_t label, int64_t weight) {
  finalized_ = false;
  staged_.push_back({value, label, weight});
}

void NumericAvc::AddSorted(double value, int32_t label, int64_t weight) {
  if (!finalized_) {
    FatalError("NumericAvc::AddSorted: staged Add observations pending");
  }
  if (values_.empty()) {
    values_.push_back(value);
    counts_.resize(static_cast<size_t>(k_), 0);
  } else if (value != values_.back()) {
    if (value < values_.back()) {
      FatalError("NumericAvc::AddSorted: values not in ascending order");
    }
    values_.push_back(value);
    counts_.resize(values_.size() * k_, 0);
  }
  counts_[(values_.size() - 1) * k_ + label] += weight;
}

void NumericAvc::InstallSorted(std::vector<double> values,
                               std::vector<int64_t> counts) {
  if (!finalized_ || !values_.empty()) {
    FatalError("NumericAvc::InstallSorted on a non-empty AVC");
  }
  if (counts.size() != values.size() * static_cast<size_t>(k_)) {
    FatalError("NumericAvc::InstallSorted: counts/values shape mismatch");
  }
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] <= values[i - 1]) {
      FatalError("NumericAvc::InstallSorted: values not strictly ascending");
    }
  }
  values_ = std::move(values);
  counts_ = std::move(counts);
}

void NumericAvc::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Contiguous sort of the staged observations (cache-friendly; this is the
  // hottest loop of the in-memory builder).
  std::sort(staged_.begin(), staged_.end(),
            [](const Observation& a, const Observation& b) {
              return a.value < b.value;
            });

  // Merge the staged run with the previously finalized run.
  std::vector<double> merged_values;
  std::vector<int64_t> merged_counts;
  merged_values.reserve(values_.size() + staged_.size());
  merged_counts.reserve(merged_values.capacity() * k_);
  size_t old_row = 0;
  size_t si = 0;
  auto open_row = [&](double v) {
    merged_values.push_back(v);
    merged_counts.resize(merged_values.size() * k_, 0);
    return &merged_counts[(merged_values.size() - 1) * k_];
  };
  int64_t* row = nullptr;
  while (old_row < values_.size() || si < staged_.size()) {
    const bool take_old =
        si >= staged_.size() ||
        (old_row < values_.size() && values_[old_row] <= staged_[si].value);
    if (take_old) {
      const double v = values_[old_row];
      if (merged_values.empty() || merged_values.back() != v) {
        row = open_row(v);
      }
      for (int c = 0; c < k_; ++c) row[c] += counts_[old_row * k_ + c];
      ++old_row;
    } else {
      const Observation& o = staged_[si++];
      if (merged_values.empty() || merged_values.back() != o.value) {
        row = open_row(o.value);
      }
      row[o.label] += o.weight;
    }
  }
  staged_.clear();
  staged_.shrink_to_fit();

  // Drop rows whose counts are all zero (can appear after weighted deletes).
  std::vector<double> final_values;
  std::vector<int64_t> final_counts;
  final_values.reserve(merged_values.size());
  final_counts.reserve(merged_counts.size());
  for (size_t i = 0; i < merged_values.size(); ++i) {
    bool nonzero = false;
    for (int c = 0; c < k_; ++c) {
      if (merged_counts[i * k_ + c] != 0) nonzero = true;
    }
    if (nonzero) {
      final_values.push_back(merged_values[i]);
      for (int c = 0; c < k_; ++c) {
        final_counts.push_back(merged_counts[i * k_ + c]);
      }
    }
  }
  values_ = std::move(final_values);
  counts_ = std::move(final_counts);
}

std::vector<int64_t> NumericAvc::Totals() const {
  if (!finalized_) FatalError("NumericAvc::Totals before Finalize");
  std::vector<int64_t> totals(k_, 0);
  for (size_t i = 0; i < counts_.size(); ++i) totals[i % k_] += counts_[i];
  return totals;
}

int64_t NumericAvc::EntryCount() const {
  if (!finalized_) FatalError("NumericAvc::EntryCount before Finalize");
  int64_t entries = 0;
  for (const int64_t c : counts_) {
    if (c != 0) ++entries;
  }
  return entries;
}

// ------------------------------------------------------------- CategoricalAvc

void CategoricalAvc::MergeFrom(const CategoricalAvc& other) {
  if (other.cardinality_ != cardinality_ || other.k_ != k_) {
    FatalError("CategoricalAvc::MergeFrom: incompatible shapes");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

int64_t CategoricalAvc::CategoryTotal(int32_t category) const {
  const int64_t* row = counts(category);
  int64_t total = 0;
  for (int c = 0; c < k_; ++c) total += row[c];
  return total;
}

std::vector<int64_t> CategoricalAvc::Totals() const {
  std::vector<int64_t> totals(k_, 0);
  for (size_t i = 0; i < counts_.size(); ++i) totals[i % k_] += counts_[i];
  return totals;
}

int64_t CategoricalAvc::EntryCount() const {
  int64_t entries = 0;
  for (const int64_t c : counts_) {
    if (c != 0) ++entries;
  }
  return entries;
}

// ------------------------------------------------------------------- AvcGroup

AvcGroup::AvcGroup(const Schema& schema)
    : schema_(&schema), class_totals_(schema.num_classes(), 0) {
  const int k = schema.num_classes();
  numeric_.reserve(schema.num_attributes());
  categorical_.reserve(schema.num_attributes());
  for (int i = 0; i < schema.num_attributes(); ++i) {
    // One slot per attribute in both vectors keeps indexing trivial; the slot
    // of the wrong type stays empty.
    numeric_.emplace_back(k);
    const int card =
        schema.IsCategorical(i) ? schema.attribute(i).cardinality : 1;
    categorical_.emplace_back(card, k);
  }
}

void AvcGroup::Add(const Tuple& tuple, int64_t weight) {
  for (int i = 0; i < schema_->num_attributes(); ++i) {
    if (schema_->IsNumerical(i)) {
      numeric_[i].Add(tuple.value(i), tuple.label(), weight);
    } else {
      categorical_[i].Add(tuple.category(i), tuple.label(), weight);
    }
  }
  class_totals_[tuple.label()] += weight;
  total_ += weight;
}

void AvcGroup::Finalize() {
  for (int i = 0; i < schema_->num_attributes(); ++i) {
    if (schema_->IsNumerical(i)) numeric_[i].Finalize();
  }
}

const NumericAvc& AvcGroup::numeric(int attr) const {
  if (!schema_->IsNumerical(attr)) FatalError("numeric() on categorical attr");
  return numeric_[attr];
}

const CategoricalAvc& AvcGroup::categorical(int attr) const {
  if (!schema_->IsCategorical(attr)) {
    FatalError("categorical() on numerical attr");
  }
  return categorical_[attr];
}

NumericAvc* AvcGroup::mutable_numeric(int attr) {
  if (!schema_->IsNumerical(attr)) {
    FatalError("mutable_numeric() on categorical attr");
  }
  return &numeric_[attr];
}

CategoricalAvc* AvcGroup::mutable_categorical(int attr) {
  if (!schema_->IsCategorical(attr)) {
    FatalError("mutable_categorical() on numerical attr");
  }
  return &categorical_[attr];
}

bool AvcGroup::IsPure() const {
  int nonzero_classes = 0;
  for (const int64_t c : class_totals_) {
    if (c > 0) ++nonzero_classes;
  }
  return nonzero_classes <= 1;
}

int64_t AvcGroup::EntryCount() const {
  int64_t entries = 0;
  for (int i = 0; i < schema_->num_attributes(); ++i) {
    entries += schema_->IsNumerical(i) ? numeric_[i].EntryCount()
                                       : categorical_[i].EntryCount();
  }
  return entries;
}

AvcGroup BuildAvcGroup(const Schema& schema,
                       const std::vector<Tuple>& tuples) {
  AvcGroup avc(schema);
  for (const Tuple& t : tuples) avc.Add(t);
  avc.Finalize();
  return avc;
}

}  // namespace boat
