// Exact best-subset search over a categorical attribute.

#ifndef BOAT_SPLIT_CATEGORICAL_SEARCH_H_
#define BOAT_SPLIT_CATEGORICAL_SEARCH_H_

#include <optional>

#include "split/counts.h"
#include "split/impurity.h"
#include "split/split.h"

namespace boat {

/// \brief Finds the best split X in Y over the categories present (nonzero
/// count) in the AVC-set.
///
/// Strategy:
///  - two classes: Breiman's ordering theorem — sort present categories by
///    proportion of class 0 (ties by category id) and take the best prefix;
///    optimal for any concave impurity.
///  - up to 16 present categories: exhaustive enumeration of the 2^(m-1)-1
///    proper subsets containing the smallest present category.
///  - beyond that: deterministic greedy hill-climbing (move the single
///    category that most improves impurity until a local optimum).
///
/// The returned subset is canonical (see CanonicalizeSubset). All algorithms
/// in the library select categorical splits through this one function, so
/// identical counts always yield the identical criterion.
std::optional<Split> BestCategoricalSplit(const CategoricalAvc& avc, int attr,
                                          const ImpurityFunction& imp);

}  // namespace boat

#endif  // BOAT_SPLIT_CATEGORICAL_SEARCH_H_
