#include "split/categorical_search.h"

#include <algorithm>

#include "common/status.h"

namespace boat {

namespace {
constexpr size_t kExhaustiveLimit = 16;
}  // namespace

std::optional<Split> BestCategoricalSplit(const CategoricalAvc& avc, int attr,
                                          const ImpurityFunction& imp) {
  const int k = avc.num_classes();
  std::vector<int32_t> present;
  for (int32_t c = 0; c < avc.cardinality(); ++c) {
    if (avc.CategoryTotal(c) > 0) present.push_back(c);
  }
  const size_t m = present.size();
  if (m < 2) return std::nullopt;

  const std::vector<int64_t> totals = avc.Totals();
  int64_t total = 0;
  for (const int64_t c : totals) total += c;

  std::vector<int64_t> left(k), right(k);
  auto eval_subset = [&](const std::vector<int32_t>& subset) {
    std::fill(left.begin(), left.end(), 0);
    for (const int32_t cat : subset) {
      const int64_t* row = avc.counts(cat);
      for (int c = 0; c < k; ++c) left[c] += row[c];
    }
    for (int c = 0; c < k; ++c) right[c] = totals[c] - left[c];
    return imp.Eval(left.data(), right.data(), k, total);
  };

  std::optional<Split> best;
  auto consider = [&](std::vector<int32_t> subset) {
    subset = CanonicalizeSubset(std::move(subset), present);
    const double impurity = eval_subset(subset);
    Split candidate = Split::Categorical(attr, std::move(subset), impurity);
    if (!best.has_value() || BetterSplit(candidate, *best)) {
      best = std::move(candidate);
    }
  };

  if (k == 2) {
    // Breiman's theorem: order categories by P(class 0 | category); the
    // optimal subset is a prefix of that order for any concave impurity.
    std::vector<int32_t> order = present;
    std::sort(order.begin(), order.end(), [&avc](int32_t a, int32_t b) {
      // Compare count(a,0)/total(a) < count(b,0)/total(b) with integer
      // cross-multiplication (exact; no floating point ties).
      const int64_t lhs = avc.count(a, 0) * avc.CategoryTotal(b);
      const int64_t rhs = avc.count(b, 0) * avc.CategoryTotal(a);
      if (lhs != rhs) return lhs < rhs;
      return a < b;
    });
    std::vector<int32_t> prefix;
    for (size_t i = 0; i + 1 < m; ++i) {
      prefix.push_back(order[i]);
      consider(prefix);
    }
    return best;
  }

  if (m <= kExhaustiveLimit) {
    // All proper subsets containing present[0] (canonical side), i.e. masks
    // with bit 0 set, excluding the full set.
    const uint32_t full = (m >= 32) ? ~0u : ((1u << m) - 1);
    for (uint32_t half = 0; half < (1u << (m - 1)); ++half) {
      const uint32_t mask = (half << 1) | 1u;
      if (mask == full) continue;
      std::vector<int32_t> subset;
      for (size_t i = 0; i < m; ++i) {
        if ((mask >> i) & 1u) subset.push_back(present[i]);
      }
      consider(std::move(subset));
    }
    return best;
  }

  // Greedy hill-climbing: start from {present[0]}; repeatedly move the single
  // category whose transfer most reduces impurity (deterministic tie-break by
  // category id), while keeping both sides non-empty.
  std::vector<bool> in_left(m, false);
  in_left[0] = true;
  size_t left_size = 1;
  auto current_subset = [&]() {
    std::vector<int32_t> subset;
    for (size_t i = 0; i < m; ++i) {
      if (in_left[i]) subset.push_back(present[i]);
    }
    return subset;
  };
  double current = eval_subset(current_subset());
  for (;;) {
    int best_move = -1;
    double best_move_imp = current;
    for (size_t i = 1; i < m; ++i) {  // present[0] is pinned to the left
      const bool to_left = !in_left[i];
      if (!to_left && left_size == 1) continue;  // would empty a side
      if (to_left && left_size == m - 1) continue;
      in_left[i] = !in_left[i];
      const double trial = eval_subset(current_subset());
      in_left[i] = !in_left[i];
      if (trial < best_move_imp) {
        best_move_imp = trial;
        best_move = static_cast<int>(i);
      }
    }
    if (best_move < 0) break;
    in_left[best_move] = !in_left[best_move];
    left_size += in_left[best_move] ? 1 : -1;
    current = best_move_imp;
  }
  consider(current_subset());
  return best;
}

}  // namespace boat
