#include "split/split.h"

#include <algorithm>

#include "common/str_util.h"

namespace boat {

bool Split::SendLeft(const Tuple& tuple) const {
  if (is_numerical) return tuple.value(attribute) <= value;
  return std::binary_search(subset.begin(), subset.end(),
                            tuple.category(attribute));
}

bool Split::SameCriterion(const Split& other) const {
  if (attribute != other.attribute || is_numerical != other.is_numerical) {
    return false;
  }
  return is_numerical ? value == other.value : subset == other.subset;
}

std::string Split::ToString(const Schema& schema) const {
  if (attribute < 0) return "<none>";
  const std::string& name = schema.attribute(attribute).name;
  if (is_numerical) {
    return StrPrintf("%s <= %.6g", name.c_str(), value);
  }
  std::vector<std::string> cats;
  cats.reserve(subset.size());
  for (const int32_t c : subset) cats.push_back(StrPrintf("%d", c));
  return name + " in {" + StrJoin(cats, ",") + "}";
}

bool BetterSplit(const Split& a, const Split& b) {
  if (a.impurity != b.impurity) return a.impurity < b.impurity;
  if (a.attribute != b.attribute) return a.attribute < b.attribute;
  if (a.is_numerical != b.is_numerical) return a.is_numerical;  // stable
  if (a.is_numerical) return a.value < b.value;
  return std::lexicographical_compare(a.subset.begin(), a.subset.end(),
                                      b.subset.begin(), b.subset.end());
}

std::vector<int32_t> CanonicalizeSubset(std::vector<int32_t> subset,
                                        const std::vector<int32_t>& present) {
  std::sort(subset.begin(), subset.end());
  if (present.empty()) return subset;
  const bool contains_smallest =
      std::binary_search(subset.begin(), subset.end(), present.front());
  if (contains_smallest) return subset;
  // Replace by the complement within `present`.
  std::vector<int32_t> complement;
  complement.reserve(present.size() - subset.size());
  std::set_difference(present.begin(), present.end(), subset.begin(),
                      subset.end(), std::back_inserter(complement));
  return complement;
}

}  // namespace boat
