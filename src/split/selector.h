// Split selection methods (the paper's CL parameter).
//
// A split selection method examines AVC-sets of a node and either returns
// the best binary split or declares the node a leaf. The interface is
// per-attribute so that algorithms which cannot hold a whole AVC-group in
// memory at once (RF-Vertical) can evaluate attributes across several scans
// and still select exactly the same split. The library ships two families:
//   * ImpuritySplitSelector — CART/C4.5-style concave-impurity minimization;
//     the class BOAT's Lemma 3.1 machinery verifies.
//   * QuestSelector (quest.h) — a non-impurity method in the spirit of QUEST
//     [LS97], demonstrating that BOAT generalizes beyond impurity methods.

#ifndef BOAT_SPLIT_SELECTOR_H_
#define BOAT_SPLIT_SELECTOR_H_

#include <memory>
#include <optional>
#include <string>

#include "split/categorical_search.h"
#include "split/counts.h"
#include "split/impurity.h"
#include "split/numeric_search.h"
#include "split/split.h"

namespace boat {

/// \brief Family tag; BOAT dispatches its verification machinery on this.
enum class SelectorKind { kImpurity, kQuest };

/// \brief Tree-growth stopping limits shared by every construction algorithm.
struct GrowthLimits {
  /// Maximum tree depth (root = depth 0); nodes at the limit become leaves.
  int max_depth = 64;
  /// Families smaller than this are not split further.
  int64_t min_tuples_to_split = 2;
  /// If > 0, stop growing once a family has at most this many tuples — the
  /// paper's evaluation methodology ("we stopped tree construction for leaf
  /// nodes whose family would fit in-memory"). 0 disables the rule.
  int64_t stop_family_size = 0;
  /// Worker threads for growing a *single* tree (columnar engine only;
  /// 0 = all hardware cores). The tree is byte-identical for every value —
  /// parallelism only reorders work, never results (see DESIGN.md,
  /// "Parallel columnar growth"). Host-specific, so never persisted.
  int num_threads = 1;
};

/// \brief A split selection method.
///
/// Candidate splits carry a selector-specific quality in Split::impurity
/// (lower is better under BetterSplit); for ImpuritySplitSelector it is the
/// weighted impurity, for QuestSelector the negated association score.
class SplitSelector {
 public:
  virtual ~SplitSelector() = default;

  /// \brief Best candidate split on one numerical attribute, or nullopt if
  /// the attribute admits no valid split at this node.
  virtual std::optional<Split> EvaluateNumericAttr(const NumericAvc& avc,
                                                   int attr) const = 0;

  /// \brief Best candidate split on one categorical attribute.
  virtual std::optional<Split> EvaluateCategoricalAttr(
      const CategoricalAvc& avc, int attr) const = 0;

  /// \brief Whether the best candidate should actually be used to split a
  /// node with the given class totals (otherwise the node becomes a leaf).
  virtual bool Accept(const Split& best, const std::vector<int64_t>& totals,
                      int64_t total_tuples) const = 0;

  /// \brief Chooses the best split for a node given its full AVC-group, or
  /// nullopt for a leaf. Implemented on top of the per-attribute interface;
  /// candidates are compared with BetterSplit.
  std::optional<Split> ChooseSplit(const AvcGroup& avc) const;

  virtual SelectorKind kind() const = 0;
  virtual std::string name() const = 0;
};

/// \brief Impurity-minimizing split selection (CART with gini, C4.5-style
/// with entropy, ...). Declares a leaf when the best split does not strictly
/// decrease the node impurity.
class ImpuritySplitSelector : public SplitSelector {
 public:
  explicit ImpuritySplitSelector(std::unique_ptr<ImpurityFunction> impurity)
      : impurity_(std::move(impurity)) {}

  std::optional<Split> EvaluateNumericAttr(const NumericAvc& avc,
                                           int attr) const override;
  std::optional<Split> EvaluateCategoricalAttr(const CategoricalAvc& avc,
                                               int attr) const override;
  bool Accept(const Split& best, const std::vector<int64_t>& totals,
              int64_t total_tuples) const override;

  SelectorKind kind() const override { return SelectorKind::kImpurity; }
  std::string name() const override { return "impurity/" + impurity_->name(); }

  const ImpurityFunction& impurity() const { return *impurity_; }

 private:
  std::unique_ptr<ImpurityFunction> impurity_;
};

/// \brief Per-class counts of the two children induced by `split`, computed
/// from the split attribute's AVC-set. Used by the scan-based algorithms to
/// know child family sizes without touching the data again.
std::pair<std::vector<int64_t>, std::vector<int64_t>> ChildCountsNumeric(
    const NumericAvc& avc, const Split& split);
std::pair<std::vector<int64_t>, std::vector<int64_t>> ChildCountsCategorical(
    const CategoricalAvc& avc, const Split& split);

/// \brief Convenience: CART-style selector with the gini index.
std::unique_ptr<ImpuritySplitSelector> MakeGiniSelector();
/// \brief Convenience: C4.5-style selector with entropy.
std::unique_ptr<ImpuritySplitSelector> MakeEntropySelector();

}  // namespace boat

#endif  // BOAT_SPLIT_SELECTOR_H_
