// Attribute-Value-Classlabel (AVC) count structures [GRG98].
//
// An AVC-set for attribute X at node n aggregates the family F_n into
// per-(value, class) counts — the sufficient statistic for impurity-based
// split selection on X. An AVC-group is the set of AVC-sets of all
// attributes at a node. These structures serve the in-memory reference
// builder, the RainForest algorithms, and BOAT's categorical bookkeeping.

#ifndef BOAT_SPLIT_COUNTS_H_
#define BOAT_SPLIT_COUNTS_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace boat {

/// \brief AVC-set of a numerical attribute: distinct values in ascending
/// order, each with its per-class tuple counts.
class NumericAvc {
 public:
  explicit NumericAvc(int num_classes) : k_(num_classes) {}

  /// \brief Accumulates one (value, label) observation (unsorted stage).
  void Add(double value, int32_t label, int64_t weight = 1);

  /// \brief Accumulates one observation whose value is known to be >= every
  /// value added so far, appending it directly to the finalized
  /// representation — the zero-sort path of the columnar growth engine,
  /// which feeds values in presorted column order. Must not be mixed with
  /// staged Add calls (fatal error on violation); no Finalize is needed.
  void AddSorted(double value, int32_t label, int64_t weight = 1);

  /// \brief Installs an already-aggregated finalized representation:
  /// `values` strictly ascending distinct values (fatal error otherwise) and
  /// `counts` their row-major num_values x num_classes class counts. The
  /// bulk path of the columnar growth engine, which aggregates a node's
  /// presorted attribute list in one linear pass. The AVC must be empty.
  void InstallSorted(std::vector<double> values, std::vector<int64_t> counts);

  /// \brief Sorts and merges duplicate values; must be called after the last
  /// Add and before any read accessor. Idempotent, and re-openable: Add may
  /// be called again after Finalize, and the next Finalize merges the new
  /// observations into the previously finalized run.
  void Finalize();

  int num_classes() const { return k_; }
  /// Number of distinct attribute values (after Finalize).
  int64_t num_values() const {
    if (!finalized_) FatalError("NumericAvc read before Finalize");
    return static_cast<int64_t>(values_.size());
  }
  double value(int64_t i) const { return values_[i]; }
  /// Class counts of value i (k entries).
  const int64_t* counts(int64_t i) const { return &counts_[i * k_]; }

  /// \brief Total per-class counts over all values.
  std::vector<int64_t> Totals() const;

  /// \brief Memory footprint in "entries" (the paper's AVC buffer unit):
  /// one entry per distinct (value, class) pair with nonzero count.
  int64_t EntryCount() const;

  bool finalized() const { return finalized_; }

 private:
  /// One staged observation awaiting Finalize.
  struct Observation {
    double value;
    int32_t label;
    int64_t weight;
  };

  int k_;
  bool finalized_ = true;            // empty AVC counts as finalized
  std::vector<Observation> staged_;  // accumulated since last Finalize
  std::vector<double> values_;       // parallel to counts_ rows
  std::vector<int64_t> counts_;      // row-major num_values x k
};

/// \brief AVC-set of a categorical attribute: dense cardinality x k matrix.
class CategoricalAvc {
 public:
  CategoricalAvc(int cardinality, int num_classes)
      : cardinality_(cardinality),
        k_(num_classes),
        counts_(static_cast<size_t>(cardinality) * num_classes, 0) {}

  void Add(int32_t category, int32_t label, int64_t weight = 1) {
    counts_[static_cast<size_t>(category) * k_ + label] += weight;
  }

  int cardinality() const { return cardinality_; }
  int num_classes() const { return k_; }
  const int64_t* counts(int32_t category) const {
    return &counts_[static_cast<size_t>(category) * k_];
  }
  int64_t count(int32_t category, int32_t label) const {
    return counts_[static_cast<size_t>(category) * k_ + label];
  }

  /// \brief Adds `other` (same cardinality and class count) into this.
  /// Dense counts are order-free, so per-thread AVCs merge exactly.
  void MergeFrom(const CategoricalAvc& other);

  /// \brief Total tuples of `category` across classes.
  int64_t CategoryTotal(int32_t category) const;

  /// \brief Total per-class counts over all categories.
  std::vector<int64_t> Totals() const;

  int64_t EntryCount() const;

  bool operator==(const CategoricalAvc& other) const = default;

 private:
  int cardinality_;
  int k_;
  std::vector<int64_t> counts_;
};

/// \brief AVC-group: one AVC-set per predictor attribute at a node, plus the
/// node's per-class totals.
class AvcGroup {
 public:
  explicit AvcGroup(const Schema& schema);

  /// \brief Accumulates one tuple into all AVC-sets.
  void Add(const Tuple& tuple, int64_t weight = 1);

  /// \brief Finalizes all numeric AVC-sets (sort + merge).
  void Finalize();

  const Schema& schema() const { return *schema_; }
  int num_attributes() const { return schema_->num_attributes(); }

  const NumericAvc& numeric(int attr) const;
  const CategoricalAvc& categorical(int attr) const;

  /// \brief Mutable AVC-set access for builders that fill the group one
  /// *column* at a time (the columnar growth engine) instead of one tuple at
  /// a time. Callers filling AVC-sets directly must also account the node's
  /// class totals via AddToClassTotals.
  NumericAvc* mutable_numeric(int attr);
  CategoricalAvc* mutable_categorical(int attr);

  /// \brief Adds `weight` tuples of class `label` to the node totals only
  /// (the per-attribute AVC-sets are unaffected).
  void AddToClassTotals(int32_t label, int64_t weight) {
    class_totals_[label] += weight;
    total_ += weight;
  }

  /// \brief Per-class totals of the node family.
  const std::vector<int64_t>& class_totals() const { return class_totals_; }
  int64_t total_tuples() const { return total_; }

  /// \brief Whether every tuple has the same class label (or is empty).
  bool IsPure() const;

  /// \brief Total entries across AVC-sets (the RainForest memory unit).
  int64_t EntryCount() const;

 private:
  const Schema* schema_;
  std::vector<NumericAvc> numeric_;          // index: attr (unused slots k=0)
  std::vector<CategoricalAvc> categorical_;  // index: attr
  std::vector<int64_t> class_totals_;
  int64_t total_ = 0;
};

/// \brief Builds and finalizes the AVC-group of a tuple set.
AvcGroup BuildAvcGroup(const Schema& schema, const std::vector<Tuple>& tuples);

}  // namespace boat

#endif  // BOAT_SPLIT_COUNTS_H_
