// Splitting criteria: splitting attribute + splitting predicate.

#ifndef BOAT_SPLIT_SPLIT_H_
#define BOAT_SPLIT_SPLIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/tuple.h"

namespace boat {

/// \brief A binary splitting criterion at a node.
///
/// Numerical attribute: predicate is X <= value (left child on true).
/// Categorical attribute: predicate is X in subset (left child on true);
/// `subset` is sorted ascending and canonicalized (see CanonicalizeSubset).
struct Split {
  int attribute = -1;
  bool is_numerical = true;
  double value = 0.0;
  std::vector<int32_t> subset;
  /// Weighted impurity of the induced partition, used for ordering.
  double impurity = 0.0;

  static Split Numerical(int attr, double split_value, double imp) {
    Split s;
    s.attribute = attr;
    s.is_numerical = true;
    s.value = split_value;
    s.impurity = imp;
    return s;
  }
  static Split Categorical(int attr, std::vector<int32_t> split_subset,
                           double imp) {
    Split s;
    s.attribute = attr;
    s.is_numerical = false;
    s.subset = std::move(split_subset);
    s.impurity = imp;
    return s;
  }

  /// \brief Whether `tuple` follows the left branch.
  bool SendLeft(const Tuple& tuple) const;

  /// \brief Structural equality of the criterion (ignores impurity).
  bool SameCriterion(const Split& other) const;

  std::string ToString(const Schema& schema) const;
};

/// \brief Total order used to break ties between candidate splits so that
/// every algorithm selects the identical split: lower impurity wins; then
/// lower attribute index; then smaller split value (numerical) or
/// lexicographically smaller subset (categorical).
///
/// Impurity comparison is exact (no epsilon): all algorithms compute
/// impurity from identical integer counts through identical code, so equal
/// partitions yield bitwise-equal doubles.
bool BetterSplit(const Split& a, const Split& b);

/// \brief Canonical form for a splitting subset: of the two complementary
/// subsets (relative to the categories present, i.e. with nonzero count at
/// the node), the criterion stores the one containing the smallest present
/// category. Guarantees a unique representation of each partition.
/// \param present  sorted list of categories with nonzero count at the node
std::vector<int32_t> CanonicalizeSubset(std::vector<int32_t> subset,
                                        const std::vector<int32_t>& present);

}  // namespace boat

#endif  // BOAT_SPLIT_SPLIT_H_
