#include "split/numeric_search.h"

#include "common/status.h"

namespace boat {

std::optional<Split> BestNumericSplitRange(
    const NumericAvc& avc, int attr, const ImpurityFunction& imp,
    const std::vector<int64_t>& left_base,
    const std::vector<int64_t>& node_totals,
    std::optional<double> boundary_value) {
  if (!avc.finalized()) FatalError("BestNumericSplitRange: AVC not finalized");
  const int k = avc.num_classes();
  int64_t total = 0;
  for (const int64_t c : node_totals) total += c;
  if (total <= 0) return std::nullopt;

  std::vector<int64_t> left = left_base;
  std::vector<int64_t> right(k);

  std::optional<Split> best;
  auto consider = [&](double value) {
    int64_t left_total = 0;
    for (int c = 0; c < k; ++c) {
      right[c] = node_totals[c] - left[c];
      left_total += left[c];
    }
    const int64_t right_total = total - left_total;
    if (right_total <= 0 || left_total <= 0) return;
    const double impurity = imp.Eval(left.data(), right.data(), k, total);
    Split candidate = Split::Numerical(attr, value, impurity);
    if (!best.has_value() || BetterSplit(candidate, *best)) {
      best = std::move(candidate);
    }
  };

  if (boundary_value.has_value()) {
    consider(*boundary_value);
  }
  for (int64_t i = 0; i < avc.num_values(); ++i) {
    const int64_t* row = avc.counts(i);
    for (int c = 0; c < k; ++c) left[c] += row[c];
    consider(avc.value(i));
  }
  return best;
}

std::optional<Split> BestNumericSplit(const NumericAvc& avc, int attr,
                                      const ImpurityFunction& imp) {
  const std::vector<int64_t> totals = avc.Totals();
  const std::vector<int64_t> zeros(avc.num_classes(), 0);
  return BestNumericSplitRange(avc, attr, imp, zeros, totals, std::nullopt);
}

}  // namespace boat
