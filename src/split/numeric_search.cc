#include "split/numeric_search.h"

#include "common/status.h"

namespace boat {

namespace {

/// Two-class gini scan: the candidate evaluation runs entirely in registers,
/// with no per-candidate stores. The arithmetic shape matches GiniEval
/// exactly — GiniSide's k-loops unroll to the same operation order for
/// k == 2, and the scan's validity check (both sides non-empty) subsumes
/// GiniSide's empty-side guard — so this is a dispatch specialization of the
/// generic path, not a different formula.
std::optional<Split> ScanGiniTwoClass(const NumericAvc& avc, int attr,
                                      const std::vector<int64_t>& left_base,
                                      const std::vector<int64_t>& node_totals,
                                      std::optional<double> boundary_value,
                                      int64_t total) {
  int64_t l0 = left_base[0];
  int64_t l1 = left_base[1];
  const int64_t n0 = node_totals[0];
  const int64_t n1 = node_totals[1];
  const double total_d = static_cast<double>(total);
  bool has_best = false;
  double best_impurity = 0.0;
  double best_value = 0.0;
  auto consider = [&](double value) {
    const int64_t left_total = l0 + l1;
    const int64_t right_total = total - left_total;
    if (right_total <= 0 || left_total <= 0) return;
    const double lc0 = static_cast<double>(l0);
    const double lc1 = static_cast<double>(l1);
    const double ls = static_cast<double>(left_total);
    const double left_g = (ls - (lc0 * lc0 + lc1 * lc1) / ls) / total_d;
    const double rc0 = static_cast<double>(n0 - l0);
    const double rc1 = static_cast<double>(n1 - l1);
    const double rs = static_cast<double>(right_total);
    const double right_g = (rs - (rc0 * rc0 + rc1 * rc1) / rs) / total_d;
    const double impurity = left_g + right_g;
    if (!has_best || impurity < best_impurity ||
        (impurity == best_impurity && value < best_value)) {
      has_best = true;
      best_impurity = impurity;
      best_value = value;
    }
  };

  if (boundary_value.has_value()) {
    consider(*boundary_value);
  }
  for (int64_t i = 0; i < avc.num_values(); ++i) {
    const int64_t* row = avc.counts(i);
    l0 += row[0];
    l1 += row[1];
    consider(avc.value(i));
  }
  if (!has_best) return std::nullopt;
  return Split::Numerical(attr, best_value, best_impurity);
}

}  // namespace

std::optional<Split> BestNumericSplitRange(
    const NumericAvc& avc, int attr, const ImpurityFunction& imp,
    const std::vector<int64_t>& left_base,
    const std::vector<int64_t>& node_totals,
    std::optional<double> boundary_value) {
  if (!avc.finalized()) FatalError("BestNumericSplitRange: AVC not finalized");
  const int k = avc.num_classes();
  int64_t total = 0;
  for (const int64_t c : node_totals) total += c;
  if (total <= 0) return std::nullopt;

  std::vector<int64_t> left = left_base;
  std::vector<int64_t> right(k);
  int64_t left_total = 0;
  for (const int64_t c : left) left_total += c;

  // Scalar best tracking keeps the scan free of per-candidate Split
  // construction. Within one numeric attribute BetterSplit's order is lower
  // impurity first, ties to the smaller split value — and the scan visits
  // values in ascending order, so the comparison below reproduces it
  // exactly.
  //
  // Gini gets a devirtualized candidate evaluation: the scan pays one Eval
  // per distinct attribute value, and for the default impurity that call is
  // the hot path of every tree builder. GiniEval is the same inline function
  // GiniImpurity::Eval delegates to, so the two dispatches are bit-identical.
  const bool is_gini = dynamic_cast<const GiniImpurity*>(&imp) != nullptr;
  if (is_gini && k == 2) {
    return ScanGiniTwoClass(avc, attr, left_base, node_totals, boundary_value,
                            total);
  }
  bool has_best = false;
  double best_impurity = 0.0;
  double best_value = 0.0;
  auto consider = [&](double value) {
    const int64_t right_total = total - left_total;
    if (right_total <= 0 || left_total <= 0) return;
    for (int c = 0; c < k; ++c) right[c] = node_totals[c] - left[c];
    const double impurity = is_gini
                                ? GiniEval(left.data(), right.data(), k, total)
                                : imp.Eval(left.data(), right.data(), k, total);
    if (!has_best || impurity < best_impurity ||
        (impurity == best_impurity && value < best_value)) {
      has_best = true;
      best_impurity = impurity;
      best_value = value;
    }
  };

  if (boundary_value.has_value()) {
    consider(*boundary_value);
  }
  for (int64_t i = 0; i < avc.num_values(); ++i) {
    const int64_t* row = avc.counts(i);
    for (int c = 0; c < k; ++c) {
      left[c] += row[c];
      left_total += row[c];
    }
    consider(avc.value(i));
  }
  if (!has_best) return std::nullopt;
  return Split::Numerical(attr, best_value, best_impurity);
}

std::optional<Split> BestNumericSplit(const NumericAvc& avc, int attr,
                                      const ImpurityFunction& imp) {
  const std::vector<int64_t> totals = avc.Totals();
  const std::vector<int64_t> zeros(avc.num_classes(), 0);
  return BestNumericSplitRange(avc, attr, imp, zeros, totals, std::nullopt);
}

}  // namespace boat
