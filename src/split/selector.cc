#include "split/selector.h"

#include <algorithm>

namespace boat {

std::optional<Split> SplitSelector::ChooseSplit(const AvcGroup& avc) const {
  if (avc.total_tuples() <= 0 || avc.IsPure()) return std::nullopt;
  const Schema& schema = avc.schema();

  std::optional<Split> best;
  auto consider = [&best](std::optional<Split> candidate) {
    if (!candidate.has_value()) return;
    if (!best.has_value() || BetterSplit(*candidate, *best)) {
      best = std::move(candidate);
    }
  };
  for (int attr = 0; attr < schema.num_attributes(); ++attr) {
    if (schema.IsNumerical(attr)) {
      consider(EvaluateNumericAttr(avc.numeric(attr), attr));
    } else {
      consider(EvaluateCategoricalAttr(avc.categorical(attr), attr));
    }
  }
  if (!best.has_value()) return std::nullopt;
  if (!Accept(*best, avc.class_totals(), avc.total_tuples())) {
    return std::nullopt;
  }
  return best;
}

std::optional<Split> ImpuritySplitSelector::EvaluateNumericAttr(
    const NumericAvc& avc, int attr) const {
  return BestNumericSplit(avc, attr, *impurity_);
}

std::optional<Split> ImpuritySplitSelector::EvaluateCategoricalAttr(
    const CategoricalAvc& avc, int attr) const {
  return BestCategoricalSplit(avc, attr, *impurity_);
}

bool ImpuritySplitSelector::Accept(const Split& best,
                                   const std::vector<int64_t>& totals,
                                   int64_t total_tuples) const {
  const double node_impurity = impurity_->EvalNode(
      totals.data(), static_cast<int>(totals.size()), total_tuples);
  // Require a strict decrease; an uninformative split would only grow the
  // tree without changing the classifier.
  return best.impurity < node_impurity;
}

std::pair<std::vector<int64_t>, std::vector<int64_t>> ChildCountsNumeric(
    const NumericAvc& avc, const Split& split) {
  const int k = avc.num_classes();
  std::vector<int64_t> left(k, 0);
  std::vector<int64_t> right(k, 0);
  for (int64_t i = 0; i < avc.num_values(); ++i) {
    const int64_t* row = avc.counts(i);
    int64_t* side = (avc.value(i) <= split.value) ? left.data() : right.data();
    for (int c = 0; c < k; ++c) side[c] += row[c];
  }
  return {std::move(left), std::move(right)};
}

std::pair<std::vector<int64_t>, std::vector<int64_t>> ChildCountsCategorical(
    const CategoricalAvc& avc, const Split& split) {
  const int k = avc.num_classes();
  std::vector<int64_t> left(k, 0);
  std::vector<int64_t> right(k, 0);
  for (int32_t cat = 0; cat < avc.cardinality(); ++cat) {
    const bool to_left = std::binary_search(split.subset.begin(),
                                            split.subset.end(), cat);
    const int64_t* row = avc.counts(cat);
    int64_t* side = to_left ? left.data() : right.data();
    for (int c = 0; c < k; ++c) side[c] += row[c];
  }
  return {std::move(left), std::move(right)};
}

std::unique_ptr<ImpuritySplitSelector> MakeGiniSelector() {
  return std::make_unique<ImpuritySplitSelector>(
      std::make_unique<GiniImpurity>());
}

std::unique_ptr<ImpuritySplitSelector> MakeEntropySelector() {
  return std::make_unique<ImpuritySplitSelector>(
      std::make_unique<EntropyImpurity>());
}

}  // namespace boat
