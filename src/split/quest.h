// A non-impurity split selection method in the spirit of QUEST [LS97].
//
// Attribute selection is *unbiased*: each attribute is scored by a
// statistical association test against the class label (ANOVA F-statistic
// for numerical attributes, mean-square contingency chi^2/dof for
// categorical ones) and the highest-scoring attribute wins. The split point
// of a numerical attribute is the midpoint between the two superclass means
// (largest class versus the rest), snapped to the largest attribute value at
// or below it; categorical subsets are chosen by gini on the selected
// attribute only.
//
// Exactness under BOAT: all required statistics are sums over the family —
// per-(attribute, class) count / sum / sum-of-squares and the categorical
// contingency tables — so BOAT can compute them exactly in its single
// cleanup scan. To make the statistics independent of accumulation order
// (stream order differs between algorithms), values enter the moments in
// fixed-point form (48.8, via QuantizeValue) and are summed in integer
// arithmetic; the scores derived from those integers are bit-identical no
// matter who computed them. The method is *defined* over the quantized
// values, a documented deviation from textbook QUEST.

#ifndef BOAT_SPLIT_QUEST_H_
#define BOAT_SPLIT_QUEST_H_

#include <optional>

#include "split/selector.h"

namespace boat {

class ModelSerializer;  // persistence layer (boat/persistence.h)

/// \brief Fixed-point representation used for exact moment accumulation.
int64_t QuantizeValue(double v);

/// \brief Exact per-class first and second moments of the numerical
/// attributes of a node family. Supports weighted add (weight -1 = delete)
/// and merge, all in integer arithmetic (order-independent).
class MomentSet {
 public:
  explicit MomentSet(const Schema& schema);

  /// \brief Accumulates one tuple with the given weight (+1 insert,
  /// -1 delete).
  void Add(const Tuple& tuple, int64_t weight = 1);

  /// \brief Adds `other` (same schema) into this.
  void Merge(const MomentSet& other);

  int num_classes() const { return k_; }

  int64_t count(int attr, int cls) const { return at(attr, cls).count; }
  int64_t sum(int attr, int cls) const { return at(attr, cls).sum; }
  __int128 sum_sq(int attr, int cls) const { return at(attr, cls).sum_sq; }

  bool operator==(const MomentSet& other) const = default;

 private:
  friend class ModelSerializer;
  struct Cell {
    int64_t count = 0;
    int64_t sum = 0;       // sum of quantized values
    __int128 sum_sq = 0;   // sum of squared quantized values

    bool operator==(const Cell&) const = default;
  };
  const Cell& at(int attr, int cls) const {
    return cells_[static_cast<size_t>(attr) * k_ + cls];
  }
  Cell& at(int attr, int cls) {
    return cells_[static_cast<size_t>(attr) * k_ + cls];
  }

  Schema schema_;  // by value: MomentSets outlive their creators
  int k_;
  std::vector<Cell> cells_;  // num_attributes x k (categorical rows unused)
};

/// \brief The QUEST-like selector.
///
/// Candidate Splits carry the *negated* association score in
/// Split::impurity, so that BetterSplit's lower-is-better ordering prefers
/// stronger association (ties broken by attribute index as usual).
class QuestSelector : public SplitSelector {
 public:
  QuestSelector() = default;

  std::optional<Split> EvaluateNumericAttr(const NumericAvc& avc,
                                           int attr) const override;
  std::optional<Split> EvaluateCategoricalAttr(const CategoricalAvc& avc,
                                               int attr) const override;
  bool Accept(const Split& best, const std::vector<int64_t>& totals,
              int64_t total_tuples) const override;

  SelectorKind kind() const override { return SelectorKind::kQuest; }
  std::string name() const override { return "quest"; }

  // --- exact statistics, exposed so BOAT's cleanup phase can verify the
  // --- coarse criteria from streamed moments -------------------------------

  /// \brief ANOVA F-statistic of one numerical attribute from its per-class
  /// quantized moments (arrays of k entries).
  static double NumericScore(const int64_t* count, const int64_t* sum,
                             const __int128* sum_sq, int k);

  /// \brief chi^2 / dof of a categorical attribute's contingency table.
  static double CategoricalScore(const CategoricalAvc& avc);

  /// \brief Superclass-mean midpoint threshold for a numerical attribute;
  /// nullopt when undefined (fewer than two populated classes).
  static std::optional<double> Threshold(const int64_t* count,
                                         const int64_t* sum, int k);

  /// \brief Extracts the (count, sum, sum_sq) arrays of attribute `attr`
  /// from an AVC-group (quantizing values exactly like MomentSet::Add).
  static void MomentsFromAvc(const NumericAvc& avc,
                             std::vector<int64_t>* count,
                             std::vector<int64_t>* sum,
                             std::vector<__int128>* sum_sq);
};

}  // namespace boat

#endif  // BOAT_SPLIT_QUEST_H_
