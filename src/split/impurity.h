// Concave impurity functions for binary splits.
//
// An impurity-based split selection method evaluates a candidate binary
// partition (left/right class-count vectors) and picks the split minimizing
// the weighted impurity. BOAT's failure-detection lemma (Lemma 3.1) requires
// the impurity to be a concave function of the "stamp point"
// (n^1_x, ..., n^k_x) — true for all functions implemented here, and
// property-tested in tests/property_impurity_test.cc.
//
// Determinism contract: Eval takes *integer* class counts and performs the
// same floating-point operations in the same order regardless of caller, so
// every algorithm that sees the same counts computes bit-identical impurity
// values. This is what makes "BOAT builds exactly the same tree" testable
// with exact equality.

#ifndef BOAT_SPLIT_IMPURITY_H_
#define BOAT_SPLIT_IMPURITY_H_

#include <cstdint>
#include <memory>
#include <string>

namespace boat {

/// \brief A concave impurity function over a binary partition.
class ImpurityFunction {
 public:
  virtual ~ImpurityFunction() = default;

  /// \brief Weighted impurity of the partition (left | right).
  /// \param left   class counts of the left side, k entries
  /// \param right  class counts of the right side, k entries
  /// \param k      number of classes
  /// \param total  total tuple count (sum of both sides); must be > 0
  virtual double Eval(const int64_t* left, const int64_t* right, int k,
                      int64_t total) const = 0;

  /// \brief Impurity of an unsplit node (single class-count vector).
  double EvalNode(const int64_t* counts, int k, int64_t total) const;

  virtual std::string name() const = 0;
};

namespace impurity_internal {

// Gini of one side, weighted by side proportion: (n_side/total)*(1-sum p_i^2)
// computed as (n_side - sum c_i^2 / n_side) / total to keep the arithmetic
// shape fixed.
inline double GiniSide(const int64_t* counts, int k, int64_t total) {
  int64_t side = 0;
  for (int i = 0; i < k; ++i) side += counts[i];
  if (side == 0) return 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < k; ++i) {
    const double c = static_cast<double>(counts[i]);
    sum_sq += c * c;
  }
  const double s = static_cast<double>(side);
  return (s - sum_sq / s) / static_cast<double>(total);
}

}  // namespace impurity_internal

/// \brief The gini arithmetic as a free inline function: hot scan loops
/// (numeric_search.cc evaluates one candidate per distinct attribute value)
/// call it directly to skip the per-candidate virtual dispatch.
/// GiniImpurity::Eval delegates here, so the inlined and the virtual path
/// compute bit-identical values by construction.
inline double GiniEval(const int64_t* left, const int64_t* right, int k,
                       int64_t total) {
  return impurity_internal::GiniSide(left, k, total) +
         impurity_internal::GiniSide(right, k, total);
}

/// \brief gini index of CART [BFOS84]: sum_side w_side * (1 - sum_i p_i^2).
class GiniImpurity : public ImpurityFunction {
 public:
  double Eval(const int64_t* left, const int64_t* right, int k,
              int64_t total) const override;
  std::string name() const override { return "gini"; }
};

/// \brief Entropy of C4.5 [Qui86]: sum_side w_side * (-sum_i p_i log2 p_i).
class EntropyImpurity : public ImpurityFunction {
 public:
  double Eval(const int64_t* left, const int64_t* right, int k,
              int64_t total) const override;
  std::string name() const override { return "entropy"; }
};

/// \brief Misclassification error: sum_side w_side * (1 - max_i p_i).
/// Piecewise linear and concave; included as a third instantiation in the
/// spirit of the paper's "index of correlation" [MFM+98] alternative.
class MisclassificationImpurity : public ImpurityFunction {
 public:
  double Eval(const int64_t* left, const int64_t* right, int k,
              int64_t total) const override;
  std::string name() const override { return "misclassification"; }
};

/// \brief Creates an impurity function by name ("gini", "entropy",
/// "misclassification"); returns nullptr for unknown names.
std::unique_ptr<ImpurityFunction> MakeImpurity(const std::string& name);

}  // namespace boat

#endif  // BOAT_SPLIT_IMPURITY_H_
