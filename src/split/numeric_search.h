// Exact best-split search over a numerical attribute.

#ifndef BOAT_SPLIT_NUMERIC_SEARCH_H_
#define BOAT_SPLIT_NUMERIC_SEARCH_H_

#include <optional>

#include "split/counts.h"
#include "split/impurity.h"
#include "split/split.h"

namespace boat {

/// \brief Finds the best split X <= v over a contiguous *range* of candidate
/// split values. This single code path serves the in-memory reference
/// builder and RainForest (full range: empty base, no boundary) as well as
/// BOAT's cleanup phase (range restricted to a confidence interval, with the
/// tuples at or below the interval summarized by `left_base`).
///
/// Candidates, in ascending order:
///   1. `boundary_value` (if provided): the largest attribute value of the
///      family at or below the range's lower boundary; its left side is
///      exactly `left_base`.
///   2. each distinct value v in `avc` (which must contain exactly the family
///      values strictly above the boundary and within the range); its left
///      side is left_base + prefix counts through v.
/// A candidate is valid only if its right side is non-empty (the paper's
/// "X <= max value" degenerate split is excluded). Empty-left candidates
/// cannot arise because every candidate value occurs in the family.
///
/// \param avc          finalized AVC-set of in-range values
/// \param attr         attribute index (for the returned Split)
/// \param imp          impurity function
/// \param left_base    class counts of family tuples below the range
/// \param node_totals  class totals of the whole family
/// \param boundary_value candidate value realizing the left_base partition
/// \return best split, or nullopt if no valid candidate exists
std::optional<Split> BestNumericSplitRange(
    const NumericAvc& avc, int attr, const ImpurityFunction& imp,
    const std::vector<int64_t>& left_base,
    const std::vector<int64_t>& node_totals,
    std::optional<double> boundary_value);

/// \brief Best split over the full value range of a family's AVC-set.
std::optional<Split> BestNumericSplit(const NumericAvc& avc, int attr,
                                      const ImpurityFunction& imp);

}  // namespace boat

#endif  // BOAT_SPLIT_NUMERIC_SEARCH_H_
