// Process-wide I/O statistics counters.
//
// The paper's performance results are driven by the number of sequential
// scans each algorithm makes over the (disk-resident) training database.
// Wall-clock time on modern hardware compresses those differences, so every
// storage-layer read and write also bumps these counters; the benchmark
// harnesses report them alongside time as hardware-independent evidence.
//
// Threading: each thread accumulates into its own cache-line-aligned slab
// (single-writer, so the hot path is a plain load/add/store with no atomic
// read-modify-write and no lock). GetIoStats() aggregates the live slabs
// plus the totals of exited threads under a registry mutex; the aggregate is
// exact whenever the threads whose work is being counted have finished (the
// growth-phase worker pool joins its threads before anyone snapshots).

#ifndef BOAT_COMMON_IO_STATS_H_
#define BOAT_COMMON_IO_STATS_H_

#include <cstdint>
#include <string>

namespace boat {

/// \brief Snapshot of the global I/O counters.
struct IoStats {
  uint64_t tuples_read = 0;    ///< Tuples decoded from storage.
  uint64_t tuples_written = 0; ///< Tuples encoded to storage.
  uint64_t bytes_read = 0;     ///< Bytes read from table/temp files.
  uint64_t bytes_written = 0;  ///< Bytes written to table/temp files.
  uint64_t scans_started = 0;  ///< Sequential scans opened.

  IoStats operator-(const IoStats& other) const;
  std::string ToString() const;
};

/// \brief Returns a snapshot of the counters accumulated so far (all exited
/// threads exactly; live threads as of their latest published increments).
IoStats GetIoStats();

/// \brief Resets all counters to zero (baseline subtraction; other threads'
/// slabs are never written from here, so this is safe at any time).
void ResetIoStats();

namespace io_internal {
void RecordRead(uint64_t tuples, uint64_t bytes);
void RecordWrite(uint64_t tuples, uint64_t bytes);
void RecordScanStart();
}  // namespace io_internal

}  // namespace boat

#endif  // BOAT_COMMON_IO_STATS_H_
