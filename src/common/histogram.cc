#include "common/histogram.h"

#include "common/str_util.h"

namespace boat {

uint64_t Log2Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

uint64_t Log2Histogram::ValueAtQuantile(double q) const {
  const std::array<uint64_t, kNumBuckets> counts = Snapshot();
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the quantile observation, 1-based; q=0 maps to the first one.
  const uint64_t rank =
      q == 0 ? 1 : static_cast<uint64_t>(q * static_cast<double>(total) + 0.5);
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += counts[static_cast<size_t>(b)];
    if (seen >= rank && counts[static_cast<size_t>(b)] > 0) {
      return BucketUpperBound(b);
    }
  }
  // Rounded rank past the last non-empty bucket: report the largest one.
  for (int b = kNumBuckets - 1; b >= 0; --b) {
    if (counts[static_cast<size_t>(b)] > 0) return BucketUpperBound(b);
  }
  return 0;
}

void Log2Histogram::MergeFrom(const Log2Histogram& other) {
  const std::array<uint64_t, kNumBuckets> counts = other.Snapshot();
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t c = counts[static_cast<size_t>(b)];
    if (c != 0) {
      buckets_[static_cast<size_t>(b)].fetch_add(c,
                                                 std::memory_order_relaxed);
    }
  }
}

std::string Log2Histogram::ToJson() const {
  const std::array<uint64_t, kNumBuckets> counts = Snapshot();
  std::string out = "[";
  bool first = true;
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t c = counts[static_cast<size_t>(b)];
    if (c == 0) continue;
    if (!first) out += ",";
    first = false;
    out += StrPrintf("[%llu,%llu]",
                     static_cast<unsigned long long>(BucketUpperBound(b)),
                     static_cast<unsigned long long>(c));
  }
  out += "]";
  return out;
}

}  // namespace boat
