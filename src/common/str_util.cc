#include "common/str_util.h"

#include <cstdio>

namespace boat {

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace boat
