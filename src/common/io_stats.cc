#include "common/io_stats.h"

#include <cstdio>

namespace boat {

namespace {
// The library is single-threaded by design (as was the paper's system);
// plain counters keep the hot path free of atomic overhead.
IoStats g_stats;
}  // namespace

IoStats IoStats::operator-(const IoStats& other) const {
  IoStats d;
  d.tuples_read = tuples_read - other.tuples_read;
  d.tuples_written = tuples_written - other.tuples_written;
  d.bytes_read = bytes_read - other.bytes_read;
  d.bytes_written = bytes_written - other.bytes_written;
  d.scans_started = scans_started - other.scans_started;
  return d;
}

std::string IoStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "tuples_read=%llu bytes_read=%llu tuples_written=%llu "
                "bytes_written=%llu scans=%llu",
                static_cast<unsigned long long>(tuples_read),
                static_cast<unsigned long long>(bytes_read),
                static_cast<unsigned long long>(tuples_written),
                static_cast<unsigned long long>(bytes_written),
                static_cast<unsigned long long>(scans_started));
  return buf;
}

IoStats GetIoStats() { return g_stats; }

void ResetIoStats() { g_stats = IoStats(); }

namespace io_internal {

void RecordRead(uint64_t tuples, uint64_t bytes) {
  g_stats.tuples_read += tuples;
  g_stats.bytes_read += bytes;
}

void RecordWrite(uint64_t tuples, uint64_t bytes) {
  g_stats.tuples_written += tuples;
  g_stats.bytes_written += bytes;
}

void RecordScanStart() { g_stats.scans_started += 1; }

}  // namespace io_internal

}  // namespace boat
