#include "common/io_stats.h"

#include <atomic>
#include <cstdio>
#include <vector>

#include "common/sync.h"

namespace boat {

namespace {

// Per-thread counter slab. The owning thread is the only writer, so
// increments are a relaxed load + store (plain add in codegen, no atomic RMW,
// no lock); snapshots from other threads use relaxed loads. std::atomic only
// marks the cross-thread reads well-defined — the hot path stays lock- and
// fence-free.
//
// Memory orders, pinned: every access is memory_order_relaxed. Invariant:
// each counter is an independent monotonic tally with a single writer (the
// owning thread); readers need no ordering with any other memory — exactness
// is provided by joins (the growth-phase pool joins its workers before
// anyone snapshots, and a join is a full happens-before edge), never by the
// atomics themselves.
struct alignas(64) ThreadSlab {
  std::atomic<uint64_t> tuples_read{0};
  std::atomic<uint64_t> tuples_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> scans_started{0};

  void Bump(std::atomic<uint64_t>* c, uint64_t n) {
    c->store(c->load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
  }
};

struct Registry {
  Mutex mu;
  std::vector<ThreadSlab*> live BOAT_GUARDED_BY(mu);
  IoStats retired BOAT_GUARDED_BY(mu);   ///< totals of exited threads
  IoStats baseline BOAT_GUARDED_BY(mu);  ///< set by ResetIoStats

  // Raw aggregate (retired + live slabs).
  IoStats RawLocked() const BOAT_REQUIRES(mu) {
    IoStats total = retired;
    for (const ThreadSlab* s : live) {
      total.tuples_read += s->tuples_read.load(std::memory_order_relaxed);
      total.tuples_written +=
          s->tuples_written.load(std::memory_order_relaxed);
      total.bytes_read += s->bytes_read.load(std::memory_order_relaxed);
      total.bytes_written += s->bytes_written.load(std::memory_order_relaxed);
      total.scans_started += s->scans_started.load(std::memory_order_relaxed);
    }
    return total;
  }
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // never destroyed: slabs of
  return *registry;  // late-exiting threads may outlive static destructors
}

// Registers the slab on first use and folds it into `retired` on thread
// exit, so completed work is never lost from the aggregate.
struct SlabHandle {
  ThreadSlab slab;
  SlabHandle() {
    Registry& r = GetRegistry();
    MutexLock lock(r.mu);
    r.live.push_back(&slab);
  }
  ~SlabHandle() {
    Registry& r = GetRegistry();
    MutexLock lock(r.mu);
    r.retired.tuples_read += slab.tuples_read.load(std::memory_order_relaxed);
    r.retired.tuples_written +=
        slab.tuples_written.load(std::memory_order_relaxed);
    r.retired.bytes_read += slab.bytes_read.load(std::memory_order_relaxed);
    r.retired.bytes_written +=
        slab.bytes_written.load(std::memory_order_relaxed);
    r.retired.scans_started +=
        slab.scans_started.load(std::memory_order_relaxed);
    for (auto it = r.live.begin(); it != r.live.end(); ++it) {
      if (*it == &slab) {
        r.live.erase(it);
        break;
      }
    }
  }
};

ThreadSlab& LocalSlab() {
  thread_local SlabHandle handle;
  return handle.slab;
}

}  // namespace

IoStats IoStats::operator-(const IoStats& other) const {
  IoStats d;
  d.tuples_read = tuples_read - other.tuples_read;
  d.tuples_written = tuples_written - other.tuples_written;
  d.bytes_read = bytes_read - other.bytes_read;
  d.bytes_written = bytes_written - other.bytes_written;
  d.scans_started = scans_started - other.scans_started;
  return d;
}

std::string IoStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "tuples_read=%llu bytes_read=%llu tuples_written=%llu "
                "bytes_written=%llu scans=%llu",
                static_cast<unsigned long long>(tuples_read),
                static_cast<unsigned long long>(bytes_read),
                static_cast<unsigned long long>(tuples_written),
                static_cast<unsigned long long>(bytes_written),
                static_cast<unsigned long long>(scans_started));
  return buf;
}

IoStats GetIoStats() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  return r.RawLocked() - r.baseline;
}

void ResetIoStats() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.baseline = r.RawLocked();
}

namespace io_internal {

void RecordRead(uint64_t tuples, uint64_t bytes) {
  ThreadSlab& s = LocalSlab();
  s.Bump(&s.tuples_read, tuples);
  s.Bump(&s.bytes_read, bytes);
}

void RecordWrite(uint64_t tuples, uint64_t bytes) {
  ThreadSlab& s = LocalSlab();
  s.Bump(&s.tuples_written, tuples);
  s.Bump(&s.bytes_written, bytes);
}

void RecordScanStart() {
  ThreadSlab& s = LocalSlab();
  s.Bump(&s.scans_started, 1);
}

}  // namespace io_internal

}  // namespace boat
