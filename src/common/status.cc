#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace boat {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void FatalError(const std::string& msg) {
  std::fprintf(stderr, "FATAL: %s\n", msg.c_str());
  std::abort();
}

void CheckOk(const Status& status) {
  if (!status.ok()) FatalError(status.ToString());
}

}  // namespace boat
