// Deterministic, splittable pseudo-random number generation.
//
// All randomized components of the library (data generation, sampling,
// bootstrapping) draw from Rng so that every experiment is reproducible from
// a single seed. The generator is xoshiro256** — fast, high quality, and
// stable across platforms (unlike std::mt19937 distributions, whose output
// is not specified bit-exactly by the standard for all distributions).

#ifndef BOAT_COMMON_RNG_H_
#define BOAT_COMMON_RNG_H_

#include <cstdint>

namespace boat {

/// \brief Deterministic 64-bit pseudo-random generator (xoshiro256**).
///
/// Distribution helpers (UniformInt, UniformDouble, Bernoulli) are implemented
/// in-house so that sequences are identical across standard libraries.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Draws are [[nodiscard]]: a dropped draw still advances the stream, which
  // silently desynchronizes every consumer downstream of the drop — exactly
  // the class of bug the determinism lint exists to prevent.

  /// \brief Next raw 64 random bits.
  [[nodiscard]] uint64_t Next();

  /// \brief Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in [lo, hi).
  [[nodiscard]] double UniformDouble(double lo, double hi);

  /// \brief True with probability p (clamped to [0, 1]).
  [[nodiscard]] bool Bernoulli(double p);

  /// \brief Derives an independent child generator; `stream_id` selects the
  /// child deterministically. Used to give each component its own stream.
  ///
  /// Split does not advance this generator's state: splitting is a pure
  /// function of (current state, stream_id). Splits are therefore stable
  /// across platforms and independent of how calls interleave with other
  /// Split calls — the property the parallel growth phase relies on to seed
  /// one stream per bootstrap tree regardless of thread count.
  [[nodiscard]] Rng Split(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
};

}  // namespace boat

#endif  // BOAT_COMMON_RNG_H_
