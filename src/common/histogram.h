// Fixed-bucket log2 histogram for serving-side measurements.
//
// The serving subsystem needs two cheap, lock-free tallies: request latency
// (microseconds, spanning ~1us..minutes) and micro-batch sizes (1..max
// batch). Both have long-tailed distributions where a power-of-two bucketing
// gives useful quantiles at a fixed, tiny footprint: bucket b counts values
// v with bit_width(v) == b, i.e. v in [2^(b-1), 2^b - 1], and quantiles
// report the bucket's inclusive upper bound. Recording is a single relaxed
// atomic increment, so hot serving paths never contend on a histogram lock;
// the quantile/JSON side works from a consistent-enough snapshot (counts
// only grow, and readers tolerate a tally that is mid-update).
//
// Memory orders, pinned (audited with the sync.h sweep): every bucket
// access is memory_order_relaxed, and that is the strongest order this type
// can use correctly by design. Invariant: each bucket is an independent
// monotonic counter; no reader derives control flow or other memory access
// from a count, so no acquire/release pairing exists to express. A Snapshot
// taken concurrently with writers is per-bucket-atomic (not cross-bucket)
// — STATS tolerates that by contract. These counters are genuinely
// lock-free: the only non-atomic state is the constexpr bucket geometry.

#ifndef BOAT_COMMON_HISTOGRAM_H_
#define BOAT_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace boat {

/// \brief Thread-safe fixed-bucket histogram over uint64 values with
/// power-of-two bucket edges. Copyable via Snapshot(); Record is wait-free.
class Log2Histogram {
 public:
  /// Bucket count: bucket 0 holds the value 0, bucket b >= 1 holds values in
  /// [2^(b-1), 2^b - 1]. 40 buckets cover values up to ~5.5e11 (a ~6-day
  /// latency in microseconds); larger values clamp into the last bucket.
  static constexpr int kNumBuckets = 40;

  Log2Histogram() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// \brief Adds one observation.
  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  }

  /// \brief Index of the bucket holding `value`.
  static int BucketOf(uint64_t value) {
    int b = 0;
    while (value != 0) {
      ++b;
      value >>= 1;
    }
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }

  /// \brief Inclusive upper bound of bucket `b` (0 for bucket 0).
  static uint64_t BucketUpperBound(int b) {
    return b == 0 ? 0 : (uint64_t{1} << b) - 1;
  }

  /// \brief Plain-array copy of the current counts.
  std::array<uint64_t, kNumBuckets> Snapshot() const {
    std::array<uint64_t, kNumBuckets> out;
    for (int b = 0; b < kNumBuckets; ++b) {
      out[static_cast<size_t>(b)] =
          buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// \brief Total number of observations.
  uint64_t TotalCount() const;

  /// \brief Upper bound of the bucket containing quantile `q` in [0, 1]
  /// (e.g. 0.5, 0.99). Returns 0 when the histogram is empty.
  uint64_t ValueAtQuantile(double q) const;

  /// \brief Adds every count of `other` into this histogram.
  void MergeFrom(const Log2Histogram& other);

  /// \brief JSON array of the non-empty buckets, as
  /// [[upper_bound, count], ...] in increasing bucket order.
  std::string ToJson() const;

 private:
  /// Lock-free relaxed-only monotonic tallies; single-bucket atomicity is
  /// the whole consistency contract (see file comment).
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
};

}  // namespace boat

#endif  // BOAT_COMMON_HISTOGRAM_H_
