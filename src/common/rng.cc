#include "common/rng.h"

namespace boat {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~0ULL - (~0ULL % range);
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::UniformDouble(double lo, double hi) {
  // 53 random bits -> [0, 1).
  const double u = static_cast<double>(Next() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble(0.0, 1.0) < p;
}

Rng Rng::Split(uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64.
  uint64_t mix = s_[0] ^ Rotl(s_[3], 13) ^ (stream_id * 0xd1342543de82ef95ULL);
  return Rng(SplitMix64(&mix));
}

}  // namespace boat
