// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef BOAT_COMMON_TIMER_H_
#define BOAT_COMMON_TIMER_H_

#include <chrono>

namespace boat {

/// \brief Simple monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace boat

#endif  // BOAT_COMMON_TIMER_H_
