// Result<T>: a value or a Status error, in the style of arrow::Result.

#ifndef BOAT_COMMON_RESULT_H_
#define BOAT_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace boat {

/// \brief Holds either a successfully computed value of type T or a Status
/// describing why the computation failed.
///
/// [[nodiscard]] like Status: a dropped Result is a silently dropped error,
/// and fails the build under -DBOAT_WERROR=ON. Use BOAT_IGNORE_STATUS to
/// discard one deliberately.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK Status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      FatalError("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Returns the contained value; aborts if not ok().
  const T& ValueOrDie() const& {
    if (!ok()) FatalError("ValueOrDie on error Result: " + status_.ToString());
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) FatalError("ValueOrDie on error Result: " + status_.ToString());
    return *value_;
  }
  T ValueOrDie() && {
    if (!ok()) FatalError("ValueOrDie on error Result: " + status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace boat

#define BOAT_INTERNAL_CONCAT2(a, b) a##b
#define BOAT_INTERNAL_CONCAT(a, b) BOAT_INTERNAL_CONCAT2(a, b)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define BOAT_ASSIGN_OR_RETURN(lhs, rexpr) \
  BOAT_ASSIGN_OR_RETURN_IMPL(BOAT_INTERNAL_CONCAT(_boat_res_, __LINE__), lhs, \
                             rexpr)

#define BOAT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie();

#endif  // BOAT_COMMON_RESULT_H_
