// Small string formatting helpers (gcc 12 lacks std::format).

#ifndef BOAT_COMMON_STR_UTIL_H_
#define BOAT_COMMON_STR_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace boat {

/// \brief printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Joins string pieces with a separator.
std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& sep);

}  // namespace boat

#endif  // BOAT_COMMON_STR_UTIL_H_
