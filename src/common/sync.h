// Annotated synchronization primitives: the repo's only lock vocabulary.
//
// Every mutex and condition variable in the codebase goes through the
// wrappers below (the determinism lint's raw-sync rule bans naked
// std::mutex / std::condition_variable / std::lock_guard / std::unique_lock
// everywhere outside this header), so every lock-protected invariant can be
// stated in the type system and verified at compile time by Clang's Thread
// Safety Analysis (-Wthread-safety; see DESIGN.md §11):
//
//   * fields carry BOAT_GUARDED_BY(mu_)  — any access without the lock is a
//     build error under clang -Werror=thread-safety;
//   * helpers that assume the lock carry BOAT_REQUIRES(mu_) — calling them
//     without holding it is a build error;
//   * lock/unlock mismatches (double lock, unlock-without-lock, returning
//     with a lock held) are build errors.
//
// On compilers without the attributes (GCC builds, which tier-1 CI also
// runs) every macro expands to nothing and the wrappers are zero-cost
// forwarding shims over the std primitives, so behavior is identical — the
// analysis is a static gate, not a runtime mechanism. The negative
// compilation suite (tests/negative_compile/) proves the gate actually
// rejects each violation class under clang.
//
// Condition-variable convention the analysis understands: wait with the
// predicate overload and open the predicate with AssertHeld(), e.g.
//
//     MutexLock lock(mu_);
//     cv_.Wait(lock, [&] {
//       mu_.AssertHeld();  // lambda bodies are analyzed without caller
//       return done_;      // context; this re-establishes the capability
//     });
//
// CondVar::Wait releases and reacquires the mutex internally, but from the
// analysis's point of view the MutexLock capability is held continuously —
// which is exactly the guarantee the caller may rely on at every statement
// it can observe (before the call, inside the predicate, after the call).

#ifndef BOAT_COMMON_SYNC_H_
#define BOAT_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

// ---------------------------------------------------------------------------
// Capability annotation macros (Clang Thread Safety Analysis attributes).
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html. Non-Clang
// compilers get empty expansions.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define BOAT_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define BOAT_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable) type.
#define BOAT_CAPABILITY(x) BOAT_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define BOAT_SCOPED_CAPABILITY \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define BOAT_GUARDED_BY(x) BOAT_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding the
/// capability (the pointer itself is unguarded).
#define BOAT_PT_GUARDED_BY(x) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and keeps it held).
#define BOAT_REQUIRES(...) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define BOAT_ACQUIRE(...) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define BOAT_RELEASE(...) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning the given value.
#define BOAT_TRY_ACQUIRE(...) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while the capability is held (it acquires
/// the lock itself; calling it with the lock held would deadlock).
#define BOAT_EXCLUDES(...) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis only; no runtime effect here) that the
/// capability is held from this statement on.
#define BOAT_ASSERT_CAPABILITY(x) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function returns a reference to the given capability.
#define BOAT_RETURN_CAPABILITY(x) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Documents lock-ordering edges; the analysis reports cycles.
#define BOAT_ACQUIRED_BEFORE(...) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define BOAT_ACQUIRED_AFTER(...) \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Escape hatch: the function body is not analyzed. Every use needs a
/// comment arguing why the analysis cannot express the invariant.
#define BOAT_NO_THREAD_SAFETY_ANALYSIS \
  BOAT_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace boat {

class CondVar;

/// \brief Annotated exclusive mutex. Prefer the scoped MutexLock; Lock()/
/// Unlock() exist for the rare non-scoped shapes and are fully checked.
class BOAT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BOAT_ACQUIRE() { mu_.lock(); }
  void Unlock() BOAT_RELEASE() { mu_.unlock(); }
  bool TryLock() BOAT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// \brief Tells the analysis the mutex is held from here on, with no
  /// runtime effect. The one intended use is the first statement of a
  /// CondVar predicate lambda (lambdas are analyzed without the caller's
  /// capability context); anywhere else, prefer restructuring so the
  /// analysis can see the lock.
  void AssertHeld() const BOAT_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;  // the repo's one raw std::mutex (see raw-sync lint rule)
};

/// \brief RAII lock over a Mutex; the analysis tracks its scope as the
/// capability's extent. Not movable: a MutexLock pins one critical section.
class BOAT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BOAT_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() BOAT_RELEASE() {}  // lock_'s destructor performs the unlock

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief Condition variable bound to Mutex/MutexLock. Wait() releases the
/// lock while blocked and reacquires it before returning, so callers hold
/// the capability at every point they can observe — which is why the
/// methods carry no release/acquire annotations of their own.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Blocks until notified (or a spurious wakeup); callers must
  /// re-check their predicate — or use the predicate overload below.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// \brief Blocks until `pred()` is true, re-checking after every wakeup
  /// (spurious or notified). `pred` runs with the lock held; it must open
  /// with `mu.AssertHeld()` if it reads guarded fields (see file comment).
  template <typename Pred>
  void Wait(MutexLock& lock, Pred pred) {
    while (!pred()) Wait(lock);
  }

  /// \brief Single timed wait; returns false on timeout. Spurious wakeups
  /// return true, so callers must re-check their predicate — or use the
  /// predicate overload below.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }

  /// \brief Blocks until `pred()` is true or `deadline` passes; returns the
  /// final `pred()` value (false means timed out with the predicate still
  /// false). Same AssertHeld convention as Wait.
  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Pred pred) {
    return cv_.wait_until(lock.lock_, deadline, std::move(pred));
  }

  /// \brief Wakes one waiter. Legal with or without the mutex held;
  /// waiters' predicate re-check makes both orders equivalent (pinned by
  /// SyncTest.NotifyUnderLockAndAfterUnlockAreEquivalent).
  void NotifyOne() { cv_.notify_one(); }

  /// \brief Wakes all waiters; same locking latitude as NotifyOne.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // raw primitive confined to this header
};

}  // namespace boat

#endif  // BOAT_COMMON_SYNC_H_
