// Minimal threading helpers for the growth phase.
//
// The library's parallelism is deliberately simple: short-lived worker
// threads spawned per phase (no global pool, no work stealing), with results
// written to index-addressed slots so the outcome is identical for every
// thread count. Determinism is the contract — see DESIGN.md.
//
// This header is deliberately lock-free (audited with the sync.h sweep):
// the only shared mutable state is ParallelFor's relaxed atomic ticket, and
// all cross-thread result publication rides the happens-before edges of
// thread creation and join. There is nothing here for a mutex capability to
// guard, so Clang's thread-safety analysis has no annotations to check —
// the checkable contract is "fn writes only to slots addressed by its own
// indices", enforced by the equivalence tests and TSan CI instead.

#ifndef BOAT_COMMON_PARALLEL_H_
#define BOAT_COMMON_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace boat {

/// \brief Resolves a num_threads option value: <= 0 means "use the
/// hardware's concurrency", anything else is taken literally (minimum 1).
inline int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// \brief Runs fn(i) for every i in [0, n) on up to `threads` worker
/// threads. fn must write its result to a slot addressed by i only; under
/// that contract the outcome is independent of the thread count and of
/// scheduling. Exceptions must not escape fn. With threads <= 1 (or n <= 1)
/// the calls happen inline on the calling thread.
template <typename Fn>
void ParallelFor(int64_t n, int threads, Fn&& fn) {
  if (n <= 0) return;
  const int workers =
      static_cast<int>(std::min<int64_t>(n, std::max(threads, 1)));
  if (workers <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Relaxed is correct: the ticket only needs each index claimed exactly
  // once (RMW atomicity); all result publication happens-before via join.
  std::atomic<int64_t> next{0};
  auto body = [&]() {
    while (true) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) pool.emplace_back(body);
  body();
  for (std::thread& t : pool) t.join();
}

/// \brief Statically-striped loop for fixed-cost work: splits [0, n) into at
/// most `threads` contiguous disjoint ranges and runs fn(begin, end, worker)
/// once per range, each on its own thread. Unlike ParallelFor there is no
/// shared counter, so workers never touch a common cache line; use this when
/// every index costs roughly the same (e.g. batch inference), and keep
/// ParallelFor for skewed work.
///
/// Range boundaries fall on multiples of `grain`, so with grain chosen as
/// cache_line_bytes / sizeof(element) no two workers ever write the same
/// line of an index-addressed output array (per-thread output slabs).
/// fn must write only to slots addressed by its own [begin, end); under that
/// contract the outcome is identical for every thread count.
template <typename Fn>
void ParallelForStatic(int64_t n, int threads, int64_t grain, Fn&& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t grains = (n + grain - 1) / grain;
  const int workers =
      static_cast<int>(std::min<int64_t>(grains, std::max(threads, 1)));
  if (workers <= 1) {
    fn(int64_t{0}, n, 0);
    return;
  }
  // First `extra` workers take one grain more; all stripes are contiguous,
  // cover [0, n) exactly, and start on a grain boundary.
  const int64_t per = grains / workers;
  const int64_t extra = grains % workers;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers) - 1);
  int64_t begin = 0;
  for (int w = 0; w < workers; ++w) {
    const int64_t count = (per + (w < extra ? 1 : 0)) * grain;
    const int64_t end = std::min(n, begin + count);
    if (w + 1 < workers) {
      pool.emplace_back([&fn, begin, end, w]() { fn(begin, end, w); });
    } else {
      fn(begin, end, w);  // last stripe runs inline on the calling thread
    }
    begin = end;
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace boat

#endif  // BOAT_COMMON_PARALLEL_H_
