// Status / Result error-handling primitives, in the style of Arrow / RocksDB.
//
// All fallible library operations return Status (or Result<T>); exceptions are
// reserved for programming errors (assertion failures).

#ifndef BOAT_COMMON_STATUS_H_
#define BOAT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace boat {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kCorruption,
  kOutOfMemory,
  kNotSupported,
  kInternal,
};

/// \brief Outcome of a fallible operation: OK, or an error code plus message.
///
/// Cheap to copy in the OK case (no allocation). Follows the RocksDB/Arrow
/// idiom: functions that can fail return Status; callers must check ok().
///
/// The class itself is [[nodiscard]]: any function returning Status (or
/// Result<T>) must have its return value consumed — propagated with
/// BOAT_RETURN_NOT_OK, checked with ok()/CheckOk, or explicitly dropped with
/// BOAT_IGNORE_STATUS. Combined with -DBOAT_WERROR=ON (on in CI), a silently
/// ignored error fails the build.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Human-readable "CODE: message" rendering.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Aborts the process with a message; used for unrecoverable
/// programming errors (never for data-dependent failures).
[[noreturn]] void FatalError(const std::string& msg);

/// \brief Aborts if `status` is not OK. For call sites where failure is a
/// programming error (e.g. writing to a temp file we just created).
void CheckOk(const Status& status);

}  // namespace boat

/// Propagates a non-OK Status to the caller.
#define BOAT_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::boat::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Explicitly discards a Status (or Result) where failure is acceptable —
/// e.g. best-effort cleanup of a temp file that may already be gone. Using
/// the macro (rather than a bare call or a void cast) documents at the call
/// site that ignoring the error is intentional, and makes every such site
/// greppable.
#define BOAT_IGNORE_STATUS(expr)                 \
  do {                                           \
    [[maybe_unused]] auto _ignored_st = (expr);  \
  } while (0)

#endif  // BOAT_COMMON_STATUS_H_
