// BoundedQueue: a small mutex-based bounded MPMC queue for the serving
// subsystem's admission control.
//
// The queue is the server's backpressure point: TryPush never blocks and
// fails once the queue is at capacity (the caller replies BUSY instead of
// letting memory grow without bound), while consumers block in Pop/PopUntil.
// Close() ends the stream: pushes start failing immediately, poppers drain
// the remaining items and then observe end-of-stream (nullopt), which is
// exactly the graceful-drain order the server needs — submit everything,
// close, join workers.
//
// A mutex + condition_variable implementation is deliberate: the consumers
// batch hundreds of items per wakeup, so queue synchronization is off the
// per-request fast path, and the simple implementation is obviously correct
// under TSan — and statically checkable: every shared field is guarded by
// mu_, which Clang's Thread Safety Analysis verifies at compile time
// (common/sync.h). `closed_` and the size are deliberately NOT atomics: both
// are only meaningful relative to `items_`, so reading them outside mu_
// would be a stale answer to a question nobody can act on safely.

#ifndef BOAT_COMMON_BOUNDED_QUEUE_H_
#define BOAT_COMMON_BOUNDED_QUEUE_H_

#include <chrono>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace boat {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// \brief Enqueues `item` unless the queue is full or closed. Never
  /// blocks; returns whether the item was accepted.
  bool TryPush(T item) BOAT_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// \brief Non-blocking pop: nullopt when the queue is momentarily empty.
  std::optional<T> TryPop() BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return PopLocked();
  }

  /// \brief Non-blocking bulk pop: appends up to `max` items to `out` under
  /// a single lock acquisition (the synchronization-amortizing primitive of
  /// the micro-batch scoring loop). Returns the number of items taken.
  size_t PopAllInto(std::vector<T>* out, size_t max) BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    size_t taken = 0;
    while (taken < max && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++taken;
    }
    return taken;
  }

  /// \brief Blocks until an item is available (returned) or the queue is
  /// closed and drained (nullopt).
  std::optional<T> Pop() BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cv_.Wait(lock, [&] {
      mu_.AssertHeld();
      return !items_.empty() || closed_;
    });
    return PopLocked();
  }

  /// \brief Like Pop(), but gives up at `deadline`: returns nullopt on
  /// timeout as well as on closed-and-drained.
  std::optional<T> PopUntil(std::chrono::steady_clock::time_point deadline)
      BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cv_.WaitUntil(lock, deadline, [&] {
      mu_.AssertHeld();
      return !items_.empty() || closed_;
    });
    return PopLocked();
  }

  /// \brief Closes the queue: subsequent TryPush calls fail, and poppers see
  /// end-of-stream once the remaining items are drained. Idempotent.
  void Close() BOAT_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t size() const BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  bool closed() const BOAT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

 private:
  std::optional<T> PopLocked() BOAT_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ BOAT_GUARDED_BY(mu_);
  const size_t capacity_;  ///< immutable after construction; no guard needed
  bool closed_ BOAT_GUARDED_BY(mu_) = false;
};

}  // namespace boat

#endif  // BOAT_COMMON_BOUNDED_QUEUE_H_
