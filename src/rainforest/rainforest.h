// RainForest scalable decision-tree construction [GRG98] — the baselines the
// BOAT paper compares against.
//
// RainForest grows the tree level by level. For every active (undecided)
// node it builds the node's AVC-group by scanning the training data once per
// level and routing each tuple through the splits fixed so far. The variants
// differ in how they behave when the AVC-groups of a level do not fit into
// the AVC buffer:
//
//   RF-Hybrid  — builds AVC-groups for as many nodes as fit in the buffer in
//                one scan; the remaining nodes' families are simultaneously
//                partitioned into temporary files and processed recursively.
//                Fastest variant, largest memory appetite.
//   RF-Vertical— keeps only (groups of) single attributes' AVC-sets in
//                memory, making one scan per attribute group per level.
//                Smallest memory appetite, slowest.
//
// Both produce exactly the same tree as the in-memory reference builder for
// the same split selection method; this is asserted by the integration
// tests. When a node's family drops below `inmem_threshold`, construction
// switches to the in-memory builder on that family (the "smart
// implementation" switch of the paper's Section 5.1).

#ifndef BOAT_RAINFOREST_RAINFOREST_H_
#define BOAT_RAINFOREST_RAINFOREST_H_

#include <memory>

#include "common/result.h"
#include "split/selector.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"
#include "tree/decision_tree.h"

namespace boat {

/// \brief Tuning knobs for the RainForest algorithms.
struct RainForestOptions {
  /// Size of the AVC buffer, in AVC entries (the paper's unit: one
  /// (attribute-value, class) pair with a nonzero count).
  int64_t avc_buffer_entries = 3'000'000;
  /// Switch to the in-memory builder when a family has at most this many
  /// tuples (0 = never switch; growth then ends via GrowthLimits only).
  int64_t inmem_threshold = 0;
  GrowthLimits limits;
  /// Scratch directory base for partition files ("" = BOAT_TMPDIR or /tmp).
  std::string temp_dir;
};

/// \brief Counters describing the work a RainForest build performed.
struct RainForestStats {
  uint64_t scans = 0;               ///< Sequential scans (any data) started.
  uint64_t levels = 0;              ///< Level iterations processed.
  uint64_t nodes_deferred = 0;      ///< Nodes spilled to partition files.
  uint64_t partition_tuples = 0;    ///< Tuples written to partition files.
  uint64_t inmem_switches = 0;      ///< Families finished in memory.
};

/// \brief Builds a decision tree with RF-Hybrid.
Result<DecisionTree> BuildTreeRFHybrid(TupleSource* db,
                                       const SplitSelector& selector,
                                       const RainForestOptions& options,
                                       RainForestStats* stats = nullptr);

/// \brief Builds a decision tree with RF-Vertical.
Result<DecisionTree> BuildTreeRFVertical(TupleSource* db,
                                         const SplitSelector& selector,
                                         const RainForestOptions& options,
                                         RainForestStats* stats = nullptr);

}  // namespace boat

#endif  // BOAT_RAINFOREST_RAINFOREST_H_
