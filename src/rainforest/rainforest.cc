#include "rainforest/rainforest.h"

#include <algorithm>
#include <filesystem>
#include <unordered_map>

#include "storage/table_file.h"
#include "tree/inmem_builder.h"

namespace boat {

namespace {

// AVC entry estimates used to pack the AVC buffer. A numerical attribute
// contributes at most min(family size, distinct values) x classes entries; a
// categorical one at most cardinality x classes. Distinct-value bounds are
// inherited from the parent's materialized AVC-sets (a child cannot see more
// distinct values than its parent did); -1 = unknown.
int64_t EstimateAttrEntries(const Schema& schema, int attr, int64_t size,
                            const std::vector<int64_t>* distinct_bounds) {
  if (schema.IsNumerical(attr)) {
    int64_t distinct = size;
    if (distinct_bounds != nullptr && (*distinct_bounds)[attr] >= 0) {
      distinct = std::min(distinct, (*distinct_bounds)[attr]);
    }
    return distinct * schema.num_classes();
  }
  return static_cast<int64_t>(schema.attribute(attr).cardinality) *
         schema.num_classes();
}

int64_t EstimateGroupEntries(const Schema& schema, int64_t size,
                             const std::vector<int64_t>* distinct_bounds) {
  int64_t est = 0;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    est += EstimateAttrEntries(schema, a, size, distinct_bounds);
  }
  return est;
}

// Routes a tuple from `root` through all splits fixed so far; returns the
// frontier node the tuple currently belongs to.
TreeNode* Route(TreeNode* root, const Tuple& t) {
  TreeNode* n = root;
  while (n->split.has_value()) {
    n = n->split->SendLeft(t) ? n->left.get() : n->right.get();
  }
  return n;
}

bool IsPureCounts(const std::vector<int64_t>& counts) {
  int populated = 0;
  for (const int64_t c : counts) {
    if (c > 0) ++populated;
  }
  return populated <= 1;
}

// A frontier node awaiting a decision.
struct Pending {
  TreeNode* node = nullptr;
  int depth = 0;
  int64_t size = 0;        // family size (exact when counts_known)
  bool counts_known = false;
};

// Shared helpers for both variants.
class BuilderBase {
 public:
  BuilderBase(const Schema& schema, const SplitSelector& selector,
              const RainForestOptions& options, TempFileManager* temp,
              RainForestStats* stats)
      : schema_(schema),
        selector_(selector),
        options_(options),
        temp_(temp),
        stats_(stats) {}

 protected:
  // Per-node, per-attribute distinct-value upper bounds (-1 = unknown),
  // inherited from parent AVC-sets; entries are erased once consumed.
  const std::vector<int64_t>* BoundsOf(TreeNode* node) const {
    auto it = distinct_bounds_.find(node);
    return it == distinct_bounds_.end() ? nullptr : &it->second;
  }
  void SetChildBounds(TreeNode* parent, std::vector<int64_t> bounds) {
    if (parent->left != nullptr) {
      distinct_bounds_[parent->left.get()] = bounds;
      distinct_bounds_[parent->right.get()] = std::move(bounds);
    }
  }
  void DropBounds(TreeNode* node) { distinct_bounds_.erase(node); }

  // GrowthLimits-based stopping decision for a node with known counts.
  bool ShouldStop(const Pending& p) const {
    const GrowthLimits& limits = options_.limits;
    if (p.depth >= limits.max_depth) return true;
    if (p.size < limits.min_tuples_to_split) return true;
    if (limits.stop_family_size > 0 && p.size <= limits.stop_family_size) {
      return true;
    }
    return IsPureCounts(p.node->class_counts);
  }

  bool WantsInMemory(const Pending& p) const {
    return options_.inmem_threshold > 0 && p.counts_known &&
           p.size <= options_.inmem_threshold;
  }

  // Applies `split` to `parent`, creating leaf placeholders for the children
  // with the given class counts, and queues them as pending.
  void Attach(TreeNode* parent, Split split, std::vector<int64_t> left_counts,
              std::vector<int64_t> right_counts, int parent_depth,
              std::vector<Pending>* out) {
    parent->split = std::move(split);
    parent->left = TreeNode::Leaf(std::move(left_counts));
    parent->right = TreeNode::Leaf(std::move(right_counts));
    int64_t left_size = 0;
    for (const int64_t c : parent->left->class_counts) left_size += c;
    int64_t right_size = 0;
    for (const int64_t c : parent->right->class_counts) right_size += c;
    out->push_back({parent->left.get(), parent_depth + 1, left_size, true});
    out->push_back({parent->right.get(), parent_depth + 1, right_size, true});
  }

  // Finishes a family in memory from its partition file and splices the
  // resulting subtree into `node`.
  Status FinishInMemory(const std::string& path, TreeNode* node, int depth) {
    BOAT_ASSIGN_OR_RETURN(auto tuples, ReadTable(path, schema_));
    std::error_code ec;
    std::filesystem::remove(path, ec);
    auto subtree = BuildSubtreeInMemory(schema_, std::move(tuples), selector_,
                                        options_.limits, depth);
    *node = std::move(*subtree);
    if (stats_ != nullptr) ++stats_->inmem_switches;
    return Status::OK();
  }

  const Schema& schema_;
  const SplitSelector& selector_;
  const RainForestOptions& options_;
  TempFileManager* temp_;
  RainForestStats* stats_;
  std::unordered_map<TreeNode*, std::vector<int64_t>> distinct_bounds_;
};

// ------------------------------------------------------------------ RF-Hybrid

class HybridBuilder : public BuilderBase {
 public:
  using BuilderBase::BuilderBase;

  // Grows the subtree rooted at `root` from the tuples of `src`.
  Status Build(TupleSource* src, TreeNode* root, int root_depth,
               bool counts_known, int64_t size_hint) {
    std::vector<Pending> undecided;
    undecided.push_back({root, root_depth, size_hint, counts_known});

    while (!undecided.empty()) {
      if (stats_ != nullptr) ++stats_->levels;
      // Classify this level's nodes.
      struct SpillTask {
        Pending p;
        std::string path;
        std::unique_ptr<TableWriter> writer;
        bool inmem = false;
      };
      std::vector<Pending> avc_nodes;
      std::vector<SpillTask> spill_tasks;
      int64_t budget = options_.avc_buffer_entries;
      for (Pending& p : undecided) {
        if (p.counts_known && ShouldStop(p)) continue;  // final leaf
        if (WantsInMemory(p)) {
          spill_tasks.push_back({p, "", nullptr, /*inmem=*/true});
          continue;
        }
        const int64_t est =
            EstimateGroupEntries(schema_, p.size, BoundsOf(p.node));
        // The first AVC node is admitted even over budget so that every
        // level makes progress (the paper assumes the root AVC-group fits).
        if (est <= budget || avc_nodes.empty()) {
          budget -= est;
          avc_nodes.push_back(p);
        } else {
          spill_tasks.push_back({p, "", nullptr, /*inmem=*/false});
          if (stats_ != nullptr) ++stats_->nodes_deferred;
        }
      }
      undecided.clear();
      if (avc_nodes.empty() && spill_tasks.empty()) break;

      // Open partition writers and index the level's nodes.
      std::unordered_map<TreeNode*, AvcGroup> avcs;
      std::unordered_map<TreeNode*, TableWriter*> writers;
      for (const Pending& p : avc_nodes) {
        avcs.emplace(p.node, AvcGroup(schema_));
      }
      for (SpillTask& task : spill_tasks) {
        task.path = temp_->NewPath("rf-part");
        BOAT_ASSIGN_OR_RETURN(task.writer,
                              TableWriter::Create(task.path, schema_));
        writers.emplace(task.p.node, task.writer.get());
      }

      // One scan over this subtree's data for the whole level.
      BOAT_RETURN_NOT_OK(src->Reset());
      if (stats_ != nullptr) ++stats_->scans;
      Tuple t;
      while (src->Next(&t)) {
        TreeNode* n = Route(root, t);
        if (auto it = avcs.find(n); it != avcs.end()) {
          it->second.Add(t);
        } else if (auto wit = writers.find(n); wit != writers.end()) {
          BOAT_RETURN_NOT_OK(wit->second->Append(t));
          if (stats_ != nullptr) ++stats_->partition_tuples;
        }
        // Otherwise the tuple reached a finished leaf: nothing to do.
      }

      // Decide splits for AVC nodes.
      for (Pending& p : avc_nodes) {
        AvcGroup& avc = avcs.at(p.node);
        avc.Finalize();
        DropBounds(p.node);
        if (!p.counts_known) {
          p.node->class_counts = avc.class_totals();
          p.size = avc.total_tuples();
          p.counts_known = true;
          if (ShouldStop(p)) continue;
          if (WantsInMemory(p)) {
            // Rare: the root family was smaller than the in-memory
            // threshold; fall through to the selector (the AVC is already
            // built, so splitting here is exact and cheaper than re-reading).
          }
        }
        std::optional<Split> split = selector_.ChooseSplit(avc);
        if (!split.has_value()) continue;  // leaf
        auto [left_counts, right_counts] =
            split->is_numerical
                ? ChildCountsNumeric(avc.numeric(split->attribute), *split)
                : ChildCountsCategorical(avc.categorical(split->attribute),
                                         *split);
        Attach(p.node, *std::move(split), std::move(left_counts),
               std::move(right_counts), p.depth, &undecided);
        // Children see at most as many distinct values as this node did.
        std::vector<int64_t> bounds(schema_.num_attributes(), -1);
        for (int a = 0; a < schema_.num_attributes(); ++a) {
          if (schema_.IsNumerical(a)) bounds[a] = avc.numeric(a).num_values();
        }
        SetChildBounds(p.node, std::move(bounds));
      }
      avcs.clear();

      // Handle spilled nodes.
      for (SpillTask& task : spill_tasks) {
        BOAT_RETURN_NOT_OK(task.writer->Finish());
        task.writer.reset();
        if (task.inmem) {
          BOAT_RETURN_NOT_OK(
              FinishInMemory(task.path, task.p.node, task.p.depth));
        } else {
          BOAT_ASSIGN_OR_RETURN(auto part,
                                TableScanSource::Open(task.path, schema_));
          BOAT_RETURN_NOT_OK(Build(part.get(), task.p.node, task.p.depth,
                                   /*counts_known=*/true, task.p.size));
          part.reset();
          std::error_code ec;
          std::filesystem::remove(task.path, ec);
        }
      }
    }
    return Status::OK();
  }
};

// ---------------------------------------------------------------- RF-Vertical

class VerticalBuilder : public BuilderBase {
 public:
  using BuilderBase::BuilderBase;

  Status Build(TupleSource* src, TreeNode* root, int root_depth,
               bool counts_known, int64_t size_hint) {
    std::vector<Pending> undecided;
    undecided.push_back({root, root_depth, size_hint, counts_known});

    while (!undecided.empty()) {
      if (stats_ != nullptr) ++stats_->levels;
      struct InMemTask {
        Pending p;
        std::string path;
        std::unique_ptr<TableWriter> writer;
      };
      struct Candidate {
        Pending p;
        std::optional<Split> best;
        std::vector<int64_t> left_counts;   // children of `best`
        std::vector<int64_t> right_counts;
        std::vector<int64_t> child_bounds;  // distinct values seen per attr
        bool leaf_decided = false;
      };
      std::vector<Candidate> candidates;
      std::vector<InMemTask> inmem_tasks;
      for (Pending& p : undecided) {
        if (p.counts_known && ShouldStop(p)) continue;  // final leaf
        if (WantsInMemory(p)) {
          inmem_tasks.push_back({p, "", nullptr});
        } else {
          candidates.push_back(
              {p, std::nullopt, {}, {},
               std::vector<int64_t>(schema_.num_attributes(), -1), false});
        }
      }
      undecided.clear();
      if (candidates.empty() && inmem_tasks.empty()) break;

      // Pack attributes into groups whose combined (worst-case) AVC size
      // across all candidate nodes fits the buffer; at least one attribute
      // per group so every level makes progress.
      std::vector<std::vector<int>> groups;
      {
        int64_t budget = 0;
        for (int attr = 0; attr < schema_.num_attributes(); ++attr) {
          int64_t est = 0;
          for (const Candidate& c : candidates) {
            est += EstimateAttrEntries(schema_, attr, c.p.size,
                                       BoundsOf(c.p.node));
          }
          if (groups.empty() || est > budget) {
            groups.push_back({attr});
            budget = options_.avc_buffer_entries - est;
          } else {
            groups.back().push_back(attr);
            budget -= est;
          }
        }
      }

      for (InMemTask& task : inmem_tasks) {
        task.path = temp_->NewPath("rfv-part");
        BOAT_ASSIGN_OR_RETURN(task.writer,
                              TableWriter::Create(task.path, schema_));
      }

      for (size_t g = 0; g < groups.size(); ++g) {
        const bool first_group = (g == 0);
        // Per-candidate AVC sets for this group's attributes.
        std::unordered_map<TreeNode*, size_t> index;
        std::vector<std::vector<NumericAvc>> num_avcs(candidates.size());
        std::vector<std::vector<CategoricalAvc>> cat_avcs(candidates.size());
        std::vector<std::vector<int64_t>> totals(candidates.size());
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (candidates[i].leaf_decided) continue;
          index.emplace(candidates[i].p.node, i);
          totals[i].assign(schema_.num_classes(), 0);
          for (const int attr : groups[g]) {
            if (schema_.IsNumerical(attr)) {
              num_avcs[i].emplace_back(schema_.num_classes());
              cat_avcs[i].emplace_back(1, schema_.num_classes());
            } else {
              num_avcs[i].emplace_back(0);
              cat_avcs[i].emplace_back(schema_.attribute(attr).cardinality,
                                       schema_.num_classes());
            }
          }
        }
        std::unordered_map<TreeNode*, TableWriter*> writers;
        if (first_group) {
          for (InMemTask& task : inmem_tasks) {
            writers.emplace(task.p.node, task.writer.get());
          }
        }

        BOAT_RETURN_NOT_OK(src->Reset());
        if (stats_ != nullptr) ++stats_->scans;
        Tuple t;
        while (src->Next(&t)) {
          TreeNode* n = Route(root, t);
          if (auto it = index.find(n); it != index.end()) {
            const size_t i = it->second;
            for (size_t a = 0; a < groups[g].size(); ++a) {
              const int attr = groups[g][a];
              if (schema_.IsNumerical(attr)) {
                num_avcs[i][a].Add(t.value(attr), t.label());
              } else {
                cat_avcs[i][a].Add(t.category(attr), t.label());
              }
            }
            ++totals[i][t.label()];
          } else if (first_group) {
            if (auto wit = writers.find(n); wit != writers.end()) {
              BOAT_RETURN_NOT_OK(wit->second->Append(t));
              if (stats_ != nullptr) ++stats_->partition_tuples;
            }
          }
        }

        // Fold this group's attributes into each candidate's best split.
        for (size_t i = 0; i < candidates.size(); ++i) {
          Candidate& c = candidates[i];
          if (c.leaf_decided) continue;
          if (first_group && !c.p.counts_known) {
            c.p.node->class_counts = totals[i];
            int64_t size = 0;
            for (const int64_t cc : totals[i]) size += cc;
            c.p.size = size;
            c.p.counts_known = true;
            if (ShouldStop(c.p)) {
              c.leaf_decided = true;
              continue;
            }
          }
          for (size_t a = 0; a < groups[g].size(); ++a) {
            const int attr = groups[g][a];
            std::optional<Split> cand;
            if (schema_.IsNumerical(attr)) {
              num_avcs[i][a].Finalize();
              c.child_bounds[attr] = num_avcs[i][a].num_values();
              cand = selector_.EvaluateNumericAttr(num_avcs[i][a], attr);
            } else {
              cand = selector_.EvaluateCategoricalAttr(cat_avcs[i][a], attr);
            }
            if (!cand.has_value()) continue;
            if (!c.best.has_value() || BetterSplit(*cand, *c.best)) {
              auto counts =
                  schema_.IsNumerical(attr)
                      ? ChildCountsNumeric(num_avcs[i][a], *cand)
                      : ChildCountsCategorical(cat_avcs[i][a], *cand);
              c.best = std::move(cand);
              c.left_counts = std::move(counts.first);
              c.right_counts = std::move(counts.second);
            }
          }
        }
      }

      // Decide splits.
      for (Candidate& c : candidates) {
        DropBounds(c.p.node);
        if (c.leaf_decided || !c.best.has_value()) continue;
        if (!selector_.Accept(*c.best, c.p.node->class_counts, c.p.size)) {
          continue;  // leaf
        }
        Attach(c.p.node, *std::move(c.best), std::move(c.left_counts),
               std::move(c.right_counts), c.p.depth, &undecided);
        SetChildBounds(c.p.node, std::move(c.child_bounds));
      }

      for (InMemTask& task : inmem_tasks) {
        BOAT_RETURN_NOT_OK(task.writer->Finish());
        task.writer.reset();
        BOAT_RETURN_NOT_OK(
            FinishInMemory(task.path, task.p.node, task.p.depth));
      }
    }
    return Status::OK();
  }
};

template <typename Builder>
Result<DecisionTree> BuildWith(TupleSource* db, const SplitSelector& selector,
                               const RainForestOptions& options,
                               RainForestStats* stats) {
  const Schema& schema = db->schema();
  BOAT_RETURN_NOT_OK(schema.Validate());
  BOAT_ASSIGN_OR_RETURN(auto temp, TempFileManager::Create(options.temp_dir));

  auto root = TreeNode::Leaf(std::vector<int64_t>(schema.num_classes(), 0));
  Builder builder(schema, selector, options, &temp, stats);
  BOAT_RETURN_NOT_OK(builder.Build(db, root.get(), /*root_depth=*/0,
                                   /*counts_known=*/false,
                                   /*size_hint=*/1 << 20));
  return DecisionTree(schema, std::move(root));
}

}  // namespace

Result<DecisionTree> BuildTreeRFHybrid(TupleSource* db,
                                       const SplitSelector& selector,
                                       const RainForestOptions& options,
                                       RainForestStats* stats) {
  return BuildWith<HybridBuilder>(db, selector, options, stats);
}

Result<DecisionTree> BuildTreeRFVertical(TupleSource* db,
                                         const SplitSelector& selector,
                                         const RainForestOptions& options,
                                         RainForestStats* stats) {
  return BuildWith<VerticalBuilder>(db, selector, options, stats);
}

}  // namespace boat
