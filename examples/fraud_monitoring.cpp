// Fraud monitoring in a dynamic environment (the paper's Section 1 and 4
// motivation): a credit-card company receives new transactions continuously
// and the fraud-detection tree must always reflect the latest data.
//
// The example trains an initial tree, then streams in nightly batches. Most
// batches come from the same distribution — BOAT absorbs them with a cheap
// incremental update. One night the fraud pattern changes (concept drift);
// BOAT detects that the coarse criteria no longer hold in part of the tree,
// rebuilds exactly the affected subtrees, and reports the change to the
// analyst — while still guaranteeing the resulting tree is identical to a
// full rebuild.

#include <cstdio>

#include "boat/boat.h"

int main() {
  using namespace boat;

  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();

  // Day 0: train on the transaction history.
  AgrawalConfig config;
  config.function = 1;  // "fraud" depends mainly on the age attribute
  config.noise = 0.05;
  config.seed = 1;
  std::vector<Tuple> history = GenerateAgrawal(config, 100'000);

  BoatOptions options;
  options.sample_size = 10'000;
  options.bootstrap_count = 20;
  options.bootstrap_subsample = 2'500;
  options.inmem_threshold = 4'000;
  options.enable_updates = true;  // keep the model for incremental updates

  VectorSource source(schema, history);
  Stopwatch watch;
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  CheckOk(classifier.status());
  std::printf("day 0: trained on %zu transactions in %.2fs (%zu nodes)\n",
              history.size(), watch.ElapsedSeconds(),
              (*classifier)->tree().num_nodes());

  // Days 1..5: nightly batches. Day 4's batch carries concept drift — the
  // fraud pattern inverts for customers aged 60+.
  for (int day = 1; day <= 5; ++day) {
    AgrawalConfig batch_config = config;
    batch_config.seed = 100 + static_cast<uint64_t>(day);
    if (day == 4) batch_config.drift = Drift::kRelabelOldAge;
    std::vector<Tuple> batch = GenerateAgrawal(batch_config, 20'000);

    BoatStats stats;
    watch.Restart();
    CheckOk((*classifier)->InsertChunk(batch, &stats));
    const double update_s = watch.ElapsedSeconds();

    std::printf(
        "day %d: +%zu transactions in %.3fs — %llu subtree(s) rebuilt%s\n",
        day, batch.size(), update_s,
        (unsigned long long)stats.subtree_rebuilds,
        stats.subtree_rebuilds > 0
            ? "  << statistically significant change detected!"
            : "");
    history.insert(history.end(), batch.begin(), batch.end());
  }

  // The guarantee: the incrementally maintained tree is *identical* to a
  // tree built from scratch on everything seen so far.
  watch.Restart();
  DecisionTree rebuilt = BuildTreeInMemory(schema, history, *selector,
                                           options.limits);
  const double rebuild_s = watch.ElapsedSeconds();
  std::printf("\nfull rebuild on %zu transactions took %.2fs\n",
              history.size(), rebuild_s);
  std::printf("incrementally maintained tree identical to rebuild: %s\n",
              (*classifier)->tree().StructurallyEqual(rebuilt) ? "YES" : "NO");

  // Expired data works the same way: drop the oldest batch.
  std::vector<Tuple> expired(history.begin(), history.begin() + 20'000);
  BoatStats stats;
  watch.Restart();
  CheckOk((*classifier)->DeleteChunk(expired, &stats));
  std::printf("\nexpiring the oldest %zu transactions took %.3fs\n",
              expired.size(), watch.ElapsedSeconds());

  // The nightly process restarts: persist the model, reload, keep updating.
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());
  const std::string model_dir = temp->NewPath("fraud-model");
  watch.Restart();
  CheckOk(SaveClassifier(**classifier, model_dir));
  std::printf("model saved to %s in %.2fs\n", model_dir.c_str(),
              watch.ElapsedSeconds());
  auto reloaded = LoadClassifier(model_dir, selector.get());
  CheckOk(reloaded.status());
  AgrawalConfig next_day = config;
  next_day.seed = 999;
  CheckOk((*reloaded)->InsertChunk(GenerateAgrawal(next_day, 20'000)));
  std::printf("reloaded model absorbed the next batch — %zu nodes\n",
              (*reloaded)->tree().num_nodes());
  return 0;
}
