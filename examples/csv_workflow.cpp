// End-to-end workflow on a CSV dataset: load, split, train, prune, evaluate,
// and export the model as rules and Graphviz dot.
//
//   $ ./csv_workflow [file.csv]
//
// Without an argument the example writes a small synthetic loan-approval CSV
// next to its scratch directory and uses that.

#include <cstdio>
#include <fstream>

#include "boat/boat.h"

namespace {

// Synthesizes a small "loan approval" CSV with mixed column types.
std::string MakeDemoCsv(boat::TempFileManager* temp) {
  using boat::Rng;
  const std::string path = temp->NewPath("loans");
  std::ofstream out(path);
  out << "age,income,region,owns_home,decision\n";
  Rng rng(2026);
  const char* regions[] = {"north", "south", "east", "west"};
  for (int i = 0; i < 4000; ++i) {
    const int age = static_cast<int>(rng.UniformInt(18, 75));
    const int income = static_cast<int>(rng.UniformInt(15000, 120000));
    const char* region = regions[rng.UniformInt(0, 3)];
    const bool owns = rng.Bernoulli(0.4);
    bool approved = income > 45000 || (owns && age > 30);
    if (rng.Bernoulli(0.08)) approved = !approved;  // label noise
    out << age << ',' << income << ',' << region << ','
        << (owns ? "yes" : "no") << ',' << (approved ? "approved" : "denied")
        << '\n';
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boat;

  auto temp = TempFileManager::Create();
  CheckOk(temp.status());
  const std::string path = argc > 1 ? argv[1] : MakeDemoCsv(&*temp);

  // 1. Load, inferring the schema and category dictionaries.
  auto dataset = LoadCsv(path);
  CheckOk(dataset.status());
  std::printf("loaded %zu records, %d attributes, %d classes from %s\n",
              dataset->tuples.size(), dataset->schema.num_attributes(),
              dataset->schema.num_classes(), path.c_str());
  for (int a = 0; a < dataset->schema.num_attributes(); ++a) {
    const Attribute& attr = dataset->schema.attribute(a);
    if (attr.type == AttributeType::kNumerical) {
      std::printf("  %-10s numerical\n", attr.name.c_str());
    } else {
      std::printf("  %-10s categorical(%d)\n", attr.name.c_str(),
                  attr.cardinality);
    }
  }

  // 2. Holdout split; train; prune on the validation part.
  Rng rng(7);
  auto [train, test] = HoldoutSplit(dataset->tuples, 0.3, &rng);
  auto selector = MakeGiniSelector();
  DecisionTree full = BuildTreeInMemory(dataset->schema, train, *selector);
  DecisionTree pruned = SelectByValidation(full, test);
  std::printf("\nfull tree: %zu nodes; pruned: %zu nodes\n", full.num_nodes(),
              pruned.num_nodes());

  // 3. Evaluate.
  const ConfusionMatrix cm = Evaluate(pruned, test);
  std::printf("holdout accuracy %.1f%%\n%s\n", 100 * cm.Accuracy(),
              cm.ToString().c_str());

  // 4. Cross-validate the whole pipeline.
  const CrossValidationResult cv = CrossValidate(
      dataset->tuples, 5, &rng, [&](const std::vector<Tuple>& fold_train) {
        return BuildTreeInMemory(dataset->schema, fold_train, *selector);
      });
  std::printf("5-fold CV accuracy: %.1f%% +- %.1f%%\n",
              100 * cv.mean_accuracy, 100 * cv.stddev_accuracy);

  // 5. Export the pruned model.
  ExportNames names;
  names.categories = dataset->categories;
  names.classes = dataset->class_names;
  std::printf("\nclassification rules:\n%s",
              ExportRules(pruned, names).c_str());
  const std::string dot_path = temp->NewPath("tree-dot");
  std::ofstream(dot_path) << ExportDot(pruned, names);
  std::printf("\nGraphviz rendering written to %s\n", dot_path.c_str());
  return 0;
}
