// Mining a decision tree over a data-warehouse query WITHOUT materializing
// the training database (Section 1: "BOAT enables mining of decision trees
// from any star-join query without materializing the training set").
//
// The "warehouse" here is a fact table on disk; the training database is
// defined by a selection query over it (e.g. "customers from the eastern
// region with an active loan"). Traditional level-per-scan algorithms would
// want the query result materialized; BOAT only needs (a) sequential scans
// of the query and (b) random samples from it — both available through the
// FilterSource view. The example also contrasts the scan volume with
// RF-Hybrid over the same non-materialized view.

#include <cstdio>

#include "boat/boat.h"

int main() {
  using namespace boat;
  const Schema schema = MakeAgrawalSchema();

  // The warehouse fact table: 400k customer records on disk.
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());
  const std::string fact_table = temp->NewPath("warehouse-fact");
  AgrawalConfig config;
  config.function = 7;
  config.noise = 0.02;
  config.seed = 77;
  CheckOk(GenerateAgrawalTable(config, 400'000, fact_table));

  // The training database is a *query*: zipcodes 0..3 with loan > 100k.
  auto query_predicate = [](const Tuple& t) {
    return t.category(kZipcode) <= 3 && t.value(kLoan) > 100'000;
  };
  auto make_view = [&]() -> std::unique_ptr<TupleSource> {
    auto scan = TableScanSource::Open(fact_table, schema);
    CheckOk(scan.status());
    return std::make_unique<FilterSource>(std::move(scan).ValueOrDie(),
                                          query_predicate);
  };

  {
    auto view = make_view();
    auto all = Materialize(view.get());
    CheckOk(all.status());
    std::printf("query selects %zu of 400000 fact rows (never materialized "
                "for training)\n\n", all->size());
  }

  auto selector = MakeGiniSelector();

  // BOAT over the query view: one sampling scan + one cleanup scan.
  {
    auto view = make_view();
    BoatOptions options;
    options.sample_size = 10'000;
    options.bootstrap_count = 20;
    options.bootstrap_subsample = 2'500;
    options.inmem_threshold = 5'000;
    ResetIoStats();
    Stopwatch watch;
    auto tree = BuildTreeBoat(view.get(), *selector, options);
    CheckOk(tree.status());
    const IoStats io = GetIoStats();
    std::printf("BOAT      : %.2fs, %llu scans of the fact table, "
                "%llu tuples read, tree=%zu nodes\n",
                watch.ElapsedSeconds(),
                (unsigned long long)io.scans_started,
                (unsigned long long)io.tuples_read, tree->num_nodes());
  }

  // RF-Hybrid over the same view: one scan per tree level.
  {
    auto view = make_view();
    RainForestOptions options;
    options.avc_buffer_entries = 2'000'000;
    options.inmem_threshold = 5'000;
    ResetIoStats();
    Stopwatch watch;
    auto tree = BuildTreeRFHybrid(view.get(), *selector, options);
    CheckOk(tree.status());
    const IoStats io = GetIoStats();
    std::printf("RF-Hybrid : %.2fs, %llu scans of the fact table, "
                "%llu tuples read, tree=%zu nodes\n",
                watch.ElapsedSeconds(),
                (unsigned long long)io.scans_started,
                (unsigned long long)io.tuples_read, tree->num_nodes());
  }

  std::printf("\nEvery scan above re-evaluates the query; fewer scans mean "
              "the warehouse does proportionally less work.\n");
  return 0;
}
