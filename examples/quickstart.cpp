// Quickstart: train a decision tree with BOAT on a disk-resident training
// database and use it to classify new records.
//
//   $ ./quickstart
//
// The example generates a synthetic training database (the Agrawal et al.
// generator used in the paper), writes it to a table file, trains a BOAT
// classifier in two scans, prints the tree, and evaluates it on fresh data.

#include <cstdio>

#include "boat/boat.h"

int main() {
  using namespace boat;

  // 1. Create a training database of 200,000 records on disk.
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());
  const std::string db_path = temp->NewPath("training-db");
  AgrawalConfig data_config;
  data_config.function = 6;   // classification function 6 of [AIS93]
  data_config.noise = 0.05;   // 5% label noise
  data_config.seed = 2024;
  CheckOk(GenerateAgrawalTable(data_config, 200'000, db_path));
  const Schema schema = MakeAgrawalSchema();
  std::printf("training database: 200000 records at %s\n", db_path.c_str());

  // 2. Train with BOAT: a CART-style gini selector, sample of 20k, 20
  //    bootstrap repetitions.
  auto source = TableScanSource::Open(db_path, schema);
  CheckOk(source.status());
  auto selector = MakeGiniSelector();
  BoatOptions options;
  options.sample_size = 20'000;
  options.bootstrap_count = 20;
  options.bootstrap_subsample = 5'000;
  options.inmem_threshold = 10'000;

  ResetIoStats();
  Stopwatch watch;
  BoatStats stats;
  auto classifier =
      BoatClassifier::Train(source->get(), selector.get(), options, &stats);
  CheckOk(classifier.status());
  const double seconds = watch.ElapsedSeconds();
  const IoStats io = GetIoStats();

  const DecisionTree& tree = (*classifier)->tree();
  std::printf("\ntrained in %.2fs — %zu nodes, depth %d\n", seconds,
              tree.num_nodes(), tree.depth());
  std::printf("I/O: %s\n", io.ToString().c_str());
  std::printf(
      "BOAT stats: coarse nodes=%llu, bootstrap kills=%llu, failed "
      "checks=%llu, tuples retained in intervals=%llu\n",
      (unsigned long long)stats.coarse_nodes,
      (unsigned long long)stats.bootstrap_kills,
      (unsigned long long)stats.failed_checks,
      (unsigned long long)stats.retained_tuples);

  // 3. Inspect the upper levels of the model.
  std::printf("\ndecision tree (truncated):\n");
  const std::string rendered = tree.ToString();
  size_t printed = 0;
  size_t lines = 0;
  while (printed < rendered.size() && lines < 12) {
    const size_t eol = rendered.find('\n', printed);
    std::printf("  %.*s\n", static_cast<int>(eol - printed),
                rendered.c_str() + printed);
    printed = eol + 1;
    ++lines;
  }
  if (printed < rendered.size()) std::printf("  ...\n");

  // 4. Classify previously unseen records and measure accuracy.
  AgrawalConfig test_config = data_config;
  test_config.seed = 4048;
  test_config.noise = 0.0;
  const std::vector<Tuple> test_set = GenerateAgrawal(test_config, 20'000);

  // Serving goes through CompiledTree: the tree compiled into a flat node
  // pool, scored in batches (predictions identical to tree.Classify).
  const CompiledTree compiled(tree);
  const std::vector<int32_t> predicted =
      compiled.Predict(test_set, /*num_threads=*/0);
  int64_t wrong = 0;
  for (size_t i = 0; i < test_set.size(); ++i) {
    if (predicted[i] != test_set[i].label()) ++wrong;
  }
  std::printf("\nmisclassification rate on 20000 fresh records: %.2f%%\n",
              100.0 * static_cast<double>(wrong) /
                  static_cast<double>(test_set.size()));

  // 5. Classify a single record.
  const Tuple& record = test_set.front();
  std::printf("record %s => predicted class %d\n",
              record.ToString(schema).c_str(), compiled.Classify(record));
  return 0;
}
