// Side-by-side comparison of every construction algorithm in the library on
// the same disk-resident training database: the in-memory reference,
// RF-Hybrid, RF-Vertical, and BOAT — with two split selection methods
// (gini and the QUEST-style selector). Verifies at the end that all
// algorithms grew the identical tree.
//
//   $ ./algorithm_shootout [num_tuples]

#include <cstdio>
#include <cstdlib>

#include "boat/boat.h"

namespace {

struct RunResult {
  const char* name;
  double seconds;
  uint64_t scans;
  uint64_t tuples_read;
};

void Print(const RunResult& r, const boat::DecisionTree& tree, bool same) {
  std::printf("  %-12s %8.2fs  %4llu scans  %12llu tuples read  %s\n", r.name,
              r.seconds, (unsigned long long)r.scans,
              (unsigned long long)r.tuples_read,
              same ? "tree: identical" : "tree: DIFFERENT (bug!)");
  (void)tree;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace boat;
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;

  const Schema schema = MakeAgrawalSchema();
  auto temp = TempFileManager::Create();
  CheckOk(temp.status());
  const std::string db = temp->NewPath("shootout-db");
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 7;
  CheckOk(GenerateAgrawalTable(config, n, db));
  std::printf("training database: %llu tuples (function 6, 5%% noise)\n",
              (unsigned long long)n);

  GrowthLimits limits;
  limits.stop_family_size = static_cast<int64_t>(n / 20);

  std::unique_ptr<SplitSelector> selectors[2];
  selectors[0] = MakeGiniSelector();
  selectors[1] = std::make_unique<QuestSelector>();

  for (const auto& selector : selectors) {
    std::printf("\nsplit selection method: %s\n", selector->name().c_str());

    // Reference (loads everything into memory).
    auto data = ReadTable(db, schema);
    CheckOk(data.status());
    Stopwatch watch;
    DecisionTree reference =
        BuildTreeInMemory(schema, std::move(*data), *selector, limits);
    std::printf("  %-12s %8.2fs  (requires the whole database in memory)\n",
                "in-memory", watch.ElapsedSeconds());

    auto open = [&]() {
      auto source = TableScanSource::Open(db, schema);
      CheckOk(source.status());
      return std::move(source).ValueOrDie();
    };

    {
      auto source = open();
      RainForestOptions options;
      options.avc_buffer_entries = static_cast<int64_t>(0.3 * n);
      options.inmem_threshold = static_cast<int64_t>(n / 20);
      options.limits = limits;
      ResetIoStats();
      watch.Restart();
      auto tree = BuildTreeRFHybrid(source.get(), *selector, options);
      CheckOk(tree.status());
      const IoStats io = GetIoStats();
      Print({"RF-Hybrid", watch.ElapsedSeconds(), io.scans_started,
             io.tuples_read},
            *tree, tree->StructurallyEqual(reference));
    }
    {
      auto source = open();
      RainForestOptions options;
      options.avc_buffer_entries = static_cast<int64_t>(0.18 * n);
      options.inmem_threshold = static_cast<int64_t>(n / 20);
      options.limits = limits;
      ResetIoStats();
      watch.Restart();
      auto tree = BuildTreeRFVertical(source.get(), *selector, options);
      CheckOk(tree.status());
      const IoStats io = GetIoStats();
      Print({"RF-Vertical", watch.ElapsedSeconds(), io.scans_started,
             io.tuples_read},
            *tree, tree->StructurallyEqual(reference));
    }
    {
      auto source = open();
      BoatOptions options;
      options.sample_size = static_cast<size_t>(n / 10);
      options.bootstrap_count = 20;
      options.bootstrap_subsample = static_cast<size_t>(n / 40);
      options.inmem_threshold = static_cast<int64_t>(n / 20);
      options.limits = limits;
      ResetIoStats();
      watch.Restart();
      auto tree = BuildTreeBoat(source.get(), *selector, options);
      CheckOk(tree.status());
      const IoStats io = GetIoStats();
      Print({"BOAT", watch.ElapsedSeconds(), io.scans_started,
             io.tuples_read},
            *tree, tree->StructurallyEqual(reference));
    }
  }
  return 0;
}
