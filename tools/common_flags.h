// Shared command-line plumbing for the boat tools (boatc, boatd,
// boat-loadgen) and the benchmark drivers: one --flag parser and one
// BoatOptions construction path, so every entry point derives the same
// data-size-scaled defaults and rejects bad configurations identically
// (via BoatOptions::Validate()).

#ifndef BOAT_TOOLS_COMMON_FLAGS_H_
#define BOAT_TOOLS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "boat/options.h"
#include "common/result.h"

namespace boat::tools {

/// \brief Minimal `--name value` / `--bool` parser. A flag followed by
/// another `--flag` (or nothing) is boolean "true"; anything else consumes
/// the next argument as its value. Non-flag positionals are fatal.
/// Repeating a flag is allowed: Get/GetInt see the last occurrence, GetAll
/// returns every occurrence in command-line order (how boatd takes multiple
/// --model entries and boat-loadgen multiple --expected files).
class Flags {
 public:
  /// Parses argv[first..argc); exits(2) on a malformed command line.
  Flags(int argc, char** argv, int first);

  std::string Get(const std::string& name, const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  /// Exits(2) with a message when the flag is absent.
  std::string Require(const std::string& name) const;
  /// Every value of a repeated flag, in command-line order (empty if the
  /// flag never appeared).
  std::vector<std::string> GetAll(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;  ///< last occurrence wins
  /// Every (name, value) pair in command-line order, for repeated flags.
  std::vector<std::pair<std::string, std::string>> ordered_;
};

/// \brief The data-size-derived BoatOptions defaults every tool shares:
/// sample |D|/10, subsample sample/4, 20 bootstraps, in-memory switch at
/// |D|/20+1. `n` is the training-set size.
BoatOptions DerivedBoatOptions(int64_t n);

/// \brief BoatOptions from the common training flags (--sample,
/// --bootstraps, --subsample, --inmem, --max-depth, --stop-family,
/// --no-updates, --seed, --threads), starting from DerivedBoatOptions(n)
/// and validated with BoatOptions::Validate() so nonsense configs fail the
/// same way at every entry point.
Result<BoatOptions> CommonBoatOptions(const Flags& flags, int64_t n);

}  // namespace boat::tools

#endif  // BOAT_TOOLS_COMMON_FLAGS_H_
