// boatd — the BOAT model server daemon.
//
//   boatd --model [name=]model/ [--model name2=other/]...
//         [--ensemble name3=model/ensemble]...
//         [--port 0] [--threads 1] [--max-batch 2048]
//         [--linger-us 1000] [--queue 8192] [--max-connections 256]
//         [--selector gini] [--chunk-queue 64] [--max-chunk-records 100000]
//         [--train-threads 0]
//
// One daemon serves a whole fleet: every --model adds a named trained model
// (a SaveClassifier directory with live streaming ingestion), every
// --ensemble adds a named bagged bootstrap ensemble (a SaveEnsemble
// directory, majority-vote scoring, no ingestion). A bare `--model DIR`
// (no `name=`) keeps the classic single-model invocation working and names
// the model `default`. The first flag in command-line order is the fleet's
// default model: unrouted wire v2 lines score against it, and wire v3
// clients address any model per record with an `@<name>` prefix (see
// src/serve/wire.h).
//
// --threads sets the scoring workers (shared across the fleet);
// --train-threads sets the growth-phase budget incremental retrains run
// with (0 = all hardware cores — the default, so a RETRAIN under load uses
// the daemon's cores; the model is byte-identical either way).
//
// On startup prints exactly one line to stdout:
//
//   boatd listening on port <N>
//
// so scripts can use --port 0 (ephemeral) and scrape the bound port.
//
// Signals (handled synchronously via sigwait, blocked in every thread):
//   SIGHUP            reload every model from its original directory
//                     (the per-model RELOAD admin command can point
//                     elsewhere); one model's failure keeps its last-good
//                     and does not block the others
//   SIGTERM, SIGINT   graceful drain: stop accepting, finish replying to
//                     every received request, then exit 0

#include <signal.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common_flags.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "serve/trainer.h"

namespace {

using namespace boat;
using namespace boat::serve;
using boat::tools::Flags;

int Usage() {
  std::fprintf(stderr,
               "usage: boatd --model [NAME=]DIR [--model NAME=DIR]...\n"
               "             [--ensemble NAME=DIR]... [--port P]\n"
               "             [--threads T] [--max-batch N] [--linger-us U]\n"
               "             [--queue N] [--max-connections N]\n"
               "             [--selector NAME] [--chunk-queue N]\n"
               "             [--max-chunk-records N] [--train-threads T]\n");
  return 2;
}

/// Splits `[name=]dir` at the first '='; a bare directory gets the classic
/// single-model name `default`.
std::pair<std::string, std::string> SplitModelFlag(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos) return {"default", spec};
  return {spec.substr(0, eq), spec.substr(eq + 1)};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (flags.Get("help") == "true") return Usage();
  const std::vector<std::string> model_flags = flags.GetAll("model");
  const std::vector<std::string> ensemble_flags = flags.GetAll("ensemble");
  if (model_flags.empty() && ensemble_flags.empty()) {
    std::fprintf(stderr, "boatd: at least one --model or --ensemble is "
                         "required\n");
    return Usage();
  }
  const std::string selector = flags.Get("selector", "gini");

  // Block the handled signals before any thread exists so every server
  // thread inherits the mask and sigwait below is the only receiver.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  FleetRegistry fleet;
  for (const std::string& spec : model_flags) {
    const auto [id, dir] = SplitModelFlag(spec);
    TrainerOptions trainer_options;
    trainer_options.model_dir = dir;
    trainer_options.selector = selector;
    trainer_options.queue_capacity =
        static_cast<size_t>(flags.GetInt("chunk-queue", 64));
    trainer_options.num_threads =
        static_cast<int>(flags.GetInt("train-threads", 0));
    // FleetRegistry::AddTrained starts the trainer, which opens the BOAT
    // session and installs the initial servable model, so every added
    // entry is immediately servable.
    const Status status = fleet.AddTrained(id, trainer_options);
    if (!status.ok()) {
      std::fprintf(stderr, "boatd: cannot load model '%s': %s\n", id.c_str(),
                   status.ToString().c_str());
      fleet.ShutdownTrainers();
      return 1;
    }
  }
  for (const std::string& spec : ensemble_flags) {
    const auto [id, dir] = SplitModelFlag(spec);
    const Status status = fleet.AddEnsemble(id, dir);
    if (!status.ok()) {
      std::fprintf(stderr, "boatd: cannot load ensemble '%s': %s\n",
                   id.c_str(), status.ToString().c_str());
      fleet.ShutdownTrainers();
      return 1;
    }
  }

  ServerOptions options;
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.scoring_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.max_batch = static_cast<int>(flags.GetInt("max-batch", 2048));
  options.linger_us = flags.GetInt("linger-us", 1000);
  options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue", 8192));
  options.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 256));
  options.selector = selector;
  options.max_chunk_records =
      flags.GetInt("max-chunk-records", options.max_chunk_records);

  BoatServer server(&fleet, options);
  {
    const Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "boatd: %s\n", status.ToString().c_str());
      fleet.ShutdownTrainers();
      return 1;
    }
  }
  std::printf("boatd listening on port %d\n", server.port());
  std::fflush(stdout);

  for (;;) {
    int sig = 0;
    if (sigwait(&sigs, &sig) != 0) continue;
    if (sig == SIGHUP) {
      for (const std::shared_ptr<FleetEntry>& entry : fleet.entries()) {
        const Status status = fleet.Reload(entry->id, entry->source_dir);
        std::fprintf(stderr, "boatd: SIGHUP reload of '%s' from %s: %s\n",
                     entry->id.c_str(), entry->source_dir.c_str(),
                     status.ToString().c_str());
      }
      continue;
    }
    std::fprintf(stderr, "boatd: signal %d, draining\n", sig);
    break;
  }
  // Server first (stop taking chunks), then trainers (drain queued chunks).
  server.Shutdown();
  fleet.ShutdownTrainers();
  std::fprintf(stderr, "boatd: drained, exiting\n");
  return 0;
}
