// boatd — the BOAT model server daemon.
//
//   boatd --model model/ [--port 0] [--threads 1] [--max-batch 2048]
//         [--linger-us 1000] [--queue 8192] [--max-connections 256]
//         [--selector gini]
//
// Serves newline-delimited CSV records over TCP (see src/serve/wire.h for
// the protocol) through the micro-batching BoatServer. On startup prints
// exactly one line to stdout:
//
//   boatd listening on port <N>
//
// so scripts can use --port 0 (ephemeral) and scrape the bound port.
//
// Signals (handled synchronously via sigwait, blocked in every thread):
//   SIGHUP            reload the model from its original --model directory
//                     (the RELOAD admin command can point elsewhere)
//   SIGTERM, SIGINT   graceful drain: stop accepting, finish replying to
//                     every received request, then exit 0

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "serve/model_registry.h"
#include "serve/server.h"

namespace {

using namespace boat;
using namespace boat::serve;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string Get(const std::string& name, const std::string& def = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(),
                                                    nullptr, 10);
  }
  std::string Require(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: boatd --model DIR [--port P] [--threads T]\n"
               "             [--max-batch N] [--linger-us U] [--queue N]\n"
               "             [--max-connections N] [--selector NAME]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (flags.Get("help") == "true") return Usage();
  const std::string model_dir = flags.Require("model");
  const std::string selector = flags.Get("selector", "gini");

  // Block the handled signals before any thread exists so every server
  // thread inherits the mask and sigwait below is the only receiver.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  ModelRegistry registry;
  {
    const Status status = registry.LoadAndSwap(model_dir, selector);
    if (!status.ok()) {
      std::fprintf(stderr, "boatd: cannot load model: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  ServerOptions options;
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.scoring_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.max_batch = static_cast<int>(flags.GetInt("max-batch", 2048));
  options.linger_us = flags.GetInt("linger-us", 1000);
  options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue", 8192));
  options.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 256));
  options.selector = selector;

  BoatServer server(&registry, options);
  {
    const Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "boatd: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("boatd listening on port %d\n", server.port());
  std::fflush(stdout);

  for (;;) {
    int sig = 0;
    if (sigwait(&sigs, &sig) != 0) continue;
    if (sig == SIGHUP) {
      const Status status = registry.LoadAndSwap(model_dir, selector);
      std::fprintf(stderr, "boatd: SIGHUP reload of %s: %s\n",
                   model_dir.c_str(), status.ToString().c_str());
      continue;
    }
    std::fprintf(stderr, "boatd: signal %d, draining\n", sig);
    break;
  }
  server.Shutdown();
  std::fprintf(stderr, "boatd: drained, exiting\n");
  return 0;
}
