// boatd — the BOAT model server daemon.
//
//   boatd --model model/ [--port 0] [--threads 1] [--max-batch 2048]
//         [--linger-us 1000] [--queue 8192] [--max-connections 256]
//         [--selector gini] [--chunk-queue 64] [--max-chunk-records 100000]
//         [--train-threads 0]
//
// --threads sets the scoring workers; --train-threads sets the growth-phase
// budget incremental retrains run with (0 = all hardware cores — the
// default, so a RETRAIN under load uses the daemon's cores; the model is
// byte-identical either way).
//
// Serves newline-delimited CSV records over TCP (see src/serve/wire.h for
// the protocol) through the micro-batching BoatServer, and accepts
// streaming training chunks (INGEST/DELETE/RETRAIN) through a background
// Trainer that applies them to the live BOAT engine and hot-swaps the
// recompiled tree into the registry without dropping a single request.
// On startup prints exactly one line to stdout:
//
//   boatd listening on port <N>
//
// so scripts can use --port 0 (ephemeral) and scrape the bound port.
//
// Signals (handled synchronously via sigwait, blocked in every thread):
//   SIGHUP            reload the model from its original --model directory
//                     (the RELOAD admin command can point elsewhere)
//   SIGTERM, SIGINT   graceful drain: stop accepting, finish replying to
//                     every received request, then exit 0

#include <signal.h>

#include <cstdio>
#include <string>

#include "common_flags.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/trainer.h"

namespace {

using namespace boat;
using namespace boat::serve;
using boat::tools::Flags;

int Usage() {
  std::fprintf(stderr,
               "usage: boatd --model DIR [--port P] [--threads T]\n"
               "             [--max-batch N] [--linger-us U] [--queue N]\n"
               "             [--max-connections N] [--selector NAME]\n"
               "             [--chunk-queue N] [--max-chunk-records N]\n"
               "             [--train-threads T]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  if (flags.Get("help") == "true") return Usage();
  const std::string model_dir = flags.Require("model");
  const std::string selector = flags.Get("selector", "gini");

  // Block the handled signals before any thread exists so every server
  // thread inherits the mask and sigwait below is the only receiver.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  ModelRegistry registry;
  TrainerOptions trainer_options;
  trainer_options.model_dir = model_dir;
  trainer_options.selector = selector;
  trainer_options.queue_capacity =
      static_cast<size_t>(flags.GetInt("chunk-queue", 64));
  trainer_options.num_threads =
      static_cast<int>(flags.GetInt("train-threads", 0));
  Trainer trainer(&registry, trainer_options);
  {
    // Trainer::Start opens the BOAT session and installs the initial
    // servable model, so the registry is never empty while serving.
    const Status status = trainer.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "boatd: cannot load model: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  ServerOptions options;
  options.port = static_cast<int>(flags.GetInt("port", 0));
  options.scoring_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.max_batch = static_cast<int>(flags.GetInt("max-batch", 2048));
  options.linger_us = flags.GetInt("linger-us", 1000);
  options.queue_capacity =
      static_cast<size_t>(flags.GetInt("queue", 8192));
  options.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 256));
  options.selector = selector;
  options.max_chunk_records =
      flags.GetInt("max-chunk-records", options.max_chunk_records);

  BoatServer server(&registry, options, &trainer);
  {
    const Status status = server.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "boatd: %s\n", status.ToString().c_str());
      trainer.Shutdown();
      return 1;
    }
  }
  std::printf("boatd listening on port %d\n", server.port());
  std::fflush(stdout);

  for (;;) {
    int sig = 0;
    if (sigwait(&sigs, &sig) != 0) continue;
    if (sig == SIGHUP) {
      const Status status = registry.LoadAndSwap(model_dir, selector);
      std::fprintf(stderr, "boatd: SIGHUP reload of %s: %s\n",
                   model_dir.c_str(), status.ToString().c_str());
      continue;
    }
    std::fprintf(stderr, "boatd: signal %d, draining\n", sig);
    break;
  }
  // Server first (stop taking chunks), then trainer (drain queued chunks).
  server.Shutdown();
  trainer.Shutdown();
  std::fprintf(stderr, "boatd: drained, exiting\n");
  return 0;
}
