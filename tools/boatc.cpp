// boatc — command-line front end for the BOAT library.
//
//   boatc generate --function 6 --rows 200000 --noise 0.05 --out train.tbl
//   boatc train    --data train.tbl --model model/ [--selector gini] [--json]
//   boatc evaluate --model model/ --data test.tbl [--threads T] [--json]
//   boatc classify --model model/ --data new.tbl --out labels.csv
//            [--threads T] [--json]
//   boatc apply-chunk --model model/ --insert chunk.csv [--json]
//   boatc apply-chunk --model model/ --delete expired.csv [--json]
//   boatc inspect  --model model/ [--rules] [--dot]
//
// (`boatc update` is a deprecated alias of apply-chunk.)
//
// Training data may also be a CSV file (schema inferred; see storage/csv.h);
// everything else uses the binary table format tied to the model's schema.
//
// Scoring (evaluate/classify) runs through the CompiledTree flat inference
// layout; --threads T shards the batch (0 = all cores) without changing a
// single prediction. --json replaces the human-readable report on stdout
// with one machine-readable JSON object sharing a single schema across
// subcommands: {"command", "seconds", "records", "threads", "model":
// {"nodes","leaves","depth"}, "stats": {...}, "accuracy", "confusion":
// {"num_classes","counts"}, "out"} — absent keys simply don't apply.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "boat/boat.h"
#include "boat/persistence.h"
#include "common_flags.h"
#include "tree/ensemble.h"

namespace {

using namespace boat;
using boat::tools::Flags;

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

bool IsCsv(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

// ------------------------------------------------------------- JSON output
//
// One schema across subcommands (--json): a single JSON object on stdout,
// keys in a fixed order, nothing else printed. Scrapers key off "command".

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal order-preserving JSON object builder; values are preformatted.
class JsonObject {
 public:
  JsonObject& Str(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + JsonEscape(value) + "\"");
  }
  JsonObject& Int(const std::string& key, long long value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return Raw(key, buf);
  }
  JsonObject& Double(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return Raw(key, buf);
  }
  JsonObject& Raw(const std::string& key, const std::string& json) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + JsonEscape(key) + "\":" + json;
    return *this;
  }
  std::string Render() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

std::string JsonTree(const DecisionTree& tree) {
  return JsonObject()
      .Int("nodes", static_cast<long long>(tree.num_nodes()))
      .Int("leaves", static_cast<long long>(tree.num_leaves()))
      .Int("depth", tree.depth())
      .Render();
}

std::string JsonStats(const BoatStats& stats) {
  return JsonObject()
      .Int("db_size", static_cast<long long>(stats.db_size))
      .Int("bootstrap_kills", static_cast<long long>(stats.bootstrap_kills))
      .Int("coarse_nodes", static_cast<long long>(stats.coarse_nodes))
      .Int("cleanup_scans", static_cast<long long>(stats.cleanup_scans))
      .Int("failed_checks", static_cast<long long>(stats.failed_checks))
      .Int("leafized_nodes", static_cast<long long>(stats.leafized_nodes))
      .Int("retained_tuples", static_cast<long long>(stats.retained_tuples))
      .Int("frontier_inmem", static_cast<long long>(stats.frontier_inmem))
      .Int("frontier_recursive",
           static_cast<long long>(stats.frontier_recursive))
      .Int("rebuild_scans", static_cast<long long>(stats.rebuild_scans))
      .Int("side_switch_tuples",
           static_cast<long long>(stats.side_switch_tuples))
      .Int("subtree_rebuilds", static_cast<long long>(stats.subtree_rebuilds))
      .Render();
}

std::string JsonConfusion(const ConfusionMatrix& cm) {
  std::string counts = "[";
  for (int a = 0; a < cm.num_classes(); ++a) {
    if (a > 0) counts += ",";
    counts += "[";
    for (int p = 0; p < cm.num_classes(); ++p) {
      if (p > 0) counts += ",";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(cm.count(a, p)));
      counts += buf;
    }
    counts += "]";
  }
  counts += "]";
  return JsonObject()
      .Int("num_classes", cm.num_classes())
      .Raw("counts", counts)
      .Render();
}

// Loads training data from .tbl (schema must be recoverable from the file —
// here we require Agrawal schema unless CSV) or .csv (schema inferred).
struct LoadedData {
  Schema schema;
  std::vector<Tuple> tuples;
  ExportNames names;  // CSV dictionaries, when available
};

LoadedData LoadData(const std::string& path, const Schema* expected) {
  LoadedData out;
  if (path == "-") {
    // CSV on stdin (header line included), for piping records straight
    // into classify/evaluate.
    auto dataset = LoadCsv(std::cin);
    Check(dataset.status());
    out.schema = dataset->schema;
    out.tuples = std::move(dataset->tuples);
    out.names.categories = std::move(dataset->categories);
    out.names.classes = std::move(dataset->class_names);
    return out;
  }
  if (IsCsv(path)) {
    auto dataset = LoadCsv(path);
    Check(dataset.status());
    out.schema = dataset->schema;
    out.tuples = std::move(dataset->tuples);
    out.names.categories = std::move(dataset->categories);
    out.names.classes = std::move(dataset->class_names);
    return out;
  }
  const Schema schema = expected != nullptr ? *expected : MakeAgrawalSchema();
  auto tuples = ReadTable(path, schema);
  Check(tuples.status());
  out.schema = schema;
  out.tuples = std::move(*tuples);
  return out;
}

// ----------------------------------------------------------------- commands

int CmdGenerate(const Flags& flags) {
  AgrawalConfig config;
  config.function = static_cast<int>(flags.GetInt("function", 1));
  config.noise = flags.GetDouble("noise", 0.0);
  config.extra_numeric_attrs =
      static_cast<int>(flags.GetInt("extra-attrs", 0));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (flags.Has("drift")) config.drift = Drift::kRelabelOldAge;
  const int64_t rows = flags.GetInt("rows", 100'000);
  const std::string out = flags.Require("out");
  if (IsCsv(out)) {
    const auto tuples =
        GenerateAgrawal(config, static_cast<uint64_t>(rows));
    Check(WriteCsv(out, MakeAgrawalSchema(config.extra_numeric_attrs),
                   tuples));
  } else {
    Check(GenerateAgrawalTable(config, static_cast<uint64_t>(rows), out));
  }
  std::printf("wrote %lld Agrawal F%d records (noise %.0f%%) to %s\n",
              static_cast<long long>(rows), config.function,
              100 * config.noise, out.c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  const std::string data_path = flags.Require("data");
  const std::string model_dir = flags.Require("model");
  const std::string selector_name = flags.Get("selector", "gini");

  LoadedData data = LoadData(data_path, nullptr);
  const int64_t n = static_cast<int64_t>(data.tuples.size());
  auto options = tools::CommonBoatOptions(flags, n);
  Check(options.status());
  // --emit-ensemble: keep the sampling phase's bootstrap trees and persist
  // them as <model>/ensemble (a bagged majority-vote backend for boatd).
  const bool emit_ensemble = flags.Has("emit-ensemble");
  options->keep_bootstrap_trees = emit_ensemble;

  VectorSource source(data.schema, data.tuples);
  Stopwatch watch;
  BoatStats stats;
  const DecisionTree* tree = nullptr;
  std::unique_ptr<Session> session;
  std::unique_ptr<BoatClassifier> classifier;
  if (options->enable_updates) {
    SessionOptions session_options;
    session_options.selector = selector_name;
    session_options.boat = *options;
    auto trained =
        Session::Train(&source, model_dir, session_options, &stats);
    Check(trained.status());
    session = std::move(*trained);
    tree = &session->tree();
  } else {
    // --no-updates: a frozen model (no archive, no incremental maintenance)
    // through the classifier-level API the Session wraps.
    auto selector = MakeSelectorByName(selector_name);
    Check(selector.status());
    auto trained =
        BoatClassifier::Train(&source, selector->get(), *options, &stats);
    Check(trained.status());
    classifier = std::move(*trained);
    Check(SaveClassifier(*classifier, model_dir));
    if (emit_ensemble && !classifier->bootstrap_trees().empty()) {
      // The Session path persists the ensemble inside Session::Train; the
      // frozen path saves it explicitly.
      Check(SaveEnsemble(data.schema, classifier->bootstrap_trees(),
                         model_dir + "/ensemble"));
    }
    tree = &classifier->tree();
  }
  const double seconds = watch.ElapsedSeconds();
  if (flags.Has("json")) {
    JsonObject json;
    json.Str("command", "train")
        .Double("seconds", seconds)
        .Int("records", n)
        .Int("threads", options->num_threads)
        .Str("selector", selector_name)
        .Raw("model", JsonTree(*tree))
        .Raw("stats", JsonStats(stats))
        .Str("model_dir", model_dir);
    if (emit_ensemble) json.Str("ensemble_dir", model_dir + "/ensemble");
    std::printf("%s\n", json.Render().c_str());
    return 0;
  }
  std::printf(
      "trained on %lld records in %.2fs — tree: %zu nodes, depth %d; "
      "model saved to %s\n",
      static_cast<long long>(n), seconds, tree->num_nodes(), tree->depth(),
      model_dir.c_str());
  if (emit_ensemble) {
    std::printf("  bootstrap ensemble saved to %s/ensemble\n",
                model_dir.c_str());
  }
  std::printf("  (selector %s, coarse nodes %llu, kills %llu, failed checks "
              "%llu)\n",
              selector_name.c_str(),
              static_cast<unsigned long long>(stats.coarse_nodes),
              static_cast<unsigned long long>(stats.bootstrap_kills),
              static_cast<unsigned long long>(stats.failed_checks));
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto session = Session::Open(flags.Require("model"),
                               flags.Get("selector", "gini"));
  Check(session.status());
  const Schema& schema = (*session)->schema();
  LoadedData data = LoadData(flags.Require("data"), &schema);
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const CompiledTree compiled = (*session)->Compile();
  Stopwatch watch;
  const ConfusionMatrix cm = Evaluate(compiled, data.tuples, threads);
  const double seconds = watch.ElapsedSeconds();
  if (flags.Has("json")) {
    std::printf("%s\n",
                JsonObject()
                    .Str("command", "evaluate")
                    .Double("seconds", seconds)
                    .Int("records", static_cast<long long>(cm.total()))
                    .Int("threads", threads)
                    .Raw("model", JsonTree((*session)->tree()))
                    .Double("accuracy", cm.Accuracy())
                    .Raw("confusion", JsonConfusion(cm))
                    .Render()
                    .c_str());
    return 0;
  }
  std::printf("accuracy: %.2f%% over %lld records\n", 100 * cm.Accuracy(),
              static_cast<long long>(cm.total()));
  std::printf("%s", cm.ToString().c_str());
  return 0;
}

int CmdClassify(const Flags& flags) {
  const std::string model_dir = flags.Require("model");
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const bool use_ensemble = flags.Has("ensemble");

  // Either backend produces `predicted` plus a model-shape JSON fragment;
  // everything below the scoring block is shared.
  std::unique_ptr<Session> session;
  std::unique_ptr<CompiledEnsemble> ensemble;
  LoadedData data;
  std::string model_json;
  if (use_ensemble) {
    // --ensemble: bagged majority vote over <model>/ensemble, the offline
    // twin of boatd's ensemble backend (`--ensemble name=DIR`).
    auto loaded = LoadEnsemble(model_dir + "/ensemble");
    Check(loaded.status());
    data = LoadData(flags.Require("data"), &loaded->schema);
    ensemble = std::make_unique<CompiledEnsemble>(loaded->members);
    model_json = JsonObject()
                     .Int("members",
                          static_cast<long long>(ensemble->num_members()))
                     .Int("nodes",
                          static_cast<long long>(ensemble->total_nodes()))
                     .Render();
  } else {
    auto opened = Session::Open(model_dir, flags.Get("selector", "gini"));
    Check(opened.status());
    session = std::move(*opened);
    data = LoadData(flags.Require("data"), &session->schema());
    model_json = JsonTree(session->tree());
  }

  Stopwatch watch;
  // Score into uninitialized-capacity storage: Predict writes every slot,
  // so the zero-fill of a sized vector would only add a pass over n int32s.
  const size_t n = data.tuples.size();
  const auto buffer = std::make_unique_for_overwrite<int32_t[]>(n);
  const std::span<int32_t> predicted(buffer.get(), n);
  if (use_ensemble) {
    ensemble->Predict(data.tuples, predicted, threads);
  } else {
    const CompiledTree compiled = session->Compile();
    compiled.Predict(data.tuples, predicted, threads);
  }
  const double seconds = watch.ElapsedSeconds();

  const std::string out_path = flags.Get("out");
  std::ofstream out;
  if (!out_path.empty()) out.open(out_path);
  // With --json and no --out the predictions go into the JSON itself.
  const bool inline_labels = flags.Has("json") && out_path.empty();
  if (!inline_labels) {
    std::ostream& sink = out_path.empty() ? std::cout : out;
    for (const int32_t label : predicted) sink << label << "\n";
  }
  if (flags.Has("json")) {
    JsonObject json;
    json.Str("command", "classify")
        .Double("seconds", seconds)
        .Int("records", static_cast<long long>(predicted.size()))
        .Int("threads", threads)
        .Raw("model", model_json);
    if (inline_labels) {
      std::string labels = "[";
      for (size_t i = 0; i < predicted.size(); ++i) {
        if (i > 0) labels += ",";
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%d", predicted[i]);
        labels += buf;
      }
      labels += "]";
      json.Raw("labels", labels);
    } else {
      json.Str("out", out_path);
    }
    std::printf("%s\n", json.Render().c_str());
    return 0;
  }
  if (!out_path.empty()) {
    std::printf("wrote %zu predictions to %s\n", data.tuples.size(),
                out_path.c_str());
  }
  return 0;
}

// The offline twin of the daemon's streaming path: parse a labeled chunk,
// run it through Session::Apply (validation, exact incremental maintenance,
// rollback on failure, persist on success) — the very code path boatd's
// Trainer drains.
int CmdApplyChunk(const Flags& flags) {
  const std::string model_dir = flags.Require("model");
  auto session = Session::Open(model_dir, flags.Get("selector", "gini"));
  Check(session.status());
  const Schema& schema = (*session)->schema();

  ChunkOp op;
  std::string chunk_path;
  if (flags.Has("insert")) {
    op = ChunkOp::kInsert;
    chunk_path = flags.Get("insert");
  } else if (flags.Has("delete")) {
    op = ChunkOp::kDelete;
    chunk_path = flags.Get("delete");
  } else {
    std::fprintf(stderr, "apply-chunk needs --insert FILE or --delete FILE\n");
    return 2;
  }
  LoadedData chunk = LoadData(chunk_path, &schema);

  Stopwatch watch;
  BoatStats stats;
  Check((*session)->Apply(op, chunk.tuples, &stats));
  const double seconds = watch.ElapsedSeconds();
  if (flags.Has("json")) {
    std::printf("%s\n",
                JsonObject()
                    .Str("command", "apply-chunk")
                    .Str("op", op == ChunkOp::kInsert ? "insert" : "delete")
                    .Double("seconds", seconds)
                    .Int("records", static_cast<long long>(chunk.tuples.size()))
                    .Raw("model", JsonTree((*session)->tree()))
                    .Raw("stats", JsonStats(stats))
                    .Str("model_dir", model_dir)
                    .Render()
                    .c_str());
    return 0;
  }
  std::printf("%s %zu records in %.2fs — %llu subtree(s) rebuilt%s\n",
              op == ChunkOp::kInsert ? "inserted" : "deleted",
              chunk.tuples.size(), seconds,
              static_cast<unsigned long long>(stats.subtree_rebuilds),
              stats.subtree_rebuilds > 0 ? " (distribution change detected)"
                                         : "");
  std::printf("model updated in place: %zu nodes, depth %d\n",
              (*session)->tree().num_nodes(), (*session)->tree().depth());
  return 0;
}

int CmdInspect(const Flags& flags) {
  auto session = Session::Open(flags.Require("model"),
                               flags.Get("selector", "gini"));
  Check(session.status());
  const DecisionTree& tree = (*session)->tree();
  if (flags.Has("dot")) {
    std::printf("%s", ExportDot(tree).c_str());
    return 0;
  }
  if (flags.Has("rules")) {
    std::printf("%s", ExportRules(tree).c_str());
    return 0;
  }
  const ModelShape shape = DescribeModel((*session)->engine().model_root());
  std::printf("tree: %zu nodes (%zu leaves), depth %d\n", tree.num_nodes(),
              tree.num_leaves(), tree.depth());
  std::printf("model: %lld verified internal nodes, %lld frontier nodes\n",
              static_cast<long long>(shape.internal_nodes),
              static_cast<long long>(shape.frontier_nodes));
  std::printf("%s", tree.ToString().c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: boatc <command> [flags]\n"
      "commands:\n"
      "  generate --out FILE [--function 1..10] [--rows N] [--noise P]\n"
      "           [--extra-attrs N] [--drift] [--seed S]\n"
      "  train    --data FILE --model DIR [--selector gini|entropy|quest]\n"
      "           [--sample N] [--bootstraps B] [--subsample N] [--inmem N]\n"
      "           [--threads T (0 = all cores; any T gives the same tree)]\n"
      "           [--max-depth D] [--stop-family N] [--no-updates]\n"
      "           [--emit-ensemble (also save <model>/ensemble)] [--json]\n"
      "  evaluate --model DIR --data FILE [--selector ...] [--threads T]\n"
      "           [--json]\n"
      "  classify --model DIR --data FILE [--out FILE] [--threads T]\n"
      "           [--ensemble (bagged vote over <model>/ensemble)] [--json]\n"
      "  apply-chunk --model DIR (--insert FILE | --delete FILE)\n"
      "           [--selector ...] [--json]   (alias: update, deprecated)\n"
      "  inspect  --model DIR [--rules] [--dot]\n"
      "Data files: .tbl (binary tables; Agrawal schema assumed for training)\n"
      "or .csv (schema inferred at training time). classify/evaluate also\n"
      "accept `--data -` to read CSV (with header) from stdin.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "classify") return CmdClassify(flags);
  if (command == "apply-chunk") return CmdApplyChunk(flags);
  if (command == "update") {
    std::fprintf(stderr,
                 "note: `boatc update` is deprecated; use `boatc "
                 "apply-chunk`\n");
    return CmdApplyChunk(flags);
  }
  if (command == "inspect") return CmdInspect(flags);
  return Usage();
}
