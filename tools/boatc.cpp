// boatc — command-line front end for the BOAT library.
//
//   boatc generate --function 6 --rows 200000 --noise 0.05 --out train.tbl
//   boatc train    --data train.tbl --model model/ [--selector gini]
//   boatc evaluate --model model/ --data test.tbl
//   boatc classify --model model/ --data new.tbl --out labels.csv
//   boatc update   --model model/ --insert chunk.tbl
//   boatc update   --model model/ --delete expired.tbl
//   boatc inspect  --model model/ [--rules] [--dot]
//
// Training data may also be a CSV file (schema inferred; see storage/csv.h);
// everything else uses the binary table format tied to the model's schema.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "boat/persistence.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "split/quest.h"
#include "storage/csv.h"
#include "tree/evaluation.h"
#include "tree/export.h"
#include "tree/serialize.h"

namespace {

using namespace boat;

// ------------------------------------------------------------- flag parsing

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // boolean flag
      }
    }
  }

  std::string Get(const std::string& name, const std::string& def = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(),
                                                    nullptr, 10);
  }
  double GetDouble(const std::string& name, double def) const {
    auto it = values_.find(name);
    return it == values_.end() ? def
                               : std::strtod(it->second.c_str(), nullptr);
  }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string Require(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::unique_ptr<SplitSelector> MakeSelector(const std::string& name) {
  if (name == "gini") return MakeGiniSelector();
  if (name == "entropy") return MakeEntropySelector();
  if (name == "quest") return std::make_unique<QuestSelector>();
  std::fprintf(stderr, "unknown selector '%s' (gini|entropy|quest)\n",
               name.c_str());
  std::exit(2);
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

bool IsCsv(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

// Loads training data from .tbl (schema must be recoverable from the file —
// here we require Agrawal schema unless CSV) or .csv (schema inferred).
struct LoadedData {
  Schema schema;
  std::vector<Tuple> tuples;
  ExportNames names;  // CSV dictionaries, when available
};

LoadedData LoadData(const std::string& path, const Schema* expected) {
  LoadedData out;
  if (IsCsv(path)) {
    auto dataset = LoadCsv(path);
    Check(dataset.status());
    out.schema = dataset->schema;
    out.tuples = std::move(dataset->tuples);
    out.names.categories = std::move(dataset->categories);
    out.names.classes = std::move(dataset->class_names);
    return out;
  }
  const Schema schema = expected != nullptr ? *expected : MakeAgrawalSchema();
  auto tuples = ReadTable(path, schema);
  Check(tuples.status());
  out.schema = schema;
  out.tuples = std::move(*tuples);
  return out;
}

// ----------------------------------------------------------------- commands

int CmdGenerate(const Flags& flags) {
  AgrawalConfig config;
  config.function = static_cast<int>(flags.GetInt("function", 1));
  config.noise = flags.GetDouble("noise", 0.0);
  config.extra_numeric_attrs =
      static_cast<int>(flags.GetInt("extra-attrs", 0));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (flags.Has("drift")) config.drift = Drift::kRelabelOldAge;
  const int64_t rows = flags.GetInt("rows", 100'000);
  const std::string out = flags.Require("out");
  if (IsCsv(out)) {
    const auto tuples =
        GenerateAgrawal(config, static_cast<uint64_t>(rows));
    Check(WriteCsv(out, MakeAgrawalSchema(config.extra_numeric_attrs),
                   tuples));
  } else {
    Check(GenerateAgrawalTable(config, static_cast<uint64_t>(rows), out));
  }
  std::printf("wrote %lld Agrawal F%d records (noise %.0f%%) to %s\n",
              static_cast<long long>(rows), config.function,
              100 * config.noise, out.c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  const std::string data_path = flags.Require("data");
  const std::string model_dir = flags.Require("model");
  auto selector = MakeSelector(flags.Get("selector", "gini"));

  LoadedData data = LoadData(data_path, nullptr);
  BoatOptions options;
  const int64_t n = static_cast<int64_t>(data.tuples.size());
  options.sample_size =
      static_cast<size_t>(flags.GetInt("sample", std::max<int64_t>(n / 10,
                                                                   1)));
  options.bootstrap_count = static_cast<int>(flags.GetInt("bootstraps", 20));
  options.bootstrap_subsample = static_cast<size_t>(
      flags.GetInt("subsample",
                   std::max<int64_t>(options.sample_size / 4, 1)));
  options.inmem_threshold = flags.GetInt("inmem", n / 20 + 1);
  options.limits.max_depth =
      static_cast<int>(flags.GetInt("max-depth", 64));
  options.limits.stop_family_size = flags.GetInt("stop-family", 0);
  options.enable_updates = !flags.Has("no-updates");
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));

  VectorSource source(data.schema, data.tuples);
  Stopwatch watch;
  BoatStats stats;
  auto classifier =
      BoatClassifier::Train(&source, selector.get(), options, &stats);
  Check(classifier.status());
  Check(SaveClassifier(**classifier, model_dir));
  std::printf(
      "trained on %lld records in %.2fs — tree: %zu nodes, depth %d; "
      "model saved to %s\n",
      static_cast<long long>(n), watch.ElapsedSeconds(),
      (*classifier)->tree().num_nodes(), (*classifier)->tree().depth(),
      model_dir.c_str());
  std::printf("  (selector %s, coarse nodes %llu, kills %llu, failed checks "
              "%llu)\n",
              selector->name().c_str(),
              static_cast<unsigned long long>(stats.coarse_nodes),
              static_cast<unsigned long long>(stats.bootstrap_kills),
              static_cast<unsigned long long>(stats.failed_checks));
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto selector = MakeSelector(flags.Get("selector", "gini"));
  auto classifier = LoadClassifier(flags.Require("model"), selector.get());
  Check(classifier.status());
  const Schema& schema = (*classifier)->tree().schema();
  LoadedData data = LoadData(flags.Require("data"), &schema);
  const ConfusionMatrix cm = Evaluate((*classifier)->tree(), data.tuples);
  std::printf("accuracy: %.2f%% over %lld records\n", 100 * cm.Accuracy(),
              static_cast<long long>(cm.total()));
  std::printf("%s", cm.ToString().c_str());
  return 0;
}

int CmdClassify(const Flags& flags) {
  auto selector = MakeSelector(flags.Get("selector", "gini"));
  auto classifier = LoadClassifier(flags.Require("model"), selector.get());
  Check(classifier.status());
  const Schema& schema = (*classifier)->tree().schema();
  LoadedData data = LoadData(flags.Require("data"), &schema);

  const std::string out_path = flags.Get("out");
  std::ofstream out;
  if (!out_path.empty()) out.open(out_path);
  std::ostream& sink = out_path.empty() ? std::cout : out;
  for (const Tuple& t : data.tuples) {
    sink << (*classifier)->tree().Classify(t) << "\n";
  }
  if (!out_path.empty()) {
    std::printf("wrote %zu predictions to %s\n", data.tuples.size(),
                out_path.c_str());
  }
  return 0;
}

int CmdUpdate(const Flags& flags) {
  auto selector = MakeSelector(flags.Get("selector", "gini"));
  const std::string model_dir = flags.Require("model");
  auto classifier = LoadClassifier(model_dir, selector.get());
  Check(classifier.status());
  const Schema& schema = (*classifier)->tree().schema();

  Stopwatch watch;
  BoatStats stats;
  if (flags.Has("insert")) {
    LoadedData chunk = LoadData(flags.Get("insert"), &schema);
    Check((*classifier)->InsertChunk(chunk.tuples, &stats));
    std::printf("inserted %zu records in %.2fs", chunk.tuples.size(),
                watch.ElapsedSeconds());
  } else if (flags.Has("delete")) {
    LoadedData chunk = LoadData(flags.Get("delete"), &schema);
    Check((*classifier)->DeleteChunk(chunk.tuples, &stats));
    std::printf("deleted %zu records in %.2fs", chunk.tuples.size(),
                watch.ElapsedSeconds());
  } else {
    std::fprintf(stderr, "update needs --insert FILE or --delete FILE\n");
    return 2;
  }
  std::printf(" — %llu subtree(s) rebuilt%s\n",
              static_cast<unsigned long long>(stats.subtree_rebuilds),
              stats.subtree_rebuilds > 0 ? " (distribution change detected)"
                                         : "");
  Check(SaveClassifier(**classifier, model_dir));
  std::printf("model updated in place: %zu nodes, depth %d\n",
              (*classifier)->tree().num_nodes(),
              (*classifier)->tree().depth());
  return 0;
}

int CmdInspect(const Flags& flags) {
  auto selector = MakeSelector(flags.Get("selector", "gini"));
  auto classifier = LoadClassifier(flags.Require("model"), selector.get());
  Check(classifier.status());
  const DecisionTree& tree = (*classifier)->tree();
  if (flags.Has("dot")) {
    std::printf("%s", ExportDot(tree).c_str());
    return 0;
  }
  if (flags.Has("rules")) {
    std::printf("%s", ExportRules(tree).c_str());
    return 0;
  }
  const ModelShape shape = DescribeModel((*classifier)->engine().model_root());
  std::printf("tree: %zu nodes (%zu leaves), depth %d\n", tree.num_nodes(),
              tree.num_leaves(), tree.depth());
  std::printf("model: %lld verified internal nodes, %lld frontier nodes\n",
              static_cast<long long>(shape.internal_nodes),
              static_cast<long long>(shape.frontier_nodes));
  std::printf("%s", tree.ToString().c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: boatc <command> [flags]\n"
      "commands:\n"
      "  generate --out FILE [--function 1..10] [--rows N] [--noise P]\n"
      "           [--extra-attrs N] [--drift] [--seed S]\n"
      "  train    --data FILE --model DIR [--selector gini|entropy|quest]\n"
      "           [--sample N] [--bootstraps B] [--subsample N] [--inmem N]\n"
      "           [--threads T (0 = all cores; any T gives the same tree)]\n"
      "           [--max-depth D] [--stop-family N] [--no-updates]\n"
      "  evaluate --model DIR --data FILE [--selector ...]\n"
      "  classify --model DIR --data FILE [--out FILE]\n"
      "  update   --model DIR (--insert FILE | --delete FILE)\n"
      "  inspect  --model DIR [--rules] [--dot]\n"
      "Data files: .tbl (binary tables; Agrawal schema assumed for training)\n"
      "or .csv (schema inferred at training time).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "classify") return CmdClassify(flags);
  if (command == "update") return CmdUpdate(flags);
  if (command == "inspect") return CmdInspect(flags);
  return Usage();
}
