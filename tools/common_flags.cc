#include "common_flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace boat::tools {

Flags::Flags(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    std::string value;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // boolean flag
    }
    values_[arg] = value;
    ordered_.emplace_back(std::move(arg), std::move(value));
  }
}

std::string Flags::Get(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string> Flags::GetAll(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [flag, value] : ordered_) {
    if (flag == name) out.push_back(value);
  }
  return out;
}

std::string Flags::Require(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
    std::exit(2);
  }
  return it->second;
}

BoatOptions DerivedBoatOptions(int64_t n) {
  BoatOptions options;
  options.sample_size = static_cast<size_t>(std::max<int64_t>(n / 10, 1));
  options.bootstrap_count = 20;
  options.bootstrap_subsample = static_cast<size_t>(
      std::max<int64_t>(static_cast<int64_t>(options.sample_size) / 4, 1));
  options.inmem_threshold = n / 20 + 1;
  return options;
}

Result<BoatOptions> CommonBoatOptions(const Flags& flags, int64_t n) {
  BoatOptions options = DerivedBoatOptions(n);
  options.sample_size = static_cast<size_t>(
      flags.GetInt("sample", static_cast<int64_t>(options.sample_size)));
  options.bootstrap_count =
      static_cast<int>(flags.GetInt("bootstraps", options.bootstrap_count));
  options.bootstrap_subsample = static_cast<size_t>(flags.GetInt(
      "subsample", std::max<int64_t>(
                       static_cast<int64_t>(options.sample_size) / 4, 1)));
  options.inmem_threshold = flags.GetInt("inmem", options.inmem_threshold);
  options.limits.max_depth =
      static_cast<int>(flags.GetInt("max-depth", options.limits.max_depth));
  options.limits.stop_family_size =
      flags.GetInt("stop-family", options.limits.stop_family_size);
  options.enable_updates = !flags.Has("no-updates");
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  BOAT_RETURN_NOT_OK(options.Validate());
  return options;
}

}  // namespace boat::tools
