// boat-loadgen — load generator and correctness checker for boatd.
//
//   boat-loadgen --port P --data corpus.csv [--expected labels.txt]
//                [--connections N] [--repeat R] [--window W] [--json]
//   boat-loadgen --port P --data corpus.csv --model a --model b
//                [--expected a=labels_a.txt] [--expected b=labels_b.txt] ...
//   boat-loadgen --port P --ingest chunk.csv [--op insert|delete]
//                [--retrain] [--model NAME]
//
// Scoring mode loads the CSV corpus, renders each record in the serving
// wire format (src/serve/wire.h — %.17g numerics, so the server parses
// back the exact same doubles), drives N concurrent pipelined connections,
// and checks every reply. --expected points at a label file as written by
// `boatc classify --out` (one integer per line, aligned with the corpus);
// any numeric reply that contradicts it counts as a mismatch and fails the
// run. Exit status: 0 iff every reply was a correct label.
//
// Fleet mode: each (repeatable) --model NAME routes the corpus to that
// named model with the wire v3 `@<NAME>` prefix, interleaved round-robin
// record by record across the models. Per-model expectations come from
// repeatable `--expected NAME=FILE` entries — each model's replies are
// checked against its own label file, which is how the CI fleet smoke job
// proves per-record routing byte-identical to offline classification. The
// report (text and --json) carries a per-model breakdown.
//
// Ingest mode streams one labeled chunk to the daemon as an INGEST or
// DELETE command (--op, default insert), optionally followed by a RETRAIN
// barrier, and exits 0 iff every reply was OK — the shell-scriptable face
// of the streaming-training protocol. --model NAME routes the chunk to the
// named model.
//
// --json prints one JSON object: {"command":"loadgen","connections":...,
// "repeat":..., "window":..., "sent":..., "ok":..., "mismatches":...,
// "busy":..., "errors":..., "seconds":..., "throughput_rps":...,
// "latency_p50_us":..., "latency_p99_us":...} plus, in fleet mode,
// "models":{"<name>":{"sent":...,"ok":...,"mismatches":...,"busy":...,
// "errors":...,"throughput_rps":...,"latency_p50_us":...,
// "latency_p99_us":...},...}.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common_flags.h"
#include "serve/loadgen.h"
#include "serve/wire.h"
#include "storage/csv.h"

namespace {

using namespace boat;
using namespace boat::serve;
using boat::tools::Flags;

// Streams --ingest FILE as one chunk; every reply must be OK.
int RunIngest(const Flags& flags, int port) {
  const std::string op_name = flags.Get("op", "insert");
  ChunkOp op;
  if (op_name == "insert") {
    op = ChunkOp::kInsert;
  } else if (op_name == "delete") {
    op = ChunkOp::kDelete;
  } else {
    std::fprintf(stderr, "boat-loadgen: --op must be insert or delete\n");
    return 2;
  }
  auto dataset = LoadCsv(flags.Get("ingest"));
  if (!dataset.ok()) {
    std::fprintf(stderr, "boat-loadgen: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> lines =
      FormatLabeledRecordLines(dataset->schema, dataset->tuples);
  auto replies =
      SendChunk(port, op, lines, flags.Has("retrain"), flags.Get("model"));
  if (!replies.ok()) {
    std::fprintf(stderr, "boat-loadgen: %s\n",
                 replies.status().ToString().c_str());
    return 1;
  }
  bool clean = true;
  for (const Reply& reply : *replies) {
    std::printf("%s\n", FormatReply(reply).c_str());
    if (reply.kind != Reply::Kind::kOk) clean = false;
  }
  return clean ? 0 : 1;
}

/// Loads one `boatc classify --out` label file (one integer per line).
bool LoadExpected(const std::string& path, size_t want,
                  std::vector<int32_t>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "boat-loadgen: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out->push_back(
        static_cast<int32_t>(std::strtol(line.c_str(), nullptr, 10)));
  }
  if (out->size() != want) {
    std::fprintf(stderr,
                 "boat-loadgen: %zu expected labels for %zu records in %s\n",
                 out->size(), want, path.c_str());
    return false;
  }
  return true;
}

void PrintModelJson(const ModelLoadGenStats& m, bool first) {
  std::printf(
      "%s\"%s\":{\"sent\":%llu,\"ok\":%llu,\"mismatches\":%llu,"
      "\"busy\":%llu,\"errors\":%llu,\"throughput_rps\":%.1f,"
      "\"latency_p50_us\":%llu,\"latency_p99_us\":%llu}",
      first ? "" : ",", m.model_id.c_str(),
      static_cast<unsigned long long>(m.sent),
      static_cast<unsigned long long>(m.ok),
      static_cast<unsigned long long>(m.mismatches),
      static_cast<unsigned long long>(m.busy),
      static_cast<unsigned long long>(m.errors), m.throughput_rps,
      static_cast<unsigned long long>(m.latency_p50_us),
      static_cast<unsigned long long>(m.latency_p99_us));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "boat-loadgen: --port is required\n");
    return 2;
  }
  if (flags.Has("ingest")) return RunIngest(flags, port);
  const std::string data_path = flags.Require("data");

  auto dataset = LoadCsv(data_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "boat-loadgen: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> lines =
      FormatRecordLines(dataset->schema, dataset->tuples);

  const std::vector<std::string> model_ids = flags.GetAll("model");
  const std::vector<std::string> expected_flags = flags.GetAll("expected");

  // Per-model label files (`NAME=FILE`); a bare FILE is the single-model
  // form and belongs to the default model ("").
  std::map<std::string, std::vector<int32_t>> expected_by_model;
  for (const std::string& spec : expected_flags) {
    const size_t eq = spec.find('=');
    const std::string id = eq == std::string::npos ? "" : spec.substr(0, eq);
    const std::string path =
        eq == std::string::npos ? spec : spec.substr(eq + 1);
    std::vector<int32_t>& labels = expected_by_model[id];
    labels.clear();
    if (!LoadExpected(path, lines.size(), &labels)) return 1;
  }

  LoadGenOptions options;
  options.port = port;
  options.connections = static_cast<int>(flags.GetInt("connections", 1));
  options.repeat = static_cast<int>(flags.GetInt("repeat", 1));
  options.window = static_cast<int>(flags.GetInt("window", 256));

  Result<LoadGenReport> report = [&]() -> Result<LoadGenReport> {
    if (model_ids.empty()) {
      const auto it = expected_by_model.find("");
      return RunLoadGen(
          options, lines,
          it == expected_by_model.end() ? nullptr : &it->second);
    }
    std::vector<RoutedModelCorpus> models;
    models.reserve(model_ids.size());
    for (const std::string& id : model_ids) {
      RoutedModelCorpus corpus;
      corpus.model_id = id;
      corpus.record_lines = lines;
      const auto it = expected_by_model.find(id);
      if (it != expected_by_model.end()) corpus.expected_labels = &it->second;
      models.push_back(std::move(corpus));
    }
    return RunRoutedLoadGen(options, models);
  }();
  if (!report.ok()) {
    std::fprintf(stderr, "boat-loadgen: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  if (flags.Has("json")) {
    std::printf(
        "{\"command\":\"loadgen\",\"connections\":%d,\"repeat\":%d,"
        "\"window\":%d,\"sent\":%llu,\"ok\":%llu,\"mismatches\":%llu,"
        "\"busy\":%llu,\"errors\":%llu,\"seconds\":%.6f,"
        "\"throughput_rps\":%.1f,\"latency_p50_us\":%llu,"
        "\"latency_p99_us\":%llu",
        options.connections, options.repeat, options.window,
        static_cast<unsigned long long>(report->sent),
        static_cast<unsigned long long>(report->ok),
        static_cast<unsigned long long>(report->mismatches),
        static_cast<unsigned long long>(report->busy),
        static_cast<unsigned long long>(report->errors),
        report->wall_seconds, report->throughput_rps,
        static_cast<unsigned long long>(report->latency_p50_us),
        static_cast<unsigned long long>(report->latency_p99_us));
    if (!report->per_model.empty()) {
      std::printf(",\"models\":{");
      bool first = true;
      for (const ModelLoadGenStats& m : report->per_model) {
        PrintModelJson(m, first);
        first = false;
      }
      std::printf("}");
    }
    std::printf("}\n");
  } else {
    std::printf(
        "%llu requests over %d connection(s) in %.3fs — %.0f req/s, "
        "p50 %lluus, p99 %lluus\n",
        static_cast<unsigned long long>(report->sent), options.connections,
        report->wall_seconds, report->throughput_rps,
        static_cast<unsigned long long>(report->latency_p50_us),
        static_cast<unsigned long long>(report->latency_p99_us));
    std::printf("ok %llu, mismatches %llu, busy %llu, errors %llu\n",
                static_cast<unsigned long long>(report->ok),
                static_cast<unsigned long long>(report->mismatches),
                static_cast<unsigned long long>(report->busy),
                static_cast<unsigned long long>(report->errors));
    for (const ModelLoadGenStats& m : report->per_model) {
      std::printf(
          "  model %-16s sent %llu ok %llu mismatches %llu busy %llu "
          "errors %llu — %.0f req/s, p50 %lluus, p99 %lluus\n",
          m.model_id.c_str(), static_cast<unsigned long long>(m.sent),
          static_cast<unsigned long long>(m.ok),
          static_cast<unsigned long long>(m.mismatches),
          static_cast<unsigned long long>(m.busy),
          static_cast<unsigned long long>(m.errors), m.throughput_rps,
          static_cast<unsigned long long>(m.latency_p50_us),
          static_cast<unsigned long long>(m.latency_p99_us));
    }
  }
  const bool clean = report->mismatches == 0 && report->errors == 0 &&
                     report->busy == 0 &&
                     report->ok == report->sent;
  return clean ? 0 : 1;
}
