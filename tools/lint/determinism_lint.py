#!/usr/bin/env python3
"""Determinism lint for the BOAT builder code.

BOAT's exactness guarantee (PAPER.md §3) requires the optimistic tree to be
bit-identical to the traditionally built one, for any thread count. Every
source of nondeterminism inside the growth/split/cleanup paths breaks that
guarantee silently, so this lint bans them statically in the library
directories LINTED_DIRS (src/tree/, src/split/, src/boat/, src/serve/):

  * rand(), srand()                — C RNG with global hidden state
  * std::random_device             — hardware entropy, different every run
  * time()-seeded generators       — seeds change between runs
  * std::mt19937 / std::default_random_engine / <random> distributions —
    their outputs are not specified bit-exactly across standard libraries
  * iteration over std::unordered_map / std::unordered_set — iteration order
    is unspecified and varies across libstdc++/libc++ and across reserve
    patterns, so any tree decision derived from it is nondeterministic
  * Rng constructed from a literal or ad-hoc seed in library code — every
    library Rng must be derived via Rng::Split(stream_id) from the caller's
    seeded generator, so streams are stable regardless of thread interleaving
  * wall-clock reads (::now(), gettimeofday, clock_gettime, Stopwatch) —
    scoring and tree decisions must not depend on time; the serving code
    (src/serve/) may read clocks for latency measurement only, and each such
    site must be allowlisted with a justification
  * raw thread primitives (std::thread/jthread/async) in the growth dirs
    (src/tree/, src/split/, src/boat/ — not src/serve/, whose threads are
    the serving runtime): parallel growth must go through the deterministic
    ParallelFor/ParallelForStatic shapes in common/parallel.h; any raw
    thread needs an allow() arguing its merge order cannot reach the tree
  * raw synchronization primitives (std::mutex / std::condition_variable /
    std::lock_guard / std::unique_lock / ...) anywhere under src/ or
    tools/ except src/common/sync.h — the annotated boat::Mutex /
    MutexLock / CondVar wrappers are the only legal primitives, because
    they carry the Clang thread-safety capability attributes the CI gate
    checks; a naked std::mutex is invisible to the analysis

A site that is provably safe can be allowlisted inline with a justification:

    foo();  // determinism-lint: allow(<why this is deterministic/safe>)

The comment may also sit on the line directly above. An empty justification
is itself a lint error. Exit status: 0 clean, 1 findings, 2 usage error.

Run directly (`python3 tools/lint/determinism_lint.py [repo_root]`), via
ctest (`ctest -R determinism_lint`), or in CI (job `lint`).
"""

import os
import re
import sys

# Directories whose code feeds tree construction and must be deterministic.
# src/serve is included because its scoring path must be a pure function of
# the model and the request bytes: wall-clock reads there are only legal for
# latency measurement and must be allowlisted explicitly (rule wall-clock).
LINTED_DIRS = ("src/tree", "src/split", "src/boat", "src/serve")

ALLOW_RE = re.compile(r"//\s*determinism-lint:\s*allow\((?P<why>[^)]*)\)")

# (name, regex, message) applied per physical line after comment stripping.
LINE_RULES = [
    (
        "c-rand",
        re.compile(r"(?<![\w:.])(?:std::)?rand\s*\(\s*\)"),
        "rand() uses hidden global state; use a Split-derived boat::Rng",
    ),
    (
        "c-srand",
        re.compile(r"(?<![\w:.])(?:std::)?srand\s*\("),
        "srand() seeds hidden global state; use a Split-derived boat::Rng",
    ),
    (
        "random-device",
        re.compile(r"\brandom_device\b"),
        "std::random_device yields different bits every run",
    ),
    (
        "time-seed",
        re.compile(r"\b(?:Rng|mt19937(?:_64)?|default_random_engine|seed_seq"
                   r"|srand)\s*[({][^)}]*\btime\s*\("),
        "time()-seeded generators change between runs",
    ),
    (
        "std-engine",
        re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|ranlux\w+"
                   r"|knuth_b|default_random_engine|uniform_int_distribution"
                   r"|uniform_real_distribution|normal_distribution"
                   r"|bernoulli_distribution|discrete_distribution)\b"),
        "std <random> engines/distributions are not bit-stable across "
        "standard libraries; use boat::Rng",
    ),
    (
        # Environment reads let ambient shell state steer library behavior.
        # Output-invariant toggles (kernel/engine selection where every
        # choice is byte-identical, debug checking, temp paths) are the only
        # legitimate uses, and each site must say so in an allow().
        "env-read",
        re.compile(r"\b(?:secure_)?getenv\s*\("),
        "environment read in linted code; tree construction and scoring "
        "must not depend on ambient env vars (allow() it only for "
        "output-invariant toggles, with the invariance argument)",
    ),
    (
        # Wall-clock reads make any decision derived from them (batch
        # boundaries, predictions, split choices) time-dependent. Latency
        # measurement is the one legitimate use and must carry an explicit
        # allow() justification. Matches clock *calls* (::now(), C APIs,
        # Stopwatch) rather than type mentions such as
        # steady_clock::time_point, which are harmless.
        "wall-clock",
        re.compile(r"::now\s*\(|\bgettimeofday\s*\(|\bclock_gettime\s*\("
                   r"|\bStopwatch\b"),
        "wall-clock read in linted code; results must not depend on time "
        "(allow() it only for latency/throughput measurement)",
    ),
]

# Directories whose parallelism must flow through common/parallel.h. The
# ParallelFor/ParallelForStatic helpers have deterministic work shapes
# (atomic-ticket or contiguous static stripes over disjoint output), which
# is what makes "any thread count, byte-identical tree" provable one loop
# at a time. A raw std::thread in growth code has no such structure, so
# each one must carry an allow() stating why its merge order cannot reach
# the tree. src/serve is exempt: its threads are the serving runtime
# (accept/scoring/apply loops), not tree construction.
GROWTH_DIRS = ("src/tree", "src/split", "src/boat")

GROWTH_LINE_RULES = [
    (
        "raw-thread",
        re.compile(r"\bstd::(?:thread|jthread|async)\b"),
        "raw thread primitive in growth code; use ParallelFor/"
        "ParallelForStatic (common/parallel.h) whose work shapes are "
        "deterministic, or allow() with the argument for why the merge "
        "order cannot affect the tree",
    ),
]

# Applied to every C++ file under SYNC_LINTED_ROOTS except SYNC_EXEMPT.
# The annotated wrappers in common/sync.h are the only sync primitives the
# Clang thread-safety gate can see; a naked std::mutex silently opts its
# critical sections out of the compile-time checking.
SYNC_LINTED_ROOTS = ("src", "tools")
SYNC_EXEMPT = ("src/common/sync.h",)

RAW_SYNC_RULES = [
    (
        "raw-sync",
        re.compile(r"\bstd::(?:mutex|timed_mutex|recursive_mutex"
                   r"|recursive_timed_mutex|shared_mutex|shared_timed_mutex"
                   r"|condition_variable(?:_any)?|lock_guard|unique_lock"
                   r"|scoped_lock|shared_lock)\b"),
        "raw std sync primitive; use boat::Mutex/MutexLock/CondVar "
        "(common/sync.h) so the Clang thread-safety gate can check the "
        "locking contract, or allow() with the reason the annotated "
        "wrappers cannot express this site",
    ),
]


def strip_comments_and_strings(line, in_block_comment):
    """Returns (code-only text, new in_block_comment).

    Blanks out string/char literals and comments so the rules only see code.
    Column counts are preserved (replaced with spaces).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if in_block_comment:
            if line.startswith("*/", i):
                in_block_comment = False
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
        elif line.startswith("//", i):
            out.append(" " * (n - i))
            break
        elif line.startswith("/*", i):
            in_block_comment = True
            out.append("  ")
            i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                elif line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                else:
                    out.append(" ")
                    i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out), in_block_comment


UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;=()]*>\s*&?\s*"
    r"(?P<name>\w+)\s*[;({=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*&?\s*(?P<expr>[\w.\->]+)\s*\)")
# Iteration requires begin(); a bare end() comparison (the find() idiom) is a
# deterministic point lookup and is not flagged.
BEGIN_CALL_RE = re.compile(r"\b(?P<name>\w+)\s*\.\s*c?begin\s*\(")
RNG_CONSTRUCT_RE = re.compile(
    r"\bRng\s+\w+\s*[({]|\bRng\s*[({]|=\s*Rng\s*[({]"
)


def lint_file(path, rel, rules, structural=True):
    findings = []
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.readlines()
    except OSError as e:
        return [(rel, 0, "io", f"cannot read file: {e}")]

    # First pass: names declared as unordered containers in this file.
    unordered_names = set()
    in_block = False
    code_lines = []
    for raw in raw_lines:
        code, in_block = strip_comments_and_strings(raw.rstrip("\n"), in_block)
        code_lines.append(code)
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group("name"))

    def allowed(idx):
        """True if line idx (0-based) carries or follows an allow comment."""
        for j in (idx, idx - 1):
            if 0 <= j < len(raw_lines):
                m = ALLOW_RE.search(raw_lines[j])
                if m:
                    if not m.group("why").strip():
                        findings.append(
                            (rel, j + 1, "empty-allow",
                             "determinism-lint: allow() needs a justification")
                        )
                        return False
                    return True
        return False

    for idx, code in enumerate(code_lines):
        lineno = idx + 1
        for name, rule_re, msg in rules:
            if rule_re.search(code) and not allowed(idx):
                findings.append((rel, lineno, name, msg))

        # The structural checks (unordered-container iteration, Rng seed
        # provenance) only make sense inside the determinism-linted dirs.
        if not structural:
            continue

        # Iteration over unordered containers: range-for or explicit
        # begin()/end() on a name declared unordered in this file.
        target = None
        m = RANGE_FOR_RE.search(code)
        if m:
            target = m.group("expr").split(".")[-1].split(">")[-1]
        else:
            m2 = BEGIN_CALL_RE.search(code)
            if m2:
                target = m2.group("name")
        if target and target in unordered_names and not allowed(idx):
            findings.append(
                (rel, lineno, "unordered-iteration",
                 f"iteration over unordered container '{target}' has "
                 "unspecified order; use a sorted/indexed container or "
                 "sort the keys first")
            )

        # Rng construction in library code must come from Rng::Split (or be
        # an allowlisted site). Copies/moves/references and Split() results
        # are fine; what we ban is minting a fresh stream from an ad-hoc
        # seed inside the builder.
        if RNG_CONSTRUCT_RE.search(code) and ".Split(" not in code \
                and "Rng&" not in code and "Rng(const" not in code:
            if not allowed(idx):
                findings.append(
                    (rel, lineno, "rng-seed",
                     "Rng constructed from an ad-hoc seed in library code; "
                     "derive it with Rng::Split(stream_id) from the "
                     "caller's generator")
                )

    return findings


def main(argv):
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"determinism_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    checked = 0
    for d in LINTED_DIRS:
        full = os.path.join(root, d)
        if not os.path.isdir(full):
            print(f"determinism_lint: missing directory {d}", file=sys.stderr)
            return 2
        for dirpath, _, files in os.walk(full):
            for fn in sorted(files):
                if not fn.endswith((".h", ".cc", ".cpp")):
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, root)
                rules = list(LINE_RULES) + list(RAW_SYNC_RULES)
                if d in GROWTH_DIRS:
                    rules += list(GROWTH_LINE_RULES)
                findings.extend(lint_file(path, rel, rules))
                checked += 1

    # Raw-sync sweep over everything else under src/ and tools/ (the
    # LINTED_DIRS files were already checked above with the full rule set).
    linted_prefixes = tuple(d + os.sep for d in LINTED_DIRS)
    for top in SYNC_LINTED_ROOTS:
        full = os.path.join(root, top)
        if not os.path.isdir(full):
            continue
        for dirpath, _, files in os.walk(full):
            for fn in sorted(files):
                if not fn.endswith((".h", ".cc", ".cpp")):
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, root)
                if rel in SYNC_EXEMPT or rel.startswith(linted_prefixes):
                    continue
                findings.extend(
                    lint_file(path, rel, RAW_SYNC_RULES, structural=False))
                checked += 1

    for rel, lineno, rule, msg in sorted(findings):
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s) in {checked} "
              "file(s)", file=sys.stderr)
        return 1
    print(f"determinism_lint: OK ({checked} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
