#!/usr/bin/env python3
"""Layering lint: enforces the module DAG of the BOAT codebase.

The repo is layered (DESIGN.md §11):

    common -> storage -> {split, datagen} -> tree -> rainforest -> boat
                                                                -> serve
    tools / tests / bench may depend on anything.

A module may include headers only from itself and from layers strictly
below it. The lint walks every C++ source under src/ and tools/, resolves
each quoted #include to a module, and fails on any edge not in the
allowlist below. System includes (<...>) are exempt; so are includes of
third-party or generated headers (none exist today — add them here if
that changes).

Module resolution:
  * `#include "mod/header.h"` -> module `mod` (must be a known module);
  * `#include "boat.h"` -> the umbrella header, owned by the `boat` layer;
  * a bare `#include "header.h"` resolves to the includer's own directory
    (the only such includes today are tools/common_flags.h siblings).

Run directly (exit 0/1) or via ctest / CI:
    python3 tools/lint/layering_lint.py [repo_root]
"""

import pathlib
import re
import sys

# module -> modules it may include (itself always allowed).
# This is the DAG, not the current include graph: an edge being absent
# today is not enough, it must also be architecturally legal.
ALLOWED = {
    "common": set(),
    "storage": {"common"},
    "split": {"common", "storage"},
    "datagen": {"common", "storage"},
    "tree": {"common", "storage", "split"},
    "rainforest": {"common", "storage", "split", "tree"},
    "boat": {"common", "storage", "split", "datagen", "tree", "rainforest"},
    "serve": {"common", "storage", "split", "datagen", "tree", "rainforest",
              "boat"},
}

# Directories whose sources are linted but may include any module.
UNRESTRICTED = ("tools", "tests", "bench")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

SOURCE_GLOBS = ("*.h", "*.hpp", "*.cc", "*.cpp")


def module_of_file(path: pathlib.Path, repo: pathlib.Path) -> str | None:
    """The layering module owning `path`, or None if unrestricted/unknown."""
    rel = path.relative_to(repo)
    top = rel.parts[0]
    if top in UNRESTRICTED:
        return None
    if top != "src":
        return None
    if len(rel.parts) == 2:  # src/boat.h umbrella shim
        return "boat"
    return rel.parts[1]


def module_of_include(target: str, includer_module: str | None) -> str | None:
    """The module an include target belongs to, or None if unresolvable."""
    if target == "boat.h":  # umbrella header at src/boat.h
        return "boat"
    if "/" in target:
        head = target.split("/", 1)[0]
        return head if head in ALLOWED else None
    # Bare include: same-directory sibling of the includer.
    return includer_module


def lint(repo: pathlib.Path) -> list[str]:
    errors = []
    roots = [repo / "src"] + [repo / d for d in UNRESTRICTED]
    for root in roots:
        if not root.is_dir():
            continue
        for pattern in SOURCE_GLOBS:
            for path in sorted(root.rglob(pattern)):
                mod = module_of_file(path, repo)
                if mod is not None and mod not in ALLOWED:
                    errors.append(f"{path.relative_to(repo)}: unknown module "
                                  f"'{mod}' — add it to the DAG in "
                                  "tools/lint/layering_lint.py")
                    continue
                for lineno, line in enumerate(
                        path.read_text(encoding="utf-8").splitlines(), 1):
                    m = INCLUDE_RE.match(line)
                    if not m:
                        continue
                    dep = module_of_include(m.group(1), mod)
                    if dep is None or mod is None or dep == mod:
                        continue
                    if dep not in ALLOWED[mod]:
                        errors.append(
                            f"{path.relative_to(repo)}:{lineno}: layering "
                            f"violation: module '{mod}' may not include "
                            f"'{m.group(1)}' (module '{dep}'); allowed: "
                            f"{{{', '.join(sorted(ALLOWED[mod])) or 'none'}}}")
    return errors


def main() -> int:
    repo = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    if not (repo / "src").is_dir():
        print(f"layering_lint: no src/ under {repo}", file=sys.stderr)
        return 2
    errors = lint(repo)
    for e in errors:
        print(e)
    if errors:
        print(f"layering_lint: {len(errors)} violation(s)")
        return 1
    print("layering_lint: module DAG clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
