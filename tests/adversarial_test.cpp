// Adversarial and degenerate-input tests: distributions crafted to stress
// the verification machinery (flat impurity landscapes, exact ties, point
// masses, huge categorical domains, duplicate-only data) while always
// demanding the exact-tree guarantee.

#include <gtest/gtest.h>

#include "boat/builder.h"
#include "rainforest/rainforest.h"
#include "split/quest.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

BoatOptions TinyBoat(uint64_t seed = 5) {
  BoatOptions options;
  options.sample_size = 500;
  options.bootstrap_count = 8;
  options.bootstrap_subsample = 250;
  options.inmem_threshold = 200;
  options.store_memory_budget = 128;  // force spilling
  options.seed = seed;
  return options;
}

void ExpectAllAlgorithmsAgree(const Schema& schema,
                              const std::vector<Tuple>& data,
                              const SplitSelector& selector,
                              const GrowthLimits& limits,
                              uint64_t seed = 5) {
  DecisionTree reference = BuildTreeInMemory(schema, data, selector, limits);
  {
    RainForestOptions rf;
    rf.limits = limits;
    rf.avc_buffer_entries = 1500;
    rf.inmem_threshold = 100;
    VectorSource source(schema, data);
    auto tree = BuildTreeRFHybrid(&source, selector, rf);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(tree->StructurallyEqual(reference)) << "RF-Hybrid";
  }
  {
    RainForestOptions rf;
    rf.limits = limits;
    rf.avc_buffer_entries = 1500;
    rf.inmem_threshold = 100;
    VectorSource source(schema, data);
    auto tree = BuildTreeRFVertical(&source, selector, rf);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(tree->StructurallyEqual(reference)) << "RF-Vertical";
  }
  {
    BoatOptions options = TinyBoat(seed);
    options.limits = limits;
    VectorSource source(schema, data);
    auto tree = BuildTreeBoat(&source, selector, options);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(tree->StructurallyEqual(reference))
        << "BOAT\nref:\n"
        << reference.ToString() << "\ngot:\n"
        << tree->ToString();
  }
}

TEST(AdversarialTest, TwoEqualImpurityMinima) {
  // The paper's Figure 12 scenario: near-equal minima at 20 and 60 make the
  // bootstrap trees disagree; the guarantee must hold regardless.
  Schema schema({Attribute::Numerical("x")}, 2);
  Rng rng(17);
  std::vector<Tuple> data;
  for (int i = 0; i < 4000; ++i) {
    const double v = static_cast<double>(rng.UniformInt(0, 80));
    int32_t label;
    if (v <= 20) {
      label = rng.Bernoulli(0.9) ? 0 : 1;
    } else if (v <= 60) {
      label = static_cast<int32_t>(i % 2);
    } else {
      label = rng.Bernoulli(0.9) ? 1 : 0;
    }
    data.push_back(Tuple({v}, label));
  }
  GrowthLimits limits;
  limits.max_depth = 10;
  auto selector = MakeGiniSelector();
  ExpectAllAlgorithmsAgree(schema, data, *selector, limits);
}

TEST(AdversarialTest, PureNoiseLabels) {
  // Zero signal: the landscape is entirely flat; every split is a tie-break
  // decision. The conservative checks may rebuild a lot, but the output must
  // match exactly.
  Schema schema({Attribute::Numerical("a"), Attribute::Numerical("b"),
                 Attribute::Categorical("c", 6)},
                2);
  Rng rng(23);
  std::vector<Tuple> data;
  for (int i = 0; i < 3000; ++i) {
    data.push_back(Tuple({static_cast<double>(rng.UniformInt(0, 30)),
                          static_cast<double>(rng.UniformInt(0, 30)),
                          static_cast<double>(rng.UniformInt(0, 5))},
                         static_cast<int32_t>(rng.UniformInt(0, 1))));
  }
  GrowthLimits limits;
  limits.max_depth = 8;  // keep the noise tree bounded
  auto selector = MakeGiniSelector();
  ExpectAllAlgorithmsAgree(schema, data, *selector, limits);
}

TEST(AdversarialTest, ConstantAttributeInSubfamilies) {
  // Mimics the Agrawal commission attribute: constant within one branch.
  // The bound machinery must not fire spuriously on the point mass.
  Schema schema({Attribute::Numerical("salary"), Attribute::Numerical("bonus")},
                2);
  Rng rng(29);
  std::vector<Tuple> data;
  for (int i = 0; i < 4000; ++i) {
    const double salary = static_cast<double>(rng.UniformInt(0, 100));
    const double bonus =
        salary >= 50 ? 0.0 : static_cast<double>(rng.UniformInt(10, 60));
    const int32_t label = (salary >= 50) ? (rng.Bernoulli(0.8) ? 1 : 0)
                                         : (bonus > 35 ? 1 : 0);
    data.push_back(Tuple({salary, bonus}, label));
  }
  GrowthLimits limits;
  limits.max_depth = 12;
  auto selector = MakeGiniSelector();
  ExpectAllAlgorithmsAgree(schema, data, *selector, limits);
}

TEST(AdversarialTest, AllTuplesIdentical) {
  Schema schema({Attribute::Numerical("x"), Attribute::Categorical("c", 3)},
                2);
  std::vector<Tuple> data(1000, Tuple({7.0, 1.0}, 0));
  data.resize(1500, Tuple({7.0, 1.0}, 1));  // same values, mixed labels
  GrowthLimits limits;
  auto selector = MakeGiniSelector();
  ExpectAllAlgorithmsAgree(schema, data, *selector, limits);
}

TEST(AdversarialTest, SingleDistinctValuePerClass) {
  Schema schema({Attribute::Numerical("x")}, 3);
  std::vector<Tuple> data;
  for (int i = 0; i < 900; ++i) {
    const int32_t label = i % 3;
    data.push_back(Tuple({static_cast<double>(label * 10)}, label));
  }
  GrowthLimits limits;
  auto selector = MakeGiniSelector();
  ExpectAllAlgorithmsAgree(schema, data, *selector, limits);
}

TEST(AdversarialTest, LargeCategoricalDomainGreedyPath) {
  // 24 populated categories with 3 classes: beyond the exhaustive limit, so
  // the greedy subset search runs — all algorithms share it, so agreement
  // must hold.
  Schema schema({Attribute::Categorical("c", 24), Attribute::Numerical("x")},
                3);
  Rng rng(31);
  std::vector<Tuple> data;
  for (int i = 0; i < 4000; ++i) {
    const int32_t cat = static_cast<int32_t>(rng.UniformInt(0, 23));
    const double x = static_cast<double>(rng.UniformInt(0, 50));
    const int32_t label = (cat % 3 + (x > 25 ? 1 : 0)) % 3;
    data.push_back(Tuple({static_cast<double>(cat), x}, label));
  }
  GrowthLimits limits;
  limits.max_depth = 8;
  auto selector = MakeGiniSelector();
  ExpectAllAlgorithmsAgree(schema, data, *selector, limits);
}

TEST(AdversarialTest, HeavyTailDuplicates) {
  // 90% of tuples carry one attribute value; the rest spread thinly.
  Schema schema({Attribute::Numerical("x"), Attribute::Numerical("y")}, 2);
  Rng rng(37);
  std::vector<Tuple> data;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Bernoulli(0.9)
                         ? 42.0
                         : static_cast<double>(rng.UniformInt(0, 100));
    const double y = static_cast<double>(rng.UniformInt(0, 100));
    data.push_back(Tuple({x, y}, (x > 42.0) != (y > 50) ? 1 : 0));
  }
  GrowthLimits limits;
  limits.max_depth = 12;
  auto selector = MakeGiniSelector();
  ExpectAllAlgorithmsAgree(schema, data, *selector, limits);
}

TEST(AdversarialTest, QuestOnFlatData) {
  Schema schema({Attribute::Numerical("a"), Attribute::Categorical("c", 4)},
                2);
  Rng rng(41);
  std::vector<Tuple> data;
  for (int i = 0; i < 3000; ++i) {
    data.push_back(Tuple({static_cast<double>(rng.UniformInt(0, 20)),
                          static_cast<double>(rng.UniformInt(0, 3))},
                         static_cast<int32_t>(rng.UniformInt(0, 1))));
  }
  GrowthLimits limits;
  limits.max_depth = 6;
  QuestSelector selector;
  ExpectAllAlgorithmsAgree(schema, data, selector, limits);
}

TEST(AdversarialTest, DeleteEverythingThenRefill) {
  Schema schema({Attribute::Numerical("x"), Attribute::Numerical("y")}, 2);
  Rng rng(43);
  auto draw = [&rng](int n) {
    std::vector<Tuple> out;
    for (int i = 0; i < n; ++i) {
      const double x = static_cast<double>(rng.UniformInt(0, 60));
      const double y = static_cast<double>(rng.UniformInt(0, 60));
      out.push_back(Tuple({x, y}, x + y > 60 ? 1 : 0));
    }
    return out;
  };
  std::vector<Tuple> base = draw(2000);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 10;
  BoatOptions options = TinyBoat();
  options.limits = limits;
  options.enable_updates = true;

  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());

  // Delete the entire original database...
  ASSERT_TRUE((*classifier)->DeleteChunk(base).ok());
  DecisionTree empty_ref = BuildTreeInMemory(schema, {}, *selector, limits);
  EXPECT_TRUE((*classifier)->tree().StructurallyEqual(empty_ref));

  // ...then refill with different data; exactness must survive.
  std::vector<Tuple> fresh = draw(2500);
  ASSERT_TRUE((*classifier)->InsertChunk(fresh).ok());
  DecisionTree fresh_ref = BuildTreeInMemory(schema, fresh, *selector, limits);
  EXPECT_TRUE((*classifier)->tree().StructurallyEqual(fresh_ref));
}

TEST(AdversarialTest, DeletingAbsentTupleFails) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> base = {Tuple({1.0}, 0), Tuple({2.0}, 1),
                             Tuple({3.0}, 0), Tuple({4.0}, 1)};
  auto selector = MakeGiniSelector();
  BoatOptions options = TinyBoat();
  options.enable_updates = true;
  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());
  EXPECT_FALSE((*classifier)->DeleteChunk({Tuple({99.0}, 0)}).ok());
}

}  // namespace
}  // namespace boat
