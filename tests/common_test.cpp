// Unit tests for src/common: Status/Result, Rng, IoStats, string utilities.

#include <gtest/gtest.h>

#include <set>

#include "common/io_stats.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace boat {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    BOAT_RETURN_NOT_OK(Status::InvalidArgument("bad"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInvalidArgument);

  auto succeeds = []() -> Status {
    BOAT_RETURN_NOT_OK(Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(succeeds().ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto outer = [&inner](bool fail) -> Result<int> {
    BOAT_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all values hit over 1000 draws
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformDoubleStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng base(42);
  Rng child1 = base.Split(1);
  Rng child2 = base.Split(2);
  EXPECT_NE(child1.Next(), child2.Next());
  // Splitting is deterministic: same parent state + id => same child.
  Rng base2(42);
  Rng child1_again = base2.Split(1);
  Rng check1(42);
  Rng expected = check1.Split(1);
  EXPECT_EQ(child1_again.Next(), expected.Next());
}

TEST(RngTest, SplitDoesNotAdvanceParentState) {
  // The parallel growth phase seeds one stream per bootstrap tree with
  // Split(i); the final tree is only thread-count independent if Split is a
  // pure function of (state, id) that leaves the parent untouched.
  Rng split_heavy(42);
  for (uint64_t i = 0; i < 100; ++i) (void)split_heavy.Split(i);
  Rng untouched(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(split_heavy.Next(), untouched.Next());
  }
}

TEST(RngTest, SplitStreamsAreInterleavingIndependent) {
  // Child i's stream must not depend on the order the children are split
  // off (workers grab tree indices in nondeterministic order).
  Rng forward(42);
  std::vector<uint64_t> draws_forward;
  for (uint64_t i = 0; i < 8; ++i) {
    draws_forward.push_back(forward.Split(i).Next());
  }
  Rng backward(42);
  std::vector<uint64_t> draws_backward(8);
  for (uint64_t i = 8; i-- > 0;) {
    draws_backward[i] = backward.Split(i).Next();
  }
  EXPECT_EQ(draws_forward, draws_backward);
}

TEST(RngTest, StreamsArePinnedAcrossReleases) {
  // Literal first draws of Rng(42) and its first Split children. A change
  // here silently re-seeds every bootstrap tree and invalidates persisted
  // models' reproducibility — bump deliberately, never accidentally.
  Rng base(42);
  EXPECT_EQ(base.Split(0).Next(), 0x8342f9f4c1657470ULL);
  EXPECT_EQ(base.Split(1).Next(), 0x1056d24c53ce5c5dULL);
  EXPECT_EQ(base.Split(2).Next(), 0x46ec657c259dd7f7ULL);
  EXPECT_EQ(base.Split(3).Next(), 0xcebf6041d69d97f2ULL);
  EXPECT_EQ(base.Next(), 0x15780b2e0c2ec716ULL);
}

TEST(IoStatsTest, CountersAccumulateAndReset) {
  ResetIoStats();
  io_internal::RecordRead(3, 120);
  io_internal::RecordWrite(2, 80);
  io_internal::RecordScanStart();
  IoStats s = GetIoStats();
  EXPECT_EQ(s.tuples_read, 3u);
  EXPECT_EQ(s.bytes_read, 120u);
  EXPECT_EQ(s.tuples_written, 2u);
  EXPECT_EQ(s.bytes_written, 80u);
  EXPECT_EQ(s.scans_started, 1u);
  ResetIoStats();
  s = GetIoStats();
  EXPECT_EQ(s.tuples_read, 0u);
  EXPECT_EQ(s.scans_started, 0u);
}

TEST(IoStatsTest, SnapshotDifference) {
  ResetIoStats();
  io_internal::RecordRead(10, 100);
  IoStats before = GetIoStats();
  io_internal::RecordRead(5, 50);
  IoStats delta = GetIoStats() - before;
  EXPECT_EQ(delta.tuples_read, 5u);
  EXPECT_EQ(delta.bytes_read, 50u);
}

TEST(StrUtilTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrPrintf("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrPrintf("empty"), "empty");
}

TEST(StrUtilTest, StrJoinJoins) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

}  // namespace
}  // namespace boat
