// Fleet serving and ensemble backend tests: wire v3 routing grammar, the
// bagged majority-vote CompiledEnsemble (thread-count invariance against a
// scalar reference vote), ensemble persistence (Session::Train emission and
// SaveEnsemble/LoadEnsemble round trip), the FleetRegistry (id validation,
// per-model reload isolation, eviction), and end-to-end multi-model
// BoatServer coverage over real sockets: per-record routed traffic
// byte-identical to per-model offline classification, unknown-model ERR
// without consuming the connection, per-model hot reload under load with
// zero dropped requests, and routed loadgen with per-model expectations
// (run in CI under -DBOAT_SANITIZE=thread).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "boat/persistence.h"
#include "boat/session.h"
#include "datagen/agrawal.h"
#include "serve/fleet.h"
#include "serve/loadgen.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"
#include "tree/ensemble.h"
#include "tree/inmem_builder.h"
#include "tree/serialize.h"

namespace boat {
namespace {

using serve::BoatServer;
using serve::FleetEntry;
using serve::FleetRegistry;
using serve::ModelRegistry;
using serve::Request;
using serve::ServableModel;
using serve::ServerOptions;
using serve::Verb;

// ------------------------------------------------------------- wire v3

TEST(WireV3Test, ValidatesModelIds) {
  EXPECT_TRUE(serve::IsValidModelId("a"));
  EXPECT_TRUE(serve::IsValidModelId("model-2.prod_A"));
  EXPECT_TRUE(serve::IsValidModelId(std::string(64, 'x')));
  EXPECT_FALSE(serve::IsValidModelId(""));
  EXPECT_FALSE(serve::IsValidModelId(std::string(65, 'x')));
  EXPECT_FALSE(serve::IsValidModelId("has space"));
  EXPECT_FALSE(serve::IsValidModelId("semi;colon"));
  EXPECT_FALSE(serve::IsValidModelId("at@sign"));
}

TEST(WireV3Test, ParsesRoutedRequests) {
  auto routed = serve::ParseRequest("@m0 1.5,2,3");
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->verb, Verb::kRecord);
  EXPECT_EQ(routed->model_id, "m0");
  EXPECT_EQ(routed->args, "1.5,2,3");

  auto stats = serve::ParseRequest("@prod.v2 STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->verb, Verb::kStats);
  EXPECT_EQ(stats->model_id, "prod.v2");

  auto reload = serve::ParseRequest("@b RELOAD  /models/b ");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->verb, Verb::kReload);
  EXPECT_EQ(reload->model_id, "b");
  EXPECT_EQ(reload->args, "/models/b");

  auto ingest = serve::ParseRequest("@m INGEST 3");
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(ingest->verb, Verb::kIngest);
  EXPECT_EQ(ingest->model_id, "m");
  EXPECT_EQ(ingest->payload_lines, 3);

  auto retrain = serve::ParseRequest("@m RETRAIN");
  ASSERT_TRUE(retrain.ok());
  EXPECT_EQ(retrain->verb, Verb::kRetrain);
  EXPECT_EQ(retrain->model_id, "m");

  // A v2 line parses unchanged: empty model_id routes to the default model.
  auto v2 = serve::ParseRequest("1.5,2,3");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->model_id, "");
  EXPECT_EQ(v2->args, "1.5,2,3");
  auto v2_admin = serve::ParseRequest("STATS");
  ASSERT_TRUE(v2_admin.ok());
  EXPECT_EQ(v2_admin->model_id, "");

  // Malformed routing prefixes are per-line errors, never crashes.
  EXPECT_FALSE(serve::ParseRequest("@").ok());
  EXPECT_FALSE(serve::ParseRequest("@m").ok());           // no request
  EXPECT_FALSE(serve::ParseRequest("@m ").ok());          // empty request
  EXPECT_FALSE(serve::ParseRequest("@ STATS").ok());      // empty id
  EXPECT_FALSE(serve::ParseRequest("@a@b STATS").ok());   // bad id charset
  EXPECT_FALSE(
      serve::ParseRequest("@" + std::string(65, 'x') + " STATS").ok());
  EXPECT_FALSE(serve::ParseRequest("@m FROB").ok());  // bad routed verb
}

// ------------------------------------------------------------- ensemble

std::vector<Tuple> Corpus(int function, uint64_t n, uint64_t seed) {
  AgrawalConfig config;
  config.function = function;
  config.noise = 0.05;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

/// A small bag of deliberately different trees over one schema.
std::vector<DecisionTree> MakeMembers(size_t count) {
  auto selector = MakeGiniSelector();
  std::vector<DecisionTree> members;
  members.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const int function = i % 2 == 0 ? 1 : 6;
    members.push_back(BuildTreeInMemory(
        MakeAgrawalSchema(), Corpus(function, 1200, 100 + i), *selector));
  }
  return members;
}

/// Reference scalar vote: per-member Classify, argmax with lowest-class-id
/// tie break — the semantics CompiledEnsemble must reproduce at any thread
/// count and any batching.
int32_t ReferenceVote(const std::vector<DecisionTree>& members,
                      const CompiledEnsemble& compiled, const Tuple& t,
                      double* confidence) {
  std::vector<int> votes(
      static_cast<size_t>(MakeAgrawalSchema().num_classes()), 0);
  for (size_t m = 0; m < members.size(); ++m) {
    ++votes[static_cast<size_t>(compiled.members()[m].Classify(t))];
  }
  int32_t best = 0;
  for (size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<size_t>(best)]) {
      best = static_cast<int32_t>(c);
    }
  }
  *confidence = static_cast<double>(votes[static_cast<size_t>(best)]) /
                static_cast<double>(members.size());
  return best;
}

TEST(EnsembleTest, MajorityVoteMatchesReferenceAtAnyThreadCount) {
  const auto members = MakeMembers(5);
  const CompiledEnsemble compiled(members);
  ASSERT_EQ(compiled.num_members(), 5);
  const auto tuples = Corpus(6, 700, 42);

  std::vector<int32_t> reference(tuples.size());
  std::vector<double> reference_conf(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    reference[i] =
        ReferenceVote(members, compiled, tuples[i], &reference_conf[i]);
    EXPECT_EQ(compiled.Classify(tuples[i]), reference[i]) << "tuple " << i;
  }

  for (const int threads : {1, 2, 8}) {
    std::vector<int32_t> out(tuples.size());
    std::vector<double> confidence(tuples.size());
    compiled.PredictWithConfidence(tuples, out, confidence, threads);
    for (size_t i = 0; i < tuples.size(); ++i) {
      EXPECT_EQ(out[i], reference[i]) << "threads " << threads << " tuple "
                                      << i;
      EXPECT_DOUBLE_EQ(confidence[i], reference_conf[i])
          << "threads " << threads << " tuple " << i;
    }
    // Predict (no confidence) must agree with PredictWithConfidence.
    std::vector<int32_t> plain(tuples.size());
    compiled.Predict(tuples, plain, threads);
    EXPECT_EQ(plain, out) << "threads " << threads;
  }
}

TEST(EnsembleTest, SingleMemberEnsembleIsTheTree) {
  auto selector = MakeGiniSelector();
  const DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(),
                                              Corpus(1, 800, 7), *selector);
  const CompiledTree single(tree);
  const CompiledEnsemble compiled(tree);
  const auto tuples = Corpus(1, 300, 8);
  for (const Tuple& t : tuples) {
    EXPECT_EQ(compiled.Classify(t), single.Classify(t));
  }
}

TEST(EnsemblePersistenceTest, SaveLoadRoundTripIsExact) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const auto members = MakeMembers(4);
  const std::string dir = temp->NewPath("ensemble_roundtrip");
  ASSERT_TRUE(SaveEnsemble(MakeAgrawalSchema(), members, dir).ok());

  auto loaded = LoadEnsemble(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->members.size(), members.size());
  EXPECT_EQ(loaded->schema.Fingerprint(), MakeAgrawalSchema().Fingerprint());
  for (size_t m = 0; m < members.size(); ++m) {
    EXPECT_EQ(SerializeTree(loaded->members[m]), SerializeTree(members[m]))
        << "member " << m;
  }
  // Empty and corrupt directories fail cleanly, never crash.
  EXPECT_FALSE(LoadEnsemble(temp->NewPath("no_such_ensemble")).ok());
  EXPECT_FALSE(
      SaveEnsemble(MakeAgrawalSchema(), {}, temp->NewPath("empty")).ok());
}

TEST(EnsemblePersistenceTest, SessionTrainEmitsDeterministicEnsemble) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const Schema schema = MakeAgrawalSchema();
  auto data = Corpus(6, 3000, 99);

  SessionOptions options;
  options.boat.sample_size = 600;
  options.boat.bootstrap_count = 5;
  options.boat.bootstrap_subsample = 200;
  options.boat.inmem_threshold = 400;
  options.boat.seed = 17;
  options.boat.keep_bootstrap_trees = true;

  std::vector<std::string> dirs;
  for (int run = 0; run < 2; ++run) {
    VectorSource source(schema, data);
    const std::string dir =
        temp->NewPath("ensemble_train_" + std::to_string(run));
    auto session = Session::Train(&source, dir, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    dirs.push_back(dir);
  }

  auto first = LoadEnsemble(dirs[0] + "/ensemble");
  auto second = LoadEnsemble(dirs[1] + "/ensemble");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(first->members.size(), 5u);
  for (size_t m = 0; m < first->members.size(); ++m) {
    // Same data + seed -> byte-identical persisted members: the ensemble
    // inherits BOAT's determinism guarantee.
    EXPECT_EQ(SerializeTree(first->members[m]),
              SerializeTree(second->members[m]))
        << "member " << m;
  }

  // The servable wrapper loads it and votes like the in-memory compile.
  auto servable = serve::LoadServableEnsemble(dirs[0] + "/ensemble");
  ASSERT_TRUE(servable.ok());
  EXPECT_TRUE((*servable)->ensemble_backend);
  const CompiledEnsemble reference(first->members);
  for (const Tuple& t : Corpus(6, 200, 123)) {
    EXPECT_EQ((*servable)->compiled.Classify(t), reference.Classify(t));
  }
}

// -------------------------------------------------------- fleet registry

std::shared_ptr<const ServableModel> InMemoryModel(int function,
                                                   uint64_t seed) {
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(),
                                        Corpus(function, 2000, seed),
                                        *selector);
  return std::make_shared<const ServableModel>(tree, "");
}

TEST(FleetRegistryTest, ValidatesAndRoutesIds) {
  FleetRegistry fleet;
  ModelRegistry a;
  ModelRegistry b;
  a.Install(InMemoryModel(1, 1));
  b.Install(InMemoryModel(6, 2));
  ASSERT_TRUE(fleet.AddExternal("a", &a).ok());
  ASSERT_TRUE(fleet.AddExternal("b", &b).ok());
  EXPECT_FALSE(fleet.AddExternal("a", &b).ok());          // duplicate id
  EXPECT_FALSE(fleet.AddExternal("bad id", &b).ok());     // invalid id
  EXPECT_FALSE(fleet.AddExternal("", &b).ok());           // empty id
  EXPECT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet.default_id(), "a");

  // "" routes to the default (first) entry; unknown ids resolve to null.
  EXPECT_EQ(fleet.Snapshot("")->fingerprint, a.Snapshot()->fingerprint);
  EXPECT_EQ(fleet.Snapshot("b")->fingerprint, b.Snapshot()->fingerprint);
  EXPECT_EQ(fleet.Snapshot("nosuch"), nullptr);
  EXPECT_FALSE(fleet.Reload("nosuch", "/tmp/x").ok());
  EXPECT_FALSE(fleet.Evict("nosuch").ok());
}

TEST(FleetRegistryTest, ReloadOfOneModelDoesNotInvalidateOthers) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();

  std::vector<std::string> dirs;
  for (const int function : {1, 6}) {
    auto data = Corpus(function, 3000, 700 + static_cast<uint64_t>(function));
    VectorSource source(schema, data);
    BoatOptions options;
    options.sample_size = 600;
    options.bootstrap_count = 5;
    options.bootstrap_subsample = 200;
    options.inmem_threshold = 400;
    options.seed = 9;
    auto classifier =
        BoatClassifier::Train(&source, selector.get(), options);
    ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();
    const std::string dir =
        temp->NewPath("fleet_model_" + std::to_string(function));
    ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());
    dirs.push_back(dir);
  }

  ModelRegistry a;
  ModelRegistry b;
  ASSERT_TRUE(a.LoadAndSwap(dirs[0], "gini").ok());
  ASSERT_TRUE(b.LoadAndSwap(dirs[1], "gini").ok());
  FleetRegistry fleet;
  ASSERT_TRUE(fleet.AddExternal("a", &a).ok());
  ASSERT_TRUE(fleet.AddExternal("b", &b).ok());

  // An in-flight snapshot of model a taken before reloading model b...
  const std::shared_ptr<const ServableModel> a_before = fleet.Snapshot("a");
  const uint64_t b_before = fleet.Snapshot("b")->fingerprint;
  ASSERT_TRUE(fleet.Reload("b", dirs[0]).ok());
  // ...is untouched: same object, and a's registry never reloaded.
  EXPECT_EQ(fleet.Snapshot("a").get(), a_before.get());
  EXPECT_EQ(a.reload_count(), 0);
  EXPECT_EQ(b.reload_count(), 1);
  EXPECT_NE(fleet.Snapshot("b")->fingerprint, b_before);

  // A failed per-model reload keeps that model's last-good active.
  const uint64_t b_good = fleet.Snapshot("b")->fingerprint;
  EXPECT_FALSE(fleet.Reload("b", temp->NewPath("nonexistent")).ok());
  EXPECT_EQ(fleet.Snapshot("b")->fingerprint, b_good);
  EXPECT_EQ(b.reload_count(), 1);
  EXPECT_EQ(fleet.Snapshot("a").get(), a_before.get());
}

// ------------------------------------------------------------ end-to-end

/// Minimal blocking line client with a receive timeout so a server bug
/// fails the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0)
        << std::strerror(errno);
    timeval tv{/*tv_sec=*/20, /*tv_usec=*/0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// One reply line ("" on timeout/EOF).
  std::string ReadLine() {
    size_t nl;
    while ((nl = buf_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return line;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

/// Three named in-memory models behind one server; per-model expected
/// labels come straight from each model's own compiled tree.
class FleetE2eTest : public ::testing::Test {
 protected:
  void StartFleet(ServerOptions options) {
    static const std::array<int, 3> kFunctions = {1, 6, 7};
    for (size_t m = 0; m < kIds.size(); ++m) {
      models_[m] = InMemoryModel(kFunctions[m], 1000 + m);
      registries_[m].Install(models_[m]);
      ASSERT_TRUE(fleet_.AddExternal(kIds[m], &registries_[m]).ok());
    }
    server_ = std::make_unique<BoatServer>(&fleet_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  std::string ExpectedLabel(size_t model, const Tuple& t) const {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d",
                  models_[model]->compiled.Classify(t));
    return buf;
  }

  const std::array<std::string, 3> kIds = {"alpha", "beta", "gamma"};
  std::array<std::shared_ptr<const ServableModel>, 3> models_;
  std::array<ModelRegistry, 3> registries_;
  FleetRegistry fleet_;
  std::unique_ptr<BoatServer> server_;
};

TEST_F(FleetE2eTest, RoutedRecordsMatchPerModelOfflineClassification) {
  StartFleet(ServerOptions{});
  const auto tuples = Corpus(6, 240, 555);
  const auto lines =
      serve::FormatRecordLines(models_[0]->schema, tuples);

  // One pipelined burst interleaving the three models record by record;
  // every reply must be byte-identical to that model's offline Classify.
  TestClient client(server_->port());
  std::string burst;
  for (size_t i = 0; i < lines.size(); ++i) {
    burst += "@" + kIds[i % 3] + " " + lines[i] + "\n";
  }
  client.Send(burst);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(client.ReadLine(), ExpectedLabel(i % 3, tuples[i]))
        << "record " << i << " model " << kIds[i % 3];
  }

  // Unrouted v2 lines score against the default (first) model.
  client.Send(lines[0] + "\n@default" /* not an id in this fleet */
              " STATS\n");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(0, tuples[0]));
  EXPECT_EQ(client.ReadLine().substr(0, 3), "ERR");
}

TEST_F(FleetE2eTest, UnknownModelIdIsAPerLineErrorNotAConnectionKiller) {
  StartFleet(ServerOptions{});
  const auto tuples = Corpus(6, 3, 66);
  const auto lines = serve::FormatRecordLines(models_[0]->schema, tuples);

  TestClient client(server_->port());
  client.Send("@nosuch " + lines[0] + "\n" +       // unknown model record
              "@beta " + lines[1] + "\n" +         // still served
              "@nosuch STATS\n" +                  // unknown model admin
              "@nosuch RELOAD /tmp/x\n" +          // unknown model reload
              "@nosuch INGEST 2\n" +               // unknown model chunk...
              lines[0] + "\n" + lines[1] + "\n" +  // ...payload consumed
              "@alpha PING\n" +                    // routed PING: id ignored
              "@gamma " + lines[2] + "\n");
  EXPECT_EQ(client.ReadLine(), "ERR unknown model 'nosuch'");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(1, tuples[1]));
  EXPECT_EQ(client.ReadLine(), "ERR unknown model 'nosuch'");
  EXPECT_EQ(client.ReadLine(), "ERR unknown model 'nosuch'");
  EXPECT_EQ(client.ReadLine(), "ERR unknown model 'nosuch'");
  EXPECT_EQ(client.ReadLine(), "PONG");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(2, tuples[2]));
}

TEST_F(FleetE2eTest, PerModelStatsAndGlobalModelsSection) {
  StartFleet(ServerOptions{});
  const auto tuples = Corpus(6, 4, 77);
  const auto lines = serve::FormatRecordLines(models_[0]->schema, tuples);

  TestClient client(server_->port());
  client.Send("@beta " + lines[0] + "\n");
  ASSERT_EQ(client.ReadLine(), ExpectedLabel(1, tuples[0]));

  client.Send("@beta STATS\n");
  const std::string beta = client.ReadLine();
  EXPECT_NE(beta.find("\"model_id\":\"beta\""), std::string::npos) << beta;
  EXPECT_NE(beta.find("\"requests\":1"), std::string::npos) << beta;

  client.Send("STATS\n");
  const std::string global = client.ReadLine();
  EXPECT_NE(global.find("\"models\":{"), std::string::npos) << global;
  EXPECT_NE(global.find("\"alpha\":{"), std::string::npos) << global;
  EXPECT_NE(global.find("\"gamma\":{"), std::string::npos) << global;
}

TEST_F(FleetE2eTest, EvictedModelAnswersErrUntilReinstalled) {
  StartFleet(ServerOptions{});
  const auto tuples = Corpus(6, 2, 88);
  const auto lines = serve::FormatRecordLines(models_[0]->schema, tuples);

  TestClient client(server_->port());
  ASSERT_TRUE(fleet_.Evict("gamma").ok());
  client.Send("@gamma " + lines[0] + "\n@alpha " + lines[1] + "\n");
  EXPECT_EQ(client.ReadLine(), "ERR model 'gamma' has no active model");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(0, tuples[1]));

  registries_[2].Install(models_[2]);
  client.Send("@gamma " + lines[0] + "\n");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(2, tuples[0]));
}

TEST_F(FleetE2eTest, RoutedLoadGenChecksPerModelLabels) {
  ServerOptions options;
  options.scoring_threads = 2;
  StartFleet(options);
  const auto tuples = Corpus(6, 150, 999);
  const auto lines = serve::FormatRecordLines(models_[0]->schema, tuples);

  std::array<std::vector<int32_t>, 3> expected;
  for (size_t m = 0; m < 3; ++m) {
    for (const Tuple& t : tuples) {
      expected[m].push_back(models_[m]->compiled.Classify(t));
    }
  }
  std::vector<serve::RoutedModelCorpus> corpora;
  for (size_t m = 0; m < 3; ++m) {
    serve::RoutedModelCorpus corpus;
    corpus.model_id = kIds[m];
    corpus.record_lines = lines;
    corpus.expected_labels = &expected[m];
    corpora.push_back(std::move(corpus));
  }
  serve::LoadGenOptions lg;
  lg.port = server_->port();
  lg.connections = 2;
  lg.repeat = 3;
  auto report = serve::RunRoutedLoadGen(lg, corpora);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->busy, 0u);
  EXPECT_EQ(report->ok, report->sent);
  ASSERT_EQ(report->per_model.size(), 3u);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(report->per_model[m].model_id, kIds[m]);
    EXPECT_EQ(report->per_model[m].mismatches, 0u);
    EXPECT_EQ(report->per_model[m].ok, report->per_model[m].sent);
    EXPECT_GT(report->per_model[m].throughput_rps, 0.0);
  }
}

TEST(FleetReloadTest, PerModelReloadUnderLoadDropsNothing) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();

  // Two saved models with the same schema but different trees.
  std::vector<std::string> dirs;
  for (const int function : {1, 6}) {
    auto data = Corpus(function, 3000, 300 + static_cast<uint64_t>(function));
    VectorSource source(schema, data);
    BoatOptions options;
    options.sample_size = 600;
    options.bootstrap_count = 5;
    options.bootstrap_subsample = 200;
    options.inmem_threshold = 400;
    options.seed = 9;
    auto classifier =
        BoatClassifier::Train(&source, selector.get(), options);
    ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();
    const std::string dir =
        temp->NewPath("reload_model_" + std::to_string(function));
    ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());
    dirs.push_back(dir);
  }

  ModelRegistry stable;
  ModelRegistry swapped;
  ASSERT_TRUE(stable.LoadAndSwap(dirs[0], "gini").ok());
  ASSERT_TRUE(swapped.LoadAndSwap(dirs[0], "gini").ok());
  FleetRegistry fleet;
  ASSERT_TRUE(fleet.AddExternal("stable", &stable).ok());
  ASSERT_TRUE(fleet.AddExternal("swapped", &swapped).ok());
  ServerOptions options;
  options.scoring_threads = 2;
  BoatServer server(&fleet, options);
  ASSERT_TRUE(server.Start().ok());

  const auto tuples = Corpus(6, 150, 444);
  const auto lines = serve::FormatRecordLines(schema, tuples);
  // `stable` is never reloaded: its labels are pinned. `swapped` flips
  // between the two models: each label must be valid under one of them.
  std::vector<std::string> stable_labels(tuples.size());
  std::vector<std::array<std::string, 2>> valid(tuples.size());
  for (size_t d = 0; d < dirs.size(); ++d) {
    auto model = serve::LoadServableModel(dirs[d], "gini");
    ASSERT_TRUE(model.ok());
    for (size_t i = 0; i < tuples.size(); ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%d",
                    (*model)->compiled.Classify(tuples[i]));
      valid[i][d] = buf;
      if (d == 0) stable_labels[i] = buf;
    }
  }
  const std::shared_ptr<const ServableModel> stable_before =
      stable.Snapshot();

  std::atomic<int> bad_replies{0};
  std::atomic<int> transport_errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      TestClient client(server.port());
      for (int pass = 0; pass < 10; ++pass) {
        std::string burst;
        for (const auto& line : lines) {
          burst += "@stable " + line + "\n@swapped " + line + "\n";
        }
        client.Send(burst);
        for (size_t i = 0; i < lines.size(); ++i) {
          const std::string from_stable = client.ReadLine();
          const std::string from_swapped = client.ReadLine();
          if (from_stable.empty() || from_swapped.empty()) {
            transport_errors.fetch_add(1);
            return;
          }
          if (from_stable != stable_labels[i]) bad_replies.fetch_add(1);
          if (from_swapped != valid[i][0] && from_swapped != valid[i][1]) {
            bad_replies.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread reloader([&] {
    TestClient admin(server.port());
    for (int r = 0; r < 8; ++r) {
      admin.Send("@swapped RELOAD " + dirs[static_cast<size_t>(r % 2 == 0)] +
                 "\n");
      const std::string reply = admin.ReadLine();
      if (reply.substr(0, 2) != "OK") transport_errors.fetch_add(1);
    }
    // A failed reload mid-load is a clean ERR and keeps last-good serving.
    admin.Send("@swapped RELOAD /nonexistent/model\n");
    if (admin.ReadLine().substr(0, 3) != "ERR") transport_errors.fetch_add(1);
  });
  for (auto& t : clients) t.join();
  reloader.join();
  server.Shutdown();

  EXPECT_EQ(bad_replies.load(), 0);
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_GE(swapped.reload_count(), 8);
  // Reload isolation: the untouched model's registry never swapped, and the
  // snapshot taken before the storm is still the active object.
  EXPECT_EQ(stable.reload_count(), 0);
  EXPECT_EQ(stable.Snapshot().get(), stable_before.get());
}

TEST(FleetEnsembleE2eTest, EnsembleLaneVotesAndReloads) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const auto members = MakeMembers(5);
  const std::string dir = temp->NewPath("served_ensemble");
  ASSERT_TRUE(SaveEnsemble(MakeAgrawalSchema(), members, dir).ok());

  FleetRegistry fleet;
  ModelRegistry single;
  single.Install(InMemoryModel(6, 4242));
  ASSERT_TRUE(fleet.AddExternal("tree", &single).ok());
  ASSERT_TRUE(fleet.AddEnsemble("bag", dir).ok());

  BoatServer server(&fleet, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const CompiledEnsemble reference(members);
  const auto tuples = Corpus(6, 120, 31);
  const auto lines = serve::FormatRecordLines(MakeAgrawalSchema(), tuples);

  TestClient client(server.port());
  std::string burst;
  for (const auto& line : lines) burst += "@bag " + line + "\n";
  client.Send(burst);
  for (size_t i = 0; i < tuples.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", reference.Classify(tuples[i]));
    EXPECT_EQ(client.ReadLine(), buf) << "record " << i;
  }

  // RELOAD on an ensemble lane reloads a SaveEnsemble directory.
  client.Send("@bag RELOAD " + dir + "\n");
  EXPECT_EQ(client.ReadLine().substr(0, 2), "OK");
  client.Send("@bag STATS\n");
  const std::string stats = client.ReadLine();
  EXPECT_NE(stats.find("\"ensemble\":true"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"reloads\":1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"members\":5"), std::string::npos) << stats;

  // Streaming ingestion is undefined for a bagged train-time artifact.
  client.Send("@bag RETRAIN\n");
  EXPECT_EQ(client.ReadLine().substr(0, 3), "ERR");
  server.Shutdown();
}

}  // namespace
}  // namespace boat
