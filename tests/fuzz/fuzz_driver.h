// Standalone driver for fuzz targets when libFuzzer is unavailable.
//
// Each harness defines LLVMFuzzerTestOneInput(data, size). Under Clang with
// -DBOAT_FUZZ_WITH_LIBFUZZER the real libFuzzer main drives it; elsewhere
// this header supplies a main() that replays every file passed on the
// command line (the checked-in corpus and any crash reproducers) and then
// runs a bounded deterministic mutation loop seeded from the corpus, so the
// harness still exercises the target under ASan/UBSan on any compiler.

#ifndef BOAT_TESTS_FUZZ_FUZZ_DRIVER_H_
#define BOAT_TESTS_FUZZ_FUZZ_DRIVER_H_

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#ifndef BOAT_FUZZ_WITH_LIBFUZZER

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"

namespace boat_fuzz {

inline std::vector<uint8_t> ReadFileBytes(const char* path) {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return bytes;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

}  // namespace boat_fuzz

int main(int argc, char** argv) {
  std::vector<std::vector<uint8_t>> corpus;
  for (int i = 1; i < argc; ++i) {
    std::vector<uint8_t> bytes = boat_fuzz::ReadFileBytes(argv[i]);
    std::fprintf(stderr, "replay %s (%zu bytes)\n", argv[i], bytes.size());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    corpus.push_back(std::move(bytes));
  }
  // Deterministic smoke loop: mutate corpus entries (byte flips, truncation,
  // duplication) with a fixed-seed Rng. Not a real coverage-guided fuzzer,
  // but it shakes out shallow parsing bugs on every compiler.
  boat::Rng rng(0xb0a7f022u);
  constexpr int kIterations = 2000;
  for (int it = 0; it < kIterations; ++it) {
    std::vector<uint8_t> input;
    if (!corpus.empty()) {
      input = corpus[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(corpus.size()) - 1))];
    }
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.UniformInt(0, 3)) {
        case 0:  // flip a byte
          if (!input.empty()) {
            input[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(input.size()) - 1))] =
                static_cast<uint8_t>(rng.UniformInt(0, 255));
          }
          break;
        case 1:  // truncate
          if (!input.empty()) {
            input.resize(static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(input.size()) - 1)));
          }
          break;
        case 2:  // append random bytes
          for (int k = rng.UniformInt(1, 16); k > 0; --k) {
            input.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
          }
          break;
        default:  // duplicate a slice
          if (!input.empty()) {
            const size_t at = static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(input.size()) - 1));
            input.insert(input.end(), input.begin() + at, input.end());
          }
          break;
      }
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "standalone fuzz driver: %d corpus file(s) + %d "
               "mutations, no crashes\n", argc - 1, kIterations);
  return 0;
}

#endif  // !BOAT_FUZZ_WITH_LIBFUZZER
#endif  // BOAT_TESTS_FUZZ_FUZZ_DRIVER_H_
