// Fuzz harness for the CSV field codec.
//
// Two properties, both of which must hold for arbitrary bytes:
//   1. SplitCsvLine never crashes on any input line.
//   2. EscapeCsv/SplitCsvLine round-trip: for any vector of fields, joining
//      the escaped fields with the delimiter and re-splitting yields the
//      original fields verbatim (quoting preserves outer whitespace, which
//      unquoted parsing would trim).
//
// Input layout: byte 0 selects the delimiter; the rest is split into fields
// on 0xFF bytes (0xFF cannot appear in a field, keeping the expected vector
// well defined) and also fed to SplitCsvLine raw.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "storage/csv.h"
#include "tests/fuzz/fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const char kDelimiters[] = {',', ';', '\t', '|'};
  const char delimiter =
      size == 0 ? ',' : kDelimiters[data[0] % sizeof(kDelimiters)];
  const std::string raw(
      size == 0 ? "" : reinterpret_cast<const char*>(data), size);

  // Property 1: raw bytes as a line must parse without crashing.
  const std::vector<std::string> parsed_raw = boat::SplitCsvLine(raw, delimiter);
  if (parsed_raw.empty()) std::abort();  // SplitCsvLine always yields >=1 field

  // Property 2: escape/join/split round trip.
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 1; i < size; ++i) {
    if (data[i] == 0xFF) {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(static_cast<char>(data[i]));
    }
  }
  fields.push_back(current);

  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(delimiter);
    line += boat::EscapeCsv(fields[i], delimiter);
  }
  const std::vector<std::string> reparsed =
      boat::SplitCsvLine(line, delimiter);
  if (reparsed.size() != fields.size()) {
    std::fprintf(stderr, "round-trip arity %zu != %zu for line [%s]\n",
                 reparsed.size(), fields.size(), line.c_str());
    std::abort();
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (reparsed[i] != fields[i]) {
      std::fprintf(stderr,
                   "round-trip field %zu mismatch: [%s] -> [%s] via [%s]\n",
                   i, fields[i].c_str(), reparsed[i].c_str(), line.c_str());
      std::abort();
    }
  }
  return 0;
}
