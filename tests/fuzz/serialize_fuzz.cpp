// Fuzz harness for tree deserialization.
//
// DeserializeTree consumes untrusted model files, so for arbitrary bytes it
// must either return a failing Status or produce a valid tree — never crash,
// overflow the stack, or attempt an absurd allocation. When parsing does
// succeed, serialize-then-reparse must be a fixed point (the canonical text
// of the parsed tree reparses to the same canonical text).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "storage/schema.h"
#include "tree/decision_tree.h"
#include "tree/serialize.h"
#include "tests/fuzz/fuzz_driver.h"

namespace {

// Fixed schema shared by all inputs: 2 numerical + 2 categorical attributes,
// 3 classes — enough shape to accept crafted splits of both kinds.
const boat::Schema& FuzzSchema() {
  static const boat::Schema* schema = new boat::Schema(
      {boat::Attribute::Numerical("n0"), boat::Attribute::Numerical("n1"),
       boat::Attribute::Categorical("c0", 4),
       boat::Attribute::Categorical("c1", 8)},
      /*num_classes=*/3);
  return *schema;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(
      size == 0 ? "" : reinterpret_cast<const char*>(data), size);
  boat::Result<boat::DecisionTree> parsed =
      boat::DeserializeTree(text, FuzzSchema());
  if (!parsed.ok()) return 0;  // rejected cleanly — fine

  const std::string canonical = boat::SerializeTree(*parsed);
  boat::Result<boat::DecisionTree> reparsed =
      boat::DeserializeTree(canonical, FuzzSchema());
  if (!reparsed.ok()) {
    std::fprintf(stderr, "canonical form failed to reparse: %s\n",
                 reparsed.status().ToString().c_str());
    std::abort();
  }
  if (boat::SerializeTree(*reparsed) != canonical) {
    std::fprintf(stderr, "serialize/deserialize is not a fixed point\n");
    std::abort();
  }
  return 0;
}
