// Fuzz harness for the serving wire protocol (src/serve/wire.h).
//
// Properties, for arbitrary request-line bytes:
//   1. ClassifyRequestLine never crashes and always returns a valid kind.
//   2. ParseRecordLine never crashes, and when it accepts a line the
//      resulting tuple has exactly the schema's arity, with every
//      categorical value inside [0, cardinality).
//   3. Round trip: a tuple accepted by ParseRecordLine, re-rendered with
//      FormatRecordLines, parses again to the bit-identical tuple (this is
//      the property the byte-identical serving guarantee rests on).
//
// The line is fuzzed against two schemas (all-numerical and mixed
// numerical/categorical) chosen by the first input byte.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/wire.h"
#include "storage/schema.h"
#include "tests/fuzz/fuzz_driver.h"

namespace {

const boat::Schema& FuzzSchema(bool mixed) {
  static const boat::Schema numerical(
      {boat::Attribute::Numerical("a"), boat::Attribute::Numerical("b"),
       boat::Attribute::Numerical("c")},
      /*num_classes=*/2);
  static const boat::Schema with_categorical(
      {boat::Attribute::Numerical("x"),
       boat::Attribute::Categorical("color", 5),
       boat::Attribute::Categorical("shape", 3),
       boat::Attribute::Numerical("y")},
      /*num_classes=*/3);
  return mixed ? with_categorical : numerical;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const bool mixed = size != 0 && (data[0] & 1) != 0;
  const boat::Schema& schema = FuzzSchema(mixed);
  const std::string line(
      size <= 1 ? "" : reinterpret_cast<const char*>(data + 1), size <= 1
                                                                    ? 0
                                                                    : size - 1);

  // Property 1: classification is total.
  const boat::serve::RequestKind kind = boat::serve::ClassifyRequestLine(line);
  switch (kind) {
    case boat::serve::RequestKind::kRecord:
    case boat::serve::RequestKind::kStats:
    case boat::serve::RequestKind::kReload:
    case boat::serve::RequestKind::kPing:
    case boat::serve::RequestKind::kQuit:
    case boat::serve::RequestKind::kUnknown:
      break;
  }
  (void)boat::serve::ReloadArgument(line);

  // Property 2: parsing is total and validates.
  boat::Result<boat::Tuple> parsed =
      boat::serve::ParseRecordLine(line, schema);
  if (!parsed.ok()) return 0;
  const boat::Tuple& tuple = *parsed;
  if (tuple.num_values() != schema.num_attributes()) std::abort();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (schema.IsCategorical(a)) {
      const int32_t c = tuple.category(a);
      if (c < 0 || c >= schema.attribute(a).cardinality) std::abort();
    }
  }

  // Property 3: format/parse round trip is bit-exact.
  const std::vector<std::string> rendered =
      boat::serve::FormatRecordLines(schema, {tuple});
  if (rendered.size() != 1) std::abort();
  boat::Result<boat::Tuple> reparsed =
      boat::serve::ParseRecordLine(rendered[0], schema);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "round trip rejected [%s] from [%s]\n",
                 rendered[0].c_str(), line.c_str());
    std::abort();
  }
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (tuple.value(a) != reparsed->value(a) &&
        !(tuple.value(a) != tuple.value(a) &&
          reparsed->value(a) != reparsed->value(a))) {  // NaN == NaN here
      std::fprintf(stderr, "round trip value %d differs via [%s]\n", a,
                   rendered[0].c_str());
      std::abort();
    }
  }
  return 0;
}
