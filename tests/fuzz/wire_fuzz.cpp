// Fuzz harness for the serving wire protocol (src/serve/wire.h).
//
// Properties, for arbitrary request-line bytes:
//   1. ParseRequest never crashes; when it accepts a line the verb is
//      valid, a chunk command carries a positive in-range count, and the
//      v3 routing prefix is coherent: an unrouted (v2) record echoes the
//      raw line back as its argument, while a routed line carries a
//      well-formed model id and a non-empty rest-of-line. Every accepted
//      model id satisfies IsValidModelId.
//   2. ParseReply is total (never an error return, never a crash), and
//      FormatReply → ParseReply is a fixpoint for whatever it produces.
//   3. ParseRecordLine never crashes, and when it accepts a line the
//      resulting tuple has exactly the schema's arity, with every
//      categorical value inside [0, cardinality).
//   4. Round trip: a tuple accepted by ParseRecordLine, re-rendered with
//      FormatRecordLines, parses again to the bit-identical tuple (this is
//      the property the byte-identical serving guarantee rests on).
//   5. Routing round trip: prefixing a rendered record with `@m0 ` parses
//      to the same record routed at model `m0` — the v3 prefix never
//      perturbs the v2 payload (so fleet routing preserves the
//      byte-identical guarantee per model).
//
// The line is fuzzed against two schemas (all-numerical and mixed
// numerical/categorical) chosen by the first input byte.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/wire.h"
#include "storage/schema.h"
#include "tests/fuzz/fuzz_driver.h"

namespace {

const boat::Schema& FuzzSchema(bool mixed) {
  static const boat::Schema numerical(
      {boat::Attribute::Numerical("a"), boat::Attribute::Numerical("b"),
       boat::Attribute::Numerical("c")},
      /*num_classes=*/2);
  static const boat::Schema with_categorical(
      {boat::Attribute::Numerical("x"),
       boat::Attribute::Categorical("color", 5),
       boat::Attribute::Categorical("shape", 3),
       boat::Attribute::Numerical("y")},
      /*num_classes=*/3);
  return mixed ? with_categorical : numerical;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const bool mixed = size != 0 && (data[0] & 1) != 0;
  const boat::Schema& schema = FuzzSchema(mixed);
  const std::string line(
      size <= 1 ? "" : reinterpret_cast<const char*>(data + 1), size <= 1
                                                                    ? 0
                                                                    : size - 1);

  // Property 1: request parsing never crashes; accepted requests are sane.
  const boat::Result<boat::serve::Request> request =
      boat::serve::ParseRequest(line);
  if (request.ok()) {
    // v3: an accepted model id is always well-formed (or absent).
    if (!request->model_id.empty() &&
        !boat::serve::IsValidModelId(request->model_id)) {
      std::abort();
    }
    switch (request->verb) {
      case boat::serve::Verb::kIngest:
      case boat::serve::Verb::kDelete:
        if (request->payload_lines <= 0 ||
            request->payload_lines > boat::serve::kMaxWireChunkRecords) {
          std::abort();
        }
        break;
      case boat::serve::Verb::kRecord:
        if (request->model_id.empty()) {
          // An unrouted (v2) record echoes the raw line as its argument.
          if (request->args != line) std::abort();
        } else {
          // A routed record is the rest of the line, never empty (`@m`
          // with nothing after it is a parse error).
          if (request->args.empty()) std::abort();
        }
        break;
      case boat::serve::Verb::kStats:
      case boat::serve::Verb::kReload:
      case boat::serve::Verb::kPing:
      case boat::serve::Verb::kQuit:
      case boat::serve::Verb::kRetrain:
        break;
    }
  }

  // Property 2: reply parsing is total, and format→parse is a fixpoint.
  const boat::serve::Reply reply = boat::serve::ParseReply(line);
  const boat::serve::Reply reparsed_reply =
      boat::serve::ParseReply(boat::serve::FormatReply(reply));
  if (reparsed_reply.kind != reply.kind) std::abort();
  if (reply.kind == boat::serve::Reply::Kind::kLabel &&
      reparsed_reply.label != reply.label) {
    std::abort();
  }

  // Property 3: record parsing is total and validates.
  boat::Result<boat::Tuple> parsed =
      boat::serve::ParseRecordLine(line, schema);
  if (!parsed.ok()) return 0;
  const boat::Tuple& tuple = *parsed;
  if (tuple.num_values() != schema.num_attributes()) std::abort();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (schema.IsCategorical(a)) {
      const int32_t c = tuple.category(a);
      if (c < 0 || c >= schema.attribute(a).cardinality) std::abort();
    }
  }

  // Property 4: format/parse round trip is bit-exact.
  const std::vector<std::string> rendered =
      boat::serve::FormatRecordLines(schema, {tuple});
  if (rendered.size() != 1) std::abort();
  boat::Result<boat::Tuple> reparsed =
      boat::serve::ParseRecordLine(rendered[0], schema);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "round trip rejected [%s] from [%s]\n",
                 rendered[0].c_str(), line.c_str());
    std::abort();
  }
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (tuple.value(a) != reparsed->value(a) &&
        !(tuple.value(a) != tuple.value(a) &&
          reparsed->value(a) != reparsed->value(a))) {  // NaN == NaN here
      std::fprintf(stderr, "round trip value %d differs via [%s]\n", a,
                   rendered[0].c_str());
      std::abort();
    }
  }

  // Property 5: the v3 routing prefix is transparent to the payload.
  const boat::Result<boat::serve::Request> routed =
      boat::serve::ParseRequest("@m0 " + rendered[0]);
  if (!routed.ok() || routed->verb != boat::serve::Verb::kRecord ||
      routed->model_id != "m0" || routed->args != rendered[0]) {
    std::fprintf(stderr, "routing prefix perturbed [%s]\n",
                 rendered[0].c_str());
    std::abort();
  }
  return 0;
}
