// Violation class 3: releasing a capability the scope never acquired.
// Expected diagnostic: "releasing mutex ... that was not held".

#include "common/sync.h"

namespace {

boat::Mutex g_mu;

void BrokenRelease() {
  g_mu.Unlock();  // BAD: never locked on this path
}

}  // namespace

int main() {
  BrokenRelease();
  return 0;
}
