// Positive control: the same code shapes as the fail_*.cc cases, written
// correctly. Must compile cleanly under -Werror=thread-safety, proving the
// gate rejects the violations and not the idioms themselves. Exercises every
// sync.h surface the repo uses: MutexLock, GUARDED_BY, PT_GUARDED_BY,
// REQUIRES helpers, EXCLUDES entry points, manual Lock/Unlock, TryLock,
// and the CondVar predicate-wait convention (AssertHeld inside the lambda).

#include "common/sync.h"

namespace {

class Correct {
 public:
  explicit Correct(long* p) : data_(p) {}

  void Increment() BOAT_EXCLUDES(mu_) {
    boat::MutexLock lock(mu_);
    AddLocked(1);
  }

  long ReadPointee() BOAT_EXCLUDES(mu_) {
    boat::MutexLock lock(mu_);
    return *data_;
  }

  void ManualLockUnlock() BOAT_EXCLUDES(mu_) {
    mu_.Lock();
    ++value_;
    mu_.Unlock();
  }

  bool TryIncrement() BOAT_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    ++value_;
    mu_.Unlock();
    return true;
  }

  void WaitPositive() BOAT_EXCLUDES(mu_) {
    boat::MutexLock lock(mu_);
    cv_.Wait(lock, [&] {
      mu_.AssertHeld();
      return value_ > 0;
    });
  }

  void Signal() BOAT_EXCLUDES(mu_) {
    {
      boat::MutexLock lock(mu_);
      ++value_;
    }
    cv_.NotifyAll();
  }

 private:
  void AddLocked(long n) BOAT_REQUIRES(mu_) { value_ += n; }

  boat::Mutex mu_;
  boat::CondVar cv_;
  long value_ BOAT_GUARDED_BY(mu_) = 0;
  long* data_ BOAT_PT_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  long v = 7;
  Correct c(&v);
  c.Increment();
  c.ManualLockUnlock();
  (void)c.TryIncrement();
  c.Signal();
  c.WaitPositive();
  return static_cast<int>(c.ReadPointee());
}
