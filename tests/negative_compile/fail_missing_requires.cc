// Violation class 2: calling a BOAT_REQUIRES(mu) helper without holding mu.
// This is the contract every *Locked() helper in the repo relies on
// (e.g. BoatServer::ReapFinishedLocked, io_stats Registry::RawLocked).
// Expected diagnostic: "calling function ... requires holding mutex".

#include "common/sync.h"

namespace {

class Ledger {
 public:
  void AddLocked(long n) BOAT_REQUIRES(mu_) { total_ += n; }

  void Add(long n) {
    AddLocked(n);  // BAD: caller does not hold mu_
  }

 private:
  boat::Mutex mu_;
  long total_ BOAT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger l;
  l.Add(1);
  return 0;
}
