#!/usr/bin/env python3
"""Negative-compilation driver for the Clang thread-safety gate.

Compiles every fail_*.cc in this directory with -fsyntax-only under
-Werror=thread-safety and asserts each one (a) fails to compile and
(b) fails *because of the analysis* (stderr mentions "thread-safety").
Then compiles pass_control.cc and asserts it succeeds — without the
positive control, a broken sync.h that rejects everything would make the
whole suite pass vacuously.

Usage:
    run_negative_compile.py --compiler /usr/bin/clang++ --include-dir src \\
        [--case fail_unguarded_access.cc]

With --case, only that file runs (used by the per-case ctest entries so a
failure names the violating class directly). Without it, all cases plus
the control run.

Requires a Clang compiler: the script probes for -Wthread-safety support
and exits 77 (the automake SKIP code) if the compiler does not recognize
it, so a GCC-configured tree reports the tests as skipped, not failed.
"""

import argparse
import pathlib
import subprocess
import sys

SKIP_EXIT = 77  # conventional "test skipped" exit code

TSA_FLAGS = [
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror=thread-safety",
]


def compile_cmd(compiler: str, include_dir: str, source: pathlib.Path):
    return [
        compiler,
        "-std=c++20",
        "-fsyntax-only",
        f"-I{include_dir}",
        *TSA_FLAGS,
        str(source),
    ]


def compiler_supports_tsa(compiler: str, tmp: pathlib.Path) -> bool:
    """True iff the compiler accepts -Wthread-safety (i.e. is Clang)."""
    probe = tmp / "tsa_probe.cc"
    probe.write_text("int main() { return 0; }\n")
    try:
        proc = subprocess.run(
            [compiler, "-fsyntax-only", "-Werror", *TSA_FLAGS, str(probe)],
            capture_output=True,
            text=True,
            timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    finally:
        probe.unlink(missing_ok=True)
    # GCC errors out on the unknown warning flag under -Werror.
    return proc.returncode == 0


def run_case(compiler: str, include_dir: str, source: pathlib.Path) -> bool:
    expect_fail = source.name.startswith("fail_")
    proc = subprocess.run(
        compile_cmd(compiler, include_dir, source),
        capture_output=True,
        text=True,
        timeout=120,
    )
    if expect_fail:
        if proc.returncode == 0:
            print(f"FAIL {source.name}: compiled cleanly, expected a "
                  "thread-safety error")
            return False
        if "thread-safety" not in proc.stderr:
            print(f"FAIL {source.name}: failed to compile, but not from the "
                  "thread-safety analysis. stderr:")
            print(proc.stderr)
            return False
        print(f"ok   {source.name}: rejected by the analysis as expected")
        return True
    if proc.returncode != 0:
        print(f"FAIL {source.name}: positive control did not compile. stderr:")
        print(proc.stderr)
        return False
    print(f"ok   {source.name}: compiled cleanly")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", required=True,
                        help="C++ compiler to test (must be Clang)")
    parser.add_argument("--include-dir", required=True,
                        help="repo src/ directory (for common/sync.h)")
    parser.add_argument("--case", dest="case", default=None,
                        help="run only this source file (name or path)")
    args = parser.parse_args()

    here = pathlib.Path(__file__).resolve().parent
    if not compiler_supports_tsa(args.compiler, here):
        print(f"SKIP: {args.compiler} does not support -Wthread-safety "
              "(not Clang); the thread-safety gate runs in the clang CI job")
        return SKIP_EXIT

    if args.case:
        sources = [here / pathlib.Path(args.case).name]
        if not sources[0].exists():
            print(f"FAIL: no such case {args.case}")
            return 1
    else:
        sources = sorted(here.glob("fail_*.cc")) + [here / "pass_control.cc"]
        if len([s for s in sources if s.name.startswith("fail_")]) < 3:
            print("FAIL: fewer than 3 violation cases present")
            return 1

    ok = all(run_case(args.compiler, args.include_dir, s) for s in sources)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
