// Violation class 4: calling a BOAT_EXCLUDES(mu) function while holding mu —
// the self-deadlock shape (the callee will try to acquire mu again). Every
// public entry point of the serve layer carries this annotation.
// Expected diagnostic: "cannot call function ... while mutex ... is held".

#include "common/sync.h"

namespace {

class Queue {
 public:
  void Push() BOAT_EXCLUDES(mu_) {
    boat::MutexLock lock(mu_);
    ++size_;
  }

  void PushTwice() {
    boat::MutexLock lock(mu_);
    Push();  // BAD: Push() excludes mu_, but we hold it -> deadlock
  }

 private:
  boat::Mutex mu_;
  long size_ BOAT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.PushTwice();
  return 0;
}
