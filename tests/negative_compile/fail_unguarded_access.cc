// Violation class 1: touching a BOAT_GUARDED_BY field without its lock.
// Expected diagnostic: -Wthread-safety-analysis "requires holding mutex".

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BAD: mu_ not held
  }

 private:
  boat::Mutex mu_;
  long value_ BOAT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
