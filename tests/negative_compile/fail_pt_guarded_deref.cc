// Violation class 5: writing through a BOAT_PT_GUARDED_BY pointer without
// the lock. The pointer itself may be read freely; the pointee is what the
// capability protects (the ModelRegistry active-snapshot shape).
// Expected diagnostic: "writing the value pointed to by ... requires holding".

#include "common/sync.h"

namespace {

class Holder {
 public:
  explicit Holder(long* p) : data_(p) {}

  void WritePointee(long v) {
    *data_ = v;  // BAD: pointee guarded by mu_, which is not held
  }

 private:
  boat::Mutex mu_;
  long* data_ BOAT_PT_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  long v = 7;
  Holder h(&v);
  h.WritePointee(9);
  return static_cast<int>(v);
}
