// Unit tests for src/split: impurity functions, AVC structures, split
// ordering/canonicalization, numeric and categorical best-split search,
// selectors (impurity and QUEST) and child-count helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "split/quest.h"
#include "split/selector.h"

namespace boat {
namespace {

// ------------------------------------------------------------------- Impurity

TEST(ImpurityTest, GiniOfPureAndBalancedPartitions) {
  GiniImpurity gini;
  const int64_t pure_left[2] = {10, 0};
  const int64_t pure_right[2] = {0, 10};
  EXPECT_DOUBLE_EQ(gini.Eval(pure_left, pure_right, 2, 20), 0.0);

  const int64_t mixed_left[2] = {5, 5};
  const int64_t mixed_right[2] = {5, 5};
  EXPECT_DOUBLE_EQ(gini.Eval(mixed_left, mixed_right, 2, 20), 0.5);
}

TEST(ImpurityTest, EntropyOfPureAndBalancedPartitions) {
  EntropyImpurity entropy;
  const int64_t pure_left[2] = {10, 0};
  const int64_t pure_right[2] = {0, 10};
  EXPECT_DOUBLE_EQ(entropy.Eval(pure_left, pure_right, 2, 20), 0.0);
  const int64_t mixed[2] = {5, 5};
  const int64_t empty[2] = {0, 0};
  EXPECT_DOUBLE_EQ(entropy.Eval(mixed, empty, 2, 10), 1.0);
}

TEST(ImpurityTest, MisclassificationCountsMinority) {
  MisclassificationImpurity mc;
  const int64_t left[2] = {8, 2};
  const int64_t right[2] = {1, 9};
  // minority counts: 2 + 1 over 20 tuples
  EXPECT_DOUBLE_EQ(mc.Eval(left, right, 2, 20), 3.0 / 20.0);
}

TEST(ImpurityTest, EvalNodeEqualsDegeneratePartition) {
  GiniImpurity gini;
  const int64_t counts[3] = {4, 3, 3};
  const int64_t zeros[3] = {0, 0, 0};
  EXPECT_DOUBLE_EQ(gini.EvalNode(counts, 3, 10),
                   gini.Eval(counts, zeros, 3, 10));
}

TEST(ImpurityTest, FactoryByName) {
  EXPECT_NE(MakeImpurity("gini"), nullptr);
  EXPECT_NE(MakeImpurity("entropy"), nullptr);
  EXPECT_NE(MakeImpurity("misclassification"), nullptr);
  EXPECT_EQ(MakeImpurity("bogus"), nullptr);
}

// ------------------------------------------------------------------ AVC sets

TEST(NumericAvcTest, FinalizeSortsAndMerges) {
  NumericAvc avc(2);
  avc.Add(5.0, 0);
  avc.Add(1.0, 1);
  avc.Add(5.0, 1);
  avc.Add(3.0, 0);
  avc.Finalize();
  ASSERT_EQ(avc.num_values(), 3);
  EXPECT_EQ(avc.value(0), 1.0);
  EXPECT_EQ(avc.value(1), 3.0);
  EXPECT_EQ(avc.value(2), 5.0);
  EXPECT_EQ(avc.counts(2)[0], 1);
  EXPECT_EQ(avc.counts(2)[1], 1);
  EXPECT_EQ(avc.Totals(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(avc.EntryCount(), 4);  // (1,c1) (3,c0) (5,c0) (5,c1)
}

TEST(NumericAvcTest, WeightedDeleteDropsZeroRows) {
  NumericAvc avc(2);
  avc.Add(1.0, 0, 2);
  avc.Add(2.0, 0, 1);
  avc.Add(1.0, 0, -2);
  avc.Finalize();
  ASSERT_EQ(avc.num_values(), 1);
  EXPECT_EQ(avc.value(0), 2.0);
}

TEST(NumericAvcTest, FinalizeIsReopenableAndMergesRuns) {
  // Add after Finalize re-opens the AVC; the next Finalize must merge the
  // new staged run with the already-finalized run, not mix or drop either.
  NumericAvc avc(2);
  avc.Add(5.0, 0);
  avc.Add(1.0, 1);
  avc.Finalize();
  avc.Add(3.0, 0);
  avc.Add(5.0, 1);  // duplicates an already-finalized value
  EXPECT_FALSE(avc.finalized());
  avc.Finalize();
  ASSERT_EQ(avc.num_values(), 3);
  EXPECT_EQ(avc.value(0), 1.0);
  EXPECT_EQ(avc.value(1), 3.0);
  EXPECT_EQ(avc.value(2), 5.0);
  EXPECT_EQ(avc.counts(2)[0], 1);
  EXPECT_EQ(avc.counts(2)[1], 1);
  EXPECT_EQ(avc.Totals(), (std::vector<int64_t>{2, 2}));
}

TEST(NumericAvcTest, ReadsBeforeFinalizeAbort) {
  NumericAvc avc(2);
  avc.Add(1.0, 0);
  EXPECT_DEATH(avc.num_values(), "before Finalize");
  EXPECT_DEATH(avc.Totals(), "before Finalize");
  EXPECT_DEATH(avc.EntryCount(), "before Finalize");
}

TEST(NumericAvcTest, AddSortedMatchesStagedPath) {
  NumericAvc staged(2);
  NumericAvc sorted(2);
  const double values[] = {1.0, 1.0, 2.5, 2.5, 2.5, 7.0};
  const int32_t labels[] = {0, 1, 1, 1, 0, 0};
  for (int i = 0; i < 6; ++i) staged.Add(values[i], labels[i]);
  staged.Finalize();
  for (int i = 0; i < 6; ++i) sorted.AddSorted(values[i], labels[i]);
  ASSERT_EQ(sorted.num_values(), staged.num_values());
  for (int64_t i = 0; i < staged.num_values(); ++i) {
    EXPECT_EQ(sorted.value(i), staged.value(i));
    EXPECT_EQ(sorted.counts(i)[0], staged.counts(i)[0]);
    EXPECT_EQ(sorted.counts(i)[1], staged.counts(i)[1]);
  }
  EXPECT_EQ(sorted.Totals(), staged.Totals());
}

TEST(NumericAvcTest, AddSortedRejectsMisuse) {
  NumericAvc pending(2);
  pending.Add(2.0, 0);
  EXPECT_DEATH(pending.AddSorted(3.0, 0), "staged Add observations pending");
  NumericAvc descending(2);
  descending.AddSorted(2.0, 0);
  EXPECT_DEATH(descending.AddSorted(1.0, 0), "not in ascending order");
}

TEST(CategoricalAvcTest, CountsAndTotals) {
  CategoricalAvc avc(3, 2);
  avc.Add(0, 0);
  avc.Add(0, 1);
  avc.Add(2, 1, 3);
  EXPECT_EQ(avc.count(0, 0), 1);
  EXPECT_EQ(avc.CategoryTotal(0), 2);
  EXPECT_EQ(avc.CategoryTotal(1), 0);
  EXPECT_EQ(avc.CategoryTotal(2), 3);
  EXPECT_EQ(avc.Totals(), (std::vector<int64_t>{1, 4}));
  EXPECT_EQ(avc.EntryCount(), 3);
}

TEST(AvcGroupTest, BuildsFromTuples) {
  Schema schema({Attribute::Numerical("x"), Attribute::Categorical("c", 3)},
                2);
  std::vector<Tuple> tuples = {
      Tuple({1.0, 0.0}, 0), Tuple({2.0, 1.0}, 1), Tuple({1.0, 2.0}, 1)};
  AvcGroup avc = BuildAvcGroup(schema, tuples);
  EXPECT_EQ(avc.total_tuples(), 3);
  EXPECT_EQ(avc.class_totals(), (std::vector<int64_t>{1, 2}));
  EXPECT_FALSE(avc.IsPure());
  EXPECT_EQ(avc.numeric(0).num_values(), 2);
  EXPECT_EQ(avc.categorical(1).CategoryTotal(2), 1);
}

TEST(AvcGroupTest, PurityDetection) {
  Schema schema({Attribute::Numerical("x")}, 2);
  AvcGroup avc(schema);
  EXPECT_TRUE(avc.IsPure());  // empty counts as pure
  avc.Add(Tuple({1.0}, 0));
  avc.Add(Tuple({2.0}, 0));
  EXPECT_TRUE(avc.IsPure());
  avc.Add(Tuple({3.0}, 1));
  EXPECT_FALSE(avc.IsPure());
}

// --------------------------------------------------------------------- Split

TEST(SplitTest, SendLeftNumerical) {
  Split s = Split::Numerical(0, 5.0, 0.1);
  EXPECT_TRUE(s.SendLeft(Tuple({5.0}, 0)));
  EXPECT_TRUE(s.SendLeft(Tuple({4.9}, 0)));
  EXPECT_FALSE(s.SendLeft(Tuple({5.1}, 0)));
}

TEST(SplitTest, SendLeftCategorical) {
  Split s = Split::Categorical(0, {1, 3}, 0.1);
  EXPECT_TRUE(s.SendLeft(Tuple({3.0}, 0)));
  EXPECT_FALSE(s.SendLeft(Tuple({2.0}, 0)));
}

TEST(SplitTest, BetterSplitTotalOrder) {
  Split a = Split::Numerical(0, 1.0, 0.1);
  Split b = Split::Numerical(0, 2.0, 0.2);
  EXPECT_TRUE(BetterSplit(a, b));
  EXPECT_FALSE(BetterSplit(b, a));
  // Equal impurity: lower attribute index wins.
  Split c = Split::Numerical(1, 0.5, 0.1);
  EXPECT_TRUE(BetterSplit(a, c));
  // Equal impurity and attribute: smaller split value wins.
  Split d = Split::Numerical(0, 0.5, 0.1);
  EXPECT_TRUE(BetterSplit(d, a));
  // Categorical tie: lexicographically smaller subset wins.
  Split e = Split::Categorical(2, {0, 1}, 0.1);
  Split f = Split::Categorical(2, {0, 2}, 0.1);
  EXPECT_TRUE(BetterSplit(e, f));
}

TEST(SplitTest, CanonicalizeSubsetPicksSideWithSmallestPresent) {
  const std::vector<int32_t> present = {1, 2, 5, 7};
  // Already contains the smallest present category: unchanged (sorted).
  EXPECT_EQ(CanonicalizeSubset({5, 1}, present),
            (std::vector<int32_t>{1, 5}));
  // Does not contain it: replaced by complement.
  EXPECT_EQ(CanonicalizeSubset({5, 7}, present),
            (std::vector<int32_t>{1, 2}));
}

TEST(SplitTest, SameCriterionIgnoresImpurity) {
  Split a = Split::Numerical(0, 5.0, 0.1);
  Split b = Split::Numerical(0, 5.0, 0.9);
  EXPECT_TRUE(a.SameCriterion(b));
  Split c = Split::Numerical(0, 5.5, 0.1);
  EXPECT_FALSE(a.SameCriterion(c));
}

// ------------------------------------------------------------ Numeric search

TEST(NumericSearchTest, FindsObviousSplit) {
  NumericAvc avc(2);
  for (int i = 0; i < 10; ++i) avc.Add(i, i < 5 ? 0 : 1);
  avc.Finalize();
  GiniImpurity gini;
  auto best = BestNumericSplit(avc, 0, gini);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->value, 4.0);
  EXPECT_DOUBLE_EQ(best->impurity, 0.0);
}

TEST(NumericSearchTest, ExcludesDegenerateLastValue) {
  NumericAvc avc(2);
  avc.Add(1.0, 0);
  avc.Add(1.0, 1);
  avc.Finalize();
  GiniImpurity gini;
  EXPECT_FALSE(BestNumericSplit(avc, 0, gini).has_value());
}

TEST(NumericSearchTest, TieBreaksToSmallerValue) {
  // Symmetric data: splits at 0 and at 1 give equal impurity.
  NumericAvc avc(2);
  avc.Add(0.0, 0);
  avc.Add(1.0, 1);
  avc.Add(2.0, 0);  // 0:A 1:B 2:A — split<=0: {A}|{B,A}; split<=1: {A,B}|{A}
  avc.Finalize();
  GiniImpurity gini;
  auto best = BestNumericSplit(avc, 0, gini);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->value, 0.0);
}

TEST(NumericSearchTest, RangeRestrictedWithBaseCounts) {
  // Full data: values 0..9, class 0 below 5. Range restricted to (4, 7]
  // with base counts for values <= 4.
  NumericAvc in_range(2);
  for (int i = 5; i <= 7; ++i) in_range.Add(i, 1);
  in_range.Finalize();
  const std::vector<int64_t> left_base = {5, 0};  // five class-0 tuples <= 4
  const std::vector<int64_t> totals = {5, 5};
  GiniImpurity gini;
  auto best = BestNumericSplitRange(in_range, 0, gini, left_base, totals,
                                    /*boundary_value=*/4.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->value, 4.0);  // the boundary candidate is the optimum
  EXPECT_DOUBLE_EQ(best->impurity, 0.0);
}

TEST(NumericSearchTest, MatchesFullSearchOnRange) {
  // The range search with base counts must agree with a full search when the
  // optimum lies inside the range.
  Rng rng(5);
  NumericAvc full(2);
  std::vector<std::pair<double, int32_t>> data;
  for (int i = 0; i < 200; ++i) {
    const double v = static_cast<double>(rng.UniformInt(0, 50));
    const int32_t label = rng.Bernoulli(v / 50.0) ? 1 : 0;
    data.push_back({v, label});
    full.Add(v, label);
  }
  full.Finalize();
  GiniImpurity gini;
  auto best_full = BestNumericSplit(full, 0, gini);
  ASSERT_TRUE(best_full.has_value());

  // Range (lo, hi] that contains the optimum.
  const double lo = best_full->value - 3;
  const double hi = best_full->value + 3;
  NumericAvc in_range(2);
  std::vector<int64_t> left_base(2, 0);
  std::vector<int64_t> totals(2, 0);
  double boundary = -1e300;
  bool has_boundary = false;
  for (const auto& [v, label] : data) {
    ++totals[label];
    if (v <= lo) {
      ++left_base[label];
      if (!has_boundary || v > boundary) {
        boundary = v;
        has_boundary = true;
      }
    } else if (v <= hi) {
      in_range.Add(v, label);
    }
  }
  in_range.Finalize();
  auto best_range = BestNumericSplitRange(
      in_range, 0, gini, left_base, totals,
      has_boundary ? std::optional<double>(boundary) : std::nullopt);
  ASSERT_TRUE(best_range.has_value());
  EXPECT_EQ(best_range->value, best_full->value);
  EXPECT_DOUBLE_EQ(best_range->impurity, best_full->impurity);
}

// -------------------------------------------------------- Categorical search

TEST(CategoricalSearchTest, TwoClassesUsesBreimanOrdering) {
  CategoricalAvc avc(4, 2);
  // Category class-0 proportions: cat0: 0.9, cat1: 0.1, cat2: 0.8, cat3: 0.2
  avc.Add(0, 0, 9);
  avc.Add(0, 1, 1);
  avc.Add(1, 0, 1);
  avc.Add(1, 1, 9);
  avc.Add(2, 0, 8);
  avc.Add(2, 1, 2);
  avc.Add(3, 0, 2);
  avc.Add(3, 1, 8);
  GiniImpurity gini;
  auto best = BestCategoricalSplit(avc, 0, gini);
  ASSERT_TRUE(best.has_value());
  // Optimal partition groups {0,2} vs {1,3}; canonical side contains 0.
  EXPECT_EQ(best->subset, (std::vector<int32_t>{0, 2}));
}

TEST(CategoricalSearchTest, SingleCategoryHasNoSplit) {
  CategoricalAvc avc(3, 2);
  avc.Add(1, 0, 5);
  avc.Add(1, 1, 5);
  GiniImpurity gini;
  EXPECT_FALSE(BestCategoricalSplit(avc, 0, gini).has_value());
}

TEST(CategoricalSearchTest, ThreeClassExhaustiveFindsPerfectSplit) {
  CategoricalAvc avc(4, 3);
  avc.Add(0, 0, 5);
  avc.Add(1, 0, 5);
  avc.Add(2, 1, 5);
  avc.Add(3, 2, 5);
  GiniImpurity gini;
  auto best = BestCategoricalSplit(avc, 0, gini);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->subset, (std::vector<int32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(best->impurity,
                   gini.Eval((const int64_t[]){10, 0, 0},
                             (const int64_t[]){0, 5, 5}, 3, 20));
}

TEST(CategoricalSearchTest, SubsetIsCanonical) {
  CategoricalAvc avc(3, 2);
  avc.Add(0, 0, 10);
  avc.Add(1, 1, 10);
  avc.Add(2, 1, 10);
  GiniImpurity gini;
  auto best = BestCategoricalSplit(avc, 0, gini);
  ASSERT_TRUE(best.has_value());
  // The perfect partition is {0} vs {1,2}; canonical side contains 0.
  EXPECT_EQ(best->subset, (std::vector<int32_t>{0}));
}

TEST(CategoricalSearchTest, LargeDomainGreedyStillSeparates) {
  // 20 categories, each pure: even the greedy path must reach a good split.
  CategoricalAvc avc(20, 3);
  for (int c = 0; c < 20; ++c) avc.Add(c, c % 3, 10);
  GiniImpurity gini;
  auto best = BestCategoricalSplit(avc, 0, gini);
  ASSERT_TRUE(best.has_value());
  const double node = gini.EvalNode(avc.Totals().data(), 3, 200);
  EXPECT_LT(best->impurity, node);
}

// ----------------------------------------------------------- Child counts

TEST(ChildCountsTest, NumericPartition) {
  NumericAvc avc(2);
  avc.Add(1.0, 0, 3);
  avc.Add(2.0, 1, 2);
  avc.Add(3.0, 0, 1);
  avc.Finalize();
  auto [left, right] = ChildCountsNumeric(avc, Split::Numerical(0, 2.0, 0));
  EXPECT_EQ(left, (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(right, (std::vector<int64_t>{1, 0}));
}

TEST(ChildCountsTest, CategoricalPartition) {
  CategoricalAvc avc(3, 2);
  avc.Add(0, 0, 4);
  avc.Add(1, 1, 5);
  avc.Add(2, 0, 6);
  auto [left, right] =
      ChildCountsCategorical(avc, Split::Categorical(0, {0, 2}, 0));
  EXPECT_EQ(left, (std::vector<int64_t>{10, 0}));
  EXPECT_EQ(right, (std::vector<int64_t>{0, 5}));
}

// -------------------------------------------------------- Impurity selector

TEST(ImpuritySelectorTest, ChoosesBestAcrossAttributes) {
  Schema schema({Attribute::Numerical("weak"), Attribute::Numerical("strong")},
                2);
  std::vector<Tuple> tuples;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const double strong = i < 50 ? 0 : 1;
    const double weak = static_cast<double>(rng.UniformInt(0, 9));
    tuples.push_back(Tuple({weak, strong}, i < 50 ? 0 : 1));
  }
  AvcGroup avc = BuildAvcGroup(schema, tuples);
  auto selector = MakeGiniSelector();
  auto split = selector->ChooseSplit(avc);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->attribute, 1);
  EXPECT_DOUBLE_EQ(split->impurity, 0.0);
}

TEST(ImpuritySelectorTest, PureNodeIsLeaf) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) tuples.push_back(Tuple({double(i)}, 0));
  AvcGroup avc = BuildAvcGroup(schema, tuples);
  EXPECT_FALSE(MakeGiniSelector()->ChooseSplit(avc).has_value());
}

TEST(ImpuritySelectorTest, UninformativeSplitRejected) {
  // Identical class mix at every value: no split strictly decreases gini.
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) {
    tuples.push_back(Tuple({double(i)}, 0));
    tuples.push_back(Tuple({double(i)}, 1));
  }
  AvcGroup avc = BuildAvcGroup(schema, tuples);
  EXPECT_FALSE(MakeGiniSelector()->ChooseSplit(avc).has_value());
}

// ----------------------------------------------------------------- MomentSet

TEST(MomentSetTest, OrderIndependentAccumulation) {
  Schema schema({Attribute::Numerical("x"), Attribute::Categorical("c", 2)},
                2);
  std::vector<Tuple> tuples;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    tuples.push_back(Tuple({rng.UniformDouble(0, 1000), 0.0},
                           static_cast<int32_t>(rng.UniformInt(0, 1))));
  }
  MomentSet forward(schema);
  for (const Tuple& t : tuples) forward.Add(t);
  MomentSet backward(schema);
  for (auto it = tuples.rbegin(); it != tuples.rend(); ++it) {
    backward.Add(*it);
  }
  EXPECT_EQ(forward, backward);
}

TEST(MomentSetTest, DeleteUndoesInsert) {
  Schema schema({Attribute::Numerical("x")}, 2);
  MomentSet moments(schema);
  const Tuple t({123.456}, 1);
  moments.Add(t, +1);
  moments.Add(t, -1);
  EXPECT_EQ(moments.count(0, 1), 0);
  EXPECT_EQ(moments.sum(0, 1), 0);
  EXPECT_EQ(moments.sum_sq(0, 1), static_cast<__int128>(0));
}

TEST(MomentSetTest, MergeAddsCells) {
  Schema schema({Attribute::Numerical("x")}, 2);
  MomentSet a(schema), b(schema);
  a.Add(Tuple({2.0}, 0));
  b.Add(Tuple({3.0}, 0));
  a.Merge(b);
  EXPECT_EQ(a.count(0, 0), 2);
  EXPECT_EQ(a.sum(0, 0), QuantizeValue(2.0) + QuantizeValue(3.0));
}

// ------------------------------------------------------------ QUEST selector

TEST(QuestSelectorTest, PrefersStronglyAssociatedAttribute) {
  Schema schema({Attribute::Numerical("noise"), Attribute::Numerical("signal")},
                2);
  std::vector<Tuple> tuples;
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const int32_t label = static_cast<int32_t>(rng.UniformInt(0, 1));
    const double signal = label * 100 + rng.UniformInt(0, 10);
    const double noise = rng.UniformInt(0, 1000);
    tuples.push_back(Tuple({noise, signal}, label));
  }
  AvcGroup avc = BuildAvcGroup(schema, tuples);
  QuestSelector quest;
  auto split = quest.ChooseSplit(avc);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->attribute, 1);
  EXPECT_TRUE(split->is_numerical);
  // The threshold (midpoint of class means ~5 and ~105) separates classes.
  EXPECT_GE(split->value, 10);
  EXPECT_LT(split->value, 100);
}

TEST(QuestSelectorTest, CategoricalAttributeViaChiSquare) {
  Schema schema({Attribute::Categorical("c", 3)}, 2);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 30; ++i) {
    const int32_t cat = i % 3;
    tuples.push_back(Tuple({double(cat)}, cat == 0 ? 0 : 1));
  }
  AvcGroup avc = BuildAvcGroup(schema, tuples);
  QuestSelector quest;
  auto split = quest.ChooseSplit(avc);
  ASSERT_TRUE(split.has_value());
  EXPECT_FALSE(split->is_numerical);
  EXPECT_EQ(split->subset, (std::vector<int32_t>{0}));
}

TEST(QuestSelectorTest, NoAssociationMeansLeaf) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> tuples;
  // x identical for both classes: zero between-group variance.
  for (int i = 0; i < 20; ++i) tuples.push_back(Tuple({5.0}, i % 2));
  AvcGroup avc = BuildAvcGroup(schema, tuples);
  QuestSelector quest;
  EXPECT_FALSE(quest.ChooseSplit(avc).has_value());
}

TEST(QuestSelectorTest, NumericScoreInfiniteOnPerfectSeparation) {
  // Two point masses: zero within-group variance, positive between.
  const int64_t count[2] = {5, 5};
  const int64_t sum[2] = {5 * QuantizeValue(1.0), 5 * QuantizeValue(2.0)};
  const __int128 sum_sq[2] = {
      static_cast<__int128>(5) * QuantizeValue(1.0) * QuantizeValue(1.0),
      static_cast<__int128>(5) * QuantizeValue(2.0) * QuantizeValue(2.0)};
  const double score = QuestSelector::NumericScore(count, sum, sum_sq, 2);
  EXPECT_TRUE(std::isinf(score));
}

TEST(QuestSelectorTest, ThresholdIsMidpointOfSuperclassMeans) {
  const int64_t count[2] = {10, 10};
  const int64_t sum[2] = {10 * QuantizeValue(0.0), 10 * QuantizeValue(10.0)};
  auto theta = QuestSelector::Threshold(count, sum, 2);
  ASSERT_TRUE(theta.has_value());
  EXPECT_DOUBLE_EQ(*theta, 5.0);
}

}  // namespace
}  // namespace boat
