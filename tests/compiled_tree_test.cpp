// CompiledTree correctness: the flat batched inference layout must produce
// predictions identical to DecisionTree::Classify for every tuple, every
// selector, every scoring kernel, and every scoring thread count.

#include "tree/compiled_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "boat/builder.h"
#include "datagen/agrawal.h"
#include "split/quest.h"
#include "split/selector.h"
#include "tree/evaluation.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

// Every kernel worth testing on this host: the per-tuple pointer-free walk,
// the blocked level-synchronous scalar sweep, and (when the CPU has it) the
// SIMD sweep. kAuto rides along to cover the dispatch path itself.
std::vector<std::pair<PredictKernel, const char*>>
TestableKernels() {
  std::vector<std::pair<PredictKernel, const char*>> kernels = {
      {PredictKernel::kAuto, "auto"},
      {PredictKernel::kScalarTuple, "scalar_tuple"},
      {PredictKernel::kScalarBlock, "scalar_block"},
  };
  if (CompiledTree::SimdAvailable()) {
    kernels.emplace_back(PredictKernel::kSimd, "simd");
  }
  return kernels;
}

void ExpectIdenticalPredictions(const DecisionTree& tree,
                                const std::vector<Tuple>& data) {
  const CompiledTree compiled(tree);
  ASSERT_EQ(compiled.num_nodes(), tree.num_nodes());
  // Single-tuple path.
  for (const Tuple& t : data) {
    ASSERT_EQ(compiled.Classify(t), tree.Classify(t));
  }
  // Batched path: the ground truth is the pointer walk.
  const std::vector<int32_t> serial = compiled.Predict(data, 1);
  ASSERT_EQ(serial.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(serial[i], tree.Classify(data[i])) << "tuple " << i;
  }
  // The full equivalence matrix: every kernel x every thread count must be
  // byte-identical to the serial result.
  std::vector<int32_t> out(data.size());
  for (const auto& [kernel, name] : TestableKernels()) {
    for (const int threads : {1, 2, 8}) {
      std::fill(out.begin(), out.end(), -999);
      compiled.PredictWithKernel(data, out, threads, kernel);
      ASSERT_EQ(out, serial) << "kernel=" << name << " threads=" << threads;
    }
  }
}

std::vector<Tuple> AgrawalData(int function, uint64_t n, uint64_t seed,
                               double noise = 0.05) {
  AgrawalConfig config;
  config.function = function;
  config.noise = noise;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

TEST(CompiledTreeTest, MatchesGiniTreeOnAgrawal) {
  const auto train = AgrawalData(6, 4000, 101);
  const auto test = AgrawalData(6, 2000, 202, 0.0);
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), train, *selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  ExpectIdenticalPredictions(tree, train);
  ExpectIdenticalPredictions(tree, test);
}

TEST(CompiledTreeTest, MatchesEntropyTreeOnAgrawal) {
  const auto train = AgrawalData(7, 4000, 303);
  const auto test = AgrawalData(7, 2000, 404, 0.0);
  auto selector = MakeEntropySelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), train, *selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  ExpectIdenticalPredictions(tree, train);
  ExpectIdenticalPredictions(tree, test);
}

TEST(CompiledTreeTest, MatchesQuestTreeOnAgrawal) {
  const auto train = AgrawalData(5, 4000, 505);
  const auto test = AgrawalData(5, 2000, 606, 0.0);
  QuestSelector selector;
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), train, selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  ExpectIdenticalPredictions(tree, train);
  ExpectIdenticalPredictions(tree, test);
}

TEST(CompiledTreeTest, SingleLeafTree) {
  // A tree that never splits (all labels equal) compiles to one leaf.
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back(Tuple({static_cast<double>(i)}, 1));
  }
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  ASSERT_EQ(tree.num_nodes(), 1u);
  const CompiledTree compiled(tree);
  EXPECT_EQ(compiled.num_nodes(), 1u);
  for (const Tuple& t : data) {
    EXPECT_EQ(compiled.Classify(t), 1);
  }
  ExpectIdenticalPredictions(tree, data);
}

TEST(CompiledTreeTest, EmptyBatch) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> data = {Tuple({0.0}, 0), Tuple({5.0}, 1)};
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  const CompiledTree compiled(tree);
  const std::vector<Tuple> empty;
  EXPECT_TRUE(compiled.Predict(empty, 4).empty());
  EXPECT_EQ(compiled.MisclassificationRate(empty), 0.0);
}

TEST(CompiledTreeTest, CategoricalSubsetsAndOutOfDomainValues) {
  // Mixed schema with a categorical attribute; the compiled bitset probe
  // must agree with the subset binary search, including on category values
  // outside the declared domain (which always go right).
  Schema schema({Attribute::Numerical("n"), Attribute::Categorical("c", 7)},
                2);
  Rng rng(99);
  std::vector<Tuple> data;
  for (int i = 0; i < 3000; ++i) {
    const double n = rng.UniformDouble(0, 100);
    const double c = static_cast<double>(rng.UniformInt(0, 6));
    const int32_t label =
        (c == 2 || c == 5 || (c == 3 && n < 40)) ? 1 : 0;
    data.push_back(Tuple({n, c}, label));
  }
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  ExpectIdenticalPredictions(tree, data);

  // Out-of-domain probes: category ids beyond the schema cardinality and
  // negative ids must take the same (right) branch as the pointer walk.
  std::vector<Tuple> weird;
  for (const double c : {-3.0, 7.0, 64.0, 1000.0}) {
    weird.push_back(Tuple({50.0, c}, 0));
  }
  ExpectIdenticalPredictions(tree, weird);
}

TEST(CompiledTreeTest, DeepNumericTree) {
  // A deliberately overfit deep tree (unique x per tuple, alternating
  // labels) exercises long root-to-leaf paths.
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> data;
  for (int i = 0; i < 512; ++i) {
    data.push_back(Tuple({static_cast<double>(i)}, i % 2));
  }
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  ASSERT_GT(tree.depth(), 4);
  ExpectIdenticalPredictions(tree, data);
}

TEST(CompiledTreeTest, MatchesBoatBuiltTreeAndEvaluate) {
  // End-to-end: a BOAT-built tree (not just the in-memory reference) plus
  // the Evaluate() overloads, which now route through CompiledTree.
  const auto train = AgrawalData(1, 6000, 707);
  auto selector = MakeGiniSelector();
  VectorSource source(MakeAgrawalSchema(), train);
  BoatOptions options;
  options.sample_size = 600;
  options.bootstrap_count = 10;
  options.bootstrap_subsample = 300;
  options.inmem_threshold = 600;
  options.limits.stop_family_size = 600;
  auto tree = BuildTreeBoat(&source, *selector, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ExpectIdenticalPredictions(*tree, train);

  const CompiledTree compiled(*tree);
  const ConfusionMatrix from_tree = Evaluate(*tree, train);
  const ConfusionMatrix from_compiled = Evaluate(compiled, train, 8);
  ASSERT_EQ(from_tree.num_classes(), from_compiled.num_classes());
  for (int a = 0; a < from_tree.num_classes(); ++a) {
    for (int p = 0; p < from_tree.num_classes(); ++p) {
      EXPECT_EQ(from_tree.count(a, p), from_compiled.count(a, p));
    }
  }
  // wrong/n vs 1 - correct/n: equal up to one rounding of the division.
  EXPECT_NEAR(compiled.MisclassificationRate(train, 2),
              1.0 - from_tree.Accuracy(), 1e-12);
}

TEST(CompiledTreeTest, OddSizedBatchTails) {
  // Batch sizes straddling every boundary the blocked path cares about:
  // the per-tuple cutoff (32), the SIMD width (8), and the transpose block
  // (512). None of {1, 7, 31, 33, 511, 513, 1013} divides evenly, so every
  // kernel exercises its partial-vector / partial-block tail handling.
  const auto data = AgrawalData(6, 1013, 909);
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), data, *selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  const CompiledTree compiled(tree);
  for (const size_t n : {1, 7, 31, 32, 33, 511, 512, 513, 1013}) {
    const std::vector<Tuple> batch(data.begin(),
                                   data.begin() + static_cast<int64_t>(n));
    const std::vector<int32_t> serial = compiled.Predict(batch, 1);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(serial[i], tree.Classify(batch[i])) << "n=" << n << " i=" << i;
    }
    std::vector<int32_t> out(n);
    for (const auto& [kernel, name] : TestableKernels()) {
      for (const int threads : {1, 2, 8}) {
        std::fill(out.begin(), out.end(), -999);
        compiled.PredictWithKernel(batch, out, threads, kernel);
        ASSERT_EQ(out, serial)
            << "n=" << n << " kernel=" << name << " threads=" << threads;
      }
    }
  }
}

TEST(CompiledTreeTest, SimdEnvOverrideForcesScalarBlockKernel) {
  // BOAT_SIMD=off must force the scalar block kernel on the kAuto path —
  // and, by the byte-identical contract, change nothing about the output.
  const auto data = AgrawalData(7, 2000, 808);
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), data, *selector);
  const CompiledTree compiled(tree);
  const std::vector<int32_t> baseline = compiled.Predict(data, 1);

  const char* saved = std::getenv("BOAT_SIMD");
  const std::string saved_value = saved != nullptr ? saved : "";
  for (const char* off : {"off", "0", "scalar", "false"}) {
    ASSERT_EQ(setenv("BOAT_SIMD", off, 1), 0);
    EXPECT_STREQ(CompiledTree::ActiveKernelName(), "scalar")
        << "BOAT_SIMD=" << off;
    EXPECT_EQ(compiled.Predict(data, 2), baseline) << "BOAT_SIMD=" << off;
  }
  ASSERT_EQ(setenv("BOAT_SIMD", "on", 1), 0);
  if (CompiledTree::SimdAvailable()) {
    EXPECT_STRNE(CompiledTree::ActiveKernelName(), "scalar");
  } else {
    EXPECT_STREQ(CompiledTree::ActiveKernelName(), "scalar");
  }
  EXPECT_EQ(compiled.Predict(data, 2), baseline);
  // "tuple" pins the per-tuple loop; "block" pins block dispatch past the
  // crossover. Both are pure scheduling choices: output unchanged.
  ASSERT_EQ(setenv("BOAT_SIMD", "tuple", 1), 0);
  EXPECT_STREQ(CompiledTree::ActiveKernelName(), "tuple");
  EXPECT_EQ(compiled.Predict(data, 2), baseline);
  ASSERT_EQ(setenv("BOAT_SIMD", "block", 1), 0);
  EXPECT_STRNE(CompiledTree::ActiveKernelName(), "tuple");
  EXPECT_EQ(compiled.Predict(data, 2), baseline);
  if (saved != nullptr) {
    ASSERT_EQ(setenv("BOAT_SIMD", saved_value.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("BOAT_SIMD"), 0);
  }
}

}  // namespace
}  // namespace boat
